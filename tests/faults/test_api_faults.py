"""Fault plumbing through repro.api, the scenario sweep and the CLI."""

import pytest

from repro import api
from repro.cluster.profiles import ClusterProfile
from repro.experiments.scenarios import (
    FAULT_INTENSITIES,
    cluster_scenario,
    fault_sweep_scenarios,
)
from repro.faults import FaultPlan, build_fault_plan
from repro.obs import OBS


@pytest.fixture(autouse=True)
def pristine_observer():
    OBS.reset()
    yield
    OBS.reset()


@pytest.fixture(scope="module")
def small_scenario():
    return cluster_scenario(
        n_jobs=20, seed=5, profile=ClusterProfile.palmetto(n_pms=4, vms_per_pm=2)
    )


PLAN = build_fault_plan(seed=7, n_slots=120, intensity=0.8)

RESILIENCE_KEYS = {
    "vm_failures",
    "capacity_revocations",
    "predictor_outage_slots",
    "evictions",
    "retries",
    "gave_up",
    "recovery_latency_slots",
    "slo_violations_faulted",
}


class TestInject:
    def test_inject_returns_new_scenario(self, small_scenario):
        faulted = api.inject(scenario=small_scenario, plan=PLAN)
        assert faulted is not small_scenario
        assert faulted.fault_plan == PLAN
        assert small_scenario.fault_plan is None  # original untouched

    def test_inject_keyword_only(self, small_scenario):
        with pytest.raises(TypeError):
            api.inject(small_scenario, PLAN)

    def test_inject_none_clears(self, small_scenario):
        faulted = api.inject(scenario=small_scenario, plan=PLAN)
        assert api.inject(scenario=faulted, plan=None).fault_plan is None


class TestFaultPlanThroughApi:
    def test_run_one_reports_resilience(self, small_scenario):
        result = api.run_one(
            scenario=small_scenario, method="DRA", fault_plan=PLAN
        )
        assert result.resilience is not None
        assert RESILIENCE_KEYS <= set(result.summary())

    def test_compare_all_methods_report_resilience(self, small_scenario):
        results = api.compare(scenario=small_scenario, fault_plan=PLAN)
        assert set(results) == set(api.METHOD_ORDER)
        for name, result in results.items():
            assert result.resilience is not None, name
            assert RESILIENCE_KEYS <= set(result.summary()), name

    def test_compare_deterministic_under_plan(self, small_scenario):
        def snapshots():
            results = api.compare(
                scenario=small_scenario, methods=("DRA", "RCCR"), fault_plan=PLAN
            )
            return {
                name: {
                    k: v
                    for k, v in r.summary().items()
                    if k != "allocation_latency_s"
                }
                for name, r in results.items()
            }

        assert snapshots() == snapshots()

    def test_no_plan_keeps_summary_shape(self, small_scenario):
        result = api.run_one(scenario=small_scenario, method="DRA")
        assert result.resilience is None
        assert not (RESILIENCE_KEYS & set(result.summary()))


class TestFaultSweepScenarios:
    def test_default_intensity_grid(self, small_scenario):
        points = fault_sweep_scenarios(small_scenario)
        assert len(points) == len(FAULT_INTENSITIES)
        assert [p.name for p in points] == [
            f"{small_scenario.name}-faults{i:g}" for i in FAULT_INTENSITIES
        ]

    def test_zero_intensity_is_control(self, small_scenario):
        points = fault_sweep_scenarios(small_scenario, intensities=(0.0, 0.5))
        assert points[0].fault_plan is None
        assert isinstance(points[1].fault_plan, FaultPlan)
        assert points[1].fault_plan

    def test_same_workload_every_point(self, small_scenario):
        for point in fault_sweep_scenarios(small_scenario):
            assert point.n_jobs == small_scenario.n_jobs
            assert point.trace_config == small_scenario.trace_config


class TestCliFaults:
    def test_compare_faults_quick(self, capsys):
        from repro.__main__ import main

        code = main([
            "compare", "--faults", "0.5", "--quick",
            "--jobs", "12", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "resilience under fault intensity 0.5" in out
        assert "evictions" in out and "retries" in out

    def test_compare_without_faults_has_no_resilience_table(self, capsys):
        from repro.__main__ import main

        assert main(["compare", "--jobs", "12", "--seed", "3"]) == 0
        assert "resilience" not in capsys.readouterr().out
