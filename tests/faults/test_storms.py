"""Spot-revocation storm regressions: waves, builders, no-op plans.

The load-bearing invariant: a plan of nothing but *empty-cohort* waves
is exactly the empty plan — no injector is built, no resilience keys
appear, and the summary is byte-identical to a fault-free run.  Plus
the storm builder's determinism, the wave's serialization round-trip,
and the ``storm_*`` counters appearing exactly when waves ran.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.experiments.scenarios import storm_scenario
from repro.faults.plan import (
    FaultPlan,
    RevocationWave,
    build_revocation_storm,
)


def small_scenario(jobs: int = 20):
    return api.build_scenario(jobs=jobs)


class TestEmptyCohortWaves:
    def test_empty_wave_plan_is_falsy(self):
        plan = FaultPlan(events=(RevocationWave(slot=5, vm_indices=()),))
        assert len(plan) == 0
        assert not plan

    def test_mixed_plan_keeps_only_real_waves(self):
        plan = FaultPlan(
            events=(
                RevocationWave(slot=9, vm_indices=()),
                RevocationWave(slot=3, vm_indices=(1, 2)),
                RevocationWave(slot=6, vm_indices=()),
            )
        )
        assert len(plan) == 1
        assert plan.events[0].slot == 3

    def test_empty_wave_run_is_byte_identical_to_fault_free(self):
        """No injector, no resilience keys, identical metrics."""
        scenario = small_scenario()
        plan = FaultPlan(
            events=(
                RevocationWave(slot=2, vm_indices=()),
                RevocationWave(slot=8, vm_indices=()),
            )
        )
        plain = api.run_one(scenario=scenario, method="DRA")
        waved = api.run_one(scenario=scenario, method="DRA", fault_plan=plan)
        assert waved.resilience is None
        plain_summary = plain.summary()
        waved_summary = waved.summary()
        # allocation_latency_s is wall-clock, different on every run.
        plain_summary.pop("allocation_latency_s", None)
        waved_summary.pop("allocation_latency_s", None)
        assert waved_summary == plain_summary

    def test_intensity_zero_scenario_carries_no_plan(self):
        scenario = storm_scenario(20, intensity=0.0)
        assert scenario.fault_plan is None


class TestStormBuilder:
    def test_deterministic_per_seed(self):
        a = build_revocation_storm(seed=3, n_slots=300, intensity=0.7)
        b = build_revocation_storm(seed=3, n_slots=300, intensity=0.7)
        assert a.to_dicts() == b.to_dicts()

    def test_seeds_differ(self):
        a = build_revocation_storm(seed=1, n_slots=300, intensity=1.0)
        b = build_revocation_storm(seed=2, n_slots=300, intensity=1.0)
        assert a.to_dicts() != b.to_dicts()

    def test_intensity_scales_the_storm(self):
        calm = build_revocation_storm(seed=0, n_slots=400, intensity=0.25)
        wild = build_revocation_storm(seed=0, n_slots=400, intensity=1.0)
        assert len(wild) >= len(calm)
        assert all(isinstance(e, RevocationWave) for e in wild.events)
        assert all(len(e.vm_indices) >= 1 for e in wild.events)

    def test_zero_intensity_is_empty(self):
        assert not build_revocation_storm(seed=0, intensity=0.0)

    def test_wave_round_trips_through_json(self):
        plan = build_revocation_storm(seed=5, n_slots=200, intensity=0.5)
        assert plan, "seed 5 must produce at least one wave"
        payload = json.loads(json.dumps(plan.to_dicts()))
        rebuilt = FaultPlan.from_dicts(payload, retry=plan.retry)
        assert rebuilt == plan

    def test_empty_cohort_rejected_by_validation(self):
        with pytest.raises(ValueError):
            RevocationWave(slot=-1, vm_indices=(1,))
        with pytest.raises(ValueError):
            RevocationWave(slot=0, vm_indices=(1,), crash_fraction=1.5)


class TestStormCounters:
    def test_storm_keys_present_exactly_when_waves_ran(self):
        scenario = storm_scenario(20, intensity=0.5)
        assert scenario.fault_plan is not None
        result = api.run_one(scenario=scenario, method="DRA")
        summary = result.summary()
        assert summary["storm_waves"] >= 1
        assert summary["storm_vms_hit"] >= 1
        assert "storm_recovery_slots" in summary
        plain = api.run_one(scenario=small_scenario(), method="DRA")
        assert not any(k.startswith("storm_") for k in plain.summary())

    def test_crash_only_wave_hits_whole_cohort(self):
        plan = FaultPlan(
            events=(
                RevocationWave(
                    slot=4, vm_indices=(0, 1, 2), crash_fraction=1.0
                ),
            )
        )
        result = api.run_one(
            scenario=small_scenario(), method="DRA", fault_plan=plan
        )
        summary = result.summary()
        assert summary["storm_waves"] == 1
        assert summary["storm_vms_hit"] == 3
