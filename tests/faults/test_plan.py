"""FaultPlan and RetryPolicy: validation, determinism, round-trip."""

import pytest

from repro.faults import (
    CapacityRevocation,
    FaultPlan,
    JobFailure,
    PredictorOutage,
    RetryPolicy,
    VmCrash,
    build_fault_plan,
)


class TestEventValidation:
    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError, match="slot"):
            VmCrash(slot=-1, vm_index=0)

    def test_negative_vm_index_rejected(self):
        with pytest.raises(ValueError, match="vm_index"):
            JobFailure(slot=0, vm_index=-1)

    def test_revocation_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            CapacityRevocation(slot=0, vm_index=0, fraction=0.0)
        with pytest.raises(ValueError, match="fraction"):
            CapacityRevocation(slot=0, vm_index=0, fraction=1.5)
        # The closed upper bound (full revocation) is allowed.
        CapacityRevocation(slot=0, vm_index=0, fraction=1.0)

    def test_durations_must_be_positive(self):
        with pytest.raises(ValueError, match="downtime"):
            VmCrash(slot=0, vm_index=0, downtime_slots=0)
        with pytest.raises(ValueError, match="duration"):
            PredictorOutage(slot=0, duration_slots=0)


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(backoff_base_slots=2)
        assert [policy.backoff_slots(i) for i in (1, 2, 3, 4)] == [2, 4, 8, 16]

    def test_paper_deadline_default(self):
        # 30 slots x 10 s/slot = the paper's 5-minute short-job horizon.
        assert RetryPolicy().give_up_slots == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_slots=0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_slots(0)


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert not plan

    def test_events_sorted_by_slot_stable(self):
        a = JobFailure(slot=7, vm_index=0)
        b = VmCrash(slot=2, vm_index=1)
        c = PredictorOutage(slot=7)
        plan = FaultPlan(events=(a, b, c))
        assert plan.events == (b, a, c)  # sorted; ties keep authored order

    def test_round_trip(self):
        plan = build_fault_plan(seed=4, n_slots=120, intensity=0.8)
        assert plan  # nonzero intensity over 120 slots yields events
        clone = FaultPlan.from_dicts(plan.to_dicts(), retry=plan.retry)
        assert clone == plan

    def test_from_dicts_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown fault type"):
            FaultPlan.from_dicts([{"fault": "meteor", "slot": 0}])


class TestBuildFaultPlan:
    def test_deterministic_under_seed(self):
        kwargs = dict(seed=9, n_slots=200, intensity=0.6)
        assert build_fault_plan(**kwargs) == build_fault_plan(**kwargs)

    def test_different_seeds_differ(self):
        a = build_fault_plan(seed=1, n_slots=300, intensity=0.8)
        b = build_fault_plan(seed=2, n_slots=300, intensity=0.8)
        assert a != b

    def test_zero_intensity_is_empty(self):
        assert not build_fault_plan(seed=0, n_slots=400, intensity=0.0)

    def test_intensity_scales_event_count(self):
        low = build_fault_plan(seed=0, n_slots=400, intensity=0.1)
        high = build_fault_plan(seed=0, n_slots=400, intensity=1.0)
        assert len(high) > len(low)

    def test_explicit_rate_overrides_intensity(self):
        plan = build_fault_plan(
            seed=0,
            n_slots=50,
            intensity=0.0,
            outage_rate=1.0,
        )
        assert len(plan) == 50
        assert all(isinstance(e, PredictorOutage) for e in plan.events)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="intensity"):
            build_fault_plan(intensity=-0.1)
        with pytest.raises(ValueError, match="n_slots"):
            build_fault_plan(n_slots=0)
        with pytest.raises(ValueError, match="rate"):
            build_fault_plan(vm_crash_rate=1.5)
