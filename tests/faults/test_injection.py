"""Fault injection end-to-end: eviction accounting, determinism, recovery.

Runs real simulations (small trace, small cluster) against hand-built
and sampled :class:`FaultPlan`\\ s, exercising every scheduler the paper
compares.  Structural assertions only — job conservation, counter
consistency, terminal states — so the tests stay robust at test sizes.
"""

import pytest

from repro import (
    CloudScaleScheduler,
    ClusterProfile,
    ClusterSimulator,
    CorpScheduler,
    DraScheduler,
    METHOD_ORDER,
    RccrScheduler,
    SimulationConfig,
)
from repro.cluster.job import JobState
from repro.faults import (
    CapacityRevocation,
    FaultPlan,
    JobFailure,
    PredictorOutage,
    RetryPolicy,
    VmCrash,
    build_fault_plan,
)
from repro.obs import OBS, MemorySink, attach_sink, detach_sink

from ..conftest import make_short_trace

N_VMS = 8  # palmetto(n_pms=4, vms_per_pm=2)


@pytest.fixture(autouse=True)
def pristine_observer():
    OBS.reset()
    yield
    OBS.reset()


@pytest.fixture(scope="module")
def fault_trace():
    return make_short_trace(n_jobs=30, seed=21)


@pytest.fixture(scope="module")
def fault_history():
    return make_short_trace(
        n_jobs=120, seed=22, arrival_span_s=None, arrival_rate_per_s=0.2
    )


@pytest.fixture(scope="module")
def run(fault_trace, fault_history, fast_corp_config, fitted_predictor):
    """Run one method over the shared workload under an optional plan."""

    def make(name):
        if name == "CORP":
            return CorpScheduler(fast_corp_config, predictor=fitted_predictor)
        if name == "RCCR":
            return RccrScheduler(seed=1)
        if name == "CloudScale":
            return CloudScaleScheduler(seed=1)
        return DraScheduler(seed=1)

    def _run(name, plan=None):
        sim = ClusterSimulator(
            ClusterProfile.palmetto(n_pms=4, vms_per_pm=2),
            make(name),
            SimulationConfig(),
            fault_plan=plan,
        )
        return sim.run(fault_trace, history=fault_history)

    return _run


def comparable(summary):
    """Summary minus the wall-clock field (host-dependent)."""
    return {k: v for k, v in summary.items() if k != "allocation_latency_s"}


CRASH_ALL = FaultPlan(
    events=tuple(VmCrash(slot=4, vm_index=i, downtime_slots=3) for i in range(N_VMS))
)

CHURN = build_fault_plan(seed=13, n_slots=120, intensity=1.0)


class TestEmptyPlanIdentity:
    @pytest.mark.parametrize("method", METHOD_ORDER)
    def test_empty_plan_matches_no_plan(self, run, method):
        """An empty FaultPlan costs nothing and changes nothing."""
        plain = run(method)
        empty = run(method, FaultPlan())
        assert comparable(empty.summary()) == comparable(plain.summary())
        assert empty.resilience is None
        assert "evictions" not in empty.summary()


class TestDeterminism:
    @pytest.mark.parametrize("method", METHOD_ORDER)
    def test_same_seed_same_plan_bit_identical(self, run, method):
        first = run(method, CHURN)
        second = run(method, CHURN)
        assert comparable(first.summary()) == comparable(second.summary())


class TestAccountingInvariants:
    @pytest.mark.parametrize("method", METHOD_ORDER)
    def test_jobs_conserved_under_churn(self, run, method):
        result = run(method, CHURN)
        assert result.all_done, method
        assert (
            result.n_completed + result.n_rejected + result.n_failed
            == result.n_submitted
        )
        assert len(result.jobs) == result.n_submitted
        # Nothing left running or queued: every job either completed,
        # permanently failed, or was rejected (rejected jobs keep their
        # PENDING state but sit in the rejected bucket).
        assert not any(j.state is JobState.RUNNING for j in result.jobs)
        pending = [j for j in result.jobs if j.state is JobState.PENDING]
        assert len(pending) == result.n_rejected

    @pytest.mark.parametrize("method", ("DRA", "CORP"))
    def test_counters_match_per_job_tallies(self, run, method):
        result = run(method, CHURN)
        stats = result.resilience
        assert stats is not None
        assert stats["evictions"] == sum(j.evictions for j in result.jobs)
        assert stats["retries"] == sum(j.retries for j in result.jobs)
        assert stats["gave_up"] == result.n_failed
        assert stats["recovery_latency_slots"] >= 0.0
        assert stats["slo_violations_faulted"] >= stats["gave_up"]

    def test_crash_evicts_and_requeues(self, run):
        """Crashing every VM mid-run evicts in-flight work, which then
        re-places and still finishes (evictions don't burn retries)."""
        result = run("DRA", CRASH_ALL)
        stats = result.resilience
        assert stats["vm_failures"] == float(N_VMS)
        assert stats["evictions"] > 0
        assert result.all_done
        evicted = [j for j in result.jobs if j.evictions > 0]
        assert evicted
        assert all(j.state is JobState.COMPLETED for j in evicted)
        assert stats["retries"] == 0.0  # crash eviction is not a retry


class TestCapacityRevocation:
    def test_capacity_restores_after_revocation(self, fault_trace, fault_history):
        plan = FaultPlan(
            events=tuple(
                CapacityRevocation(
                    slot=3, vm_index=i, fraction=0.5, duration_slots=4
                )
                for i in range(N_VMS)
            )
        )
        sim = ClusterSimulator(
            ClusterProfile.palmetto(n_pms=4, vms_per_pm=2),
            DraScheduler(seed=1),
            SimulationConfig(),
            fault_plan=plan,
        )
        result = sim.run(fault_trace, history=fault_history)
        assert result.all_done
        assert result.resilience["capacity_revocations"] == float(N_VMS)
        for vm in sim.vms:
            assert vm.capacity == vm.base_capacity  # scale back to 1.0


class TestPredictorOutage:
    """Regression: a predictor outage must never crash any scheduler."""

    OUTAGE = FaultPlan(
        events=(
            PredictorOutage(slot=2, duration_slots=6),
            PredictorOutage(slot=20, duration_slots=6),
        )
    )

    @pytest.mark.parametrize("method", METHOD_ORDER)
    def test_outage_never_crashes(self, run, method):
        result = run(method, self.OUTAGE)
        assert result.all_done, method
        assert result.resilience["predictor_outage_slots"] > 0

    def test_degraded_mode_events_enter_and_exit(self, run):
        sink = attach_sink(MemorySink())
        try:
            run("CORP", self.OUTAGE)
        finally:
            detach_sink()
        flags = [e.fields["active"] for e in sink.named("degraded_mode")]
        assert True in flags and False in flags
        outages = [e.fields["active"] for e in sink.named("predictor_outage")]
        assert True in flags and False in outages


class TestRetrySemantics:
    def test_job_failure_retries_with_backoff_events(self, run):
        plan = FaultPlan(
            events=tuple(
                JobFailure(slot=s, vm_index=v)
                for s in (3, 4, 5)
                for v in range(N_VMS)
            ),
            retry=RetryPolicy(max_retries=3, backoff_base_slots=1),
        )
        sink = attach_sink(MemorySink())
        try:
            result = run("RCCR", plan)
        finally:
            detach_sink()
        stats = result.resilience
        assert stats["retries"] > 0
        assert sink.named("job_fail")
        assert sink.named("retry")  # backed-off jobs re-entered the queue
        assert result.all_done

    def test_exhausted_retries_give_up(self, run):
        # Hammer every VM every slot with zero tolerance: the first
        # failure each job takes is terminal.
        plan = FaultPlan(
            events=tuple(
                JobFailure(slot=s, vm_index=v)
                for s in range(40)
                for v in range(N_VMS)
            ),
            retry=RetryPolicy(max_retries=0, give_up_slots=30),
        )
        result = run("DRA", plan)
        assert result.n_failed > 0
        assert result.resilience["gave_up"] == result.n_failed
        assert result.all_done
        failed = [j for j in result.jobs if j.state is JobState.FAILED]
        assert len(failed) == result.n_failed
        assert all(j.completion_slot is None for j in failed)
