"""The global observer: enable/disable, counters, timers, spans."""

import pytest

from repro import obs
from repro.obs import OBS, MemorySink, NullSink, capture_events
from repro.obs.metrics import Counters
from repro.obs.timers import Timers


@pytest.fixture(autouse=True)
def pristine_observer():
    """Every test starts and ends with the observer fully disabled."""
    OBS.reset()
    yield
    OBS.reset()


class TestObserverState:
    def test_disabled_by_default(self):
        assert OBS.enabled is False and OBS.sink is None

    def test_attach_detach_toggles_enabled(self):
        sink = MemorySink()
        obs.attach_sink(sink)
        assert OBS.enabled and OBS.sink is sink
        obs.detach_sink()
        assert not OBS.enabled and OBS.sink is None

    def test_attach_replacing_closes_old_sink(self):
        closed = []

        class Recording(MemorySink):
            def close(self):
                closed.append(True)

        first = Recording()
        obs.attach_sink(first)
        obs.attach_sink(MemorySink())
        assert closed == [True]

    def test_profiling_enables_without_sink(self):
        obs.enable_profiling()
        assert OBS.enabled and OBS.sink is None
        obs.disable_profiling()
        assert not OBS.enabled

    def test_reset_clears_everything(self):
        obs.attach_sink(MemorySink())
        obs.enable_profiling()
        OBS.count("x")
        with OBS.span("s"):
            pass
        OBS.reset()
        assert not OBS.enabled and OBS.sink is None
        assert len(OBS.counters) == 0
        assert OBS.timers.snapshot() == []


class TestEmitCountSpan:
    def test_emit_goes_to_sink(self):
        sink = obs.attach_sink(MemorySink())
        OBS.emit("slot", slot=1, utilization=0.4)
        assert sink.named("slot")[0].fields == {"slot": 1, "utilization": 0.4}

    def test_emit_without_sink_is_noop(self):
        OBS.emit("slot", slot=1)  # no sink, no error

    def test_count_and_gauge_only_when_enabled(self):
        OBS.count("c")
        OBS.gauge("g", 2.0)
        assert OBS.counters.get("c") == 0.0
        obs.enable_profiling()
        OBS.count("c", 3)
        OBS.gauge("g", 2.0)
        assert OBS.counters.get("c") == 3.0
        assert OBS.counters.get_gauge("g") == 2.0

    def test_span_records_only_when_enabled(self):
        with OBS.span("stage"):
            pass
        assert OBS.timers.total("stage") == 0.0
        obs.enable_profiling()
        with OBS.span("stage"):
            pass
        stats = OBS.timers.snapshot()
        assert stats[0].name == "stage" and stats[0].count == 1

    def test_span_records_on_exception(self):
        obs.enable_profiling()
        with pytest.raises(RuntimeError):
            with OBS.span("boom"):
                raise RuntimeError
        assert OBS.timers.snapshot()[0].count == 1


class TestCaptureEvents:
    def test_detaches_on_exit(self):
        with capture_events(MemorySink()) as sink:
            OBS.emit("a")
            assert OBS.sink is sink
        assert OBS.sink is None and not OBS.enabled
        assert len(sink.events) == 1

    def test_detaches_on_error(self):
        with pytest.raises(ValueError):
            with capture_events(MemorySink()):
                raise ValueError
        assert OBS.sink is None

    def test_replacement_mid_block_still_released(self):
        replacement = NullSink()
        with capture_events(MemorySink()):
            obs.attach_sink(replacement)
        assert OBS.sink is replacement  # ours released, theirs kept
        obs.detach_sink()

    def test_path_string_builds_jsonl_sink(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with capture_events(str(path)):
            OBS.emit("hello", n=1)
        records = list(obs.read_jsonl(str(path)))
        assert records == [{"event": "hello", "n": 1}]


class TestCounters:
    def test_inc_get_snapshot(self):
        c = Counters()
        c.inc("a")
        c.inc("a", 2.5)
        c.set_gauge("g", 7.0)
        assert c.get("a") == 3.5
        snap = c.snapshot()
        assert snap["a"] == 3.5 and snap["gauge:g"] == 7.0

    def test_reset(self):
        c = Counters()
        c.inc("a")
        c.reset()
        assert len(c) == 0 and c.get("a") == 0.0


class TestTimers:
    def test_record_and_snapshot_order(self):
        t = Timers()
        t.record("small", 0.1)
        t.record("big", 1.0)
        t.record("big", 1.0)
        stats = t.snapshot()
        assert [s.name for s in stats] == ["big", "small"]
        big = stats[0]
        assert big.count == 2 and big.total_s == pytest.approx(2.0)
        assert big.mean_s == pytest.approx(1.0)
        assert t.total("small") == pytest.approx(0.1)
