"""Events, sinks and the JSONL round trip."""

import json
import math

import numpy as np
import pytest

from repro.obs import (
    Event,
    JsonlSink,
    MemorySink,
    NullSink,
    events_by_name,
    read_jsonl,
)
from repro.obs.events import _sanitize


class TestEvent:
    def test_to_dict_puts_name_first(self):
        ev = Event(name="slot", fields={"slot": 3, "utilization": 0.5})
        d = ev.to_dict()
        assert d["event"] == "slot"
        assert d["slot"] == 3 and d["utilization"] == 0.5

    def test_frozen(self):
        ev = Event(name="x", fields={})
        with pytest.raises(AttributeError):
            ev.name = "y"


class TestSanitize:
    def test_nan_becomes_none(self):
        assert _sanitize(float("nan")) is None
        assert _sanitize([1.0, float("nan")]) == [1.0, None]
        assert _sanitize({"a": float("nan")}) == {"a": None}

    def test_numpy_scalars_and_arrays(self):
        assert _sanitize(np.float64(0.25)) == 0.25
        assert _sanitize(np.int64(4)) == 4
        assert _sanitize(np.array([1.0, 2.0])) == [1.0, 2.0]
        assert _sanitize(np.float64("nan")) is None

    def test_nested_structures(self):
        payload = {"probs": (np.float64(0.1), float("nan")), "k": [{"v": np.int32(2)}]}
        out = _sanitize(payload)
        assert out == {"probs": [0.1, None], "k": [{"v": 2}]}
        json.dumps(out)  # must be serializable


class TestSinks:
    def test_null_sink_discards(self):
        sink = NullSink()
        sink.emit(Event(name="a", fields={}))
        sink.close()  # no-op, no error

    def test_memory_sink_collects_and_filters(self):
        sink = MemorySink()
        sink.emit(Event(name="a", fields={"i": 1}))
        sink.emit(Event(name="b", fields={"i": 2}))
        sink.emit(Event(name="a", fields={"i": 3}))
        assert len(sink.events) == 3
        assert [e.fields["i"] for e in sink.named("a")] == [1, 3]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit(Event(name="slot", fields={"slot": 0, "u": 0.5}))
            sink.emit(Event(name="placement", fields={"job": "j1", "vm": 2}))
        records = list(read_jsonl(str(path)))
        assert [r["event"] for r in records] == ["slot", "placement"]
        assert records[0]["u"] == 0.5 and records[1]["vm"] == 2

    def test_jsonl_sanitizes_nan_and_numpy(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit(Event(
                name="preemption",
                fields={"probabilities": [np.float64(0.9), float("nan")]},
            ))
        # Every line must be strict JSON (no bare NaN tokens).
        for line in path.read_text().splitlines():
            rec = json.loads(line)
        assert rec["probabilities"] == [0.9, None]

    def test_jsonl_into_existing_stream(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with open(path, "w") as fh:
            sink = JsonlSink(fh)
            sink.emit(Event(name="x", fields={"v": math.pi}))
            sink.close()  # must NOT close a caller-owned stream
            assert not fh.closed
        assert list(read_jsonl(str(path)))[0]["event"] == "x"

    def test_events_by_name_groups(self):
        records = [{"event": "a", "i": 1}, {"event": "b"}, {"event": "a", "i": 2}]
        grouped = events_by_name(records)
        assert [r["i"] for r in grouped["a"]] == [1, 2]
        assert len(grouped["b"]) == 1
