"""Viterbi decoding vs brute-force best path; Eq. 16 MAP decoding."""

import itertools

import numpy as np
import pytest

from repro.hmm.model import HiddenMarkovModel, default_fluctuation_model
from repro.hmm.viterbi import map_states, viterbi


def brute_force_best_path(model, obs):
    best, best_p = None, -1.0
    for path in itertools.product(range(model.n_states), repeat=len(obs)):
        p = model.initial[path[0]] * model.emission[path[0], obs[0]]
        for t in range(1, len(obs)):
            p *= model.transition[path[t - 1], path[t]]
            p *= model.emission[path[t], obs[t]]
        if p > best_p:
            best, best_p = path, p
    return np.array(best), best_p


@pytest.fixture()
def model():
    return default_fluctuation_model()


class TestViterbi:
    @pytest.mark.parametrize(
        "obs", [[0], [2, 0], [0, 1, 2, 1], [1, 1, 1, 0, 2], [2, 0, 2, 0, 2, 0]]
    )
    def test_matches_brute_force(self, model, obs):
        result = viterbi(model, np.array(obs))
        expected_path, expected_p = brute_force_best_path(model, obs)
        assert result.log_probability == pytest.approx(np.log(expected_p))
        # Ties are possible; the returned path must attain the optimum.
        p = model.initial[result.states[0]] * model.emission[result.states[0], obs[0]]
        for t in range(1, len(obs)):
            p *= model.transition[result.states[t - 1], result.states[t]]
            p *= model.emission[result.states[t], obs[t]]
        assert p == pytest.approx(expected_p)

    def test_long_sequence_finite(self, model):
        rng = np.random.default_rng(2)
        obs = rng.integers(0, 3, size=3000)
        result = viterbi(model, obs)
        assert np.isfinite(result.log_probability)
        assert result.states.shape == (3000,)

    def test_states_in_range(self, model):
        rng = np.random.default_rng(3)
        obs = rng.integers(0, 3, size=50)
        states = viterbi(model, obs).states
        assert states.min() >= 0 and states.max() < model.n_states

    def test_deterministic_emissions_recover_states(self):
        # With identity emissions, the best path must read off the symbols.
        eye = np.eye(3)
        model = HiddenMarkovModel(np.full((3, 3), 1 / 3), eye, np.full(3, 1 / 3))
        obs = np.array([2, 0, 1, 1, 2])
        np.testing.assert_array_equal(viterbi(model, obs).states, obs)

    def test_zero_probability_transitions_avoided(self):
        # State 0 can never follow state 1; Viterbi must respect that.
        A = np.array([[0.5, 0.5], [0.0, 1.0]])
        B = np.array([[0.9, 0.1], [0.1, 0.9]])
        model = HiddenMarkovModel(A, B, np.array([1.0, 0.0]))
        states = viterbi(model, np.array([0, 1, 0])).states
        for a, b in zip(states[:-1], states[1:]):
            assert A[a, b] > 0


class TestMapStates:
    def test_shape_and_range(self, model):
        obs = np.array([0, 1, 2, 1])
        states = map_states(model, obs)
        assert states.shape == (4,)
        assert states.min() >= 0 and states.max() < 3

    def test_matches_gamma_argmax(self, model):
        from repro.hmm.forward_backward import forward_backward

        obs = np.array([0, 2, 1, 1, 0, 2])
        states = map_states(model, obs)
        gamma = forward_backward(model, obs).gamma
        np.testing.assert_array_equal(states, gamma.argmax(axis=1))

    def test_map_and_viterbi_agree_on_easy_input(self, model):
        # Strongly informative observations: both decoders should agree.
        obs = np.array([0, 0, 0, 0])
        np.testing.assert_array_equal(
            map_states(model, obs), viterbi(model, obs).states
        )
