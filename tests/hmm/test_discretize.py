"""Peak/center/valley symbolization (Section III-A.1b's intervals)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hmm.discretize import (
    CENTER,
    PEAK,
    VALLEY,
    ThresholdBands,
    windowed_observations,
)


class TestBands:
    def test_from_history(self):
        bands = ThresholdBands.from_history(np.array([0.0, 4.0, 8.0]))
        assert bands.minimum == 0.0
        assert bands.mean == 4.0
        assert bands.maximum == 8.0

    def test_thresholds_match_paper_formulas(self):
        bands = ThresholdBands(minimum=2.0, mean=6.0, maximum=14.0)
        # t1 = min + (m - min)/2; t2 = m + (max - m)/2
        assert bands.lower_threshold == pytest.approx(4.0)
        assert bands.upper_threshold == pytest.approx(10.0)

    def test_correction_magnitude_is_min(self):
        bands = ThresholdBands(minimum=2.0, mean=6.0, maximum=14.0)
        # min(max - m, m - min) = min(8, 4) = 4
        assert bands.correction_magnitude() == pytest.approx(4.0)

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            ThresholdBands(minimum=5.0, mean=4.0, maximum=6.0)

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            ThresholdBands.from_history(np.array([]))

    def test_nonfinite_history_rejected(self):
        with pytest.raises(ValueError):
            ThresholdBands.from_history(np.array([1.0, np.nan]))

    def test_constant_history(self):
        bands = ThresholdBands.from_history(np.full(5, 3.0))
        assert bands.correction_magnitude() == 0.0
        assert bands.symbolize(3.0) == VALLEY  # <= lower threshold


class TestSymbolize:
    @pytest.fixture()
    def bands(self):
        return ThresholdBands(minimum=0.0, mean=4.0, maximum=12.0)
        # t1 = 2, t2 = 8

    def test_valley(self, bands):
        assert bands.symbolize(1.0) == VALLEY
        assert bands.symbolize(2.0) == VALLEY  # inclusive

    def test_center(self, bands):
        assert bands.symbolize(5.0) == CENTER

    def test_peak(self, bands):
        assert bands.symbolize(8.0) == PEAK  # inclusive upper
        assert bands.symbolize(11.0) == PEAK

    def test_vectorized_matches_scalar(self, bands):
        values = np.array([1.0, 2.0, 5.0, 8.0, 11.0])
        expected = [bands.symbolize(v) for v in values]
        np.testing.assert_array_equal(bands.symbolize_many(values), expected)

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_symbol_always_valid(self, value):
        bands = ThresholdBands(minimum=0.0, mean=4.0, maximum=12.0)
        assert bands.symbolize(value) in (PEAK, CENTER, VALLEY)

    def test_symbol_constants_match_paper_indexing(self):
        # "1, 2, 3 represent 'peak', 'center' and 'valley'" → 0-based.
        assert PEAK == 0 and CENTER == 1 and VALLEY == 2


class TestWindowedObservations:
    def test_window_delta_rule(self):
        bands = ThresholdBands(minimum=0.0, mean=4.0, maximum=12.0)
        # window ranges: [0..1] delta 1 -> valley; [0..5] delta 5 -> center;
        # [0..9] delta 9 -> peak.
        series = np.array([0, 1, 0, 5, 0, 9])
        obs = windowed_observations(series, window=2, bands=bands)
        np.testing.assert_array_equal(obs, [VALLEY, CENTER, PEAK])

    def test_trailing_partial_window_dropped(self):
        bands = ThresholdBands(minimum=0.0, mean=4.0, maximum=12.0)
        obs = windowed_observations(np.zeros(7), window=3, bands=bands)
        assert obs.shape == (2,)

    def test_too_short_series(self):
        bands = ThresholdBands(minimum=0.0, mean=4.0, maximum=12.0)
        assert windowed_observations(np.zeros(1), window=3, bands=bands).size == 0

    def test_bad_window(self):
        bands = ThresholdBands(minimum=0.0, mean=4.0, maximum=12.0)
        with pytest.raises(ValueError):
            windowed_observations(np.zeros(5), window=0, bands=bands)

    def test_constant_series_all_valley(self):
        bands = ThresholdBands(minimum=0.0, mean=4.0, maximum=12.0)
        obs = windowed_observations(np.full(9, 5.0), window=3, bands=bands)
        assert np.all(obs == VALLEY)  # zero fluctuation range
