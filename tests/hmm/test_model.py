"""HMM container validation and the default fluctuation model."""

import numpy as np
import pytest

from repro.hmm.model import (
    STATE_NAMES,
    SYMBOL_NAMES,
    HiddenMarkovModel,
    default_fluctuation_model,
)


def valid_model():
    return default_fluctuation_model()


class TestValidation:
    def test_default_is_valid(self):
        m = valid_model()
        assert m.n_states == 3
        assert m.n_symbols == 3

    def test_paper_dimensions(self):
        # Section III-A.1b: H = 3 hidden states, M = 3 symbols.
        assert len(STATE_NAMES) == 3
        assert len(SYMBOL_NAMES) == 3
        assert SYMBOL_NAMES == ("peak", "center", "valley")
        assert STATE_NAMES == ("OP", "NP", "UP")

    def test_non_square_transition(self):
        with pytest.raises(ValueError):
            HiddenMarkovModel(np.ones((2, 3)) / 3, np.ones((2, 3)) / 3,
                              np.array([0.5, 0.5]))

    def test_rows_must_sum_to_one(self):
        bad = np.array([[0.5, 0.1], [0.5, 0.5]])
        with pytest.raises(ValueError):
            HiddenMarkovModel(bad, np.ones((2, 2)) / 2, np.array([0.5, 0.5]))

    def test_negative_entries(self):
        a = np.array([[1.5, -0.5], [0.5, 0.5]])
        with pytest.raises(ValueError):
            HiddenMarkovModel(a, np.ones((2, 2)) / 2, np.array([0.5, 0.5]))

    def test_initial_shape(self):
        with pytest.raises(ValueError):
            HiddenMarkovModel(np.ones((2, 2)) / 2, np.ones((2, 2)) / 2,
                              np.array([1.0]))

    def test_emission_state_mismatch(self):
        with pytest.raises(ValueError):
            HiddenMarkovModel(np.ones((2, 2)) / 2, np.ones((3, 2)) / 2,
                              np.array([0.5, 0.5]))


class TestObservations:
    def test_valid_sequence(self):
        obs = valid_model().validate_observations([0, 1, 2, 1])
        assert obs.dtype == np.int64

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            valid_model().validate_observations([])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            valid_model().validate_observations([0, 3])
        with pytest.raises(ValueError):
            valid_model().validate_observations([-1])


class TestHelpers:
    def test_copy_is_deep(self):
        m = valid_model()
        c = m.copy()
        c.transition[0, 0] = 0.99
        assert m.transition[0, 0] != 0.99

    def test_seeded_perturbation_still_stochastic(self):
        m = default_fluctuation_model(seed=42)
        np.testing.assert_allclose(m.transition.sum(axis=1), 1.0)
        np.testing.assert_allclose(m.emission.sum(axis=1), 1.0)

    def test_seeds_differ(self):
        a = default_fluctuation_model(seed=1)
        b = default_fluctuation_model(seed=2)
        assert not np.allclose(a.transition, b.transition)

    def test_states_prefer_their_symbols(self):
        # OP -> peak, NP -> center, UP -> valley (Fig. 3's structure).
        m = valid_model()
        assert np.argmax(m.emission[0]) == 0
        assert np.argmax(m.emission[1]) == 1
        assert np.argmax(m.emission[2]) == 2
