"""Scaled forward-backward vs brute-force enumeration."""

import itertools

import numpy as np
import pytest

from repro.hmm.forward_backward import forward_backward, sequence_log_likelihood
from repro.hmm.model import HiddenMarkovModel, default_fluctuation_model


def brute_force_likelihood(model, obs):
    """Sum P(Q, O) over every state path (exponential; tiny inputs only)."""
    total = 0.0
    H = model.n_states
    for path in itertools.product(range(H), repeat=len(obs)):
        p = model.initial[path[0]] * model.emission[path[0], obs[0]]
        for t in range(1, len(obs)):
            p *= model.transition[path[t - 1], path[t]]
            p *= model.emission[path[t], obs[t]]
        total += p
    return total


def brute_force_gamma(model, obs):
    """Posterior P(q_t = i | O) via path enumeration."""
    H, T = model.n_states, len(obs)
    joint = np.zeros((T, H))
    for path in itertools.product(range(H), repeat=T):
        p = model.initial[path[0]] * model.emission[path[0], obs[0]]
        for t in range(1, T):
            p *= model.transition[path[t - 1], path[t]]
            p *= model.emission[path[t], obs[t]]
        for t, s in enumerate(path):
            joint[t, s] += p
    return joint / joint.sum(axis=1, keepdims=True)


@pytest.fixture()
def model():
    return default_fluctuation_model()


class TestAgainstBruteForce:
    @pytest.mark.parametrize("obs", [[0], [1, 2], [0, 1, 2, 1], [2, 2, 0, 1, 0]])
    def test_likelihood_matches(self, model, obs):
        result = forward_backward(model, np.array(obs))
        expected = brute_force_likelihood(model, obs)
        assert result.log_likelihood == pytest.approx(np.log(expected), abs=1e-9)

    @pytest.mark.parametrize("obs", [[0, 1, 2], [1, 1, 0, 2]])
    def test_gamma_matches(self, model, obs):
        result = forward_backward(model, np.array(obs))
        np.testing.assert_allclose(
            result.gamma, brute_force_gamma(model, obs), atol=1e-10
        )

    def test_forward_only_likelihood_matches(self, model):
        obs = np.array([0, 2, 1, 1, 0])
        ll = sequence_log_likelihood(model, obs)
        assert ll == pytest.approx(np.log(brute_force_likelihood(model, list(obs))))


class TestNumericalProperties:
    def test_gamma_rows_normalized(self, model):
        rng = np.random.default_rng(0)
        obs = rng.integers(0, 3, size=100)
        result = forward_backward(model, obs)
        np.testing.assert_allclose(result.gamma.sum(axis=1), 1.0)

    def test_long_sequence_no_underflow(self, model):
        rng = np.random.default_rng(1)
        obs = rng.integers(0, 3, size=5000)
        result = forward_backward(model, obs)
        assert np.isfinite(result.log_likelihood)
        assert np.all(np.isfinite(result.gamma))

    def test_scales_positive(self, model):
        obs = np.array([0, 1, 2, 1, 0])
        result = forward_backward(model, obs)
        assert np.all(result.scales > 0)

    def test_alpha_rows_sum_to_one(self, model):
        obs = np.array([0, 1, 2])
        result = forward_backward(model, obs)
        np.testing.assert_allclose(result.alpha.sum(axis=1), 1.0)

    def test_impossible_observation(self):
        # A model whose states can never emit symbol 2.
        emission = np.array([[0.5, 0.5, 0.0], [0.5, 0.5, 0.0]])
        model = HiddenMarkovModel(
            np.array([[0.5, 0.5], [0.5, 0.5]]), emission, np.array([0.5, 0.5])
        )
        with pytest.raises(ValueError, match="impossible"):
            forward_backward(model, np.array([0, 2]))
        assert sequence_log_likelihood(model, np.array([0, 2])) == -np.inf

    def test_single_observation(self, model):
        result = forward_backward(model, np.array([1]))
        assert result.gamma.shape == (1, 3)
