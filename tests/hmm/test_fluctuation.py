"""Fluctuation predictor: fit, next-symbol prediction (Eq. 17), corrections."""

import numpy as np
import pytest

from repro.hmm.discretize import CENTER, PEAK, VALLEY
from repro.hmm.fluctuation import FluctuationPredictor


def regime_series(rng, n=240, low=0.2, high=0.8, dwell=12):
    """Alternating low/high regimes with small noise."""
    out = np.empty(n)
    level = low
    for start in range(0, n, dwell):
        out[start : start + dwell] = level + rng.normal(0, 0.01, size=min(dwell, n - start))
        level = high if level == low else low
    return np.clip(out, 0, 1)


@pytest.fixture()
def fitted():
    rng = np.random.default_rng(0)
    histories = [regime_series(rng) for _ in range(6)]
    return FluctuationPredictor(window=6, seed=1).fit(histories)


class TestConstruction:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            FluctuationPredictor(window=0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            FluctuationPredictor(mode="weird")

    def test_unfitted_raises(self):
        fp = FluctuationPredictor()
        with pytest.raises(RuntimeError):
            fp.predict_next_symbol(np.zeros(12))
        with pytest.raises(RuntimeError):
            fp.correction(PEAK)
        with pytest.raises(RuntimeError):
            fp.next_symbol_distribution(0)


class TestFit:
    def test_fit_returns_self(self):
        rng = np.random.default_rng(1)
        fp = FluctuationPredictor(window=6)
        assert fp.fit([regime_series(rng)]) is fp
        assert fp.fitted

    def test_empty_histories_rejected(self):
        with pytest.raises(ValueError):
            FluctuationPredictor().fit([])
        with pytest.raises(ValueError):
            FluctuationPredictor().fit([np.array([])])

    def test_correction_scale_from_window_amplitudes(self, fitted):
        # Within-regime windows move by ~0.0x; regime-boundary windows by
        # ~0.6 — the median amplitude must be modest, not the global range.
        assert 0.0 <= fitted.correction_scale < 0.4

    def test_fit_on_short_series_is_graceful(self):
        fp = FluctuationPredictor(window=6)
        fp.fit([np.full(4, 0.5)])  # shorter than one window
        assert fp.bands is not None


class TestPrediction:
    def test_symbol_in_range(self, fitted):
        rng = np.random.default_rng(2)
        symbol = fitted.predict_next_symbol(regime_series(rng)[-36:])
        assert symbol in (PEAK, CENTER, VALLEY)

    def test_empty_recent_returns_center(self, fitted):
        assert fitted.predict_next_symbol(np.zeros(2)) == CENTER

    def test_distribution_normalized(self, fitted):
        for state in range(3):
            dist = fitted.next_symbol_distribution(state)
            assert dist.shape == (3,)
            assert dist.sum() == pytest.approx(1.0)

    def test_distribution_state_out_of_range(self, fitted):
        with pytest.raises(ValueError):
            fitted.next_symbol_distribution(7)

    def test_equation_17_by_hand(self, fitted):
        # E_{P_{T+1}}(k) = Σ_j A[q, j] B[j, k]
        model = fitted.model
        for state in range(3):
            expected = model.transition[state] @ model.emission
            np.testing.assert_allclose(
                fitted.next_symbol_distribution(state), expected
            )


class TestCorrection:
    def test_signs(self, fitted):
        assert fitted.correction(PEAK) >= 0.0
        assert fitted.correction(VALLEY) <= 0.0
        assert fitted.correction(CENTER) == 0.0

    def test_symmetric_magnitude(self, fitted):
        assert fitted.correction(PEAK) == pytest.approx(-fitted.correction(VALLEY))

    def test_unknown_symbol(self, fitted):
        with pytest.raises(ValueError):
            fitted.correction(9)


class TestModes:
    def test_range_mode_fits(self):
        rng = np.random.default_rng(3)
        fp = FluctuationPredictor(window=6, mode="range").fit(
            [regime_series(rng) for _ in range(3)]
        )
        assert fp.fitted
        symbol = fp.predict_next_symbol(regime_series(rng)[-24:])
        assert symbol in (PEAK, CENTER, VALLEY)

    def test_level_mode_tracks_level(self):
        # Long regime dwells (6 windows) make persistence the dominant
        # learned dynamic, so a run of high levels predicts non-valley.
        rng = np.random.default_rng(4)
        histories = [regime_series(rng, dwell=36) for _ in range(6)]
        fp = FluctuationPredictor(window=6, mode="level").fit(histories)
        high = np.full(24, 0.8)
        assert fp.predict_next_symbol(high) != VALLEY
