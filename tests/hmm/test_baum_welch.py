"""Baum-Welch re-estimation: likelihood ascent and parameter recovery."""

import numpy as np
import pytest

from repro.hmm.baum_welch import BaumWelchConfig, baum_welch
from repro.hmm.forward_backward import sequence_log_likelihood
from repro.hmm.model import HiddenMarkovModel, default_fluctuation_model


def sample_sequence(model, length, rng):
    state = rng.choice(model.n_states, p=model.initial)
    obs = np.empty(length, dtype=np.int64)
    for t in range(length):
        obs[t] = rng.choice(model.n_symbols, p=model.emission[state])
        state = rng.choice(model.n_states, p=model.transition[state])
    return obs


@pytest.fixture()
def sequences():
    rng = np.random.default_rng(0)
    truth = default_fluctuation_model()
    return [sample_sequence(truth, 120, rng) for _ in range(6)]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BaumWelchConfig(max_iterations=0)
        with pytest.raises(ValueError):
            BaumWelchConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            BaumWelchConfig(smoothing=-1.0)


class TestEm:
    def test_log_likelihood_non_decreasing(self, sequences):
        start = default_fluctuation_model(seed=9)
        result = baum_welch(start, sequences, BaumWelchConfig(max_iterations=15))
        lls = result.log_likelihoods
        assert all(b >= a - 1e-6 for a, b in zip(lls, lls[1:]))

    def test_improves_over_start(self, sequences):
        start = default_fluctuation_model(seed=9)
        before = sum(sequence_log_likelihood(start, s) for s in sequences)
        result = baum_welch(start, sequences, BaumWelchConfig(max_iterations=20))
        after = sum(sequence_log_likelihood(result.model, s) for s in sequences)
        assert after > before

    def test_result_is_valid_model(self, sequences):
        result = baum_welch(default_fluctuation_model(seed=1), sequences)
        m = result.model
        np.testing.assert_allclose(m.transition.sum(axis=1), 1.0, atol=1e-9)
        np.testing.assert_allclose(m.emission.sum(axis=1), 1.0, atol=1e-9)
        np.testing.assert_allclose(m.initial.sum(), 1.0, atol=1e-9)

    def test_converged_flag(self, sequences):
        result = baum_welch(
            default_fluctuation_model(seed=2),
            sequences,
            BaumWelchConfig(max_iterations=200, tolerance=1e-2),
        )
        assert result.converged
        assert result.n_iterations < 200

    def test_input_model_not_mutated(self, sequences):
        start = default_fluctuation_model(seed=3)
        snapshot = start.transition.copy()
        baum_welch(start, sequences, BaumWelchConfig(max_iterations=3))
        np.testing.assert_array_equal(start.transition, snapshot)

    def test_single_array_input_accepted(self):
        rng = np.random.default_rng(4)
        seq = sample_sequence(default_fluctuation_model(), 80, rng)
        result = baum_welch(default_fluctuation_model(seed=5), seq,
                            BaumWelchConfig(max_iterations=5))
        assert result.n_iterations >= 1

    def test_empty_sequences_rejected(self):
        with pytest.raises(ValueError):
            baum_welch(default_fluctuation_model(), [])

    def test_smoothing_keeps_probabilities_positive(self):
        # Fitting on a sequence that never shows symbol 2 must not zero
        # its probability out (Viterbi on unseen symbols stays defined).
        obs = np.zeros(60, dtype=np.int64)
        result = baum_welch(
            default_fluctuation_model(seed=6), [obs],
            BaumWelchConfig(max_iterations=10, smoothing=1e-6),
        )
        assert np.all(result.model.emission > 0)

    def test_recovers_biased_emissions(self):
        # Ground truth with near-deterministic emissions: EM should move
        # the emission matrix strongly toward diagonal dominance.
        truth = HiddenMarkovModel(
            np.array([[0.9, 0.05, 0.05], [0.05, 0.9, 0.05], [0.05, 0.05, 0.9]]),
            np.array([[0.95, 0.025, 0.025], [0.025, 0.95, 0.025], [0.025, 0.025, 0.95]]),
            np.full(3, 1 / 3),
        )
        rng = np.random.default_rng(7)
        seqs = [sample_sequence(truth, 200, rng) for _ in range(5)]
        result = baum_welch(default_fluctuation_model(seed=8), seqs,
                            BaumWelchConfig(max_iterations=40))
        diag = np.diag(result.model.emission)
        assert np.all(diag > 0.6)
