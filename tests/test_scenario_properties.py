"""Property tests for the v1.8 scenario zoo.

Three invariants that must hold for *every* parameterisation, not just
the golden one:

* **pipeline** — the DAG edge: no phase-``p`` job is ever submitted
  before every phase-``p-1`` job has completed (re-derived from the
  per-job slots of a finished run, independently of the checker);
* **diurnal** — the time warp is a pure, seeded function: deterministic
  across applications, conserves the job multiset, preserves arrival
  order and stays inside the original span;
* **storm** — revocation waves never lose a job: every submitted job is
  completed, retried or explicitly given up, enforced by the ``jobs``
  conservation rule of :mod:`repro.check`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.experiments.scenarios import (
    pipeline_scenario,
    storm_scenario,
)
from repro.experiments.workloads.diurnal import DiurnalPattern, apply_diurnal
from repro.experiments.workloads.pipeline import partition_phases

# ----------------------------------------------------------------------
# pipeline: phase ordering
# ----------------------------------------------------------------------


@settings(max_examples=6, deadline=None)
@given(
    n_jobs=st.integers(min_value=10, max_value=28),
    n_phases=st.integers(min_value=1, max_value=4),
    window=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=50),
)
def test_pipeline_phase_ordering_never_violated(n_jobs, n_phases, window, seed):
    scenario = pipeline_scenario(
        n_jobs, seed=seed, n_phases=n_phases, conflict_window_slots=window
    )
    result = api.run_one(scenario=scenario, method="DRA")
    phases = partition_phases(list(scenario.evaluation_trace()), n_phases)
    phase_of = {r.task_id: p for p, phase in enumerate(phases) for r in phase}
    by_phase: dict[int, list] = {}
    for job in result.jobs:
        by_phase.setdefault(phase_of[job.job_id], []).append(job)
    assert sum(len(v) for v in by_phase.values()) == len(result.jobs)
    for p in range(1, n_phases):
        prev = by_phase.get(p - 1, [])
        cur = by_phase.get(p, [])
        if not prev or not cur:
            continue
        # Fault-free run: every earlier-phase job must have finished...
        assert all(j.completion_slot is not None for j in prev)
        # ...strictly before any later-phase job was even submitted.
        max_done = max(j.completion_slot for j in prev)
        min_submit = min(j.submit_slot for j in cur)
        assert min_submit > max_done, (
            f"phase {p} submitted at slot {min_submit} while phase {p - 1} "
            f"still ran through slot {max_done}"
        )


@settings(max_examples=10, deadline=None)
@given(
    n_records=st.integers(min_value=1, max_value=40),
    n_phases=st.integers(min_value=1, max_value=6),
)
def test_partition_phases_is_an_ordered_partition(n_records, n_phases):
    records = list(range(n_records))  # partitioning is type-agnostic
    phases = partition_phases(records, n_phases)
    assert len(phases) == n_phases
    assert [r for phase in phases for r in phase] == records
    sizes = [len(phase) for phase in phases]
    assert max(sizes) - min(sizes) <= 1  # near-even split


# ----------------------------------------------------------------------
# diurnal: determinism and conservation
# ----------------------------------------------------------------------

patterns = st.builds(
    DiurnalPattern,
    period_s=st.floats(min_value=5.0, max_value=200.0),
    day_night_ratio=st.floats(min_value=1.01, max_value=8.0),
    n_spikes=st.integers(min_value=0, max_value=4),
    spike_width_s=st.floats(min_value=0.5, max_value=10.0),
    spike_boost=st.floats(min_value=0.0, max_value=10.0),
    seed=st.integers(min_value=0, max_value=1000),
)


@pytest.fixture(scope="module")
def base_records():
    return list(api.build_scenario(jobs=24).evaluation_trace())


@settings(max_examples=25, deadline=None)
@given(pattern=patterns)
def test_diurnal_warp_is_deterministic(base_records, pattern):
    once = apply_diurnal(base_records, pattern)
    twice = apply_diurnal(base_records, pattern)
    rebuilt = apply_diurnal(
        base_records, DiurnalPattern(**pattern.__dict__)
    )
    assert [r.submit_time_s for r in once] == [r.submit_time_s for r in twice]
    assert [r.submit_time_s for r in once] == [r.submit_time_s for r in rebuilt]


@settings(max_examples=25, deadline=None)
@given(pattern=patterns)
def test_diurnal_warp_conserves_jobs_and_order(base_records, pattern):
    warped = apply_diurnal(base_records, pattern)
    # Conservation: same jobs, nothing dropped or invented.
    assert len(warped) == len(base_records)
    assert [r.task_id for r in warped] == [r.task_id for r in base_records]
    span = max(r.submit_time_s for r in base_records)
    by_original = sorted(
        zip(base_records, warped), key=lambda pair: pair[0].submit_time_s
    )
    previous = 0.0
    for original, new in by_original:
        # Only the arrival time moves, and only within the span.
        assert new.duration_s == original.duration_s
        assert 0.0 <= new.submit_time_s <= span + 1e-9
        # Monotone warp: arrival order is preserved.
        assert new.submit_time_s >= previous - 1e-9
        previous = new.submit_time_s


# ----------------------------------------------------------------------
# storm: job conservation under revocation waves
# ----------------------------------------------------------------------


@settings(max_examples=4, deadline=None)
@given(
    intensity=st.sampled_from((0.25, 0.5, 1.0)),
    storm_seed=st.integers(min_value=0, max_value=20),
)
def test_storm_conserves_jobs(intensity, storm_seed):
    scenario = storm_scenario(
        20, seed=7, intensity=intensity, storm_seed=storm_seed
    )
    report = api.check_run(
        scenario=scenario, methods=("DRA",), rules=("jobs",)
    )
    assert report.checks.get("jobs", 0) > 0
    assert report.ok, [v.detail for v in report.violations]
