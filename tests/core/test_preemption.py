"""Eq. 21 preemption gate."""

import numpy as np
import pytest

from repro.cluster.resources import ResourceKind
from repro.core.preemption import PreemptionGate


def make_gate(eps=0.5, p_th=0.95):
    return PreemptionGate(error_tolerance=eps, probability_threshold=p_th)


class TestValidation:
    def test_bad_tolerance(self):
        with pytest.raises(ValueError):
            PreemptionGate(0.0, 0.95)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            PreemptionGate(0.5, 0.0)
        with pytest.raises(ValueError):
            PreemptionGate(0.5, 1.5)


class TestRecording:
    def test_record_shape_checked(self):
        gate = make_gate()
        with pytest.raises(ValueError):
            gate.record(np.zeros(2), np.zeros(3))

    def test_record_fills_all_trackers(self):
        gate = make_gate()
        gate.record(np.zeros(3), np.ones(3))
        for kind in ResourceKind:
            assert gate.tracker(kind).n_samples == 1

    def test_sigmas_vector(self):
        gate = make_gate()
        for v in (0.0, 1.0):
            gate.record(np.zeros(3), np.full(3, v))
        sig = gate.sigmas()
        assert sig.shape == (3,)
        assert np.all(sig > 0)


class TestUnlocking:
    def test_empty_gate_locked(self):
        gate = make_gate()
        assert not gate.unlocked(ResourceKind.CPU)
        assert not gate.all_unlocked()

    def test_unlocks_on_good_samples(self):
        gate = make_gate(eps=0.5, p_th=0.9)
        for _ in range(100):
            gate.record(np.zeros(3), np.full(3, 0.1))  # δ=0.1 in band
        assert gate.all_unlocked()

    def test_stays_locked_on_overpredictions(self):
        gate = make_gate(eps=0.5, p_th=0.9)
        for _ in range(100):
            gate.record(np.zeros(3), np.full(3, -0.2))  # δ<0
        assert not gate.all_unlocked()

    def test_stays_locked_on_excessive_conservatism(self):
        gate = make_gate(eps=0.5, p_th=0.9)
        for _ in range(100):
            gate.record(np.zeros(3), np.full(3, 0.9))  # δ >= ε
        assert not gate.all_unlocked()

    def test_one_bad_resource_locks_all(self):
        gate = make_gate(eps=0.5, p_th=0.9)
        for _ in range(100):
            gate.record(np.zeros(3), np.array([0.1, 0.1, -0.3]))
        assert gate.unlocked(ResourceKind.CPU)
        assert not gate.unlocked(ResourceKind.STORAGE)
        assert not gate.all_unlocked()

    def test_probability_matches_tracker(self):
        gate = make_gate(eps=0.5)
        deltas = [0.1, 0.2, 0.7, -0.1]
        for d in deltas:
            gate.record(np.zeros(3), np.full(3, d))
        assert gate.probability(ResourceKind.CPU) == pytest.approx(0.5)

    def test_sampling_error_credit(self):
        # With few samples the binomial SE credit can push a
        # just-below-threshold estimate over the line.
        gate = make_gate(eps=0.5, p_th=0.95)
        for _ in range(19):
            gate.record(np.zeros(3), np.full(3, 0.1))
        gate.record(np.zeros(3), np.full(3, -0.2))  # p̂ = 0.95 - 1/20...
        # p̂ = 0.95; SE > 0 → unlocked
        assert gate.probability(ResourceKind.CPU) == pytest.approx(0.95)
        assert gate.unlocked(ResourceKind.CPU)

    def test_threshold_monotonicity(self):
        lenient = make_gate(eps=0.5, p_th=0.5)
        strict = make_gate(eps=0.5, p_th=0.999)
        for _ in range(50):
            sample = (np.zeros(3), np.full(3, 0.1))
            lenient.record(*sample)
            strict.record(*sample)
        # δ always in band: both unlock.
        assert lenient.all_unlocked() and strict.all_unlocked()
        # Now poison 30% of samples.
        for _ in range(25):
            sample = (np.zeros(3), np.full(3, -1.0))
            lenient.record(*sample)
            strict.record(*sample)
        assert lenient.all_unlocked()
        assert not strict.all_unlocked()
