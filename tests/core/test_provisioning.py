"""Shared provisioning-scheduler machinery via a controllable stub."""

import numpy as np
import pytest

from repro.cluster.machine import VirtualMachine
from repro.cluster.profiles import ClusterProfile
from repro.cluster.resources import NUM_RESOURCES, ResourceVector
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.core.provisioning import ProvisioningSchedulerBase

from ..conftest import make_short_trace


class StubScheduler(ProvisioningSchedulerBase):
    """Forecasts a fixed fraction of each VM's commitment."""

    name = "stub"
    supports_opportunistic = True

    def __init__(self, fraction=0.5, **kw):
        super().__init__(**kw)
        self.fraction = fraction
        self.forecast_calls = 0

    def predict_vm_unused(self, vm: VirtualMachine) -> np.ndarray:
        self.forecast_calls += 1
        return self.fraction * vm.committed().as_array()


class NoReuseStub(StubScheduler):
    name = "noreuse"
    supports_opportunistic = False


def run_stub(scheduler, n_jobs=25, seed=41, profile=None):
    profile = profile or ClusterProfile.palmetto(n_pms=4, vms_per_pm=2)
    sim = ClusterSimulator(profile, scheduler, SimulationConfig())
    trace = make_short_trace(n_jobs=n_jobs, seed=seed)
    return sim.run(trace)


class TestWindowMechanics:
    def test_forecasts_refresh_per_window(self):
        sched = StubScheduler(window_slots=6)
        result = run_stub(sched)
        n_windows = -(-result.n_slots // 6)
        n_vms = 8
        assert sched.forecast_calls == n_windows * n_vms

    def test_comm_charged_per_vm_poll(self):
        sched = StubScheduler(window_slots=6)
        run_stub(sched)
        assert sched.latency.comm_ops >= sched.forecast_calls

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            StubScheduler(window_slots=0)

    def test_forecast_shape_enforced(self):
        class BadStub(StubScheduler):
            def predict_vm_unused(self, vm):
                return np.zeros(2)

        with pytest.raises(ValueError):
            run_stub(BadStub())

    def test_error_samples_collected(self):
        sched = StubScheduler()
        run_stub(sched)
        assert sched.gate.trackers[0].n_samples > 0
        assert sched.raw_errors.trackers[0].n_samples > 0

    def test_forecast_clipped_at_commitment(self):
        # A forecast of 300% of commitment must be capped: available
        # pools can never exceed the committed slack.
        sched = StubScheduler(fraction=3.0)
        run_stub(sched)
        # If any recorded forecast exceeded its commitment, δ would be
        # strongly negative everywhere; instead the clip keeps δ >= -1.
        errors = np.asarray(sched.gate.trackers[0]._errors)
        assert errors.min() >= -1.0 - 1e-9


class TestOpportunisticPlacement:
    def test_reuse_happens_with_generous_pools(self):
        sched = StubScheduler(fraction=0.9)
        result = run_stub(sched, n_jobs=40)
        riders = [j for j in result.jobs if j.opportunistic]
        assert len(riders) > 0

    def test_no_reuse_when_not_supported(self):
        sched = NoReuseStub(fraction=0.9)
        result = run_stub(sched, n_jobs=40)
        assert all(not j.opportunistic for j in result.jobs)

    def test_no_reuse_when_gate_blocks(self):
        class Blocked(StubScheduler):
            def opportunistic_allowed(self):
                return False

        result = run_stub(Blocked(fraction=0.9), n_jobs=40)
        assert all(not j.opportunistic for j in result.jobs)

    def test_pools_decremented_on_placement(self):
        # With pools half the commitment and many concurrent arrivals,
        # total opportunistic admissions per window cannot exceed the
        # aggregate pool.
        sched = StubScheduler(fraction=0.5)
        result = run_stub(sched, n_jobs=40)
        for pool in sched._available_unused.values():
            assert np.all(pool >= -1e-9)

    def test_all_jobs_placed_eventually(self):
        sched = StubScheduler()
        result = run_stub(sched, n_jobs=40)
        assert result.all_done


class TestAggregateModes:
    def test_mean_aggregate_default(self):
        assert StubScheduler().actual_aggregate == "mean"

    def test_min_aggregate_changes_errors(self):
        class MinStub(StubScheduler):
            actual_aggregate = "min"

        mean_sched = StubScheduler(fraction=0.5)
        min_sched = MinStub(fraction=0.5)
        run_stub(mean_sched, seed=42)
        run_stub(min_sched, seed=42)
        mean_err = np.asarray(mean_sched.gate.trackers[0]._errors)
        min_err = np.asarray(min_sched.gate.trackers[0]._errors)
        # The window minimum is never above the window mean.
        assert min_err.mean() <= mean_err.mean() + 1e-9
