"""Complementary job packing (Section III-B) — incl. algebraic identities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.job import Job
from repro.cluster.resources import ResourceKind, ResourceVector
from repro.core.packing import (
    JobEntity,
    deviation,
    dominant_resource,
    pack_jobs,
    singleton_entities,
)

from ..cluster.test_job import make_record

pos = st.floats(min_value=0.01, max_value=100, allow_nan=False)
vectors = st.builds(lambda a, b, c: ResourceVector([a, b, c]), pos, pos, pos)


def job_with_request(request, task_id=0):
    return Job(record=make_record(request=request, task_id=task_id), submit_slot=0)


class TestDominantResource:
    def test_raw_units(self):
        assert dominant_resource(ResourceVector([20, 1, 5])) is ResourceKind.CPU
        assert dominant_resource(ResourceVector([1, 1, 30])) is ResourceKind.STORAGE

    def test_normalized_changes_answer(self):
        # Raw: storage dominates (30 > 4); normalized by capacity
        # (8, 32, 360): CPU dominates (0.5 > 0.083).
        demand = ResourceVector([4, 2, 30])
        reference = ResourceVector([8, 32, 360])
        assert dominant_resource(demand) is ResourceKind.STORAGE
        assert dominant_resource(demand, reference) is ResourceKind.CPU


class TestDeviation:
    def test_identical_jobs_zero(self):
        v = ResourceVector([2, 3, 4])
        assert deviation(v, v) == pytest.approx(0.0)

    def test_algebraic_identity(self):
        # DV(a, b) = Σ_k (a_k − b_k)² / 2
        a, b = ResourceVector([1, 5, 2]), ResourceVector([3, 1, 2])
        expected = ((1 - 3) ** 2 + (5 - 1) ** 2 + 0) / 2
        assert deviation(a, b) == pytest.approx(expected)

    def test_symmetry(self):
        a, b = ResourceVector([1, 5, 2]), ResourceVector([3, 1, 9])
        assert deviation(a, b) == pytest.approx(deviation(b, a))

    def test_normalization_rescales(self):
        a, b = ResourceVector([1, 0, 100]), ResourceVector([2, 0, 0])
        reference = ResourceVector([10, 10, 1000])
        raw = deviation(a, b)
        norm = deviation(a, b, reference)
        assert raw > norm  # the 100-GB storage axis dominates raw units

    @given(vectors, vectors)
    def test_nonnegative(self, a, b):
        assert deviation(a, b) >= 0.0

    @given(vectors, vectors)
    def test_identity_property(self, a, b):
        expected = float(np.sum((a.as_array() - b.as_array()) ** 2) / 2)
        assert deviation(a, b) == pytest.approx(expected, rel=1e-9)


class TestJobEntity:
    def test_singleton(self):
        job = job_with_request((2, 4, 10))
        entity = JobEntity(jobs=(job,))
        assert not entity.is_packed
        assert entity.demand == job.requested

    def test_pair_demand_sums(self):
        a = job_with_request((2, 4, 10), task_id=1)
        b = job_with_request((1, 1, 1), task_id=2)
        entity = JobEntity(jobs=(a, b))
        assert entity.is_packed
        assert entity.demand == ResourceVector([3, 5, 11])
        assert entity.job_ids() == (1, 2)

    def test_size_limits(self):
        jobs = tuple(job_with_request((1, 1, 1), task_id=i) for i in range(3))
        with pytest.raises(ValueError):
            JobEntity(jobs=jobs)
        with pytest.raises(ValueError):
            JobEntity(jobs=())


class TestPackJobs:
    def test_complementary_pair_packed(self):
        cpu_job = job_with_request((8, 1, 5), task_id=1)
        mem_job = job_with_request((1, 16, 5), task_id=2)
        entities = pack_jobs([cpu_job, mem_job])
        assert len(entities) == 1
        assert entities[0].is_packed

    def test_same_dominant_not_packed(self):
        a = job_with_request((8, 1, 5), task_id=1)
        b = job_with_request((6, 2, 4), task_id=2)
        entities = pack_jobs([a, b])
        assert len(entities) == 2
        assert not any(e.is_packed for e in entities)

    def test_highest_deviation_partner_chosen(self):
        # Paper Section III-B: "the job with the highest deviation value
        # is the complementary job of J_i".
        cpu_job = job_with_request((10, 1, 1), task_id=1)
        mem_small = job_with_request((9, 2, 1), task_id=2)   # MEM-dominant? no...
        mem_mild = job_with_request((1, 4, 1), task_id=3)
        mem_strong = job_with_request((1, 40, 1), task_id=4)
        entities = pack_jobs([cpu_job, mem_mild, mem_strong])
        packed = [e for e in entities if e.is_packed]
        assert packed and set(packed[0].job_ids()) == {1, 4}

    def test_odd_job_out_is_singleton(self):
        cpu1 = job_with_request((10, 1, 1), task_id=1)
        cpu2 = job_with_request((9, 1, 1), task_id=2)
        mem = job_with_request((1, 20, 1), task_id=3)
        entities = pack_jobs([cpu1, cpu2, mem])
        packed = [e for e in entities if e.is_packed]
        single = [e for e in entities if not e.is_packed]
        assert len(packed) == 1 and len(single) == 1
        assert sum(len(e.jobs) for e in entities) == 3

    def test_every_job_appears_exactly_once(self):
        rng = np.random.default_rng(0)
        jobs = [
            job_with_request(tuple(rng.uniform(0.5, 10, 3)), task_id=i)
            for i in range(11)
        ]
        entities = pack_jobs(jobs)
        ids = [j for e in entities for j in e.job_ids()]
        assert sorted(ids) == list(range(11))

    def test_empty_input(self):
        assert pack_jobs([]) == []

    def test_arrival_order_greedy(self):
        # The first job gets first pick of partners.
        cpu1 = job_with_request((10, 1, 1), task_id=1)
        cpu2 = job_with_request((10, 1, 1), task_id=2)
        mem = job_with_request((1, 20, 1), task_id=3)
        entities = pack_jobs([cpu1, cpu2, mem])
        packed = [e for e in entities if e.is_packed]
        assert set(packed[0].job_ids()) == {1, 3}

    def test_reference_normalization_affects_dominance(self):
        # With raw units a 30-GB storage request dominates; normalized by
        # the VM capacity the CPU does, so two such jobs stop pairing.
        a = job_with_request((4, 1, 30), task_id=1)
        b = job_with_request((0.5, 2, 35), task_id=2)
        reference = ResourceVector([8, 32, 360])
        raw_entities = pack_jobs([a, b])  # STORAGE vs STORAGE: no pack
        norm_entities = pack_jobs([a, b], reference)  # CPU vs STORAGE: pack
        assert not any(e.is_packed for e in raw_entities)
        assert any(e.is_packed for e in norm_entities)


class TestSingletonEntities:
    def test_one_entity_per_job(self):
        jobs = [job_with_request((1, 1, 1), task_id=i) for i in range(4)]
        entities = singleton_entities(jobs)
        assert len(entities) == 4
        assert all(not e.is_packed for e in entities)
