"""Most-matched VM selection — verified against the paper's Fig. 5 numbers."""

import numpy as np
import pytest

from repro.cluster.machine import VirtualMachine
from repro.cluster.resources import ResourceVector
from repro.core.vm_selection import (
    select_most_matched,
    select_random_feasible,
    unused_volume,
)

#: The worked example of Fig. 5: C' = <25, 2, 30> and the four VMs'
#: unlocked predicted unused amounts.
FIG5_REFERENCE = ResourceVector([25, 2, 30])
FIG5_UNUSED = {
    1: ResourceVector([5, 0, 20]),
    2: ResourceVector([10, 1, 10]),
    3: ResourceVector([20, 2, 30]),
    4: ResourceVector([10, 1, 8.5]),
}
#: The volumes the paper computes for them (Section III-B).
FIG5_VOLUMES = {1: 0.867, 2: 1.233, 3: 2.8, 4: 1.183}


def fig5_candidates():
    return [
        (VirtualMachine(vm_id, ResourceVector([25, 2, 30])), unused)
        for vm_id, unused in FIG5_UNUSED.items()
    ]


class TestUnusedVolume:
    @pytest.mark.parametrize("vm_id", [1, 2, 3, 4])
    def test_fig5_volumes(self, vm_id):
        volume = unused_volume(FIG5_UNUSED[vm_id], FIG5_REFERENCE)
        assert volume == pytest.approx(FIG5_VOLUMES[vm_id], abs=1e-3)

    def test_zero_reference_component_ignored(self):
        volume = unused_volume(ResourceVector([5, 3, 0]), ResourceVector([10, 0, 10]))
        assert volume == pytest.approx(0.5)

    def test_zero_vector(self):
        assert unused_volume(ResourceVector.zeros(), FIG5_REFERENCE) == 0.0


class TestMostMatched:
    def test_fig5_first_entity_goes_to_vm2(self):
        # Packed entity (job 3, job 4): VM1 and VM4 infeasible; VM2 wins
        # over VM3 because 1.233 < 2.8.
        demand = ResourceVector([10, 1, 10])
        chosen = select_most_matched(demand, fig5_candidates(), FIG5_REFERENCE)
        assert chosen.vm_id == 2

    def test_fig5_second_entity_goes_to_vm4(self):
        # Packed entity (job 5, job 6): VM1 infeasible; VM4's 1.183 is
        # the smallest remaining volume.
        demand = ResourceVector([8, 1, 8])
        chosen = select_most_matched(demand, fig5_candidates(), FIG5_REFERENCE)
        assert chosen.vm_id == 4

    def test_none_feasible(self):
        demand = ResourceVector([100, 100, 100])
        assert select_most_matched(demand, fig5_candidates(), FIG5_REFERENCE) is None

    def test_empty_candidates(self):
        assert select_most_matched(ResourceVector([1, 1, 1]), [], FIG5_REFERENCE) is None

    def test_tie_breaks_to_lower_id(self):
        vm_a = VirtualMachine(3, ResourceVector([10, 10, 10]))
        vm_b = VirtualMachine(1, ResourceVector([10, 10, 10]))
        same = ResourceVector([5, 5, 5])
        chosen = select_most_matched(
            ResourceVector([1, 1, 1]),
            [(vm_a, same), (vm_b, same)],
            ResourceVector([10, 10, 10]),
        )
        assert chosen.vm_id == 1

    def test_exact_fit_allowed(self):
        vm = VirtualMachine(0, ResourceVector([10, 10, 10]))
        available = ResourceVector([2, 2, 2])
        chosen = select_most_matched(
            ResourceVector([2, 2, 2]), [(vm, available)], FIG5_REFERENCE
        )
        assert chosen is vm


class TestRandomFeasible:
    def test_uniform_over_feasible(self):
        rng = np.random.default_rng(0)
        vms = [VirtualMachine(i, ResourceVector([10, 10, 10])) for i in range(3)]
        candidates = [
            (vms[0], ResourceVector([5, 5, 5])),
            (vms[1], ResourceVector([0, 0, 0])),  # infeasible
            (vms[2], ResourceVector([5, 5, 5])),
        ]
        demand = ResourceVector([1, 1, 1])
        picks = {
            select_random_feasible(demand, candidates, rng).vm_id
            for _ in range(50)
        }
        assert picks == {0, 2}

    def test_none_feasible(self):
        rng = np.random.default_rng(1)
        vm = VirtualMachine(0, ResourceVector([10, 10, 10]))
        result = select_random_feasible(
            ResourceVector([5, 5, 5]), [(vm, ResourceVector([1, 1, 1]))], rng
        )
        assert result is None

    def test_deterministic_given_rng_state(self):
        vms = [VirtualMachine(i, ResourceVector([10, 10, 10])) for i in range(5)]
        candidates = [(vm, ResourceVector([5, 5, 5])) for vm in vms]
        demand = ResourceVector([1, 1, 1])
        a = select_random_feasible(demand, candidates, np.random.default_rng(7))
        b = select_random_feasible(demand, candidates, np.random.default_rng(7))
        assert a.vm_id == b.vm_id
