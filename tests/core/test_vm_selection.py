"""Most-matched VM selection — verified against the paper's Fig. 5 numbers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.machine import VirtualMachine
from repro.cluster.resources import ResourceVector
from repro.core.vm_selection import (
    CandidateSet,
    select_most_matched,
    select_random_feasible,
    unused_volume,
)

#: The worked example of Fig. 5: C' = <25, 2, 30> and the four VMs'
#: unlocked predicted unused amounts.
FIG5_REFERENCE = ResourceVector([25, 2, 30])
FIG5_UNUSED = {
    1: ResourceVector([5, 0, 20]),
    2: ResourceVector([10, 1, 10]),
    3: ResourceVector([20, 2, 30]),
    4: ResourceVector([10, 1, 8.5]),
}
#: The volumes the paper computes for them (Section III-B).
FIG5_VOLUMES = {1: 0.867, 2: 1.233, 3: 2.8, 4: 1.183}


def fig5_candidates():
    return [
        (VirtualMachine(vm_id, ResourceVector([25, 2, 30])), unused)
        for vm_id, unused in FIG5_UNUSED.items()
    ]


class TestUnusedVolume:
    @pytest.mark.parametrize("vm_id", [1, 2, 3, 4])
    def test_fig5_volumes(self, vm_id):
        volume = unused_volume(FIG5_UNUSED[vm_id], FIG5_REFERENCE)
        assert volume == pytest.approx(FIG5_VOLUMES[vm_id], abs=1e-3)

    def test_zero_reference_component_ignored(self):
        volume = unused_volume(ResourceVector([5, 3, 0]), ResourceVector([10, 0, 10]))
        assert volume == pytest.approx(0.5)

    def test_zero_vector(self):
        assert unused_volume(ResourceVector.zeros(), FIG5_REFERENCE) == 0.0


class TestMostMatched:
    def test_fig5_first_entity_goes_to_vm2(self):
        # Packed entity (job 3, job 4): VM1 and VM4 infeasible; VM2 wins
        # over VM3 because 1.233 < 2.8.
        demand = ResourceVector([10, 1, 10])
        chosen = select_most_matched(demand, fig5_candidates(), FIG5_REFERENCE)
        assert chosen.vm_id == 2

    def test_fig5_second_entity_goes_to_vm4(self):
        # Packed entity (job 5, job 6): VM1 infeasible; VM4's 1.183 is
        # the smallest remaining volume.
        demand = ResourceVector([8, 1, 8])
        chosen = select_most_matched(demand, fig5_candidates(), FIG5_REFERENCE)
        assert chosen.vm_id == 4

    def test_none_feasible(self):
        demand = ResourceVector([100, 100, 100])
        assert select_most_matched(demand, fig5_candidates(), FIG5_REFERENCE) is None

    def test_empty_candidates(self):
        assert select_most_matched(ResourceVector([1, 1, 1]), [], FIG5_REFERENCE) is None

    def test_tie_breaks_to_lower_id(self):
        vm_a = VirtualMachine(3, ResourceVector([10, 10, 10]))
        vm_b = VirtualMachine(1, ResourceVector([10, 10, 10]))
        same = ResourceVector([5, 5, 5])
        chosen = select_most_matched(
            ResourceVector([1, 1, 1]),
            [(vm_a, same), (vm_b, same)],
            ResourceVector([10, 10, 10]),
        )
        assert chosen.vm_id == 1

    def test_exact_fit_allowed(self):
        vm = VirtualMachine(0, ResourceVector([10, 10, 10]))
        available = ResourceVector([2, 2, 2])
        chosen = select_most_matched(
            ResourceVector([2, 2, 2]), [(vm, available)], FIG5_REFERENCE
        )
        assert chosen is vm


class TestRandomFeasible:
    def test_uniform_over_feasible(self):
        rng = np.random.default_rng(0)
        vms = [VirtualMachine(i, ResourceVector([10, 10, 10])) for i in range(3)]
        candidates = [
            (vms[0], ResourceVector([5, 5, 5])),
            (vms[1], ResourceVector([0, 0, 0])),  # infeasible
            (vms[2], ResourceVector([5, 5, 5])),
        ]
        demand = ResourceVector([1, 1, 1])
        picks = {
            select_random_feasible(demand, candidates, rng).vm_id
            for _ in range(50)
        }
        assert picks == {0, 2}

    def test_none_feasible(self):
        rng = np.random.default_rng(1)
        vm = VirtualMachine(0, ResourceVector([10, 10, 10]))
        result = select_random_feasible(
            ResourceVector([5, 5, 5]), [(vm, ResourceVector([1, 1, 1]))], rng
        )
        assert result is None

    def test_deterministic_given_rng_state(self):
        vms = [VirtualMachine(i, ResourceVector([10, 10, 10])) for i in range(5)]
        candidates = [(vm, ResourceVector([5, 5, 5])) for vm in vms]
        demand = ResourceVector([1, 1, 1])
        a = select_random_feasible(demand, candidates, np.random.default_rng(7))
        b = select_random_feasible(demand, candidates, np.random.default_rng(7))
        assert a.vm_id == b.vm_id


def random_candidates(draw_values, n):
    """Build (pairs, CandidateSet) over the same availability values."""
    vms = [VirtualMachine(i, ResourceVector([30, 30, 30])) for i in range(n)]
    pairs = [
        (vm, ResourceVector(draw_values[3 * i: 3 * i + 3]))
        for i, vm in enumerate(vms)
    ]
    return pairs, CandidateSet.from_pairs(pairs)


class TestCandidateSetAgainstScalar:
    """The vectorized selector's oracle is the scalar reference loop."""

    @given(
        values=st.lists(
            st.floats(0.0, 25.0, allow_nan=False), min_size=12, max_size=30
        ).filter(lambda v: len(v) % 3 == 0),
        demand=st.tuples(
            st.floats(0.0, 20.0), st.floats(0.0, 20.0), st.floats(0.0, 20.0)
        ),
    )
    def test_most_matched_matches_reference(self, values, demand):
        pairs, cset = random_candidates(values, len(values) // 3)
        d = ResourceVector(list(demand))
        expected = select_most_matched(d, pairs, FIG5_REFERENCE)
        actual = cset.select_most_matched(d, FIG5_REFERENCE)
        assert (expected is None) == (actual is None)
        if expected is not None:
            assert actual.vm_id == expected.vm_id

    @given(
        values=st.lists(
            st.floats(0.0, 25.0, allow_nan=False), min_size=12, max_size=30
        ).filter(lambda v: len(v) % 3 == 0),
        demand=st.tuples(
            st.floats(0.0, 20.0), st.floats(0.0, 20.0), st.floats(0.0, 20.0)
        ),
        seed=st.integers(0, 2**16),
    )
    def test_random_feasible_consumes_same_rng_stream(self, values, demand, seed):
        pairs, cset = random_candidates(values, len(values) // 3)
        d = ResourceVector(list(demand))
        expected = select_random_feasible(d, pairs, np.random.default_rng(seed))
        actual = cset.select_random_feasible(d, np.random.default_rng(seed))
        assert (expected is None) == (actual is None)
        if expected is not None:
            assert actual.vm_id == expected.vm_id

    def test_fig5_entities(self):
        cset = CandidateSet.from_pairs(fig5_candidates())
        first = cset.select_most_matched(
            ResourceVector([10, 1, 10]), FIG5_REFERENCE
        )
        second = cset.select_most_matched(
            ResourceVector([8, 1, 8]), FIG5_REFERENCE
        )
        assert (first.vm_id, second.vm_id) == (2, 4)

    def test_exact_tie_breaks_to_lowest_id(self):
        vms = [VirtualMachine(i, ResourceVector([10, 10, 10])) for i in (5, 2, 9)]
        same = ResourceVector([5, 5, 5])
        cset = CandidateSet.from_pairs([(vm, same) for vm in vms])
        chosen = cset.select_most_matched(
            ResourceVector([1, 1, 1]), ResourceVector([10, 10, 10])
        )
        assert chosen.vm_id == 2

    def test_near_tie_within_tolerance_breaks_to_lowest_id(self):
        """Volumes closer than 1e-12 count as tied, like the scalar loop."""
        vm_a = VirtualMachine(7, ResourceVector([10, 10, 10]))
        vm_b = VirtualMachine(1, ResourceVector([10, 10, 10]))
        cset = CandidateSet.from_pairs([
            (vm_a, ResourceVector([5.0, 5.0, 5.0])),
            (vm_b, ResourceVector([5.0 + 2e-13, 5.0, 5.0])),
        ])
        chosen = cset.select_most_matched(
            ResourceVector([1, 1, 1]), ResourceVector([10, 10, 10])
        )
        assert chosen.vm_id == 1


class TestCandidateSetMechanics:
    def test_iterates_as_pairs(self):
        cset = CandidateSet.from_pairs(fig5_candidates())
        seen = {vm.vm_id: avail.as_array().tolist() for vm, avail in cset}
        assert seen[3] == [20, 2, 30]

    def test_consume_clamps_at_zero(self):
        vm = VirtualMachine(0, ResourceVector([10, 10, 10]))
        cset = CandidateSet.from_pairs([(vm, ResourceVector([3, 3, 3]))])
        cset.consume(vm, np.array([1.0, 4.0, 2.0]))
        np.testing.assert_array_equal(
            cset.availability(vm), np.array([2.0, 0.0, 1.0])
        )

    def test_consume_affects_later_selection(self):
        vms = [VirtualMachine(i, ResourceVector([10, 10, 10])) for i in range(2)]
        cset = CandidateSet.from_pairs(
            [(vms[0], ResourceVector([4, 4, 4])), (vms[1], ResourceVector([9, 9, 9]))]
        )
        demand = ResourceVector([3, 3, 3])
        ref = ResourceVector([10, 10, 10])
        assert cset.select_most_matched(demand, ref).vm_id == 0
        cset.consume(vms[0], demand.as_array())
        assert cset.select_most_matched(demand, ref).vm_id == 1

    def test_feasible_count(self):
        cset = CandidateSet.from_pairs(fig5_candidates())
        assert cset.feasible_count(ResourceVector([10, 1, 10])) == 2
        assert cset.feasible_count(ResourceVector([100, 100, 100])) == 0

    def test_empty_set(self):
        cset = CandidateSet([], np.zeros((0, 3)))
        assert len(cset) == 0 and list(cset) == []
        assert cset.select_most_matched(
            ResourceVector([1, 1, 1]), FIG5_REFERENCE
        ) is None

    def test_shape_mismatch_rejected(self):
        vm = VirtualMachine(0, ResourceVector([10, 10, 10]))
        with pytest.raises(ValueError):
            CandidateSet([vm], np.zeros((2, 3)))
