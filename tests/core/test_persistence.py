"""Predictor save/load round-trip."""

import dataclasses

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.core.persistence import load_predictor, save_predictor
from repro.core.predictor import CorpPredictor


class TestRoundtrip:
    def test_predictions_identical(self, fitted_predictor, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted_predictor, path)
        loaded = load_predictor(path)
        util = np.full((12, 3), 0.45)
        request = ResourceVector([3, 6, 40])
        original = fitted_predictor.predict_job_unused(util, request)
        restored = loaded.predict_job_unused(util, request)
        np.testing.assert_allclose(
            restored.as_array(), original.as_array(), rtol=0, atol=0
        )

    def test_config_restored(self, fitted_predictor, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted_predictor, path)
        loaded = load_predictor(path)
        assert loaded.config.window_slots == fitted_predictor.config.window_slots
        assert loaded.config.train_quantile == fitted_predictor.config.train_quantile

    def test_seed_errors_and_prior_restored(self, fitted_predictor, tmp_path):
        path = tmp_path / "p.npz"
        save_predictor(fitted_predictor, path)
        loaded = load_predictor(path)
        for a, b in zip(fitted_predictor.seed_errors, loaded.seed_errors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            fitted_predictor.prior_unused_fraction, loaded.prior_unused_fraction
        )

    def test_hmm_restored(self, fitted_predictor, tmp_path):
        path = tmp_path / "p.npz"
        save_predictor(fitted_predictor, path)
        loaded = load_predictor(path)
        for a, b in zip(fitted_predictor.fluctuation, loaded.fluctuation):
            assert a.fitted == b.fitted
            if a.fitted:
                np.testing.assert_allclose(a.model.transition, b.model.transition)
                assert a.correction_scale == pytest.approx(b.correction_scale)

    def test_loaded_predictor_drives_scheduler(
        self, fitted_predictor, tmp_path, small_profile, history_trace
    ):
        from repro.cluster.simulator import ClusterSimulator, SimulationConfig
        from repro.core.corp import CorpScheduler
        from ..conftest import make_short_trace

        path = tmp_path / "p.npz"
        save_predictor(fitted_predictor, path)
        loaded = load_predictor(path)
        scheduler = CorpScheduler(loaded.config, predictor=loaded)
        sim = ClusterSimulator(small_profile, scheduler, SimulationConfig())
        result = sim.run(make_short_trace(n_jobs=15, seed=66), history=history_trace)
        assert result.all_done


class TestValidation:
    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not fitted"):
            save_predictor(CorpPredictor(), tmp_path / "x.npz")

    def test_bad_format_version(self, fitted_predictor, tmp_path):
        import json

        path = tmp_path / "p.npz"
        save_predictor(fitted_predictor, path)
        data = dict(np.load(path))
        meta = json.loads(bytes(data["_meta"]).decode())
        meta["format_version"] = 999
        data["_meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="unsupported"):
            load_predictor(path)
