"""The HMM correction path inside the predictor, exercised directly.

The ablation shows the correction is near-neutral statistically on this
workload; these tests pin that the *mechanism* works: a peak symbol
raises the forecast by the correction scale, a valley lowers it, and
the adjustment is clipped into [0, request].
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.core.predictor import CorpPredictor
from repro.hmm.discretize import CENTER, PEAK, VALLEY


class StubFluctuation:
    """Always-fitted fluctuation model with a forced symbol."""

    def __init__(self, symbol, scale=0.2):
        self.symbol = symbol
        self.scale = scale
        self.fitted = True

    def predict_next_symbol(self, recent):
        return self.symbol

    def correction(self, symbol):
        if symbol == PEAK:
            return self.scale
        if symbol == VALLEY:
            return -self.scale
        return 0.0


@pytest.fixture()
def predictor_with(fitted_predictor):
    def make(symbol):
        clone = CorpPredictor(
            config=fitted_predictor.config,
            networks=fitted_predictor.networks,
            fluctuation=[StubFluctuation(symbol) for _ in range(3)],
            seed_errors=fitted_predictor.seed_errors,
            prior_unused_fraction=fitted_predictor.prior_unused_fraction,
        )
        return clone

    return make


class TestCorrectionDirection:
    def test_peak_raises_forecast(self, predictor_with):
        util = np.full((12, 3), 0.5)
        request = ResourceVector([4, 4, 4])
        base = predictor_with(CENTER).predict_job_unused(util, request)
        peak = predictor_with(PEAK).predict_job_unused(util, request)
        assert np.all(peak.as_array() >= base.as_array())
        # The raise equals scale x request where unclipped.
        diff = peak.as_array() - base.as_array()
        assert diff.max() <= 0.2 * 4 + 1e-9

    def test_valley_lowers_forecast(self, predictor_with):
        util = np.full((12, 3), 0.5)
        request = ResourceVector([4, 4, 4])
        base = predictor_with(CENTER).predict_job_unused(util, request)
        valley = predictor_with(VALLEY).predict_job_unused(util, request)
        assert np.all(valley.as_array() <= base.as_array())

    def test_clipped_into_request_bounds(self, predictor_with):
        util = np.full((12, 3), 0.02)  # near-idle: base forecast near max
        request = ResourceVector([4, 4, 4])
        peak = predictor_with(PEAK).predict_job_unused(util, request)
        assert peak.fits_within(request)
        util_busy = np.full((12, 3), 0.98)
        valley = predictor_with(VALLEY).predict_job_unused(util_busy, request)
        assert valley.is_nonnegative()

    def test_disabled_correction_ignores_symbols(
        self, fitted_predictor, predictor_with
    ):
        cfg = dataclasses.replace(fitted_predictor.config, use_hmm_correction=False)
        clone = predictor_with(PEAK)
        clone.config = cfg
        util = np.full((12, 3), 0.5)
        request = ResourceVector([4, 4, 4])
        no_hmm = clone.predict_job_unused(util, request)
        base = predictor_with(CENTER).predict_job_unused(util, request)
        np.testing.assert_allclose(no_hmm.as_array(), base.as_array())
