"""Behavioural tests of CORP's end-to-end mechanisms."""

import dataclasses

import numpy as np
import pytest

from repro.cluster.profiles import ClusterProfile
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.cluster.slo import SloSpec
from repro.core.corp import CorpScheduler

from ..conftest import make_short_trace


def run_corp(config, predictor, profile, trace, history):
    scheduler = CorpScheduler(config, predictor=predictor)
    sim = ClusterSimulator(profile, scheduler, SimulationConfig())
    return sim.run(trace, history=history), scheduler


class TestConservatismKnobs:
    def test_lower_pth_never_reduces_reuse(
        self, fast_corp_config, fitted_predictor, small_profile, history_trace
    ):
        """Relaxing the preemption gate can only admit more riders."""
        trace = make_short_trace(n_jobs=40, seed=101)
        riders = {}
        for p_th in (0.99, 0.5):
            cfg = dataclasses.replace(fast_corp_config, probability_threshold=p_th)
            result, _ = run_corp(
                cfg, fitted_predictor,
                ClusterProfile.palmetto(n_pms=4, vms_per_pm=2), trace, history_trace,
            )
            riders[p_th] = sum(1 for j in result.jobs if j.opportunistic)
        assert riders[0.5] >= riders[0.99]

    def test_higher_confidence_shrinks_pools(
        self, fast_corp_config, fitted_predictor, small_profile, history_trace
    ):
        """A higher η means a larger CI shift, so smaller adjusted pools."""
        import numpy as np

        shifts = {}
        for eta in (0.5, 0.9):
            cfg = dataclasses.replace(fast_corp_config, confidence_level=eta)
            scheduler = CorpScheduler(cfg, predictor=fitted_predictor)
            sim = ClusterSimulator(
                ClusterProfile.palmetto(n_pms=2, vms_per_pm=1),
                scheduler,
                SimulationConfig(),
            )
            scheduler.prepare(history_trace)
            vm = sim.vms[0]
            # Give the VM a primary placement so the RSS shift is nonzero.
            from repro.cluster.machine import Placement
            from repro.cluster.job import Job
            from ..cluster.test_job import make_record

            job = Job(record=make_record(request=(4, 8, 40)), submit_slot=0)
            vm.add_placement(
                Placement(job=job, vm=vm, reserved=job.requested, opportunistic=False)
            )
            job.start(0, opportunistic=False)
            raw = np.array([2.0, 4.0, 20.0])
            shifts[eta] = raw - scheduler.adjust_forecast(raw, vm)
        assert np.all(shifts[0.9] >= shifts[0.5] - 1e-12)


class TestSloPropagation:
    def test_tighter_slo_never_reduces_violations(
        self, fast_corp_config, fitted_predictor, history_trace
    ):
        trace = make_short_trace(n_jobs=40, seed=102)
        rates = {}
        for slack in (1.05, 1.5):
            scheduler = CorpScheduler(fast_corp_config, predictor=fitted_predictor)
            sim = ClusterSimulator(
                ClusterProfile.palmetto(n_pms=2, vms_per_pm=2),
                scheduler,
                SimulationConfig(slo=SloSpec(slack_factor=slack)),
            )
            result = sim.run(trace, history=history_trace)
            rates[slack] = result.slo.violation_rate
        assert rates[1.05] >= rates[1.5]


class TestRiderAccounting:
    def test_riders_add_demand_but_no_commitment(
        self, fast_corp_config, fitted_predictor, history_trace
    ):
        """During slots with riders, cluster commitment must equal the
        sum of primary reservations only."""
        scheduler = CorpScheduler(fast_corp_config, predictor=fitted_predictor)
        profile = ClusterProfile.palmetto(n_pms=3, vms_per_pm=2)
        sim = ClusterSimulator(profile, scheduler, SimulationConfig())
        trace = make_short_trace(n_jobs=40, seed=103)
        result = sim.run(trace, history=history_trace)
        riders = [j for j in result.jobs if j.opportunistic]
        if not riders:
            pytest.skip("no riders admitted at this test size")
        # Committed totals never exceed total capacity even with riders.
        committed = np.asarray(result.metrics._committed)
        total_capacity = profile.n_vms * profile.vm_capacity.as_array()
        assert np.all(committed <= total_capacity[None, :] + 1e-6)

    def test_rider_jobs_complete(self, fast_corp_config, fitted_predictor, history_trace):
        scheduler = CorpScheduler(fast_corp_config, predictor=fitted_predictor)
        sim = ClusterSimulator(
            ClusterProfile.palmetto(n_pms=3, vms_per_pm=2),
            scheduler,
            SimulationConfig(),
        )
        result = sim.run(make_short_trace(n_jobs=40, seed=103), history=history_trace)
        from repro.cluster.job import JobState

        for job in result.jobs:
            if job.opportunistic:
                assert job.state is JobState.COMPLETED


class TestRepeatsParameter:
    def test_fig06_repeats_average(self):
        from repro.experiments.figures import fig06_prediction_error
        from repro.experiments.runner import PredictorCache

        cache = PredictorCache()
        result = fig06_prediction_error(
            job_counts=(20,), repeats=2, cache=cache
        )
        assert all(len(v) == 1 for v in result.series.values())

    def test_fig06_repeats_validated(self):
        from repro.experiments.figures import fig06_prediction_error

        with pytest.raises(ValueError):
            fig06_prediction_error(job_counts=(20,), repeats=0)
