"""CorpScheduler end-to-end behaviour on a small cluster."""

import dataclasses

import numpy as np
import pytest

from repro.cluster.profiles import ClusterProfile
from repro.cluster.resources import NUM_RESOURCES
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.core.corp import CorpScheduler

from ..conftest import make_short_trace


@pytest.fixture()
def corp(fast_corp_config, fitted_predictor):
    return CorpScheduler(fast_corp_config, predictor=fitted_predictor)


@pytest.fixture()
def sim_result(corp, small_profile, history_trace):
    trace = make_short_trace(n_jobs=30, seed=31)
    sim = ClusterSimulator(small_profile, corp, SimulationConfig())
    return sim.run(trace, history=history_trace), corp


class TestRun:
    def test_all_jobs_finish(self, sim_result):
        result, _ = sim_result
        assert result.all_done
        assert result.n_completed > 0

    def test_prediction_log_populated(self, sim_result):
        result, corp = sim_result
        assert len(corp.prediction_log) > 0
        assert result.prediction_error_rate is not None

    def test_gate_trackers_seeded_and_fed(self, sim_result):
        _, corp = sim_result
        for kind in range(NUM_RESOURCES):
            assert corp.gate.trackers[kind].n_samples > 0
            assert corp.raw_errors.trackers[kind].n_samples > 0

    def test_latency_accumulated(self, sim_result):
        result, corp = sim_result
        assert result.allocation_latency_s > 0
        assert corp.latency.comm_ops > 0

    def test_prepare_skips_refit_of_injected_predictor(
        self, fast_corp_config, fitted_predictor, history_trace
    ):
        corp = CorpScheduler(fast_corp_config, predictor=fitted_predictor)
        nets_before = list(fitted_predictor.networks)
        corp.prepare(history_trace)
        assert fitted_predictor.networks == nets_before  # same objects


class TestHooks:
    def test_adjust_forecast_is_conservative(self, corp, small_profile, history_trace):
        sim = ClusterSimulator(small_profile, corp, SimulationConfig())
        corp.prepare(history_trace)
        vm = sim.vms[0]
        raw = np.array([2.0, 8.0, 50.0])
        adjusted = corp.adjust_forecast(raw, vm)
        assert np.all(adjusted <= raw + 1e-12)

    def test_adjust_forecast_noop_without_ci(
        self, fast_corp_config, fitted_predictor, small_profile, history_trace
    ):
        cfg = dataclasses.replace(fast_corp_config, use_confidence_interval=False)
        corp = CorpScheduler(cfg, predictor=fitted_predictor)
        sim = ClusterSimulator(small_profile, corp, SimulationConfig())
        corp.prepare(history_trace)
        raw = np.array([2.0, 8.0, 50.0])
        np.testing.assert_array_equal(corp.adjust_forecast(raw, sim.vms[0]), raw)

    def test_admission_size_discounts_request(self, corp, small_profile, history_trace):
        from repro.core.packing import JobEntity
        from ..cluster.test_job import make_record
        from repro.cluster.job import Job

        sim = ClusterSimulator(small_profile, corp, SimulationConfig())
        corp.prepare(history_trace)
        job = Job(record=make_record(request=(4, 4, 4)), submit_slot=0)
        entity = JobEntity(jobs=(job,))
        admission = corp.opportunistic_admission_size(entity)
        assert admission.fits_within(entity.demand)
        assert admission.any_positive()

    def test_packing_disabled_yields_singletons(
        self, fast_corp_config, fitted_predictor, small_profile, history_trace
    ):
        from repro.cluster.job import Job
        from ..cluster.test_job import make_record

        cfg = dataclasses.replace(fast_corp_config, use_packing=False)
        corp = CorpScheduler(cfg, predictor=fitted_predictor)
        ClusterSimulator(small_profile, corp, SimulationConfig())
        jobs = [
            Job(record=make_record(request=(8, 1, 5), task_id=1), submit_slot=0),
            Job(record=make_record(request=(1, 16, 5), task_id=2), submit_slot=0),
        ]
        entities = corp.make_entities(jobs)
        assert all(not e.is_packed for e in entities)

    def test_packing_enabled_pairs_complementary(
        self, corp, small_profile, history_trace
    ):
        from repro.cluster.job import Job
        from ..cluster.test_job import make_record

        ClusterSimulator(small_profile, corp, SimulationConfig())
        jobs = [
            Job(record=make_record(request=(6, 1, 5), task_id=1), submit_slot=0),
            Job(record=make_record(request=(0.5, 16, 5), task_id=2), submit_slot=0),
        ]
        entities = corp.make_entities(jobs)
        assert len(entities) == 1 and entities[0].is_packed


class TestGateIntegration:
    def test_gate_locked_blocks_opportunistic(
        self, fast_corp_config, fitted_predictor, small_profile, history_trace
    ):
        # A vanishing tolerance makes the band [0, ε) unsatisfiable, so
        # the gate stays locked and no opportunistic placements happen.
        cfg = dataclasses.replace(fast_corp_config, error_tolerance=1e-9)
        corp = CorpScheduler(cfg, predictor=fitted_predictor)
        sim = ClusterSimulator(small_profile, corp, SimulationConfig())
        result = sim.run(make_short_trace(n_jobs=25, seed=32), history=history_trace)
        riders = [j for j in result.jobs if j.opportunistic]
        assert riders == []

    def test_gate_threshold_capped_at_nominal_coverage(
        self, fast_corp_config, fitted_predictor
    ):
        # Eq. 21's threshold cannot exceed the CI's nominal one-sided
        # coverage 1 − θ/2 (at η = 0.9 that is exactly Table II's 0.95).
        cfg = dataclasses.replace(
            fast_corp_config, probability_threshold=1.0, confidence_level=0.9
        )
        corp = CorpScheduler(cfg, predictor=fitted_predictor)
        assert corp.gate.probability_threshold == pytest.approx(0.95)
        cfg_low = dataclasses.replace(
            fast_corp_config, probability_threshold=0.95, confidence_level=0.5
        )
        corp_low = CorpScheduler(cfg_low, predictor=fitted_predictor)
        assert corp_low.gate.probability_threshold == pytest.approx(0.75)
