"""CorpConfig validation and the DNN+HMM prediction pipeline."""

import numpy as np
import pytest

from repro.cluster.resources import NUM_RESOURCES, ResourceKind, ResourceVector
from repro.core.config import CorpConfig
from repro.core.predictor import CorpPredictor, build_training_set

from ..conftest import make_short_trace


class TestCorpConfig:
    def test_table_ii_defaults(self):
        cfg = CorpConfig()
        assert cfg.n_hidden_layers == 4          # h = 4
        assert cfg.units_per_layer == 50         # N_n = 50
        assert cfg.probability_threshold == 0.95  # P_th
        assert cfg.window_slots == 6             # L = 1 minute of 10 s slots

    def test_dnn_layer_sizes(self):
        cfg = CorpConfig(input_slots=6, n_hidden_layers=4, units_per_layer=50)
        assert cfg.dnn_layer_sizes() == [6, 50, 50, 50, 50, 1]

    def test_significance_level(self):
        assert CorpConfig(confidence_level=0.9).significance_level == pytest.approx(0.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(window_slots=0),
            dict(n_hidden_layers=0),
            dict(probability_threshold=0.0),
            dict(confidence_level=1.0),
            dict(error_tolerance=0.0),
            dict(hmm_mode="bogus"),
            dict(prediction_target="bogus"),
            dict(train_quantile=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CorpConfig(**kwargs)

    def test_ablation_flags_exist(self):
        cfg = CorpConfig(
            use_hmm_correction=False,
            use_packing=False,
            use_confidence_interval=False,
            use_volume_selection=False,
        )
        assert not cfg.use_hmm_correction


class TestBuildTrainingSet:
    @pytest.fixture(scope="class")
    def trace(self):
        return make_short_trace(n_jobs=30, seed=21)

    def test_shapes(self, trace):
        x, y, reqs = build_training_set(trace, ResourceKind.CPU, 6, 6)
        assert x.shape[1] == 6
        assert y.shape == (x.shape[0], 1)
        assert reqs.shape == (x.shape[0],)
        assert x.shape[0] > 0

    def test_inputs_are_fractions(self, trace):
        x, y, _ = build_training_set(trace, ResourceKind.CPU, 6, 6)
        assert np.all(x >= 0) and np.all(x <= 1)
        assert np.all(y >= 0) and np.all(y <= 1)

    def test_window_min_below_mean_below_point_variance(self, trace):
        _, y_min, _ = build_training_set(trace, ResourceKind.CPU, 6, 6, target="window_min")
        _, y_mean, _ = build_training_set(trace, ResourceKind.CPU, 6, 6, target="window_mean")
        assert y_min.mean() <= y_mean.mean() + 1e-12

    def test_point_target(self, trace):
        x, y, _ = build_training_set(trace, ResourceKind.CPU, 6, 6, target="point")
        assert y.shape[0] == x.shape[0]

    def test_unknown_target(self, trace):
        with pytest.raises(ValueError):
            build_training_set(trace, ResourceKind.CPU, 6, 6, target="max")

    def test_short_records_skipped(self):
        trace = make_short_trace(n_jobs=30, seed=22)
        # Window longer than any short job -> no samples.
        x, y, reqs = build_training_set(trace, ResourceKind.CPU, 40, 40)
        assert x.shape[0] == 0


class TestCorpPredictor:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CorpPredictor().predict_job_unused(np.zeros((6, 3)), ResourceVector([1, 1, 1]))

    def test_fit_builds_all_networks(self, fitted_predictor):
        assert fitted_predictor.fitted
        assert len(fitted_predictor.networks) == NUM_RESOURCES
        assert len(fitted_predictor.fluctuation) == NUM_RESOURCES

    def test_seed_errors_collected(self, fitted_predictor):
        for errors in fitted_predictor.seed_errors:
            assert errors.size > 0

    def test_prior_is_quantile_of_targets(self, fitted_predictor):
        prior = fitted_predictor.prior_unused_fraction
        assert prior.shape == (NUM_RESOURCES,)
        assert np.all(prior >= 0) and np.all(prior <= 1)

    def test_prediction_scales_with_request(self, fitted_predictor):
        util = np.full((12, 3), 0.5)
        small = fitted_predictor.predict_job_unused(util, ResourceVector([1, 1, 1]))
        large = fitted_predictor.predict_job_unused(util, ResourceVector([10, 10, 10]))
        np.testing.assert_allclose(
            large.as_array(), 10 * small.as_array(), rtol=1e-9
        )

    def test_prediction_bounded_by_request(self, fitted_predictor):
        util = np.full((12, 3), 0.1)
        request = ResourceVector([4, 8, 100])
        pred = fitted_predictor.predict_job_unused(util, request)
        assert pred.fits_within(request)
        assert pred.is_nonnegative()

    def test_young_job_uses_prior(self, fitted_predictor):
        request = ResourceVector([2, 2, 2])
        pred = fitted_predictor.predict_job_unused(np.zeros((1, 3)), request)
        expected = fitted_predictor.prior_unused_fraction * 2.0
        np.testing.assert_allclose(pred.as_array(), expected)

    def test_short_history_padded(self, fitted_predictor):
        # 3 slots of history with input_slots=6: must not raise.
        util = np.full((3, 3), 0.6)
        pred = fitted_predictor.predict_job_unused(util, ResourceVector([2, 2, 2]))
        assert pred.is_nonnegative()

    def test_idle_job_predicts_more_unused_than_busy_job(self, fitted_predictor):
        idle = np.full((12, 3), 0.1)
        busy = np.full((12, 3), 0.9)
        request = ResourceVector([4, 4, 4])
        pred_idle = fitted_predictor.predict_job_unused(idle, request)
        pred_busy = fitted_predictor.predict_job_unused(busy, request)
        assert pred_idle.cpu > pred_busy.cpu

    def test_validation_rmse_reasonable(self, fitted_predictor):
        rmse = fitted_predictor.validation_rmse()
        assert rmse.shape == (NUM_RESOURCES,)
        assert np.all(rmse >= 0) and np.all(rmse < 0.6)  # request fractions

    def test_hmm_correction_flag_respected(self, history_trace, fast_corp_config):
        import dataclasses

        cfg = dataclasses.replace(fast_corp_config, use_hmm_correction=False)
        pred = CorpPredictor(config=cfg).fit(history_trace)
        util = np.full((12, 3), 0.5)
        out = pred.predict_job_unused(util, ResourceVector([1, 1, 1]))
        assert out.is_nonnegative()
