"""On-disk predictor store: fingerprinting, round-trip, warm donors."""

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.core.predictor import CorpPredictor
from repro.core.predictor_store import (
    FIT_FIELDS,
    PredictorStore,
    default_store_dir,
    fit_fingerprint,
)


@pytest.fixture()
def store(tmp_path) -> PredictorStore:
    return PredictorStore(tmp_path / "store")


class TestFingerprint:
    def test_stable(self, fast_corp_config):
        a = fit_fingerprint(fast_corp_config, "deadbeef")
        b = fit_fingerprint(fast_corp_config, "deadbeef")
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_history_digest_matters(self, fast_corp_config):
        assert fit_fingerprint(fast_corp_config, "aa") != fit_fingerprint(
            fast_corp_config, "bb"
        )

    @pytest.mark.parametrize("field", FIT_FIELDS)
    def test_every_fit_field_matters(self, fast_corp_config, field):
        """Each fit-shaping config field must invalidate the key."""
        old = getattr(fast_corp_config, field)
        if field == "hmm_mode":
            new = "range" if old == "level" else "level"
        elif field == "prediction_target":
            new = "point" if old != "point" else "window_mean"
        elif field == "train_quantile":
            new = 0.25 if old != 0.25 else 0.75
        elif isinstance(old, bool):
            new = not old
        else:
            new = old + 1
        changed = dataclasses.replace(fast_corp_config, **{field: new})
        assert fit_fingerprint(changed, "d") != fit_fingerprint(
            fast_corp_config, "d"
        )

    def test_non_fit_field_ignored(self, fast_corp_config):
        """Placement-time knobs don't shape the fit, so they share keys."""
        changed = dataclasses.replace(fast_corp_config, use_packing=False)
        assert fit_fingerprint(changed, "d") == fit_fingerprint(
            fast_corp_config, "d"
        )


class TestRoundtrip:
    def test_miss_on_empty(self, store, fast_corp_config):
        assert store.load(fast_corp_config, "nope") is None
        assert store.misses == 1 and store.hits == 0

    def test_fit_save_load_predicts_bit_identical(
        self, store, fast_corp_config, fitted_predictor
    ):
        store.save(fast_corp_config, "digest-1", fitted_predictor)
        loaded = store.load(fast_corp_config, "digest-1")
        assert loaded is not None and loaded.fitted
        util = np.full((12, 3), 0.45)
        request = ResourceVector([3, 6, 40])
        np.testing.assert_array_equal(
            loaded.predict_job_unused(util, request).as_array(),
            fitted_predictor.predict_job_unused(util, request).as_array(),
        )
        np.testing.assert_array_equal(
            loaded.prior_unused_fraction, fitted_predictor.prior_unused_fraction
        )

    def test_load_reattaches_caller_config(
        self, store, fast_corp_config, fitted_predictor
    ):
        store.save(fast_corp_config, "d", fitted_predictor)
        loaded = store.load(fast_corp_config, "d")
        assert loaded.config is fast_corp_config

    def test_wrong_digest_misses(self, store, fast_corp_config, fitted_predictor):
        store.save(fast_corp_config, "d1", fitted_predictor)
        assert store.load(fast_corp_config, "other") is None

    def test_wrong_config_misses(self, store, fast_corp_config, fitted_predictor):
        store.save(fast_corp_config, "d", fitted_predictor)
        changed = dataclasses.replace(fast_corp_config, seed=99)
        assert store.load(changed, "d") is None

    def test_corrupt_artifact_is_a_miss(
        self, store, fast_corp_config, fitted_predictor
    ):
        store.save(fast_corp_config, "d", fitted_predictor)
        key = fit_fingerprint(fast_corp_config, "d")
        (store.root / f"{key}.npz").write_bytes(b"not an npz")
        assert store.load(fast_corp_config, "d") is None


class TestNearest:
    def test_same_config_other_digest(
        self, store, fast_corp_config, fitted_predictor
    ):
        store.save(fast_corp_config, "d1", fitted_predictor)
        donor = store.nearest(fast_corp_config, exclude_digest="d2")
        assert donor is not None and donor.fitted
        assert store.warm_hits == 1

    def test_excludes_exact_digest(self, store, fast_corp_config, fitted_predictor):
        """The exact-digest artifact is the load() path, not a donor."""
        store.save(fast_corp_config, "d1", fitted_predictor)
        assert store.nearest(fast_corp_config, exclude_digest="d1") is None

    def test_other_config_never_donates(
        self, store, fast_corp_config, fitted_predictor
    ):
        store.save(fast_corp_config, "d1", fitted_predictor)
        changed = dataclasses.replace(fast_corp_config, units_per_layer=8)
        assert changed.dnn_layer_sizes() != fast_corp_config.dnn_layer_sizes()
        assert store.nearest(changed, exclude_digest="d2") is None

    def test_newest_donor_wins(self, store, fast_corp_config, fitted_predictor):
        """Which artifact nearest() picks is observable by corrupting
        the other one: only the newest sidecar's npz is ever read."""
        store.save(fast_corp_config, "old", fitted_predictor)
        store.save(fast_corp_config, "new", fitted_predictor)
        old_key = fit_fingerprint(fast_corp_config, "old")
        new_key = fit_fingerprint(fast_corp_config, "new")
        for key, created in ((old_key, 100.0), (new_key, 200.0)):
            meta_path = store.root / f"{key}.json"
            meta = json.loads(meta_path.read_text())
            meta["created"] = created
            meta_path.write_text(json.dumps(meta))
        (store.root / f"{old_key}.npz").write_bytes(b"corrupt")
        assert store.nearest(fast_corp_config, exclude_digest="x") is not None
        (store.root / f"{new_key}.npz").write_bytes(b"corrupt")
        assert store.nearest(fast_corp_config, exclude_digest="x") is None


class TestHousekeeping:
    def test_stats_and_clear(self, store, fast_corp_config, fitted_predictor):
        assert store.stats()["entries"] == 0
        store.save(fast_corp_config, "d1", fitted_predictor)
        store.save(fast_corp_config, "d2", fitted_predictor)
        stats = store.stats()
        assert stats["entries"] == 2 and len(store) == 2
        assert stats["total_bytes"] > 0
        assert stats["saves"] == 2
        assert store.clear() == 2
        assert store.stats()["entries"] == 0
        assert list(store.root.glob("*")) == []

    def test_clear_missing_dir(self, tmp_path):
        assert PredictorStore(tmp_path / "never-created").clear() == 0

    def test_stray_temp_files_invisible(
        self, store, fast_corp_config, fitted_predictor
    ):
        store.save(fast_corp_config, "d", fitted_predictor)
        (store.root / ".k.npz.tmp.123").write_bytes(b"partial write")
        assert store.stats()["entries"] == 1
        assert store.load(fast_corp_config, "d") is not None

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envdir"))
        assert default_store_dir() == tmp_path / "envdir"

    def test_default_dir_expands_tilde(self, monkeypatch):
        # A literal `~` must resolve to $HOME, not a CWD dir named "~".
        monkeypatch.setenv("REPRO_CACHE_DIR", "~/repro-cache")
        resolved = default_store_dir()
        assert resolved == Path.home() / "repro-cache"
        assert "~" not in str(resolved)

    def test_default_dir_expands_xdg_tilde(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "~/xdg-cache")
        resolved = default_store_dir()
        assert resolved == Path.home() / "xdg-cache" / "repro-corp" / "predictors"
        assert "~" not in str(resolved)

    def test_unfitted_save_rejected(self, store, fast_corp_config):
        with pytest.raises(ValueError):
            store.save(fast_corp_config, "d", CorpPredictor())


class TestFamilyIsolation:
    """v1.6: family-keyed fingerprints keep predictor zoos apart."""

    @pytest.fixture()
    def fitted_quantile(self, history_trace):
        from repro.forecast.quantile import QuantileHistogramPredictor

        return QuantileHistogramPredictor().fit(history_trace)

    def test_family_is_part_of_the_fingerprint(self, fast_corp_config):
        corp = fit_fingerprint(fast_corp_config, "d")
        assert corp == fit_fingerprint(fast_corp_config, "d", family="corp")
        for family in ("quantile", "classify", "ets", "markov"):
            assert fit_fingerprint(fast_corp_config, "d", family) != corp

    def test_non_corp_round_trip(
        self, store, fast_corp_config, fitted_quantile
    ):
        from repro.forecast.quantile import QuantileHistogramPredictor

        store.save(fast_corp_config, "d", fitted_quantile)
        loaded = store.load(fast_corp_config, "d", family="quantile")
        assert isinstance(loaded, QuantileHistogramPredictor)
        assert loaded.fitted
        for a, b in zip(fitted_quantile.seed_errors, loaded.seed_errors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            fitted_quantile.window_sigma, loaded.window_sigma
        )

    def test_families_never_cross_load(
        self, store, fast_corp_config, fitted_quantile, fitted_predictor
    ):
        store.save(fast_corp_config, "d", fitted_quantile)
        # Same config and digest, corp family: distinct key, so a miss.
        assert store.load(fast_corp_config, "d") is None
        store.save(fast_corp_config, "d", fitted_predictor)
        assert store.load(fast_corp_config, "d") is not None
        assert store.load(fast_corp_config, "d", family="classify") is None

    def test_non_corp_artifacts_never_donate(
        self, store, fast_corp_config, fitted_quantile
    ):
        # Warm starts seed DNN weights; other families are ineligible.
        store.save(fast_corp_config, "d1", fitted_quantile)
        assert store.nearest(fast_corp_config, exclude_digest="d2") is None

    def test_legacy_sidecar_without_family_counts_as_corp(
        self, store, fast_corp_config, fitted_predictor
    ):
        store.save(fast_corp_config, "d1", fitted_predictor)
        key = fit_fingerprint(fast_corp_config, "d1")
        meta_path = store.root / f"{key}.json"
        meta = json.loads(meta_path.read_text())
        meta.pop("family")
        meta_path.write_text(json.dumps(meta))
        assert store.nearest(fast_corp_config, exclude_digest="d2") is not None

    def test_family_stamped_in_sidecar(
        self, store, fast_corp_config, fitted_quantile, fitted_predictor
    ):
        store.save(fast_corp_config, "d", fitted_quantile)
        store.save(fast_corp_config, "d", fitted_predictor)
        families = set()
        for meta_path in store.root.glob("*.json"):
            families.add(json.loads(meta_path.read_text())["family"])
        assert families == {"quantile", "corp"}
