"""Cross-module integration tests: the four methods on one shared workload.

These are the repository's "does the whole thing hang together" checks —
a scaled-down version of the benchmark harness with structural (not
statistical) assertions, so they stay robust at test sizes.
"""

import numpy as np
import pytest

from repro import (
    CloudScaleScheduler,
    ClusterProfile,
    ClusterSimulator,
    CorpConfig,
    CorpScheduler,
    DraScheduler,
    METHOD_ORDER,
    RccrScheduler,
    SimulationConfig,
)

from .conftest import make_short_trace


@pytest.fixture(scope="module")
def shared_trace():
    return make_short_trace(n_jobs=35, seed=91)


@pytest.fixture(scope="module")
def shared_history():
    return make_short_trace(
        n_jobs=120, seed=92, arrival_span_s=None, arrival_rate_per_s=0.2
    )


@pytest.fixture(scope="module")
def all_results(shared_trace, shared_history, fast_corp_config, fitted_predictor):
    def make(name):
        if name == "CORP":
            return CorpScheduler(fast_corp_config, predictor=fitted_predictor)
        if name == "RCCR":
            return RccrScheduler(seed=1)
        if name == "CloudScale":
            return CloudScaleScheduler(seed=1)
        return DraScheduler(seed=1)

    results = {}
    for name in METHOD_ORDER:
        scheduler = make(name)
        sim = ClusterSimulator(
            ClusterProfile.palmetto(n_pms=4, vms_per_pm=2),
            scheduler,
            SimulationConfig(),
        )
        results[name] = sim.run(shared_trace, history=shared_history)
    return results


class TestAllMethodsRun:
    def test_every_method_completes_every_job(self, all_results):
        for name, result in all_results.items():
            assert result.all_done, name

    def test_every_method_produces_metrics(self, all_results):
        for name, result in all_results.items():
            summary = result.summary()
            assert 0.0 < summary["overall_utilization"] <= 1.0, name
            assert 0.0 <= summary["slo_violation_rate"] <= 1.0, name

    def test_every_method_tracks_predictions(self, all_results):
        for name, result in all_results.items():
            assert result.prediction_error_rate is not None, name
            assert 0.0 <= result.prediction_error_rate <= 1.0, name

    def test_every_method_charges_latency(self, all_results):
        for name, result in all_results.items():
            assert result.allocation_latency_s > 0.0, name

    def test_only_opportunistic_schemes_place_riders(self, all_results):
        for name in ("CloudScale", "DRA"):
            riders = [j for j in all_results[name].jobs if j.opportunistic]
            assert riders == [], name


class TestCommitmentInvariants:
    def test_utilization_denominator_deduplicates_riders(
        self, shared_trace, shared_history, fast_corp_config, fitted_predictor
    ):
        """Riders add demand but no commitment, so a run with riders
        must show overall utilization at least as high as the identical
        run with reuse disabled."""
        import dataclasses

        with_reuse = CorpScheduler(fast_corp_config, predictor=fitted_predictor)
        sim = ClusterSimulator(
            ClusterProfile.palmetto(n_pms=4, vms_per_pm=2),
            with_reuse,
            SimulationConfig(),
        )
        result_reuse = sim.run(shared_trace, history=shared_history)

        cfg = dataclasses.replace(fast_corp_config, probability_threshold=1.0)
        no_reuse = CorpScheduler(cfg, predictor=fitted_predictor)
        sim = ClusterSimulator(
            ClusterProfile.palmetto(n_pms=4, vms_per_pm=2),
            no_reuse,
            SimulationConfig(),
        )
        result_none = sim.run(shared_trace, history=shared_history)
        riders = sum(1 for j in result_reuse.jobs if j.opportunistic)
        if riders > 0:
            assert (
                result_reuse.summary()["overall_utilization"]
                >= result_none.summary()["overall_utilization"] - 1e-6
            )

    def test_ec2_latency_above_cluster(self, shared_trace, shared_history):
        """The EC2 RTT model must raise the modeled allocation latency
        for the same scheduler and workload (comm-ops dominate)."""
        results = {}
        for profile in (
            ClusterProfile.palmetto(n_pms=15, vms_per_pm=2),
            ClusterProfile(
                name="ec2ish",
                n_pms=30,
                pm_capacity=ClusterProfile.ec2().pm_capacity,
                vms_per_pm=1,
                comm_latency_s=ClusterProfile.ec2().comm_latency_s,
            ),
        ):
            sched = RccrScheduler(seed=2)
            sim = ClusterSimulator(profile, sched, SimulationConfig())
            sim.run(shared_trace, history=shared_history)
            results[profile.name] = sched.latency.comm_s
        assert results["ec2ish"] > results["palmetto"]


class TestDeterminism:
    def test_identical_runs_identical_outcomes(
        self, shared_trace, shared_history, fast_corp_config, fitted_predictor
    ):
        outcomes = []
        for _ in range(2):
            sched = CorpScheduler(fast_corp_config, predictor=fitted_predictor)
            sim = ClusterSimulator(
                ClusterProfile.palmetto(n_pms=4, vms_per_pm=2),
                sched,
                SimulationConfig(),
            )
            result = sim.run(shared_trace, history=shared_history)
            summary = result.summary()
            summary.pop("allocation_latency_s")
            outcomes.append(summary)
        assert outcomes[0] == outcomes[1]
