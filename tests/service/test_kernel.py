"""The event kernel: batch equivalence, event order, truncation, snapshots.

The load-bearing guarantee is that manually stepping the kernel event
by event reproduces :meth:`ClusterSimulator.run` exactly (the golden
suite separately pins that the batch path itself never drifted).
"""

import pytest

from repro import api
from repro.experiments.runner import METHOD_ORDER
from repro.obs import MemorySink, capture_events
from repro.service import EventKind, SchedulerKernel
from repro.service.daemon import build_kernel

#: Wall-clock-only metric, legitimately different between two runs.
_SKIP = {"allocation_latency_s"}


def _comparable(summary):
    return {k: v for k, v in summary.items() if k not in _SKIP}


def _small_max_slots(scenario, max_slots):
    import dataclasses

    sim_config = dataclasses.replace(scenario.sim_config, max_slots=max_slots)
    return dataclasses.replace(scenario, sim_config=sim_config)


class TestBatchEquivalence:
    @pytest.mark.parametrize("method", METHOD_ORDER)
    @pytest.mark.parametrize("intensity", [None, 0.5])
    def test_manual_drive_matches_batch_run(
        self, small_scenario, tiny_corp_config, shared_cache, method, intensity
    ):
        plan = None
        if intensity is not None:
            plan = api.build_fault_plan(seed=0, intensity=intensity)
        scenario = small_scenario.with_fault_plan(plan)
        batch = api.run_one(
            scenario=scenario,
            method=method,
            corp_config=tiny_corp_config,
            predictor_cache=shared_cache,
        )
        kernel = build_kernel(
            scenario=scenario,
            method=method,
            corp_config=tiny_corp_config,
            predictor_cache=shared_cache,
            streaming=False,
        )
        while kernel.advance() is not None:
            pass
        assert kernel.finished
        assert _comparable(kernel.result().summary()) == _comparable(
            batch.summary()
        )

    def test_streaming_submit_matches_batch(self, small_scenario):
        batch = api.run_one(scenario=small_scenario, method="DRA")
        kernel = build_kernel(
            scenario=small_scenario, method="DRA", streaming=True
        )
        assert kernel.idle and not kernel.finished
        for record in small_scenario.evaluation_trace():
            kernel.submit(record)
        kernel.run_until_blocked()
        assert kernel.idle and not kernel.finished  # streaming never "ends"
        assert _comparable(kernel.result().summary()) == _comparable(
            batch.summary()
        )


class TestEventOrder:
    def test_within_slot_priority_and_single_tick(self, small_scenario):
        plan = api.build_fault_plan(seed=0, intensity=0.5)
        kernel = build_kernel(
            scenario=small_scenario.with_fault_plan(plan),
            method="RCCR",
            streaming=False,
        )
        events = []
        while (event := kernel.advance()) is not None:
            events.append(event)

        last = None
        ticks_per_slot = {}
        for event in events:
            if last is not None:
                assert event.slot >= last.slot, "slots must be monotone"
                if event.slot == last.slot:
                    assert event.kind >= last.kind, (
                        "within-slot order is restore < fault < submit < tick"
                    )
            if event.kind is EventKind.SLOT_TICK:
                ticks_per_slot[event.slot] = ticks_per_slot.get(event.slot, 0) + 1
            last = event
        assert set(ticks_per_slot.values()) == {1}
        # every executed slot saw its fault-layer phases
        fault_slots = {
            e.slot for e in events if e.kind is EventKind.FAULT_DUE
        }
        restore_slots = {
            e.slot for e in events if e.kind is EventKind.VM_RESTORED
        }
        assert fault_slots == restore_slots == set(ticks_per_slot)

    def test_submission_events_carry_records(self, small_scenario):
        kernel = build_kernel(
            scenario=small_scenario, method="DRA", streaming=False
        )
        submitted = []
        while (event := kernel.advance()) is not None:
            if event.kind is EventKind.JOB_SUBMITTED:
                assert event.record is not None
                submitted.append(event.record.task_id)
            else:
                assert event.record is None
        assert len(submitted) == len(set(submitted)) == small_scenario.n_jobs


class TestTruncation:
    def test_truncated_run_flagged_and_warned(self, small_scenario):
        scenario = _small_max_slots(small_scenario, 3)
        with capture_events(MemorySink()) as sink:
            result = api.run_one(scenario=scenario, method="RCCR")
        assert result.truncated
        assert result.n_slots == 3
        assert result.summary()["truncated"] == 1.0
        warnings = [e for e in sink.events if e.name == "warning"]
        assert len(warnings) == 1
        fields = warnings[0].fields
        assert fields["kind"] == "run_truncated"
        assert fields["max_slots"] == 3
        assert (
            fields["pending"]
            + fields["running"]
            + fields["backlog"]
            + fields["arrivals_remaining"]
        ) > 0

    def test_completed_run_not_flagged(self, small_scenario):
        result = api.run_one(scenario=small_scenario, method="RCCR")
        assert not result.truncated
        assert "truncated" not in result.summary()

    def test_truncated_run_passes_invariant_checks(self, small_scenario):
        # Job conservation counts what was *submitted*, so stopping at
        # max_slots with work in flight is not an invariant violation.
        scenario = _small_max_slots(small_scenario, 3)
        report = api.check_run(scenario=scenario, methods=("RCCR",))
        assert report.ok, report.violations
        assert report.summaries["RCCR"].get("truncated") == 1.0


class TestStreamingSubmit:
    def test_past_slot_clamped_to_next(self, small_scenario):
        kernel = build_kernel(
            scenario=small_scenario, method="DRA", streaming=True
        )
        records = list(small_scenario.evaluation_trace())
        kernel.submit(records[0], slot=0)
        kernel.run_until_blocked()
        assert kernel.next_slot > 0
        arrival = kernel.submit(records[1], slot=0)
        assert arrival == kernel.next_slot

    def test_submit_to_finished_kernel_raises(self, small_scenario):
        kernel = build_kernel(
            scenario=small_scenario, method="DRA", streaming=False
        )
        kernel.run_until_blocked()
        assert kernel.finished
        record = next(iter(small_scenario.evaluation_trace()))
        with pytest.raises(RuntimeError):
            kernel.submit(record)


class TestSnapshot:
    def test_restores_are_independent_and_repeatable(self, small_scenario):
        kernel = build_kernel(
            scenario=small_scenario, method="DRA", streaming=False
        )
        for _ in range(10):
            kernel.advance()
        snapshot = kernel.snapshot()
        first = snapshot.restore()
        second = snapshot.restore()
        assert first is not second
        assert first.sim is not kernel.sim
        first.run_until_blocked()
        second.run_until_blocked()
        skip = {"allocation_latency_s"}
        a = {k: v for k, v in first.result().summary().items() if k not in skip}
        b = {k: v for k, v in second.result().summary().items() if k not in skip}
        assert a == b
