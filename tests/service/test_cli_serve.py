"""The ``repro serve`` subcommand and the shared truncation warning."""

import json


class TestServeCommand:
    def test_parser_options(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["serve", "--jobs", "12", "--method", "RCCR", "--faults"]
        )
        assert args.jobs == 12
        assert args.method == "RCCR"
        assert args.faults == 0.3

    def test_serve_command_runs(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "serve", "--jobs", "10", "--seed", "3", "--method", "RCCR",
                "--show-placements", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "10 job(s) submitted" in out
        assert "placement update(s) streamed" in out
        assert "-> vm" in out  # the echoed placement lines

    def test_serve_streams_events_jsonl(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "events.jsonl"
        assert main(
            ["serve", "--jobs", "8", "--method", "DRA", "--events", str(path)]
        ) == 0
        names = {
            json.loads(line)["event"]
            for line in path.read_text().splitlines()
        }
        assert "slot" in names and "placement" in names


class TestTruncationWarning:
    def test_warns_on_truncated_result(self, capsys, small_scenario):
        import dataclasses

        from repro import api
        from repro.__main__ import _warn_truncated

        scenario = dataclasses.replace(
            small_scenario,
            sim_config=dataclasses.replace(small_scenario.sim_config, max_slots=3),
        )
        result = api.run_one(scenario=scenario, method="RCCR")
        _warn_truncated({"RCCR": result})
        assert "truncated at max_slots" in capsys.readouterr().err

    def test_silent_on_complete_result(self, capsys, small_scenario):
        from repro import api
        from repro.__main__ import _warn_truncated

        result = api.run_one(scenario=small_scenario, method="RCCR")
        _warn_truncated({"RCCR": result})
        assert capsys.readouterr().err == ""
