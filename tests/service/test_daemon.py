"""The asyncio allocation service: submit / stream / drain lifecycle.

No async test plugin is assumed: each test drives its own event loop
with ``asyncio.run``.
"""

import asyncio

import pytest

from repro import api
from repro.service import PlacementUpdate, open_service

_SKIP = {"allocation_latency_s"}


def _comparable(summary):
    return {k: v for k, v in summary.items() if k not in _SKIP}


class TestLifecycle:
    def test_submit_stream_drain(self, small_scenario):
        async def go():
            updates = []

            async def consume(svc):
                async for update in svc.placements():
                    updates.append(update)

            async with open_service(
                scenario=small_scenario, method="DRA"
            ) as svc:
                consumer = asyncio.ensure_future(consume(svc))
                n = await svc.submit_trace(small_scenario.evaluation_trace())
                result = await svc.drain()
                await consumer
            return n, updates, result

        n, updates, result = asyncio.run(go())
        assert n == small_scenario.n_jobs
        assert result.n_submitted == n
        # every non-rejected job produced exactly one streamed placement
        assert len(updates) == n - result.n_rejected
        assert all(isinstance(u, PlacementUpdate) for u in updates)
        assert all(u.vm_id is not None for u in updates)
        assert all(u.method == "DRA" for u in updates)
        slots = [u.slot for u in updates]
        assert slots == sorted(slots)

    def test_drain_matches_batch_run(self, small_scenario):
        # seed feeds the scheduler factories on both paths; they must
        # match for the randomized baselines (DRA) to be comparable
        batch = api.run_one(scenario=small_scenario, method="DRA", seed=0)

        async def go():
            async with open_service(
                scenario=small_scenario, method="DRA", seed=0
            ) as svc:
                await svc.submit_trace(small_scenario.evaluation_trace())
                return await svc.drain()

        result = asyncio.run(go())
        assert _comparable(result.summary()) == _comparable(batch.summary())

    def test_drain_idempotent_and_submit_after_drain_raises(
        self, small_scenario
    ):
        async def go():
            records = list(small_scenario.evaluation_trace())
            async with open_service(
                scenario=small_scenario, method="DRA"
            ) as svc:
                for record in records[:-1]:
                    await svc.submit(record)
                first = await svc.drain()
                second = await svc.drain()
                assert second is first
                with pytest.raises(RuntimeError):
                    await svc.submit(records[-1])
                assert svc.result is first

        asyncio.run(go())

    def test_not_started_raises(self, small_scenario):
        svc = open_service(scenario=small_scenario, method="DRA")
        with pytest.raises(RuntimeError):
            svc.kernel


class TestStreaming:
    def test_late_subscriber_replays_history(self, small_scenario):
        async def go():
            async with open_service(
                scenario=small_scenario, method="DRA"
            ) as svc:
                await svc.submit_trace(small_scenario.evaluation_trace())
                result = await svc.drain()
                # subscribed only after the run fully drained
                replayed = [u async for u in svc.placements()]
                assert replayed == list(svc.history)
                assert len(replayed) == result.n_submitted - result.n_rejected

        asyncio.run(go())

    def test_no_replay_stream_starts_empty_after_drain(self, small_scenario):
        async def go():
            async with open_service(
                scenario=small_scenario, method="DRA"
            ) as svc:
                await svc.submit_trace(small_scenario.evaluation_trace())
                await svc.drain()
                late = [u async for u in svc.placements(replay=False)]
                assert late == []

        asyncio.run(go())

    def test_two_subscribers_see_the_same_stream(self, small_scenario):
        async def go():
            seen = ([], [])

            async def consume(svc, bucket):
                async for update in svc.placements():
                    bucket.append(update)

            async with open_service(
                scenario=small_scenario, method="DRA"
            ) as svc:
                tasks = [
                    asyncio.ensure_future(consume(svc, bucket))
                    for bucket in seen
                ]
                await svc.submit_trace(small_scenario.evaluation_trace())
                await svc.drain()
                await asyncio.gather(*tasks)
            assert seen[0] == seen[1] != []

        asyncio.run(go())


class TestAutoAdvance:
    def test_auto_advance_completes(self, small_scenario):
        async def go():
            async with open_service(
                scenario=small_scenario, method="DRA", auto_advance=True
            ) as svc:
                await svc.submit_trace(small_scenario.evaluation_trace())
                # let the background pump make progress on its own
                for _ in range(50):
                    await asyncio.sleep(0)
                assert svc.kernel.executed_slots > 0
                return await svc.drain()

        result = asyncio.run(go())
        assert result.n_submitted == small_scenario.n_jobs


class TestOpenService:
    def test_unknown_testbed_rejected(self):
        with pytest.raises(ValueError):
            open_service(testbed="borg")

    def test_unknown_method_rejected(self, small_scenario):
        svc = open_service(scenario=small_scenario, method="Borg")
        with pytest.raises(ValueError):
            asyncio.run(svc.start())

    def test_fault_plan_attached(self, small_scenario):
        plan = api.build_fault_plan(seed=0, intensity=0.5)

        async def go():
            async with open_service(
                scenario=small_scenario, method="RCCR", fault_plan=plan
            ) as svc:
                await svc.submit_trace(small_scenario.evaluation_trace())
                return await svc.drain()

        result = asyncio.run(go())
        assert result.resilience is not None

    def test_update_as_dict(self):
        update = PlacementUpdate(
            slot=3, job_id=7, vm_id=1, opportunistic=True, method="CORP"
        )
        assert update.as_dict() == {
            "slot": 3,
            "job": 7,
            "vm": 1,
            "opportunistic": True,
            "method": "CORP",
        }
