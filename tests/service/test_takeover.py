"""Standby-takeover drill: a snapshot-restored kernel must not diverge."""

import json

import pytest

from repro import api
from repro.faults.takeover import TakeoverReport, takeover_run


class TestTakeoverDeterminism:
    @pytest.mark.parametrize("method", ["RCCR", "DRA"])
    def test_standby_matches_live(self, small_scenario, method):
        report = takeover_run(scenario=small_scenario, method=method)
        assert isinstance(report, TakeoverReport)
        assert report.ok, report.divergence
        assert report.takeover_slot > 0
        assert report.events_after_takeover > 0
        assert report.live_summary  # non-empty summaries on both sides
        assert report.standby_summary

    def test_corp_standby_matches_live(
        self, small_scenario, tiny_corp_config, shared_cache
    ):
        report = takeover_run(
            scenario=small_scenario,
            method="CORP",
            corp_config=tiny_corp_config,
            predictor_cache=shared_cache,
        )
        assert report.ok, report.divergence

    def test_faulted_standby_matches_live(self, small_scenario):
        # the standby must also resume mid-flight fault-injector state
        plan = api.build_fault_plan(seed=0, intensity=0.5)
        report = takeover_run(
            scenario=small_scenario, method="RCCR", fault_plan=plan
        )
        assert report.ok, report.divergence
        assert "evictions" in report.live_summary

    def test_explicit_takeover_slot(self, small_scenario):
        report = takeover_run(
            scenario=small_scenario, method="DRA", takeover_slot=1
        )
        assert report.ok, report.divergence
        assert report.takeover_slot == 1


class TestTakeoverReport:
    def test_as_dict_is_json_ready(self, small_scenario):
        report = takeover_run(scenario=small_scenario, method="DRA")
        payload = report.as_dict()
        assert payload["ok"] is True
        assert payload["method"] == "DRA"
        json.dumps(payload)  # must serialize without casting

    def test_api_reexport(self):
        assert api.takeover_run is takeover_run
        assert api.TakeoverReport is TakeoverReport

    def test_unknown_testbed_rejected(self):
        with pytest.raises(ValueError):
            takeover_run(testbed="borg")
