"""Shared fixtures for the service layer: one tiny scenario + warm cache.

Every test here runs real simulations, so the scenario is small (20
jobs on a 4-PM cluster) and all CORP runs share one
:class:`PredictorCache` — the DNN/HMM fit happens once per module.
"""

import pytest

from repro.cluster.profiles import ClusterProfile
from repro.core.config import CorpConfig
from repro.experiments.runner import PredictorCache
from repro.experiments.scenarios import cluster_scenario
from repro.obs import OBS


@pytest.fixture(autouse=True)
def pristine_observer():
    OBS.reset()
    yield
    OBS.reset()


@pytest.fixture(scope="package")
def small_scenario():
    return cluster_scenario(
        n_jobs=20, seed=5, profile=ClusterProfile.palmetto(n_pms=4, vms_per_pm=2)
    )


@pytest.fixture(scope="package")
def tiny_corp_config():
    return CorpConfig(
        n_hidden_layers=1, units_per_layer=8, train_max_epochs=2, seed=3
    )


@pytest.fixture(scope="package")
def shared_cache():
    return PredictorCache()
