"""Tests for the event-driven kernel, the asyncio daemon and takeover."""
