"""Shared fixtures: small traces, fast configs, a session-scoped predictor.

Test-speed policy: anything that trains the DNN or runs a simulation
uses deliberately tiny sizes; the expensive offline fit is shared
session-wide through ``fitted_predictor``.

Hypothesis runs the derandomized ``ci`` profile by default so CI
failures reproduce locally from the same examples; set
``HYPOTHESIS_PROFILE=dev`` to explore fresh random examples.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

hypothesis_settings.register_profile(
    "ci", derandomize=True, deadline=None, print_blob=True
)
hypothesis_settings.register_profile("dev", deadline=None)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

from repro.cluster.profiles import ClusterProfile
from repro.cluster.resources import ResourceVector
from repro.core.config import CorpConfig
from repro.core.predictor import CorpPredictor
from repro.trace.filters import remove_long_lived
from repro.trace.generator import GoogleTraceGenerator, TraceConfig
from repro.trace.records import Trace
from repro.trace.transform import resample_trace


def fast_trace_config(n_jobs: int = 40, seed: int = 0, **overrides) -> TraceConfig:
    """A 10-second-sampled config mirroring the experiment scenarios."""
    defaults = dict(
        n_jobs=n_jobs,
        arrival_span_s=100.0,
        short_fraction=0.92,
        sample_period_s=10.0,
        burst_prob=0.03,
        burst_mean_len=8.0,
        valley_prob=0.03,
        valley_mean_len=8.0,
        noise_sigma=0.03,
        long_pattern_period_s=600.0,
        seed=seed,
    )
    defaults.update(overrides)
    return TraceConfig(**defaults)


def make_short_trace(n_jobs: int = 40, seed: int = 0, **overrides) -> Trace:
    """Short-lived-only trace at 10-second sampling."""
    raw = GoogleTraceGenerator(fast_trace_config(n_jobs, seed, **overrides)).generate()
    return resample_trace(remove_long_lived(raw), 10.0, seed=seed)


@pytest.fixture(scope="session")
def short_trace() -> Trace:
    """A shared evaluation-style trace (short jobs, 10 s samples)."""
    return make_short_trace(n_jobs=40, seed=11)


@pytest.fixture(scope="session")
def history_trace() -> Trace:
    """A shared history trace big enough to train the predictor on."""
    return make_short_trace(n_jobs=120, seed=12, arrival_span_s=None,
                            arrival_rate_per_s=0.2)


@pytest.fixture(scope="session")
def fast_corp_config() -> CorpConfig:
    """Small DNN and short training so CORP tests stay fast."""
    return CorpConfig(
        n_hidden_layers=2,
        units_per_layer=16,
        train_max_epochs=15,
        seed=3,
    )


@pytest.fixture(scope="session")
def fitted_predictor(fast_corp_config, history_trace) -> CorpPredictor:
    """One fitted CORP predictor shared by every test that needs it."""
    return CorpPredictor(config=fast_corp_config).fit(history_trace)


@pytest.fixture()
def small_profile() -> ClusterProfile:
    """A 4-PM / 8-VM cluster for fast simulations."""
    return ClusterProfile.palmetto(n_pms=4, vms_per_pm=2)


@pytest.fixture()
def rv():
    """Shorthand ResourceVector constructor."""
    return ResourceVector.of


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
