"""Mutation smoke tests: corrupt the scheduler, watch the checker catch it.

Each test monkeypatches one deliberate bug into the product code and
asserts the invariant checker reports *exactly* the violation class that
bug produces — the checker's own regression test.
"""

from __future__ import annotations

from dataclasses import replace

from repro import api
from repro.cluster.machine import VirtualMachine
from repro.cluster.profiles import ClusterProfile
from repro.core.preemption import PreemptionGate
from repro.forecast.confidence import PredictionErrorTracker


def tight_scenario(jobs: int = 20):
    """A 2-PM / 4-VM cluster the workload genuinely contends for —
    over-allocation bugs only manifest once capacity runs out."""
    scenario = api.build_scenario(jobs=jobs)
    return replace(
        scenario, profile=ClusterProfile.palmetto(n_pms=2, vms_per_pm=2)
    )


class TestOverAllocation:
    def test_ignored_commitments_are_caught(self, monkeypatch):
        """A VM that forgets its commitments admits infeasible primaries.

        Patching ``unallocated`` to hand out the full capacity disables
        both candidate filtering and ``add_placement``'s guard, so the
        scheduler over-commits.  The packing rule recomputes the free
        capacity from the placement list itself and must flag it.
        """

        def bogus_unallocated(self: VirtualMachine):
            return self.capacity  # ignores self._committed entirely

        monkeypatch.setattr(VirtualMachine, "unallocated", bogus_unallocated)
        report = api.check_run(scenario=tight_scenario(), methods=("DRA",))
        assert not report.ok
        rules = {v.rule for v in report.violations}
        assert "packing" in rules
        # Over-commitment corrupts capacity accounting too; nothing else.
        assert rules <= {"packing", "capacity"}
        flagged = [v for v in report.violations if v.rule == "packing"]
        assert any("exceeds" in v.detail for v in flagged)


class TestBogusUnlock:
    def test_gate_bypass_is_caught(self, monkeypatch):
        """An Eq. 21 gate that always unlocks must be contradicted by the
        tracked evidence the checker re-derives."""
        monkeypatch.setattr(
            PreemptionGate, "all_unlocked", lambda self: True
        )
        monkeypatch.setattr(
            PredictionErrorTracker,
            "probability_within",
            lambda self, tolerance: 0.0,
        )
        report = api.check_run(jobs=12, methods=("CORP",))
        assert not report.ok
        rules = {v.rule for v in report.violations}
        assert rules == {"gate"}
        details = " ".join(v.detail for v in report.violations)
        assert "zero error samples" in details or "below" in details
