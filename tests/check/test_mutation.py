"""Mutation smoke tests: corrupt the scheduler, watch the checker catch it.

Each test monkeypatches one deliberate bug into the product code and
asserts the invariant checker reports *exactly* the violation class that
bug produces — the checker's own regression test.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import api
from repro.cluster.machine import VirtualMachine
from repro.cluster.profiles import ClusterProfile
from repro.core.preemption import PreemptionGate
from repro.core.vm_selection import CandidateSet
from repro.forecast.confidence import PredictionErrorTracker


def tight_scenario(jobs: int = 20):
    """A 2-PM / 4-VM cluster the workload genuinely contends for —
    over-allocation bugs only manifest once capacity runs out."""
    scenario = api.build_scenario(jobs=jobs)
    return replace(
        scenario, profile=ClusterProfile.palmetto(n_pms=2, vms_per_pm=2)
    )


class TestOverAllocation:
    def test_ignored_commitments_are_caught(self, monkeypatch):
        """A VM that forgets its commitments admits infeasible primaries.

        Patching ``unallocated`` to hand out the full capacity disables
        both candidate filtering and ``add_placement``'s guard, so the
        scheduler over-commits.  The packing rule recomputes the free
        capacity from the placement list itself and must flag it.
        """

        def bogus_unallocated(self: VirtualMachine):
            return self.capacity  # ignores self._committed entirely

        monkeypatch.setattr(VirtualMachine, "unallocated", bogus_unallocated)
        report = api.check_run(scenario=tight_scenario(), methods=("DRA",))
        assert not report.ok
        rules = {v.rule for v in report.violations}
        assert "packing" in rules
        # Over-commitment corrupts capacity accounting too; nothing else.
        assert rules <= {"packing", "capacity"}
        flagged = [v for v in report.violations if v.rule == "packing"]
        assert any("exceeds" in v.detail for v in flagged)


class TestBogusUnlock:
    def test_gate_bypass_is_caught(self, monkeypatch):
        """An Eq. 21 gate that always unlocks must be contradicted by the
        tracked evidence the checker re-derives."""
        monkeypatch.setattr(
            PreemptionGate, "all_unlocked", lambda self: True
        )
        monkeypatch.setattr(
            PredictionErrorTracker,
            "probability_within",
            lambda self, tolerance: 0.0,
        )
        report = api.check_run(jobs=12, methods=("CORP",))
        assert not report.ok
        rules = {v.rule for v in report.violations}
        assert rules == {"gate"}
        details = " ".join(v.detail for v in report.violations)
        assert "zero error samples" in details or "below" in details


class TestBrokenPipelineBarrier:
    def test_partial_drain_is_caught(self, monkeypatch):
        """A pipeline barrier that stops draining early submits phase
        ``N+1`` while phase-``N`` jobs are still pending/running.  The
        pipeline rule re-derives phase membership at every phase
        submission and must flag exactly that — nothing else in the
        run is corrupted, so no other rule may fire."""
        from repro.experiments.scenarios import pipeline_scenario
        from repro.experiments.workloads import pipeline as pipeline_mod

        def leaky_drain(kernel):
            # Process a handful of events instead of draining to idle:
            # earlier-phase jobs are left live in the simulator.
            for _ in range(3):
                kernel.advance()

        monkeypatch.setattr(pipeline_mod, "_drain_phase", leaky_drain)
        scenario = pipeline_scenario(18, n_phases=3)
        report = api.check_run(scenario=scenario, methods=("DRA",))
        assert not report.ok
        rules = {v.rule for v in report.violations}
        assert rules == {"pipeline"}
        details = " ".join(v.detail for v in report.violations)
        assert "phase" in details and "DAG" in details

    def test_healthy_barrier_is_clean(self):
        """The unmutated pipeline run passes the same rule set, and the
        rule actually evaluated (one check per submitted phase)."""
        from repro.experiments.scenarios import pipeline_scenario

        scenario = pipeline_scenario(18, n_phases=3)
        report = api.check_run(scenario=scenario, methods=("DRA",))
        assert report.ok
        assert report.checks.get("pipeline", 0) >= 3


class TestCorruptedVectorSelector:
    def test_anti_most_matched_is_caught(self, monkeypatch):
        """A vectorized selector that picks the *largest*-volume feasible
        VM (Eq. 22 inverted) must be contradicted by the differential
        rule's per-placement scalar re-derivation."""

        def corrupted(self: CandidateSet, demand, reference):
            mask = self.feasible_mask(demand)
            if not mask.any():
                return None
            indices = np.flatnonzero(mask)
            volumes = self.volumes(reference)
            return self.vms[indices[np.argmax(volumes[indices])]]

        monkeypatch.setattr(CandidateSet, "select_most_matched", corrupted)
        report = api.check_run(jobs=15, methods=("CORP",), differential=True)
        assert not report.ok
        rules = {v.rule for v in report.violations}
        assert "differential" in rules
        flagged = [v for v in report.violations if v.rule == "differential"]
        assert any("reference selection" in v.detail for v in flagged)

    def test_wrong_tie_break_is_caught(self, monkeypatch):
        """Even a subtle corruption — right volume, wrong tie winner —
        diverges from the reference loop and must be flagged."""

        original = CandidateSet.select_most_matched

        def highest_id_on_ties(self: CandidateSet, demand, reference):
            chosen = original(self, demand, reference)
            if chosen is None:
                return None
            mask = self.feasible_mask(demand)
            indices = np.flatnonzero(mask)
            volumes = self.volumes(reference)
            tied = indices[volumes[indices] <= volumes.min(initial=np.inf,
                                                           where=mask) + 1e-9]
            return self.vms[tied[np.argmax(self._ids[tied])]]

        monkeypatch.setattr(
            CandidateSet, "select_most_matched", highest_id_on_ties
        )
        report = api.check_run(jobs=15, methods=("CORP",), differential=True)
        rules = {v.rule for v in report.violations}
        # The 1e-9 tie window is far looser than the reference's 1e-12:
        # near-ties flip to the highest id and the differential rule
        # must notice (the volume rule alone cannot — the chosen VM's
        # volume is still within its tolerance of optimal).
        assert "differential" in rules
