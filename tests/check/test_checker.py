"""Clean-run behaviour of the runtime invariant checker (repro.check)."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.check import CHECK, DEFAULT_RULES, InvariantChecker, Violation
from repro.check.rules import ALL_RULES


def _deterministic(summary: dict) -> dict:
    """Summary minus the wall-clock timing field."""
    return {k: v for k, v in summary.items() if k != "allocation_latency_s"}


class TestCheckerConstruction:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown invariant rule"):
            InvariantChecker(rules=("capacity", "bogus"))

    def test_non_positive_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            InvariantChecker(tolerance=0.0)

    def test_default_rules_exclude_differential(self):
        checker = InvariantChecker()
        assert checker.rules == frozenset(DEFAULT_RULES)
        assert "differential" not in checker.rules
        assert set(ALL_RULES) - set(DEFAULT_RULES) == {"differential"}

    def test_violation_rows_are_flat(self):
        v = Violation(rule="capacity", detail="d", slot=3, vm=1)
        row = v.as_row()
        assert row["rule"] == "capacity"
        assert row["slot"] == 3
        assert row["vm"] == 1
        json.dumps(row)  # table/JSON-ready


class TestHub:
    def test_disabled_by_default(self):
        assert CHECK.enabled is False
        assert CHECK.checker is None

    def test_session_installs_and_restores(self):
        checker = InvariantChecker()
        with CHECK.session(checker) as installed:
            assert installed is checker
            assert CHECK.enabled is True
            assert CHECK.checker is checker
        assert CHECK.enabled is False
        assert CHECK.checker is None

    def test_session_does_not_uninstall_a_replacement(self):
        first = InvariantChecker()
        second = InvariantChecker()
        with CHECK.session(first):
            CHECK.install(second)
        # The session only tears down its own checker.
        assert CHECK.enabled is True
        assert CHECK.checker is second
        CHECK.uninstall()
        assert CHECK.enabled is False


class TestCleanRun:
    def test_no_violations_and_rules_exercised(self):
        report = api.check_run(jobs=12, methods=("DRA", "RCCR"))
        assert report.ok, report.rows()
        assert report.n_violations == 0
        assert report.checks["capacity"] > 0
        assert report.checks["jobs"] > 0
        assert report.checks["packing"] > 0
        assert report.n_checks == sum(report.checks.values())
        assert set(report.summaries) == {"DRA", "RCCR"}

    def test_corp_exercises_gate_and_volume(self):
        report = api.check_run(jobs=12, methods=("CORP",))
        assert report.ok, report.rows()
        assert report.checks["gate"] > 0
        assert report.checks["volume"] > 0

    def test_checker_is_read_only(self):
        """Checked summaries match unchecked ones on every deterministic
        field (allocation latency is wall-clock and varies run to run)."""
        plain = api.compare(jobs=12, methods=("DRA", "RCCR"))
        checked = api.check_run(jobs=12, methods=("DRA", "RCCR"))
        for method, result in plain.items():
            assert _deterministic(checked.summaries[method]) == _deterministic(
                result.summary()
            )

    def test_hub_left_disabled_after_check_run(self):
        api.check_run(jobs=10, methods=("DRA",))
        assert CHECK.enabled is False
        assert CHECK.checker is None

    def test_explicit_rule_subset(self):
        report = api.check_run(jobs=10, methods=("DRA",), rules=("jobs",))
        assert report.ok
        assert set(report.checks) == {"jobs"}
        assert report.checks["jobs"] > 0

    def test_parallel_workers_rejected_while_checking(self):
        with CHECK.session(InvariantChecker()):
            with pytest.raises(ValueError, match="workers"):
                api.compare(jobs=10, methods=("DRA",), workers=2)

    def test_faulted_run_conserves_jobs(self):
        plan = api.build_fault_plan(seed=0, intensity=0.5)
        report = api.check_run(jobs=12, methods=("DRA",), fault_plan=plan)
        assert report.ok, report.rows()
        assert report.checks["jobs"] > 0
