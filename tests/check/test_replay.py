"""Differential replay of captured event streams (repro.check.replay)."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.check.replay import replay_events


@pytest.fixture(scope="module")
def capture_path(tmp_path_factory):
    """One small replayable capture shared by the module's tests."""
    path = str(tmp_path_factory.mktemp("replay") / "capture.jsonl")
    report = api.check_run(jobs=10, methods=("DRA", "CORP"), events=path)
    assert report.ok, report.rows()
    return path


def rewrite(src: str, dst, transform) -> str:
    """Copy a JSONL capture line by line through ``transform(record)``."""
    out = dst / "rewritten.jsonl"
    with open(src) as fh, open(out, "w") as wh:
        for line in fh:
            record = transform(json.loads(line))
            if record is not None:
                wh.write(json.dumps(record) + "\n")
    return str(out)


class TestRoundTrip:
    def test_clean_capture_replays_exactly(self, capture_path):
        report = api.replay(events=capture_path)
        assert report.ok, [m.as_row() for m in report.mismatches]
        assert report.n_compared > 0
        assert report.meta["jobs"] == 10
        assert report.meta["methods"] == ["DRA", "CORP"]

    def test_method_subset_replay(self, capture_path):
        report = api.replay(events=capture_path, methods=("DRA",))
        assert report.ok, [m.as_row() for m in report.mismatches]
        assert report.n_compared > 0


class TestDriftDetection:
    def test_corrupted_slot_field_is_localized(self, capture_path, tmp_path):
        state = {"done": False}

        def corrupt(record):
            if record.get("event") == "slot" and not state["done"]:
                state["done"] = True
                record["running"] = record.get("running", 0) + 1
            return record

        path = rewrite(capture_path, tmp_path, corrupt)
        report = replay_events(events=path)
        assert not report.ok
        assert any(
            m.kind == "slot" and m.field == "running"
            for m in report.mismatches
        )

    def test_dropped_record_reported_as_stream_mismatch(
        self, capture_path, tmp_path
    ):
        state = {"dropped": False}

        def drop_one(record):
            if record.get("event") == "placement" and not state["dropped"]:
                state["dropped"] = True
                return None
            return record

        path = rewrite(capture_path, tmp_path, drop_one)
        report = replay_events(events=path)
        assert not report.ok
        assert any(
            m.kind == "stream" and m.field == "placement_count"
            for m in report.mismatches
        )


class TestRejections:
    def test_missing_run_meta_rejected(self, capture_path, tmp_path):
        path = rewrite(
            capture_path,
            tmp_path,
            lambda r: None if r.get("event") == "run_meta" else r,
        )
        with pytest.raises(ValueError, match="run_meta"):
            replay_events(events=path)

    def test_non_replayable_capture_rejected(self, capture_path, tmp_path):
        def mark(record):
            if record.get("event") == "run_meta":
                record["replayable"] = False
            return record

        path = rewrite(capture_path, tmp_path, mark)
        with pytest.raises(ValueError, match="not replayable"):
            replay_events(events=path)

    def test_unknown_method_rejected(self, capture_path):
        with pytest.raises(ValueError, match="RCCR"):
            api.replay(events=capture_path, methods=("RCCR",))

    def test_attached_sink_rejected(self, capture_path, tmp_path):
        api.attach_sink(str(tmp_path / "other.jsonl"))
        try:
            with pytest.raises(RuntimeError, match="sink is attached"):
                api.replay(events=capture_path)
        finally:
            api.detach_sink()


class TestFaultedCapture:
    def test_fault_plan_round_trips_through_run_meta(self, tmp_path):
        """A faulted capture serializes its plan into run_meta; replay
        rebuilds the identical plan and reproduces the faulted run."""
        path = str(tmp_path / "faulted.jsonl")
        plan = api.build_fault_plan(seed=0, intensity=0.5)
        report = api.check_run(
            jobs=10, methods=("DRA",), fault_plan=plan, events=path
        )
        assert report.ok, report.rows()
        replayed = api.replay(events=path)
        assert replayed.ok, [m.as_row() for m in replayed.mismatches]
        assert replayed.meta["fault_plan"] is not None


class TestPrebuiltScenario:
    def test_prebuilt_scenario_capture_is_not_replayable(self, tmp_path):
        """compare(scenario=...) can't embed (jobs, testbed, seed), so its
        capture must refuse replay instead of replaying the wrong run."""
        scenario = api.build_scenario(jobs=10)
        path = str(tmp_path / "prebuilt.jsonl")
        with api.capture_events(path):
            api.compare(scenario=scenario, methods=("DRA",))
        with pytest.raises(ValueError, match="not replayable"):
            replay_events(events=path)
