"""Reference-vs-vectorized differential execution (repro.check.differential)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import api
from repro.check.differential import (
    capture_snapshot,
    diff_outcome,
    reference_outcome,
)
from repro.cluster.machine import Placement, VirtualMachine
from repro.cluster.job import Job
from repro.cluster.resources import ResourceVector

from ..cluster.test_job import make_record


def make_vm_with_jobs(primary_utils, rider_utils):
    vm = VirtualMachine(0, ResourceVector([8, 16, 100]))
    for i, util in enumerate(primary_utils):
        share = len(primary_utils)
        job = Job(
            record=make_record(
                request=(8 / share, 16 / share, 100 / share),
                util=np.full(6, util),
                task_id=i,
            ),
            submit_slot=0,
        )
        vm.add_placement(
            Placement(job=job, vm=vm, reserved=job.requested, opportunistic=False)
        )
        job.start(0, opportunistic=False)
    for i, util in enumerate(rider_utils):
        job = Job(
            record=make_record(
                request=(2, 4, 10), util=np.full(6, util), task_id=100 + i
            ),
            submit_slot=0,
        )
        vm.add_placement(
            Placement(
                job=job, vm=vm, reserved=ResourceVector.zeros(),
                opportunistic=True,
            )
        )
        job.start(0, opportunistic=True)
    return vm


class TestUnitDiff:
    def test_clean_vm_produces_no_diff(self):
        vm = make_vm_with_jobs([0.6, 0.9], [0.5])
        snapshot = capture_snapshot(vm)
        outcome = vm.execute_slot(0)
        assert diff_outcome(snapshot, outcome, vm) == []

    def test_contended_vm_produces_no_diff(self):
        """Riders squeezed by heavy primaries still match the reference."""
        vm = make_vm_with_jobs([0.95, 0.95, 0.95], [0.9, 0.9])
        snapshot = capture_snapshot(vm)
        outcome = vm.execute_slot(0)
        assert diff_outcome(snapshot, outcome, vm) == []

    def test_perturbed_aggregate_is_flagged(self):
        vm = make_vm_with_jobs([0.7], [0.4])
        snapshot = capture_snapshot(vm)
        outcome = vm.execute_slot(0)
        corrupted = replace(
            outcome,
            served_demand=ResourceVector(
                outcome.served_demand.as_array() + 0.5
            ),
        )
        details = diff_outcome(snapshot, corrupted, vm)
        assert len(details) == 1
        assert details[0].startswith("served_demand")

    def test_reference_respects_capacity(self):
        vm = make_vm_with_jobs([0.95, 0.95, 0.95], [0.9])
        ref = reference_outcome(capture_snapshot(vm))
        assert np.all(
            ref.served_demand <= vm.capacity.as_array() + 1e-9
        )
        assert np.all((ref.rates >= 0.0) & (ref.rates <= 1.0))

    def test_changed_placement_list_is_flagged(self):
        vm = make_vm_with_jobs([0.5], [])
        snapshot = capture_snapshot(vm)
        outcome = vm.execute_slot(0)
        vm.placements.clear()
        details = diff_outcome(snapshot, outcome, vm)
        assert details and "placement list changed" in details[0]


class TestEndToEnd:
    def test_differential_rule_clean_over_full_run(self):
        report = api.check_run(
            jobs=10, methods=("CORP", "DRA"), differential=True
        )
        assert report.ok, report.rows()
        assert report.checks["differential"] > 0
