"""The bundled examples import cleanly and expose a main() entry point.

Full executions are exercised manually / in CI-nightly (they run
multi-second simulations); importability plus the __main__ guard is the
regression surface worth pinning here.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # must not run main() on import
    assert callable(getattr(module, "main", None)), path.stem


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "compare_schedulers",
        "iot_burst_queries",
        "capacity_planning",
        "custom_scheduler",
    } <= names
