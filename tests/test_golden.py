"""Golden-trace regression suite: the committed seeded summaries.

The golden file under ``tests/golden/`` freezes the per-method summary
metrics of the seeded 30-job comparison, fault-free and under the seeded
fault plan.  Any behavioural drift in the simulator, schedulers,
predictors or fault layer fails here with the exact metric that moved.
Re-record intentional changes with ``python -m repro golden --update``.
"""

from __future__ import annotations

import os

import pytest

from repro.check.golden import (
    NONDETERMINISTIC_KEYS,
    compute_golden,
    default_golden_path,
    diff_golden,
    golden_digest,
    load_golden,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


@pytest.fixture(scope="module")
def recorded():
    path = default_golden_path(GOLDEN_DIR, jobs=30, testbed="cluster", seed=7)
    if not os.path.exists(path):
        pytest.fail(
            f"missing golden file {path}; record it with "
            f"`python -m repro golden --update`"
        )
    return load_golden(path)


@pytest.fixture(scope="module")
def fresh(recorded):
    meta = recorded["meta"]
    return compute_golden(
        jobs=meta["jobs"],
        testbed=meta["testbed"],
        seed=meta["seed"],
        fault_intensity=meta["fault_intensity"],
        fault_seed=meta["fault_seed"],
    )


class TestGoldenMatch:
    def test_no_drift(self, recorded, fresh):
        drift = diff_golden(recorded, fresh)
        assert not drift, (
            "seeded summaries drifted from tests/golden "
            "(re-record with `python -m repro golden --update` if this "
            "change is intentional):\n  " + "\n  ".join(drift)
        )

    def test_digest_matches(self, recorded, fresh):
        assert recorded["digest"] == golden_digest(recorded)
        assert fresh["digest"] == recorded["digest"]

    def test_covers_all_methods_in_both_sections(self, recorded):
        methods = set(recorded["meta"]["methods"])
        assert set(recorded["fault_free"]) == methods
        assert set(recorded["faulted"]) == methods

    def test_excludes_wall_clock_metrics(self, recorded):
        for section in ("fault_free", "faulted"):
            for summary in recorded[section].values():
                assert not NONDETERMINISTIC_KEYS & set(summary)


class TestGoldenMachinery:
    def test_diff_reports_value_drift(self, recorded):
        import copy

        tampered = copy.deepcopy(recorded)
        method = recorded["meta"]["methods"][0]
        tampered["fault_free"][method]["overall_utilization"] += 0.01
        lines = diff_golden(recorded, tampered)
        assert len(lines) == 1
        assert f"fault_free/{method}/overall_utilization" in lines[0]

    def test_diff_reports_missing_method(self, recorded):
        import copy

        tampered = copy.deepcopy(recorded)
        method = recorded["meta"]["methods"][0]
        del tampered["faulted"][method]
        lines = diff_golden(recorded, tampered)
        assert any(f"faulted/{method}" in line for line in lines)

    def test_default_path_is_parameterized(self):
        path = default_golden_path("g", jobs=30, testbed="cluster", seed=7)
        assert path == os.path.join("g", "cluster_j30_seed7.json")
