"""Golden-trace regression suite: the committed seeded summaries.

The golden files under ``tests/golden/`` freeze the per-method summary
metrics of the seeded 30-job comparison — fault-free and under the
seeded fault plan — plus one file per scenario family (pipeline,
diurnal, storm) pinning the family's extra metrics.  Any behavioural
drift in the simulator, schedulers, predictors, fault layer or workload
drivers fails here with the exact metric that moved.  Re-record
intentional changes with ``python -m repro golden --update``.
"""

from __future__ import annotations

import os

import pytest

from repro.check.golden import (
    GOLDEN_FAMILIES,
    NONDETERMINISTIC_KEYS,
    compute_family_golden,
    compute_golden,
    default_golden_path,
    diff_golden,
    family_golden_path,
    golden_digest,
    load_golden,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: The metric each family golden must pin — proof the scenario actually
#: ran through its workload driver, not the plain path.
FAMILY_METRIC = {
    "pipeline": "pipeline_stall_slots",
    "diurnal": "flash_crowd_p99_wait",
    "storm": "storm_waves",
}


@pytest.fixture(scope="module")
def recorded():
    path = default_golden_path(GOLDEN_DIR, jobs=30, testbed="cluster", seed=7)
    if not os.path.exists(path):
        pytest.fail(
            f"missing golden file {path}; record it with "
            f"`python -m repro golden --update`"
        )
    return load_golden(path)


@pytest.fixture(scope="module")
def fresh(recorded):
    meta = recorded["meta"]
    return compute_golden(
        jobs=meta["jobs"],
        testbed=meta["testbed"],
        seed=meta["seed"],
        fault_intensity=meta["fault_intensity"],
        fault_seed=meta["fault_seed"],
    )


class TestGoldenMatch:
    def test_no_drift(self, recorded, fresh):
        drift = diff_golden(recorded, fresh)
        assert not drift, (
            "seeded summaries drifted from tests/golden "
            "(re-record with `python -m repro golden --update` if this "
            "change is intentional):\n  " + "\n  ".join(drift)
        )

    def test_digest_matches(self, recorded, fresh):
        assert recorded["digest"] == golden_digest(recorded)
        assert fresh["digest"] == recorded["digest"]

    def test_covers_all_methods_in_both_sections(self, recorded):
        methods = set(recorded["meta"]["methods"])
        assert set(recorded["fault_free"]) == methods
        assert set(recorded["faulted"]) == methods

    def test_excludes_wall_clock_metrics(self, recorded):
        for section in ("fault_free", "faulted"):
            for summary in recorded[section].values():
                assert not NONDETERMINISTIC_KEYS & set(summary)


@pytest.fixture(scope="module", params=GOLDEN_FAMILIES)
def family_pair(request):
    family = request.param
    path = family_golden_path(GOLDEN_DIR, family=family, jobs=30, seed=7)
    if not os.path.exists(path):
        pytest.fail(
            f"missing golden file {path}; record it with "
            f"`python -m repro golden --update`"
        )
    recorded = load_golden(path)
    meta = recorded["meta"]
    fresh = compute_family_golden(
        meta["family"], jobs=meta["jobs"], testbed=meta["testbed"],
        seed=meta["seed"],
    )
    return recorded, fresh


class TestFamilyGoldens:
    def test_no_drift(self, family_pair):
        recorded, fresh = family_pair
        drift = diff_golden(recorded, fresh)
        assert not drift, (
            f"{recorded['meta']['family']} scenario summaries drifted from "
            "tests/golden (re-record with `python -m repro golden --update` "
            "if this change is intentional):\n  " + "\n  ".join(drift)
        )

    def test_digest_matches(self, family_pair):
        recorded, fresh = family_pair
        assert recorded["digest"] == golden_digest(recorded)
        assert fresh["digest"] == recorded["digest"]

    def test_covers_all_methods(self, family_pair):
        recorded, _ = family_pair
        assert set(recorded["summaries"]) == set(recorded["meta"]["methods"])

    def test_pins_the_family_metric(self, family_pair):
        recorded, _ = family_pair
        metric = FAMILY_METRIC[recorded["meta"]["family"]]
        for method, summary in recorded["summaries"].items():
            assert metric in summary, (method, metric)

    def test_excludes_wall_clock_metrics(self, family_pair):
        recorded, _ = family_pair
        for summary in recorded["summaries"].values():
            assert not NONDETERMINISTIC_KEYS & set(summary)


class TestGoldenMachinery:
    def test_diff_reports_value_drift(self, recorded):
        import copy

        tampered = copy.deepcopy(recorded)
        method = recorded["meta"]["methods"][0]
        tampered["fault_free"][method]["overall_utilization"] += 0.01
        lines = diff_golden(recorded, tampered)
        assert len(lines) == 1
        assert f"fault_free/{method}/overall_utilization" in lines[0]

    def test_diff_reports_missing_method(self, recorded):
        import copy

        tampered = copy.deepcopy(recorded)
        method = recorded["meta"]["methods"][0]
        del tampered["faulted"][method]
        lines = diff_golden(recorded, tampered)
        assert any(f"faulted/{method}" in line for line in lines)

    def test_default_path_is_parameterized(self):
        path = default_golden_path("g", jobs=30, testbed="cluster", seed=7)
        assert path == os.path.join("g", "cluster_j30_seed7.json")

    def test_family_path_is_parameterized(self):
        path = family_golden_path("g", family="storm", jobs=30, seed=7)
        assert path == os.path.join("g", "storm_j30_seed7.json")

    def test_diff_discovers_family_sections(self, family_pair):
        """The differ iterates whatever sections the payload carries."""
        import copy

        recorded, _ = family_pair
        tampered = copy.deepcopy(recorded)
        method = recorded["meta"]["methods"][0]
        metric = FAMILY_METRIC[recorded["meta"]["family"]]
        tampered["summaries"][method][metric] += 1.0
        lines = diff_golden(recorded, tampered)
        assert len(lines) == 1
        assert f"summaries/{method}/{metric}" in lines[0]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown golden family"):
            compute_family_golden("tsunami")
