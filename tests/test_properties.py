"""Hypothesis property tests on cross-module invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.job import Job, JobState
from repro.cluster.machine import Placement, VirtualMachine
from repro.cluster.resources import ResourceVector
from repro.core.packing import deviation, pack_jobs
from repro.core.vm_selection import (
    min_feasible_volume,
    select_most_matched,
    unused_volume,
)
from repro.hmm.discretize import ThresholdBands
from repro.hmm.forward_backward import forward_backward
from repro.hmm.model import default_fluctuation_model
from repro.hmm.viterbi import viterbi

from .cluster.test_job import make_record

request = st.tuples(
    st.floats(0.1, 8.0), st.floats(0.1, 16.0), st.floats(0.5, 100.0)
)


def jobs_from_requests(requests):
    return [
        Job(record=make_record(request=r, task_id=i), submit_slot=0)
        for i, r in enumerate(requests)
    ]


class TestPackingProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(request, min_size=0, max_size=9))
    def test_partition_property(self, requests):
        """Packing partitions the job set: every job in exactly one entity."""
        jobs = jobs_from_requests(requests)
        entities = pack_jobs(jobs)
        ids = sorted(j for e in entities for j in e.job_ids())
        assert ids == sorted(j.job_id for j in jobs)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(request, min_size=2, max_size=9))
    def test_packed_pairs_have_distinct_dominants(self, requests):
        from repro.core.packing import dominant_resource

        jobs = jobs_from_requests(requests)
        for entity in pack_jobs(jobs):
            if entity.is_packed:
                a, b = entity.jobs
                assert dominant_resource(a.requested) != dominant_resource(b.requested)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(request, min_size=1, max_size=9))
    def test_entity_demand_is_member_sum(self, requests):
        jobs = jobs_from_requests(requests)
        for entity in pack_jobs(jobs):
            expected = ResourceVector.sum(j.requested for j in entity.jobs)
            assert entity.demand == expected


class TestDeviationProperties:
    """Paper Eq. DV(j, i) — the complementary-packing score."""

    @settings(max_examples=60, deadline=None)
    @given(request, request)
    def test_symmetric(self, a, b):
        va, vb = ResourceVector(a), ResourceVector(b)
        assert deviation(va, vb) == pytest.approx(deviation(vb, va))
        reference = ResourceVector([8, 16, 100])
        assert deviation(va, vb, reference) == pytest.approx(
            deviation(vb, va, reference)
        )

    @settings(max_examples=60, deadline=None)
    @given(request, request)
    def test_non_negative(self, a, b):
        assert deviation(ResourceVector(a), ResourceVector(b)) >= 0.0

    @settings(max_examples=40, deadline=None)
    @given(request)
    def test_self_deviation_is_zero(self, a):
        va = ResourceVector(a)
        assert deviation(va, va) == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(request, request)
    def test_closed_form(self, a, b):
        """DV equals its algebraic simplification Σ_k (d_jk − d_ik)² / 2."""
        va, vb = np.asarray(a), np.asarray(b)
        expected = float(np.sum((va - vb) ** 2) / 2)
        assert deviation(ResourceVector(a), ResourceVector(b)) == pytest.approx(
            expected
        )


class TestVolumeProperties:
    """Paper Eq. 22 — the unused-resource volume ordering."""

    @settings(max_examples=60, deadline=None)
    @given(request, request)
    def test_monotone_in_availability(self, a, b):
        """Elementwise-larger availability never has smaller volume."""
        reference = ResourceVector([8, 16, 100])
        lo = ResourceVector(np.minimum(a, b))
        hi = ResourceVector(np.maximum(a, b))
        assert unused_volume(lo, reference) <= unused_volume(hi, reference) + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(request, st.floats(1.0, 10.0))
    def test_antitone_in_reference(self, a, scale):
        """Scaling the reference capacity up scales every volume down."""
        available = ResourceVector(a)
        reference = ResourceVector([8, 16, 100])
        bigger = ResourceVector(reference.as_array() * scale)
        assert (
            unused_volume(available, bigger)
            <= unused_volume(available, reference) + 1e-12
        )

    @settings(max_examples=40, deadline=None)
    @given(st.lists(request, min_size=1, max_size=8), request)
    def test_min_feasible_volume_matches_selection(self, availables, demand):
        """The chosen VM's volume is exactly the feasible minimum."""
        reference = ResourceVector([8, 16, 100])
        vms = [VirtualMachine(i, reference) for i in range(len(availables))]
        candidates = [(vm, ResourceVector(a)) for vm, a in zip(vms, availables)]
        demand_v = ResourceVector(demand)
        best = min_feasible_volume(demand_v, candidates, reference)
        chosen = select_most_matched(demand_v, candidates, reference)
        if best is None:
            assert chosen is None
        else:
            chosen_avail = {vm.vm_id: a for vm, a in candidates}[chosen.vm_id]
            assert unused_volume(chosen_avail, reference) == pytest.approx(best)


class TestSelectionProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(request, min_size=1, max_size=8), request)
    def test_most_matched_is_feasible_and_minimal(self, availables, demand):
        reference = ResourceVector([8, 16, 100])
        vms = [VirtualMachine(i, reference) for i in range(len(availables))]
        candidates = [(vm, ResourceVector(a)) for vm, a in zip(vms, availables)]
        demand_v = ResourceVector(demand)
        chosen = select_most_matched(demand_v, candidates, reference)
        feasible = [
            (vm, a) for vm, a in candidates if demand_v.fits_within(a)
        ]
        if not feasible:
            assert chosen is None
        else:
            assert chosen is not None
            chosen_avail = dict((vm.vm_id, a) for vm, a in candidates)[chosen.vm_id]
            best = min(unused_volume(a, reference) for _, a in feasible)
            assert unused_volume(chosen_avail, reference) == pytest.approx(best)


class TestVmExecutionProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(0.05, 0.95), min_size=1, max_size=4),
        st.lists(st.floats(0.05, 0.95), min_size=0, max_size=3),
    )
    def test_served_demand_never_exceeds_capacity(self, primary_utils, rider_utils):
        vm = VirtualMachine(0, ResourceVector([8, 16, 100]))
        for i, util in enumerate(primary_utils):
            req = (8 / len(primary_utils), 16 / len(primary_utils), 100 / len(primary_utils))
            job = Job(
                record=make_record(request=req, util=np.full(6, util), task_id=i),
                submit_slot=0,
            )
            vm.add_placement(
                Placement(job=job, vm=vm, reserved=job.requested, opportunistic=False)
            )
            job.start(0, opportunistic=False)
        for i, util in enumerate(rider_utils):
            job = Job(
                record=make_record(request=(2, 4, 10), util=np.full(6, util),
                                   task_id=100 + i),
                submit_slot=0,
            )
            vm.add_placement(
                Placement(
                    job=job, vm=vm, reserved=ResourceVector.zeros(),
                    opportunistic=True,
                )
            )
            job.start(0, opportunistic=True)
        outcome = vm.execute_slot(0)
        assert np.all(
            outcome.served_demand.as_array() <= vm.capacity.as_array() + 1e-6
        )
        assert outcome.committed.fits_within(vm.capacity)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.1, 1.0))
    def test_rates_bounded(self, util):
        vm = VirtualMachine(0, ResourceVector([8, 16, 100]))
        job = Job(
            record=make_record(request=(4, 8, 50), util=np.full(6, util)),
            submit_slot=0,
        )
        vm.add_placement(
            Placement(job=job, vm=vm, reserved=job.requested, opportunistic=False)
        )
        job.start(0, opportunistic=False)
        vm.execute_slot(0)
        assert 0.0 <= job.rate_history[0] <= 1.0


class TestHmmProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=40))
    def test_viterbi_never_beats_total_likelihood(self, obs):
        """P(best path, O) <= P(O): the Viterbi path is one term of the sum."""
        model = default_fluctuation_model()
        obs = np.asarray(obs)
        best = viterbi(model, obs).log_probability
        total = forward_backward(model, obs).log_likelihood
        assert best <= total + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=40))
    def test_gamma_is_distribution(self, obs):
        model = default_fluctuation_model()
        gamma = forward_backward(model, np.asarray(obs)).gamma
        assert np.all(gamma >= -1e-12)
        np.testing.assert_allclose(gamma.sum(axis=1), 1.0)


class TestBandsProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=2, max_size=50))
    def test_thresholds_ordered(self, values):
        bands = ThresholdBands.from_history(np.asarray(values))
        assert bands.minimum <= bands.lower_threshold <= bands.mean
        assert bands.mean <= bands.upper_threshold <= bands.maximum
        assert bands.correction_magnitude() >= 0.0


class TestJobProgressProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.1, 1.0), min_size=1, max_size=60))
    def test_completion_time_matches_rates(self, rates):
        """A job completes exactly when cumulative rate reaches its work."""
        job = Job(record=make_record(duration_s=30.0), submit_slot=0)  # 3 slots
        job.start(0, opportunistic=False)
        slot = 0
        for rate in rates:
            if job.state is not JobState.RUNNING:
                break
            job.advance(rate, slot)
            slot += 1
        if job.state is JobState.COMPLETED:
            consumed = sum(rates[: slot])
            assert consumed >= job.nominal_slots - 1e-6
