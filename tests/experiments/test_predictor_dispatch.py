"""``predictor=`` dispatch through the public API and the CLI."""

import pytest

from repro import api
from repro.cluster.profiles import ClusterProfile
from repro.core.config import CorpConfig
from repro.experiments.ablations import run_predictor_ablation
from repro.experiments.scenarios import cluster_scenario
from repro.forecast.quantile import QuantileHistogramPredictor
from repro.obs import OBS, MemorySink


@pytest.fixture(autouse=True)
def pristine_observer():
    OBS.reset()
    yield
    OBS.reset()


@pytest.fixture(scope="module")
def small_scenario():
    return cluster_scenario(
        20, seed=5, profile=ClusterProfile.palmetto(n_pms=4, vms_per_pm=2)
    )


TINY_CFG = dict(n_hidden_layers=1, units_per_layer=8, train_max_epochs=2)


def _behavior(result):
    summary = result.summary()
    summary.pop("allocation_latency_s", None)
    return summary


class TestRunOneDispatch:
    @pytest.mark.parametrize(
        "name", ["quantile", "classify", "ets", "markov"]
    )
    def test_each_family_drives_corp(self, small_scenario, name):
        result = api.run_one(
            scenario=small_scenario, method="CORP", predictor=name
        )
        assert result.all_done

    def test_default_is_corp(self, small_scenario):
        cfg = CorpConfig(seed=5, **TINY_CFG)
        implicit = api.run_one(
            scenario=small_scenario, method="CORP", corp_config=cfg
        )
        explicit = api.run_one(
            scenario=small_scenario,
            method="CORP",
            corp_config=cfg,
            predictor="corp",
        )
        assert _behavior(implicit) == _behavior(explicit)

    def test_baselines_ignore_the_knob(self, small_scenario):
        default = api.run_one(scenario=small_scenario, method="DRA")
        swapped = api.run_one(
            scenario=small_scenario, method="DRA", predictor="quantile"
        )
        assert _behavior(default) == _behavior(swapped)

    def test_unknown_name_rejected_with_registry(self, small_scenario):
        with pytest.raises(ValueError, match="registered: corp, quantile"):
            api.run_one(
                scenario=small_scenario, method="CORP", predictor="bogus"
            )

    def test_prefit_instance_is_used_as_is(self, small_scenario):
        instance = QuantileHistogramPredictor().fit(
            small_scenario.history_trace()
        )
        by_instance = api.run_one(
            scenario=small_scenario, method="CORP", predictor=instance
        )
        by_name = api.run_one(
            scenario=small_scenario, method="CORP", predictor="quantile"
        )
        assert _behavior(by_instance) == _behavior(by_name)


class TestCompareAndSweepDispatch:
    def test_compare_name_path(self, small_scenario):
        results = api.compare(
            scenario=small_scenario,
            methods=("CORP", "DRA"),
            predictor="quantile",
        )
        assert all(r.all_done for r in results.values())

    def test_run_meta_records_the_family(self, small_scenario):
        sink = MemorySink()
        with api.capture_events(sink):
            api.compare(
                jobs=12, seed=3, methods=("DRA",), predictor="quantile"
            )
        meta = [e for e in sink.events if e.name == "run_meta"]
        assert len(meta) == 1
        assert meta[0].to_dict()["predictor"] == "quantile"

    def test_run_meta_default_family_is_corp(self, small_scenario):
        sink = MemorySink()
        with api.capture_events(sink):
            api.compare(jobs=12, seed=3, methods=("DRA",))
        (meta,) = [e for e in sink.events if e.name == "run_meta"]
        assert meta.to_dict()["predictor"] == "corp"

    def test_instance_with_workers_rejected(self, small_scenario):
        instance = QuantileHistogramPredictor()
        with pytest.raises(ValueError, match="process boundaries"):
            api.compare(
                scenario=small_scenario, workers=2, predictor=instance
            )
        with pytest.raises(ValueError, match="process boundaries"):
            api.sweep(
                scenarios=[small_scenario], workers=2, predictor=instance
            )

    def test_sweep_instance_matches_name_path(self, small_scenario):
        instance = QuantileHistogramPredictor().fit(
            small_scenario.history_trace()
        )
        by_instance = api.sweep(
            scenarios=[small_scenario],
            methods=("CORP", "DRA"),
            predictor=instance,
        )
        by_name = api.sweep(
            scenarios=[small_scenario],
            methods=("CORP", "DRA"),
            predictor="quantile",
        )
        assert [r.scheduler_name for r in by_instance] == [
            r.scheduler_name for r in by_name
        ]
        assert [_behavior(r) for r in by_instance] == [
            _behavior(r) for r in by_name
        ]

    def test_parallel_name_path_matches_serial(self, small_scenario):
        serial = api.compare(
            jobs=12, seed=3, methods=("CORP", "DRA"), predictor="quantile"
        )
        parallel = api.compare(
            jobs=12,
            seed=3,
            methods=("CORP", "DRA"),
            predictor="quantile",
            workers=2,
        )
        assert {m: _behavior(r) for m, r in serial.items()} == {
            m: _behavior(r) for m, r in parallel.items()
        }


class TestReplayPassthrough:
    def test_replay_rebuilds_the_captured_family(self, tmp_path):
        events = tmp_path / "ev.jsonl"
        api.attach_sink(str(events))
        try:
            api.compare(
                jobs=12, seed=3, methods=("CORP",), predictor="quantile"
            )
        finally:
            api.detach_sink()
        report = api.replay(events=str(events))
        assert report.ok
        assert report.meta["predictor"] == "quantile"


class TestPredictorAblation:
    def test_summary_per_family(self):
        out = run_predictor_ablation(
            n_jobs=20, seed=5, predictors=("quantile", "classify")
        )
        assert list(out) == ["quantile", "classify"]
        for summary in out.values():
            assert "riders" in summary
            assert 0.0 <= summary["overall_utilization"] <= 1.0

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            run_predictor_ablation(n_jobs=10, predictors=("bogus",))


class TestCliDispatch:
    def test_compare_accepts_predictor_flag(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                ["compare", "--jobs", "12", "--quick",
                 "--predictor", "quantile"]
            )
            == 0
        )
        assert "CORP" in capsys.readouterr().out

    def test_unknown_predictor_is_clean_error(self, capsys):
        from repro.__main__ import main

        code = main(
            ["compare", "--jobs", "12", "--predictor", "bogus"]
        )
        assert code == 2
        assert "unknown predictor 'bogus'" in capsys.readouterr().err

    def test_predictors_command_lists_registry(self, capsys):
        from repro.__main__ import main

        assert main(["predictors"]) == 0
        out = capsys.readouterr().out
        for name in ("corp", "quantile", "classify", "ets", "markov", "auto"):
            assert name in out
