"""Table II regeneration module."""

from repro.experiments.table2 import render_table2, table2_rows


class TestTable2:
    def test_all_paper_parameters_present(self):
        params = {r[0] for r in table2_rows()}
        assert {"N_p", "N_v", "|J|", "l", "P_th", "h", "N_n", "H",
                "theta", "eta"} <= params

    def test_rows_have_four_columns(self):
        assert all(len(r) == 4 for r in table2_rows())

    def test_render_contains_title_and_params(self):
        text = render_table2()
        assert "Table II" in text
        assert "P_th" in text and "0.95" in text
