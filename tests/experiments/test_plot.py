"""Dependency-free SVG rendering."""

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.plot import render_line_chart, save_figure_svg


def sample_series():
    return {"CORP": [0.4, 0.5, 0.6], "DRA": [0.2, 0.25, 0.3]}


class TestRenderLineChart:
    def test_valid_svg_document(self):
        svg = render_line_chart([50, 100, 150], sample_series(), title="T")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<polyline") == 2

    def test_legend_and_labels(self):
        svg = render_line_chart(
            [1, 2, 3], sample_series(), title="My & Title",
            x_label="jobs", y_label="util",
        )
        assert "CORP" in svg and "DRA" in svg
        assert "My &amp; Title" in svg  # escaped
        assert "jobs" in svg and "util" in svg

    def test_point_markers(self):
        svg = render_line_chart([1, 2, 3], sample_series())
        assert svg.count("<circle") == 6

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_line_chart([1, 2], {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            render_line_chart([1, 2, 3], {"a": [1.0, 2.0]})

    def test_constant_series_does_not_divide_by_zero(self):
        svg = render_line_chart([5], {"a": [0.0]})
        assert "<svg" in svg

    def test_single_point(self):
        svg = render_line_chart([10], {"a": [0.3], "b": [0.4]})
        assert svg.count("<circle") == 2


class TestSaveFigureSvg:
    def test_writes_file(self, tmp_path):
        result = FigureResult(
            figure_id="f", title="Fig", x_label="n", x_values=[1, 2]
        )
        result.series = sample_series()
        result.x_values = [1, 2, 3]
        path = save_figure_svg(result, tmp_path / "fig.svg", y_label="rate")
        text = path.read_text()
        assert text.startswith("<svg")
        assert "Fig" in text
