"""Report tables, shape checks and sweep utilities."""

import pytest

from repro.experiments.report import format_series_table, format_table, shape_check
from repro.experiments.sweep import SweepResult, average_summaries, sweep


class TestFormatTable:
    def test_alignment_and_rows(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "2.5000" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_empty_rows(self):
        text = format_table(["x", "y"], [])
        assert "x" in text and "y" in text

    def test_custom_float_format(self):
        text = format_table(["x"], [[0.123456]], float_fmt="{:.2f}")
        assert "0.12" in text


class TestSeriesTable:
    def test_layout(self):
        text = format_series_table(
            "n", [50, 100], {"CORP": [0.5, 0.6], "DRA": [0.2, 0.3]}
        )
        lines = text.splitlines()
        assert lines[0].split() == ["n", "CORP", "DRA"]
        assert "0.6000" in text


class TestShapeCheck:
    def test_ascending_ok(self):
        series = {"a": [1, 1, 1], "b": [2, 2, 2], "c": [3, 3, 3]}
        assert shape_check(series, ["a", "b", "c"], direction="ascending")

    def test_ascending_violated(self):
        series = {"a": [5, 5, 5], "b": [2, 2, 2]}
        assert not shape_check(series, ["a", "b"], direction="ascending")

    def test_descending(self):
        series = {"a": [3, 3], "b": [1, 1]}
        assert shape_check(series, ["a", "b"], direction="descending")

    def test_fraction_tolerance(self):
        series = {"a": [1, 9, 1, 1, 1], "b": [2, 2, 2, 2, 2]}
        assert shape_check(series, ["a", "b"], min_points_fraction=0.6)
        assert not shape_check(series, ["a", "b"], min_points_fraction=0.9)

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            shape_check({"a": [1]}, ["a"], direction="sideways")


class TestSweep:
    def test_sweep_result_accumulates(self):
        result = SweepResult(x_label="x", x_values=[1, 2], metric="m")
        result.add("a", 0.1)
        result.add("a", 0.2)
        assert result.series()["a"] == [0.1, 0.2]

    def test_sweep_runs_callable(self):
        class FakeResult:
            def __init__(self, v):
                self.v = v

            def summary(self):
                return {"metric": self.v}

        out = sweep(
            "x", [1, 2, 3], "metric",
            lambda x: {"m1": FakeResult(x), "m2": FakeResult(2 * x)},
        )
        assert out.values["m1"] == [1, 2, 3]
        assert out.values["m2"] == [2, 4, 6]

    def test_average_summaries(self):
        class FakeResult:
            def __init__(self, v):
                self.v = v

            def summary(self):
                return {"k": self.v}

        assert average_summaries([FakeResult(1.0), FakeResult(3.0)], "k") == 2.0

    def test_average_empty(self):
        with pytest.raises(ValueError):
            average_summaries([], "k")
