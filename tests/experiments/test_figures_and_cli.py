"""Fast smoke tests of the figure functions, ablations, mixed runs and CLI.

These use tiny job counts / level sets; the full-size runs live in
``benchmarks/``.
"""

import pytest

from repro.experiments.ablations import run_ablations
from repro.experiments.figures import (
    FigureResult,
    fig06_prediction_error,
    fig08_utilization_vs_slo,
    fig09_slo_vs_confidence,
    fig10_overhead,
)
from repro.experiments.mixed import mixed_scenario, run_mixed_workload
from repro.experiments.runner import METHOD_ORDER, PredictorCache


@pytest.fixture(scope="module")
def cache():
    return PredictorCache()


class TestFigureResult:
    def test_add_and_table(self):
        result = FigureResult(
            figure_id="x", title="t", x_label="n", x_values=[1, 2]
        )
        for m in METHOD_ORDER:
            result.add(m, 0.1)
            result.add(m, 0.2)
        table = result.to_table()
        assert "CORP" in table and "0.2000" in table

    def test_shape_holds_wiring(self):
        result = FigureResult(
            figure_id="x", title="t", x_label="n", x_values=[1],
            expected_order=("a", "b"),
        )
        result.series = {"a": [1.0], "b": [2.0]}
        assert result.shape_holds()


class TestFigureSmoke:
    def test_fig06_small(self, cache):
        result = fig06_prediction_error(job_counts=(20, 40), cache=cache)
        assert set(result.series) == set(METHOD_ORDER)
        assert all(len(v) == 2 for v in result.series.values())
        assert all(0.0 <= x <= 1.0 for v in result.series.values() for x in v)

    def test_fig08_small(self, cache):
        curves = fig08_utilization_vs_slo(n_jobs=40, levels=(0.0, 1.0), cache=cache)
        assert set(curves) == set(METHOD_ORDER)
        for points in curves.values():
            assert len(points) == 2
            for slo, util in points:
                assert 0.0 <= slo <= 1.0 and 0.0 <= util <= 1.0

    def test_fig09_small(self, cache):
        result = fig09_slo_vs_confidence(n_jobs=40, levels=(0.5, 0.9), cache=cache)
        assert all(len(v) == 2 for v in result.series.values())

    def test_fig10_small(self, cache):
        latencies = fig10_overhead(n_jobs=40, cache=cache)
        assert set(latencies) == set(METHOD_ORDER)
        assert all(v > 0 for v in latencies.values())

    def test_unknown_testbed_rejected(self, cache):
        with pytest.raises(ValueError):
            fig10_overhead(testbed="mars", cache=cache)


class TestAblationsSmoke:
    def test_subset_of_variants(self, cache):
        results = run_ablations(
            n_jobs=30,
            cache=cache,
            variants={"full": {}, "A3-no-ci": {"use_confidence_interval": False}},
        )
        assert set(results) == {"full", "A3-no-ci"}
        for s in results.values():
            assert "riders" in s


class TestMixedSmoke:
    def test_scenario_builder(self):
        scenario = mixed_scenario(50, short_fraction=0.6)
        assert scenario.trace_config.short_fraction == 0.6
        assert scenario.trace_config.long_duration_range_s == (900.0, 1800.0)

    def test_run_two_methods(self, cache):
        results = run_mixed_workload(
            n_jobs=25, cache=cache, methods=("CORP", "DRA")
        )
        assert set(results) == {"CORP", "DRA"}
        assert all(s["n_long"] >= 0 for s in results.values())

    def test_unknown_method_rejected(self, cache):
        with pytest.raises(ValueError):
            run_mixed_workload(n_jobs=10, cache=cache, methods=("Borg",))


class TestCli:
    def test_parser_commands(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        args = parser.parse_args(["compare", "--jobs", "10"])
        assert args.jobs == 10
        args = parser.parse_args(["figure", "fig09", "--testbed", "ec2"])
        assert args.name == "fig09"

    def test_compare_command_runs(self, capsys):
        from repro.__main__ import main

        assert main(["compare", "--jobs", "15", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "CORP" in out and "utilization" in out

    def test_figure_command_runs(self, capsys):
        from repro.__main__ import main

        assert main(["figure", "fig10"]) == 0
        assert "allocation latency" in capsys.readouterr().out

    def test_invalid_figure_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_bench_parser_options(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["bench", "--quick", "--workers", "4", "--bench-out", "/tmp/b.json"]
        )
        assert args.quick and args.workers == 4
        assert args.bench_out == "/tmp/b.json"
        args = build_parser().parse_args(["compare", "--workers", "2"])
        assert args.workers == 2

    def test_cache_parser_options(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["cache", "warm", "--jobs", "20"])
        assert args.action == "warm" and args.jobs == 20
        args = build_parser().parse_args(
            ["compare", "--store", "/tmp/s", "--warm-start",
             "--fit-workers", "2", "--predictor-cache-size", "4"]
        )
        assert args.store == "/tmp/s" and args.warm_start
        assert args.fit_workers == 2 and args.predictor_cache_size == 4
        # Bare --store means "the default directory".
        args = build_parser().parse_args(["profile", "--store"])
        assert args.store == ""

    def test_warm_start_without_store_rejected(self, capsys):
        from repro.__main__ import main

        assert main(["compare", "--jobs", "5", "--warm-start"]) == 2
        assert "--warm-start requires --store" in capsys.readouterr().err

    def test_cache_lifecycle_commands(self, tmp_path, capsys):
        from repro.__main__ import main

        store_dir = str(tmp_path / "store")
        assert main(["cache", "stats", "--dir", store_dir]) == 0
        assert main(
            ["cache", "warm", "--jobs", "12", "--quick", "--dir", store_dir]
        ) == 0
        assert "fitted and stored" in capsys.readouterr().out
        assert main(["cache", "stats", "--dir", store_dir]) == 0
        assert "1" in capsys.readouterr().out
        # Warming again is a no-op load, and compare reuses the artifact.
        assert main(
            ["cache", "warm", "--jobs", "12", "--quick", "--dir", store_dir]
        ) == 0
        assert "already warm" in capsys.readouterr().out
        assert main(
            ["compare", "--jobs", "12", "--seed", "7", "--store", store_dir]
        ) == 0
        assert "1 hit(s)" in capsys.readouterr().out
        assert main(["cache", "clear", "--dir", store_dir]) == 0
        assert "cleared 1 artifact" in capsys.readouterr().out


class TestBenchModule:
    def test_legacy_mode_restores_patches(self):
        from repro.cluster.machine import VirtualMachine
        from repro.experiments.bench import legacy_mode

        original = VirtualMachine.__dict__["execute_slot"]
        with legacy_mode():
            assert VirtualMachine.__dict__["execute_slot"] is not original
        assert VirtualMachine.__dict__["execute_slot"] is original

    def test_legacy_mode_restores_on_error(self):
        from repro.cluster.machine import VirtualMachine
        from repro.experiments.bench import legacy_mode

        original = VirtualMachine.__dict__["execute_slot"]
        with pytest.raises(RuntimeError):
            with legacy_mode():
                raise RuntimeError("boom")
        assert VirtualMachine.__dict__["execute_slot"] is original

    def test_sweep_scenarios_cross_product(self):
        from repro.experiments.bench import sweep_scenarios

        scenarios = sweep_scenarios((50, 150), seed=7)
        assert [s.n_jobs for s in scenarios] == [50, 150, 50, 150]
        assert len({s.profile.name for s in scenarios}) == 2

    def test_identity_check_rejects_divergence(self):
        from repro.experiments.bench import _check_identity

        good = [{"overall_utilization": 0.5}]
        _check_identity(good, [{"overall_utilization": 0.5}])
        with pytest.raises(AssertionError):
            _check_identity(good, [{"overall_utilization": 0.51}])
        with pytest.raises(AssertionError):
            _check_identity(good, [])

    def test_write_benchmark_reports_floor_failure(self, tmp_path):
        import json
        from unittest import mock

        from repro.experiments import bench

        fake = {
            "speedup": 1.0,
            "baseline": {"seconds": 1.0},
            "optimized": {"seconds": 1.0},
        }
        out = tmp_path / "bench.json"

        def fail(**kwargs):
            error = AssertionError("too slow")
            error.report = fake
            raise error

        with mock.patch.object(bench, "run_benchmark", side_effect=fail):
            with pytest.raises(AssertionError):
                bench.write_benchmark(str(out))
        # The numbers still land on disk as evidence.
        assert json.loads(out.read_text())["speedup"] == 1.0


class TestRegressionGate:
    REFERENCE = {
        "mode": "quick",
        "baseline": {"seconds": 10.0},
        "optimized": {"seconds": 4.0},
    }

    def test_within_budget_passes(self):
        from repro.experiments.bench import check_regression

        # A 2x slower machine (baseline 20s) is allowed 4 * 2 * 1.25 = 10s.
        report = {
            "mode": "quick",
            "baseline": {"seconds": 20.0},
            "optimized": {"seconds": 9.5},
        }
        verdict = check_regression(report, self.REFERENCE)
        assert verdict["ok"] and verdict["allowed_s"] == 10.0

    def test_regression_fails(self):
        from repro.experiments.bench import check_regression

        report = {
            "mode": "quick",
            "baseline": {"seconds": 10.0},
            "optimized": {"seconds": 5.1},  # budget is 4 * 1.0 * 1.25 = 5.0
        }
        with pytest.raises(AssertionError, match="regressed"):
            check_regression(report, self.REFERENCE)

    def test_mode_mismatch_rejected(self):
        from repro.experiments.bench import check_regression

        with pytest.raises(ValueError, match="mode mismatch"):
            check_regression({"mode": "full"}, self.REFERENCE)

    def test_committed_reference_is_quick_mode(self):
        """The file the CI gate diffs against must stay in quick mode."""
        import json
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "benchmarks",
            "BENCH_reference_quick.json",
        )
        reference = json.loads(open(path).read())
        assert reference["mode"] == "quick"
        assert reference["identity_check"] == "passed"


class TestColdBenchmark:
    def test_cold_benchmark_smoke(self, tmp_path):
        """One tiny end-to-end cold bench: identity holds, report sane.

        Floors are not asserted here — at this scenario size the fit no
        longer dominates, so the ratios are not meaningful; the floor
        enforcement runs in CI via ``bench_runtime.py --cold``.
        """
        from repro.experiments.bench import run_cold_benchmark

        report = run_cold_benchmark(
            jobs=10, seed=3, store_dir=str(tmp_path), assert_floors=False
        )
        assert report["identity_check"].startswith("passed")
        variants = report["variants"]
        assert set(variants) == {
            "no_store", "cold_store", "warm_store", "parallel_fit",
            "warm_start_refit",
        }
        assert all(v["seconds"] > 0 for v in variants.values())
        assert report["speedups"]["warm_store"] > 1.0
