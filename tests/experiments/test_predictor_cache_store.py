"""PredictorCache + PredictorStore: cross-process reuse, warm starts,
process-parallel fits."""

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.core.predictor import CorpPredictor
from repro.core.predictor_store import PredictorStore
from repro.experiments.runner import PredictorCache

from ..conftest import make_short_trace


@pytest.fixture()
def store(tmp_path) -> PredictorStore:
    return PredictorStore(tmp_path / "store")


def _assert_same_fit(a: CorpPredictor, b: CorpPredictor) -> None:
    for net_a, net_b in zip(a.networks, b.networks):
        for layer_a, layer_b in zip(net_a.layers, net_b.layers):
            np.testing.assert_array_equal(layer_a.weights, layer_b.weights)
            np.testing.assert_array_equal(layer_a.biases, layer_b.biases)
    for fp_a, fp_b in zip(a.fluctuation, b.fluctuation):
        assert fp_a.fitted == fp_b.fitted
        if fp_a.fitted:
            np.testing.assert_array_equal(
                fp_a.model.transition, fp_b.model.transition
            )
    for err_a, err_b in zip(a.seed_errors, b.seed_errors):
        np.testing.assert_array_equal(err_a, err_b)
    np.testing.assert_array_equal(
        a.prior_unused_fraction, b.prior_unused_fraction
    )


class TestStoreTier:
    def test_second_cache_loads_instead_of_fitting(
        self, store, fast_corp_config, history_trace, monkeypatch
    ):
        first = PredictorCache(store=store)
        fitted = first.get(fast_corp_config, history_trace)
        assert first.store_misses == 1 and store.saves == 1

        # A fresh cache (fresh process, in effect) must never reach the
        # fit path: loading from the store is the whole point.
        def boom(self, history, **kwargs):
            raise AssertionError("refit despite a stored artifact")

        monkeypatch.setattr(CorpPredictor, "fit", boom)
        second = PredictorCache(store=store)
        loaded = second.get(fast_corp_config, history_trace)
        assert second.store_hits == 1 and second.misses == 1
        _assert_same_fit(fitted, loaded)

    def test_memory_tier_still_first(
        self, store, fast_corp_config, history_trace
    ):
        cache = PredictorCache(store=store)
        a = cache.get(fast_corp_config, history_trace)
        b = cache.get(fast_corp_config, history_trace)
        assert a is b
        assert cache.hits == 1 and store.hits == 0

    def test_eviction_falls_back_to_store(self, store, history_trace):
        """An LRU-evicted entry reloads from disk, not via a refit."""
        import dataclasses

        from repro.core.config import CorpConfig

        cfg_a = CorpConfig(
            n_hidden_layers=1, units_per_layer=8, train_max_epochs=4, seed=1
        )
        cfg_b = dataclasses.replace(cfg_a, seed=2)
        cache = PredictorCache(maxsize=1, store=store)
        cache.get(cfg_a, history_trace)
        cache.get(cfg_b, history_trace)  # evicts cfg_a from memory
        assert len(cache) == 1
        cache.get(cfg_a, history_trace)
        assert cache.store_hits == 1
        assert store.saves == 2  # no third fit happened

    def test_stats_shape(self, store, fast_corp_config, history_trace):
        cache = PredictorCache(store=store, warm_start=True)
        cache.get(fast_corp_config, history_trace)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["store"]["saves"] == 1
        assert stats["warm_starts"] == 0  # nothing to donate yet


class TestWarmStart:
    def test_donor_seeds_the_refit(self, store, fast_corp_config, history_trace):
        other_history = make_short_trace(n_jobs=60, seed=21)
        assert other_history.content_digest() != history_trace.content_digest()
        PredictorCache(store=store).get(fast_corp_config, other_history)

        cache = PredictorCache(store=store, warm_start=True)
        warmed = cache.get(fast_corp_config, history_trace)
        assert cache.warm_starts == 1 and store.warm_hits == 1
        assert warmed.fitted
        util = np.full((12, 3), 0.45)
        forecast = warmed.predict_job_unused(util, ResourceVector([3, 6, 40]))
        assert np.all(np.isfinite(forecast.as_array()))

    def test_no_donor_means_cold_fit(
        self, store, fast_corp_config, history_trace
    ):
        cache = PredictorCache(store=store, warm_start=True)
        cold = cache.get(fast_corp_config, history_trace)
        assert cache.warm_starts == 0
        # ... and the cold fit is byte-equal to a storeless fit.
        _assert_same_fit(
            cold, PredictorCache().get(fast_corp_config, history_trace)
        )

    def test_warm_start_flag_recorded_in_fit(
        self, store, fast_corp_config, history_trace
    ):
        donor = PredictorCache(store=store).get(fast_corp_config, history_trace)
        refit = CorpPredictor(config=fast_corp_config).fit(
            make_short_trace(n_jobs=60, seed=21), warm_start=donor
        )
        assert refit.fitted


class TestParallelFits:
    def test_workers_bit_identical_to_serial(
        self, fast_corp_config, history_trace
    ):
        serial = PredictorCache().get(fast_corp_config, history_trace)
        fanned = PredictorCache(fit_workers=2).get(
            fast_corp_config, history_trace
        )
        _assert_same_fit(serial, fanned)

    def test_incompatible_donor_rejected(self, fast_corp_config, history_trace):
        """A donor with a different DNN shape must be ignored, not crash."""
        import dataclasses

        small_cfg = dataclasses.replace(fast_corp_config, units_per_layer=4)
        donor = CorpPredictor(config=small_cfg).fit(
            make_short_trace(n_jobs=60, seed=21)
        )
        refit = CorpPredictor(config=fast_corp_config).fit(
            history_trace, warm_start=donor
        )
        _assert_same_fit(refit, PredictorCache().get(fast_corp_config, history_trace))
