"""The repro.api facade (v1.2), LRU cache and event wiring."""

import json

import pytest

from repro import api
from repro.cluster.profiles import ClusterProfile
from repro.core.config import CorpConfig
from repro.experiments.runner import (
    METHOD_ORDER,
    PredictorCache,
    run_methods,
    run_specs,
    sweep_specs,
)
from repro.obs import OBS, MemorySink, events_by_name, read_jsonl


@pytest.fixture(autouse=True)
def pristine_observer():
    OBS.reset()
    yield
    OBS.reset()


@pytest.fixture(scope="module")
def small_scenario():
    from repro.experiments.scenarios import cluster_scenario

    return cluster_scenario(
        n_jobs=20, seed=5, profile=ClusterProfile.palmetto(n_pms=4, vms_per_pm=2)
    )


TINY_CFG = dict(n_hidden_layers=1, units_per_layer=8, train_max_epochs=2)


class TestBuildScenario:
    def test_cluster_and_ec2(self):
        assert api.build_scenario(jobs=30, testbed="cluster").n_jobs == 30
        assert api.build_scenario(jobs=30, testbed="ec2").profile.name == "ec2"

    def test_unknown_testbed_rejected(self):
        with pytest.raises(ValueError, match="unknown testbed"):
            api.build_scenario(testbed="mars")

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            api.build_scenario(30)


class TestRunOne:
    def test_unknown_method_rejected(self, small_scenario):
        with pytest.raises(ValueError, match="unknown method"):
            api.run_one(scenario=small_scenario, method="Borg")

    def test_keyword_only(self, small_scenario):
        with pytest.raises(TypeError):
            api.run_one(small_scenario, "DRA")

    def test_runs_one_method(self, small_scenario):
        result = api.run_one(scenario=small_scenario, method="DRA")
        assert result.scheduler_name == "DRA"
        assert result.all_done


class TestCompare:
    def test_subset_of_methods(self, small_scenario):
        results = api.compare(scenario=small_scenario, methods=("RCCR", "DRA"))
        assert list(results) == ["RCCR", "DRA"]
        assert all(r.all_done for r in results.values())

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            api.compare(50)

    def test_memory_sink_with_workers_rejected(self, small_scenario):
        # In-memory sinks cannot receive events from worker processes;
        # v1.2 raises a clear error instead of silently forcing serial.
        api.attach_sink(MemorySink())
        try:
            with pytest.raises(ValueError, match="in-memory"):
                api.compare(
                    scenario=small_scenario, methods=("DRA",), workers=4
                )
        finally:
            api.detach_sink()

    def test_profiling_with_workers_rejected(self, small_scenario):
        from repro import obs

        obs.enable_profiling()
        try:
            with pytest.raises(ValueError, match="profiling"):
                api.compare(
                    scenario=small_scenario, methods=("DRA",), workers=2
                )
        finally:
            obs.disable_profiling()

    def test_jsonl_sink_with_workers_merges_shards(
        self, small_scenario, tmp_path
    ):
        # A path-backed JSONL sink shards per worker and merges on join:
        # parallel capture keeps working instead of being forced serial.
        path = tmp_path / "ev.jsonl"
        api.attach_sink(str(path))
        try:
            results = api.compare(
                scenario=small_scenario, methods=("DRA", "RCCR"), workers=2
            )
        finally:
            api.detach_sink()
        assert list(results) == ["DRA", "RCCR"]
        grouped = events_by_name(read_jsonl(str(path)))
        assert grouped["slot"]  # worker events reached the parent's file
        # Merged in spec (method) order: every DRA slot precedes RCCR's.
        schedulers = [e["scheduler"] for e in grouped["slot"]]
        assert schedulers.index("RCCR") == len(
            [s for s in schedulers if s == "DRA"]
        )
        assert not list(tmp_path.glob("*.shard-*"))  # shards cleaned up


class TestRemovedPositionalForms:
    """The v1.1 deprecation shims are gone: positional calls now raise."""

    def test_run_methods_positional_raises(self, small_scenario):
        with pytest.raises(TypeError):
            run_methods(small_scenario, methods=("DRA",))

    def test_sweep_specs_positional_raises(self, small_scenario):
        with pytest.raises(TypeError):
            sweep_specs([small_scenario])

    def test_run_specs_positional_raises(self):
        with pytest.raises(TypeError):
            run_specs([])

    def test_cache_keyword_raises(self):
        with pytest.raises(TypeError):
            run_specs(specs=[], cache=PredictorCache())

    def test_keyword_forms_work_without_warning(self, small_scenario, recwarn):
        assert len(sweep_specs(scenarios=[small_scenario])) == len(METHOD_ORDER)
        assert run_specs(specs=[]) == []
        deprecations = [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]
        assert not deprecations

    def test_scenario_still_required(self):
        with pytest.raises(TypeError, match="scenario"):
            run_methods()


class TestPredictorCacheLru:
    def test_eviction_and_hit_miss_counts(self, small_scenario):
        history = small_scenario.history_trace()
        cache = PredictorCache(maxsize=1)
        cfg_a = CorpConfig(**TINY_CFG, seed=1)
        cfg_b = CorpConfig(**TINY_CFG, seed=2)
        first = cache.get(cfg_a, history)
        assert cache.get(cfg_a, history) is first  # hit
        cache.get(cfg_b, history)  # miss; evicts cfg_a
        assert len(cache) == 1
        assert cache.get(cfg_a, history) is not first  # refit after eviction
        assert (cache.hits, cache.misses) == (1, 3)

    def test_hit_miss_counters_reach_obs(self, small_scenario):
        from repro import obs

        history = small_scenario.history_trace()
        cache = PredictorCache()
        cfg = CorpConfig(**TINY_CFG, seed=3)
        obs.enable_profiling()
        cache.get(cfg, history)
        cache.get(cfg, history)
        assert OBS.counters.get("predictor_cache.miss") == 1.0
        assert OBS.counters.get("predictor_cache.hit") == 1.0

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PredictorCache(maxsize=0)

    def test_plain_dict_seed_normalized(self):
        cache = PredictorCache(_cache={})
        assert len(cache) == 0


class TestPlacementEventRegression:
    def test_one_placement_event_per_placed_job(self, small_scenario):
        """Every placed job yields exactly one placement event."""
        sink = api.attach_sink(MemorySink())
        try:
            result = api.run_one(scenario=small_scenario, method="RCCR")
        finally:
            api.detach_sink()
        placements = sink.named("placement")
        placed_jobs = [e.fields["job"] for e in placements]
        assert len(placed_jobs) == len(set(placed_jobs))  # one event per job
        assert len(placed_jobs) == result.n_completed
        assert result.all_done and result.n_rejected == 0
        for event in placements:
            assert event.fields["scheduler"] == "RCCR"
            assert event.fields["vm"] is not None


class TestDisabledOverhead:
    def test_disabled_path_never_builds_events(self, small_scenario, monkeypatch):
        """With the observer disabled, no emit/count/gauge call executes.

        This is the structural guarantee behind the <5% no-sink overhead
        budget: every instrumentation site guards on ``OBS.enabled``, so
        the disabled cost is one attribute load and a branch — no Event
        objects, no dict packing, no sink dispatch.
        """
        def explode(*args, **kwargs):
            raise AssertionError("instrumentation ran while disabled")

        # Observer uses __slots__, so patch the hooks on the class.
        monkeypatch.setattr(type(OBS), "emit", explode)
        monkeypatch.setattr(type(OBS), "count", explode)
        monkeypatch.setattr(type(OBS), "gauge", explode)
        result = api.run_one(scenario=small_scenario, method="DRA")
        assert result.all_done


class TestProfileRun:
    def test_report_shape(self):
        report = api.profile_run(jobs=10, methods=("DRA", "RCCR"))
        assert set(report["summaries"]) == {"DRA", "RCCR"}
        stages = {s["stage"] for s in report["stages"]}
        assert "trace:generate" in stages
        assert "run:DRA" in stages and "run:RCCR" in stages
        assert report["total_s"] > 0
        assert report["counters"]["sim.slots"] > 0
        assert not OBS.enabled  # profiling switched back off


class TestCliObservability:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_compare_events_writes_parseable_jsonl(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "ev.jsonl"
        assert main(["compare", "--jobs", "15", "--events", str(out)]) == 0
        grouped = events_by_name(read_jsonl(str(out)))
        assert {"slot", "placement", "preemption"} <= set(grouped)
        assert not OBS.enabled  # CLI detached its sink

    def test_compare_events_with_workers_merges_shards(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "ev.jsonl"
        code = main([
            "compare", "--jobs", "12", "--workers", "4",
            "--events", str(out), "--seed", "3",
        ])
        assert code == 0
        grouped = events_by_name(read_jsonl(str(out)))
        assert grouped["slot"]  # worker events merged into the target file
        assert set(METHOD_ORDER) <= {
            e["scheduler"] for e in grouped["slot"]
        }
        assert not list(tmp_path.glob("*.shard-*"))  # shards cleaned up

    def test_profile_command_writes_report(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "profile.json"
        assert main(["profile", "--jobs", "10", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "per-stage wall clock" in stdout and "counters" in stdout
        report = json.loads(out.read_text())
        assert report["stages"] and report["summaries"]

    def test_cli_error_is_clean_nonzero(self, tmp_path, capsys):
        from repro.__main__ import main

        # Unwritable events path → OSError → one stderr line, exit 2.
        bad = tmp_path / "missing-dir" / "ev.jsonl"
        code = main(["compare", "--jobs", "10", "--events", str(bad)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_argparse_rejects_unknown_figure(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["figure", "fig99"])
        assert exc.value.code != 0


class TestSinkHygiene:
    """The process-global OBS sink must never leak out of an entry point.

    v1.6 regression tests: ``profile_run(events=...)`` and
    ``capture_events`` both attach the process-global sink and must
    detach it in ``try``/``finally`` — a mid-run exception used to leave
    a stale sink attached, silently swallowing every later run's events.
    """

    def test_profile_run_detaches_events_sink_on_success(self, tmp_path):
        out = tmp_path / "ev.jsonl"
        report = api.profile_run(jobs=10, methods=("DRA",), events=str(out))
        assert OBS.sink is None and not OBS.enabled
        assert report["predictor"] == "corp"
        grouped = events_by_name(read_jsonl(str(out)))
        assert grouped["slot"]

    def test_profile_run_detaches_events_sink_on_failure(
        self, tmp_path, monkeypatch
    ):
        from repro.api import _run

        def explode(**kwargs):
            raise RuntimeError("mid-run failure")

        monkeypatch.setattr(_run, "compare", explode)
        with pytest.raises(RuntimeError, match="mid-run failure"):
            api.profile_run(jobs=10, events=str(tmp_path / "ev.jsonl"))
        assert OBS.sink is None
        assert not OBS.enabled  # profiling switched back off too

    def test_profile_run_without_events_keeps_caller_sink(self):
        sink = MemorySink()
        api.attach_sink(sink)
        try:
            api.profile_run(jobs=10, methods=("DRA",))
            assert OBS.sink is sink  # caller-attached sink untouched
        finally:
            api.detach_sink()
        assert OBS.sink is None

    def test_capture_events_detaches_on_failure(self):
        with pytest.raises(RuntimeError, match="boom"):
            with api.capture_events(MemorySink()):
                raise RuntimeError("boom")
        assert OBS.sink is None and not OBS.enabled


class TestScaleConfigThreading:
    """``scale=`` reaches the simulator and never changes the answer."""

    def test_sharded_run_matches_default(self, small_scenario):
        base = api.run_one(scenario=small_scenario, method="RCCR")
        sharded = api.run_one(
            scenario=small_scenario,
            method="RCCR",
            scale=api.ScaleConfig(shards=3),
        )
        expect = base.summary()
        got = sharded.summary()
        # Wall-clock is the one legitimately nondeterministic field.
        expect.pop("allocation_latency_s")
        got.pop("allocation_latency_s")
        assert got == expect

    def test_sharded_placements_match_default(self, small_scenario):
        streams = []
        for scale in (None, api.ScaleConfig(shards=4)):
            sink = MemorySink()
            api.attach_sink(sink)
            try:
                api.run_one(
                    scenario=small_scenario, method="RCCR", scale=scale
                )
            finally:
                api.detach_sink()
            streams.append([
                (e.fields["slot"], e.fields["job"], e.fields["vm"])
                for e in sink.named("placement")
            ])
            assert streams[-1], "run emitted no placement events"
        assert streams[0] == streams[1]

    def test_scale_is_keyword_only_and_validated(self, small_scenario):
        with pytest.raises(ValueError):
            api.ScaleConfig(shards=0)
        scenario = small_scenario.with_scale(api.ScaleConfig(shards=2))
        assert scenario.sim_config.scale.shards == 2
        assert small_scenario.with_scale(None) is small_scenario
