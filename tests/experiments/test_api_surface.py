"""Snapshot of the public API surface of :mod:`repro.api`.

The v1.6 package split (``repro/api/`` replacing the single
``api.py``) promised an identical public surface; this test pins
``__all__`` and every public function signature — parameter names,
keyword-only-ness, defaults and annotations — so any accidental
drift in the facade fails loudly, and deliberate changes require
editing the snapshot in the same commit.
"""

import inspect

from repro import api

EXPECTED_ALL = (
    "compare",
    "sweep",
    "run_one",
    "profile_run",
    "check_run",
    "replay",
    "inject",
    "build_fault_plan",
    "build_revocation_storm",
    "storm_sweep_scenarios",
    "open_service",
    "takeover_run",
    "PlacementUpdate",
    "SchedulerService",
    "TakeoverReport",
    "attach_sink",
    "detach_sink",
    "capture_events",
    "build_scenario",
    "available_predictors",
    "predictor_summaries",
    "FaultPlan",
    "RetryPolicy",
    "RevocationWave",
    "PipelineSpec",
    "DiurnalPattern",
    "PredictorCache",
    "PredictorStore",
    "default_store_dir",
    "ScaleConfig",
    "Scenario",
    "SimulationResult",
    "METHOD_ORDER",
)

#: Non-callable / class exports and what they must be.
EXPECTED_KINDS = {
    "PlacementUpdate": "type",
    "SchedulerService": "type",
    "TakeoverReport": "type",
    "FaultPlan": "type",
    "RetryPolicy": "type",
    "RevocationWave": "type",
    "PipelineSpec": "type",
    "DiurnalPattern": "type",
    "PredictorCache": "type",
    "PredictorStore": "type",
    "ScaleConfig": "type",
    "Scenario": "type",
    "SimulationResult": "type",
    "METHOD_ORDER": "tuple",
}

#: name -> the exact ``inspect.signature`` string.
EXPECTED_SIGNATURES = {
    'compare': '(*, scenario: \'Scenario | None\' = None, jobs: \'int\' = 200, testbed: \'str\' = \'cluster\', seed: \'int\' = 7, methods: \'Iterable[str]\' = (\'CORP\', \'RCCR\', \'CloudScale\', \'DRA\'), workers: \'int\' = 0, predictor_cache: \'PredictorCache | None\' = None, predictor: "\'str | Predictor\'" = \'corp\', fault_plan: \'FaultPlan | None\' = None, scale: \'ScaleConfig | None\' = None) -> \'dict[str, SimulationResult]\'',
    'sweep': '(*, scenarios: \'Sequence[Scenario]\', methods: \'Iterable[str]\' = (\'CORP\', \'RCCR\', \'CloudScale\', \'DRA\'), seed: \'int\' = 0, corp_config: \'CorpConfig | None\' = None, workers: \'int\' = 0, predictor_cache: \'PredictorCache | None\' = None, predictor: "\'str | Predictor\'" = \'corp\', fault_plan: \'FaultPlan | None\' = None, scale: \'ScaleConfig | None\' = None) -> \'list[SimulationResult]\'',
    'run_one': '(*, scenario: \'Scenario\', method: \'str\', seed: \'int\' = 0, corp_config: \'CorpConfig | None\' = None, predictor_cache: \'PredictorCache | None\' = None, predictor: "\'str | Predictor\'" = \'corp\', fault_plan: \'FaultPlan | None\' = None, scale: \'ScaleConfig | None\' = None) -> \'SimulationResult\'',
    'profile_run': '(*, jobs: \'int\' = 50, testbed: \'str\' = \'cluster\', seed: \'int\' = 7, methods: \'Iterable[str]\' = (\'CORP\', \'RCCR\', \'CloudScale\', \'DRA\'), predictor_cache: \'PredictorCache | None\' = None, predictor_cache_size: \'int\' = 16, predictor: "\'str | Predictor\'" = \'corp\', events: \'str | None\' = None) -> \'dict\'',
    'check_run': '(*, scenario: \'Scenario | None\' = None, jobs: \'int\' = 200, testbed: \'str\' = \'cluster\', seed: \'int\' = 7, methods: \'Iterable[str]\' = (\'CORP\', \'RCCR\', \'CloudScale\', \'DRA\'), predictor_cache: \'PredictorCache | None\' = None, predictor: "\'str | Predictor\'" = \'corp\', fault_plan: \'FaultPlan | None\' = None, rules: \'Iterable[str] | None\' = None, tolerance: \'float\' = 1e-06, differential: \'bool\' = False, events: \'str | None\' = None) -> "\'CheckReport\'"',
    'replay': '(*, events: \'str\', methods: \'Iterable[str] | None\' = None, tolerance: \'float\' = 1e-09, max_mismatches: \'int\' = 100) -> "\'ReplayReport\'"',
    'inject': "(*, scenario: 'Scenario', plan: 'FaultPlan | None') -> 'Scenario'",
    'build_fault_plan': "(*, seed: 'int' = 0, n_slots: 'int' = 400, intensity: 'float' = 0.3, vm_crash_rate: 'float | None' = None, crash_downtime_slots: 'int' = 10, revocation_rate: 'float | None' = None, revocation_fraction: 'float' = 0.5, revocation_duration_slots: 'int' = 8, outage_rate: 'float | None' = None, outage_duration_slots: 'int' = 10, job_failure_rate: 'float | None' = None, retry: 'RetryPolicy | None' = None) -> 'FaultPlan'",
    'open_service': '(*, scenario: "\'Scenario | None\'" = None, jobs: \'int\' = 50, testbed: \'str\' = \'cluster\', seed: \'int\' = 7, method: \'str\' = \'CORP\', corp_config: "\'CorpConfig | None\'" = None, predictor_cache: "\'PredictorCache | None\'" = None, predictor: "\'str | Predictor\'" = \'corp\', fault_plan: "\'FaultPlan | None\'" = None, auto_advance: \'bool\' = False, scale: "\'ScaleConfig | None\'" = None) -> \'SchedulerService\'',
    'takeover_run': '(*, scenario: "\'Scenario | None\'" = None, jobs: \'int\' = 40, testbed: \'str\' = \'cluster\', seed: \'int\' = 7, method: \'str\' = \'CORP\', takeover_slot: \'int | None\' = None, corp_config: "\'CorpConfig | None\'" = None, predictor_cache: "\'PredictorCache | None\'" = None, fault_plan: "\'FaultPlan | None\'" = None) -> \'TakeoverReport\'',
    'attach_sink': "(sink: 'Sink | str') -> 'Sink'",
    'detach_sink': "() -> 'None'",
    'capture_events': "(sink: 'Sink | str') -> 'Iterator[Sink]'",
    'build_scenario': "(*, jobs: 'int' = 200, testbed: 'str' = 'cluster', seed: 'int' = 7, family: 'str | None' = None) -> 'Scenario'",
    'build_revocation_storm': "(*, seed: 'int' = 0, n_slots: 'int' = 400, intensity: 'float' = 0.5, wave_rate: 'float | None' = None, cohort_size: 'int | None' = None, crash_fraction: 'float' = 0.5, downtime_slots: 'int' = 10, revocation_fraction: 'float' = 0.5, revocation_duration_slots: 'int' = 8, retry: 'RetryPolicy | None' = None) -> 'FaultPlan'",
    'storm_sweep_scenarios': "(base: 'Scenario', *, intensities: 'Sequence[float]' = (0.0, 0.25, 0.5, 1.0), seed: 'int' = 0, n_slots: 'int' = 400) -> 'list[Scenario]'",
    'available_predictors': "() -> 'tuple[str, ...]'",
    'predictor_summaries': "() -> 'dict[str, str]'",
    'default_store_dir': "() -> 'Path'",
}


def test_all_is_pinned():
    assert tuple(api.__all__) == EXPECTED_ALL


def test_every_export_exists():
    for name in EXPECTED_ALL:
        assert hasattr(api, name), name


def test_function_signatures_are_pinned():
    for name, expected in EXPECTED_SIGNATURES.items():
        obj = getattr(api, name)
        assert inspect.isfunction(obj) or callable(obj), name
        assert str(inspect.signature(obj)) == expected, name


def test_non_function_exports_are_pinned():
    for name, kind in EXPECTED_KINDS.items():
        obj = getattr(api, name)
        if kind == "type":
            assert isinstance(obj, type), name
        else:
            assert type(obj).__name__ == kind, name


def test_entry_points_are_keyword_only():
    """The run entry points accept no positional arguments at all."""
    for name in (
        "run_one", "compare", "sweep", "profile_run", "check_run",
        "replay", "inject", "build_fault_plan", "open_service",
        "takeover_run", "build_scenario",
    ):
        params = inspect.signature(getattr(api, name)).parameters
        assert params, name
        assert all(
            p.kind is inspect.Parameter.KEYWORD_ONLY
            for p in params.values()
        ), name
