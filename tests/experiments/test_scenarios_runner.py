"""Scenario builders and the multi-method runner (fast variants)."""

import pytest

from repro.cluster.profiles import ClusterProfile
from repro.experiments.runner import (
    METHOD_ORDER,
    PredictorCache,
    RunSpec,
    default_schedulers,
    run_methods,
    run_specs,
    sweep_specs,
)
from repro.experiments.scenarios import JOB_COUNTS, cluster_scenario, ec2_scenario
from repro.core.config import CorpConfig


@pytest.fixture(scope="module")
def small_scenario():
    return cluster_scenario(
        n_jobs=20, seed=5, profile=ClusterProfile.palmetto(n_pms=4, vms_per_pm=2)
    )


class TestScenarios:
    def test_job_counts_match_paper(self):
        assert JOB_COUNTS == (50, 100, 150, 200, 250, 300)

    def test_cluster_scenario_defaults(self):
        sc = cluster_scenario(100)
        assert sc.n_jobs == 100
        assert sc.profile.name == "palmetto"
        assert "cluster" in sc.name

    def test_ec2_scenario_defaults(self):
        sc = ec2_scenario(100)
        assert sc.profile.name == "ec2"
        assert sc.profile.n_pms == 30

    def test_evaluation_trace_short_only(self, small_scenario):
        trace = small_scenario.evaluation_trace()
        assert len(trace) == 20
        assert trace.short_fraction() == 1.0
        assert all(r.sample_period_s == 10.0 for r in trace)

    def test_subsampling_nested(self):
        # Smaller job counts draw from the same master population.
        profile = ClusterProfile.palmetto(n_pms=4, vms_per_pm=2)
        small = cluster_scenario(50, seed=5, profile=profile).evaluation_trace()
        big = cluster_scenario(300, seed=5, profile=profile).evaluation_trace()
        big_ids = {r.task_id for r in big}
        assert all(r.task_id in big_ids for r in small)

    def test_history_trace_distinct_from_eval(self, small_scenario):
        history = small_scenario.history_trace()
        evaluation = small_scenario.evaluation_trace()
        history_ids = {(r.task_id, r.submit_time_s) for r in history}
        eval_ids = {(r.task_id, r.submit_time_s) for r in evaluation}
        assert history_ids != eval_ids


class TestRunner:
    def test_default_schedulers_cover_all_methods(self):
        factories = default_schedulers()
        assert set(factories) == set(METHOD_ORDER)

    def test_predictor_cache_reuses_fit(self, small_scenario):
        cache = PredictorCache()
        history = small_scenario.history_trace()
        cfg = CorpConfig(n_hidden_layers=1, units_per_layer=8, train_max_epochs=3)
        a = cache.get(cfg, history)
        b = cache.get(cfg, history)
        assert a is b

    def test_cache_distinguishes_configs(self, small_scenario):
        cache = PredictorCache()
        history = small_scenario.history_trace()
        a = cache.get(
            CorpConfig(n_hidden_layers=1, units_per_layer=8, train_max_epochs=3),
            history,
        )
        b = cache.get(
            CorpConfig(n_hidden_layers=1, units_per_layer=8, train_max_epochs=3,
                       train_quantile=0.3),
            history,
        )
        assert a is not b

    def test_run_methods_all_four(self, small_scenario):
        cache = PredictorCache()
        cfg = CorpConfig(n_hidden_layers=1, units_per_layer=8, train_max_epochs=3)
        history = small_scenario.history_trace()
        factories = default_schedulers(
            corp_config=cfg, history=history, predictor_cache=cache
        )
        results = run_methods(
            scenario=small_scenario, factories=factories, history=history
        )
        assert set(results) == set(METHOD_ORDER)
        for result in results.values():
            assert result.all_done

    def test_cache_shared_across_regenerated_histories(self, small_scenario):
        # Sweeps regenerate the history trace at every point; identical
        # content must hit the same cache entry (one offline fit per
        # sweep), which an object-identity key cannot provide.
        cache = PredictorCache()
        cfg = CorpConfig(n_hidden_layers=1, units_per_layer=8, train_max_epochs=3)
        a = cache.get(cfg, small_scenario.history_trace())
        b = cache.get(cfg, small_scenario.history_trace())
        assert a is b


class TestRunSpecs:
    FAST_CFG = CorpConfig(n_hidden_layers=1, units_per_layer=8, train_max_epochs=3)

    def _specs(self, scenario):
        return sweep_specs(scenarios=[scenario], corp_config=self.FAST_CFG, seed=5)

    def test_sweep_specs_order(self, small_scenario):
        specs = self._specs(small_scenario)
        assert [s.method for s in specs] == list(METHOD_ORDER)
        assert all(s.scenario is small_scenario for s in specs)

    def test_serial_matches_run_methods(self, small_scenario):
        specs = self._specs(small_scenario)
        by_spec = run_specs(specs=specs, predictor_cache=PredictorCache())
        factories = default_schedulers(
            corp_config=self.FAST_CFG,
            history=small_scenario.history_trace(),
            predictor_cache=PredictorCache(),
            seed=5,
        )
        by_methods = run_methods(
            scenario=small_scenario, factories=factories, seed=5
        )
        for spec, result in zip(specs, by_spec):
            a, b = result.summary(), by_methods[spec.method].summary()
            a.pop("allocation_latency_s"), b.pop("allocation_latency_s")
            assert a == b

    def test_parallel_bit_identical_to_serial(self, small_scenario):
        # The tentpole contract: fanning the same specs over worker
        # processes must not change a single summary value (wall-clock
        # allocation latency aside, per the determinism convention).
        specs = self._specs(small_scenario)
        serial = run_specs(specs=specs, workers=0, predictor_cache=PredictorCache())
        parallel = run_specs(specs=specs, workers=2, predictor_cache=PredictorCache())
        assert len(serial) == len(parallel) == len(specs)
        for s, p in zip(serial, parallel):
            assert s.scheduler_name == p.scheduler_name
            ss, ps = s.summary(), p.summary()
            ss.pop("allocation_latency_s"), ps.pop("allocation_latency_s")
            assert ss == ps
