"""RCCR baseline: ETS + CI, random feasible VM, opportunistic reuse."""

import numpy as np
import pytest

from repro.cluster.profiles import ClusterProfile
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.baselines.rccr import RccrScheduler

from ..conftest import make_short_trace


def run_rccr(history, n_jobs=30, seed=51, **kw):
    sched = RccrScheduler(**kw)
    sim = ClusterSimulator(
        ClusterProfile.palmetto(n_pms=4, vms_per_pm=2), sched, SimulationConfig()
    )
    trace = make_short_trace(n_jobs=n_jobs, seed=seed)
    return sim.run(trace, history=history), sched


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            RccrScheduler(history_slots=1)

    def test_simple_es_default(self):
        from repro.forecast.ets import SimpleExponentialSmoothing

        sched = RccrScheduler()
        assert isinstance(sched._make_forecaster(), SimpleExponentialSmoothing)

    def test_holt_when_beta_positive(self):
        from repro.forecast.ets import HoltLinear

        sched = RccrScheduler(beta=0.2)
        assert isinstance(sched._make_forecaster(), HoltLinear)


class TestPrepare:
    def test_seeds_trackers_from_history(self, history_trace):
        sched = RccrScheduler()
        ClusterSimulator(
            ClusterProfile.palmetto(n_pms=2, vms_per_pm=1), sched, SimulationConfig()
        )
        sched.prepare(history_trace)
        assert sched.raw_errors.trackers[0].n_samples > 0
        assert sched.gate.trackers[0].n_samples > 0


class TestRun:
    def test_completes(self, history_trace):
        result, _ = run_rccr(history_trace)
        assert result.all_done

    def test_predictions_logged(self, history_trace):
        result, sched = run_rccr(history_trace)
        assert len(sched.prediction_log) > 0

    def test_no_packing(self, history_trace):
        _, sched = run_rccr(history_trace)
        from repro.cluster.job import Job
        from ..cluster.test_job import make_record

        jobs = [
            Job(record=make_record(request=(6, 1, 5), task_id=1), submit_slot=0),
            Job(record=make_record(request=(0.5, 16, 5), task_id=2), submit_slot=0),
        ]
        entities = sched.make_entities(jobs)
        assert all(not e.is_packed for e in entities)

    def test_adjustment_conservative(self, history_trace):
        result, sched = run_rccr(history_trace)
        vm = sched.vms[0]
        raw = np.array([2.0, 4.0, 20.0])
        assert np.all(sched.adjust_forecast(raw, vm) <= raw + 1e-12)

    def test_confidence_level_monotone_in_aggressiveness(self, history_trace):
        _, conservative = run_rccr(history_trace, confidence_level=0.9, seed=52)
        _, aggressive = run_rccr(history_trace, confidence_level=0.5, seed=52)
        # Lower confidence -> smaller CI shift -> forecasts shaved less.
        vm_c = conservative.vms[0]
        vm_a = aggressive.vms[0]
        raw = np.array([2.0, 4.0, 20.0])
        # Compare the shift magnitude on a synthetic committed VM: the
        # trackers differ per run, so compare z values directly instead.
        assert conservative._z > aggressive._z
