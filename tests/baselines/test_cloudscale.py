"""CloudScale baseline: PRESS prediction, adaptive padding, demand caps."""

import numpy as np
import pytest

from repro.baselines.cloudscale import CloudScaleScheduler
from repro.cluster.job import JobState
from repro.cluster.profiles import ClusterProfile
from repro.cluster.simulator import ClusterSimulator, SimulationConfig

from ..conftest import make_short_trace


def run_cloudscale(n_jobs=30, seed=61, **kw):
    sched = CloudScaleScheduler(**kw)
    sim = ClusterSimulator(
        ClusterProfile.palmetto(n_pms=4, vms_per_pm=2), sched, SimulationConfig()
    )
    return sim.run(make_short_trace(n_jobs=n_jobs, seed=seed)), sched


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            CloudScaleScheduler(history_slots=1)

    def test_no_opportunistic_reuse(self):
        assert CloudScaleScheduler.supports_opportunistic is False


class TestRun:
    def test_completes(self):
        result, _ = run_cloudscale()
        assert result.all_done

    def test_never_places_opportunistically(self):
        result, _ = run_cloudscale(n_jobs=40)
        assert all(not j.opportunistic for j in result.jobs)

    def test_caps_applied_to_running_jobs(self):
        result, sched = run_cloudscale(n_jobs=40)
        # By the end, at least some placements were capped during the run
        # — observable as jobs that ran below full speed at some slot.
        rates = [
            min(j.rate_history)
            for j in result.jobs
            if j.state is JobState.COMPLETED and j.rate_history
        ]
        assert min(rates) <= 1.0  # and caps exist structurally:
        assert len(sched._padding) > 0

    def test_padding_trackers_lazily_created(self):
        _, sched = run_cloudscale()
        assert all(
            isinstance(key, tuple) and len(key) == 2 for key in sched._padding
        )

    def test_adjustment_subtracts_pad(self):
        _, sched = run_cloudscale()
        vm = sched.vms[0]
        raw = np.array([5.0, 5.0, 5.0])
        adjusted = sched.adjust_forecast(raw, vm)
        assert np.all(adjusted <= raw + 1e-12)

    def test_predict_series_handles_flat(self):
        sched = CloudScaleScheduler()
        assert sched._predict_series(np.full(20, 2.0)) == pytest.approx(2.0, abs=1.0)

    def test_predict_series_nonnegative(self):
        sched = CloudScaleScheduler()
        rng = np.random.default_rng(0)
        assert sched._predict_series(rng.normal(0.1, 0.5, 40)) >= 0.0

    def test_young_jobs_keep_full_request(self):
        # _apply_demand_caps leaves jobs with <2 observed slots uncapped.
        result, sched = run_cloudscale(n_jobs=10, seed=62)
        # Jobs completed (some within one window) and no crash: the
        # None-cap branch executed. Structural smoke assertion:
        assert result.n_completed > 0
