"""Cross-baseline contracts: behaviours Section IV attributes to each scheme."""

import numpy as np
import pytest

from repro.baselines import CloudScaleScheduler, DraScheduler, RccrScheduler
from repro.cluster.profiles import ClusterProfile
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.core.packing import singleton_entities

from ..cluster.test_job import make_record
from ..conftest import make_short_trace


@pytest.fixture(params=[RccrScheduler, CloudScaleScheduler, DraScheduler])
def baseline(request):
    return request.param(seed=1)


class TestSharedContracts:
    def test_no_baseline_packs(self, baseline):
        """Section IV: all three baselines allocate 'without considering
        job packing'."""
        from repro.cluster.job import Job

        jobs = [
            Job(record=make_record(request=(6, 1, 5), task_id=1), submit_slot=0),
            Job(record=make_record(request=(0.5, 16, 5), task_id=2), submit_slot=0),
        ]
        entities = baseline.make_entities(jobs)
        assert all(not e.is_packed for e in entities)

    def test_random_vm_selection(self, baseline):
        """All three 'randomly chose a VM that can satisfy the resource
        demands' — different seeds must be able to pick different VMs."""
        from repro.cluster.machine import VirtualMachine
        from repro.cluster.resources import ResourceVector

        vms = [VirtualMachine(i, ResourceVector([10, 10, 10])) for i in range(6)]
        candidates = [(vm, ResourceVector([5, 5, 5])) for vm in vms]
        demand = ResourceVector([1, 1, 1])
        picks = set()
        for seed in range(12):
            sched = type(baseline)(seed=seed)
            picks.add(sched.choose_vm(demand, candidates).vm_id)
        assert len(picks) > 1

    def test_runs_to_completion(self, baseline):
        sim = ClusterSimulator(
            ClusterProfile.palmetto(n_pms=4, vms_per_pm=2),
            baseline,
            SimulationConfig(),
        )
        result = sim.run(make_short_trace(n_jobs=20, seed=111))
        assert result.all_done


class TestReuseContract:
    def test_only_rccr_reuses(self):
        """RCCR is opportunistic; CloudScale and DRA are not."""
        assert RccrScheduler.supports_opportunistic is True
        assert CloudScaleScheduler.supports_opportunistic is False
        assert DraScheduler.supports_opportunistic is False
