"""DRA baseline: share-based redistribution with demand caps."""

import numpy as np
import pytest

from repro.baselines.dra import SHARE_VALUES, DraScheduler
from repro.cluster.job import Job, JobState
from repro.cluster.machine import Placement
from repro.cluster.profiles import ClusterProfile
from repro.cluster.resources import ResourceVector
from repro.cluster.simulator import ClusterSimulator, SimulationConfig

from ..cluster.test_job import make_record
from ..conftest import make_short_trace


def run_dra(n_jobs=30, seed=71, **kw):
    sched = DraScheduler(**kw)
    sim = ClusterSimulator(
        ClusterProfile.palmetto(n_pms=4, vms_per_pm=2), sched, SimulationConfig()
    )
    return sim.run(make_short_trace(n_jobs=n_jobs, seed=seed)), sched


class TestConstruction:
    def test_headroom_validated(self):
        with pytest.raises(ValueError):
            DraScheduler(headroom=0.9)

    def test_share_mix_is_paper_ratio(self):
        assert SHARE_VALUES == (4.0, 2.0, 1.0)

    def test_no_opportunistic_reuse(self):
        assert DraScheduler.supports_opportunistic is False


class TestShares:
    def test_share_assigned_once(self):
        sched = DraScheduler(seed=1)
        job = Job(record=make_record(task_id=5), submit_slot=0)
        first = sched._share_of(job)
        assert first in SHARE_VALUES
        assert sched._share_of(job) == first

    def test_share_mix_covers_all_values(self):
        sched = DraScheduler(seed=2)
        shares = {
            sched._share_of(Job(record=make_record(task_id=i), submit_slot=0))
            for i in range(50)
        }
        assert shares == set(SHARE_VALUES)


class TestDemandEstimate:
    def test_fresh_job_estimated_at_request(self):
        sched = DraScheduler()
        job = Job(record=make_record(request=(2, 4, 10)), submit_slot=0)
        np.testing.assert_allclose(sched._demand_estimate(job), [2, 4, 10])

    def test_running_average_of_log(self):
        sched = DraScheduler(history_slots=2)
        job = Job(record=make_record(request=(2, 4, 10)), submit_slot=0)
        job.demand_log.extend([np.array([1.0, 1, 1]), np.array([3.0, 1, 1]),
                               np.array([5.0, 1, 1])])
        # only last two count
        assert sched._demand_estimate(job)[0] == pytest.approx(4.0)


class TestRedistribution:
    def test_caps_set_on_running_placements(self):
        result, sched = run_dra(n_jobs=30)
        # Redistribution happened: some completed jobs were capped below
        # their demand at least once (rate < 1 at some slot).
        slowed = [
            j for j in result.jobs
            if j.state is JobState.COMPLETED and j.rate_history
            and min(j.rate_history) < 1.0 - 1e-9
        ]
        assert slowed  # DRA's signature behaviour

    def test_caps_respect_capacity(self):
        sched = DraScheduler(seed=3)
        sim = ClusterSimulator(
            ClusterProfile.palmetto(n_pms=1, vms_per_pm=1), sched, SimulationConfig()
        )
        vm = sim.vms[0]
        jobs = [
            Job(record=make_record(request=(8, 20, 100), task_id=i), submit_slot=0)
            for i in range(2)
        ]
        for job in jobs:
            vm.add_placement(
                Placement(job=job, vm=vm, reserved=job.requested, opportunistic=False)
            )
            job.start(0, opportunistic=False)
        sched._redistribute()
        caps = np.array(
            [p.granted_cap.as_array() for p in vm.placements]
        )
        assert np.all(caps.sum(axis=0) <= vm.capacity.as_array() + 1e-6)

    def test_higher_headroom_fewer_squeezes(self):
        tight, _ = run_dra(n_jobs=30, seed=72, headroom=1.0)
        loose, _ = run_dra(n_jobs=30, seed=72, headroom=1.6)
        assert loose.slo.violation_rate <= tight.slo.violation_rate

    def test_predict_vm_unused_nonnegative(self):
        _, sched = run_dra()
        for vm in sched.vms:
            assert np.all(sched.predict_vm_unused(vm) >= 0)


class TestRun:
    def test_completes(self):
        result, _ = run_dra()
        assert result.all_done

    def test_never_opportunistic(self):
        result, _ = run_dra(n_jobs=40)
        assert all(not j.opportunistic for j in result.jobs)
