"""Vectorized ``execute_slot`` vs the per-placement reference.

The vectorized hot path in :meth:`VirtualMachine.execute_slot` must be
semantically interchangeable with the original per-placement loop (kept
verbatim in :mod:`repro.cluster._legacy`).  These tests drive both over
randomized placement mixes designed to hit every branch: primaries whose
collective demand exceeds capacity (over-capacity scaling), opportunists
squeezed into leftover room, and per-placement ``granted_cap`` ceilings.
"""

import numpy as np
import pytest

from repro.cluster._legacy import legacy_execute_slot, legacy_max_vm_capacity
from repro.cluster.machine import VirtualMachine
from repro.cluster.resources import ResourceVector

from .test_machine import make_vm, place, running_job

N_SLOTS = 4


def build_vm(seed: int) -> VirtualMachine:
    """A VM with a randomized placement mix, reproducible from ``seed``."""
    rng = np.random.default_rng(seed)
    vm = make_vm(capacity=tuple(rng.uniform(4.0, 12.0, size=3)))
    n = int(rng.integers(1, 8))
    for i in range(n):
        opportunistic = bool(rng.random() < 0.4)
        request = tuple(rng.uniform(0.5, 6.0, size=3))
        util = rng.uniform(0.0, 1.2, size=8)
        duration = float(rng.choice([10.0, 30.0, 60.0]))
        job = running_job(
            request=request, util=util, duration_s=duration, task_id=i
        )
        cap = None
        if rng.random() < 0.3:
            cap = ResourceVector(rng.uniform(0.2, 4.0, size=3))
        if opportunistic:
            place(vm, job, opportunistic=True, cap=cap)
            continue
        # Reserving only a fraction of the request lets the collective
        # primary demand exceed capacity, exercising the scaling branch.
        reserved = job.requested * float(rng.uniform(0.1, 1.0))
        if not vm.can_reserve(reserved):
            place(vm, job, opportunistic=True, cap=cap)
            continue
        place(vm, job, reserved=reserved, cap=cap)
    return vm


def assert_outcomes_match(a, b):
    for field in (
        "committed",
        "primary_demand",
        "opportunistic_demand",
        "served_demand",
        "unused",
    ):
        np.testing.assert_allclose(
            getattr(a, field).as_array(),
            getattr(b, field).as_array(),
            rtol=1e-12,
            atol=1e-12,
            err_msg=field,
        )


@pytest.mark.parametrize("seed", range(40))
def test_vectorized_matches_reference(seed):
    vec_vm = build_vm(seed)
    ref_vm = build_vm(seed)  # independent twin: jobs mutate as they run
    for slot in range(N_SLOTS):
        vec_out = vec_vm.execute_slot(slot)
        ref_out = legacy_execute_slot(ref_vm, slot)
        assert_outcomes_match(vec_out, ref_out)
        # Per-job effects must agree too: rates, progress, completion.
        for pv, pr in zip(vec_vm.placements, ref_vm.placements):
            assert pv.job.job_id == pr.job.job_id
            np.testing.assert_allclose(
                pv.job.rate_history, pr.job.rate_history, rtol=1e-12
            )
            assert pv.job.progress == pytest.approx(pr.job.progress, rel=1e-12)
            assert pv.job.state is pr.job.state
        vec_done = {j.record.task_id for j in vec_vm.remove_completed()}
        ref_done = {j.record.task_id for j in ref_vm.remove_completed()}
        assert vec_done == ref_done
    np.testing.assert_allclose(
        vec_vm.unused_history(), ref_vm.unused_history(), rtol=1e-12
    )
    np.testing.assert_allclose(
        vec_vm.demand_history(), ref_vm.demand_history(), rtol=1e-12
    )


def test_empty_vm_fast_path_matches_reference():
    vec_vm, ref_vm = make_vm(), make_vm()
    assert_outcomes_match(vec_vm.execute_slot(0), legacy_execute_slot(ref_vm, 0))
    np.testing.assert_array_equal(
        vec_vm.unused_history(), ref_vm.unused_history()
    )
    np.testing.assert_array_equal(
        vec_vm.demand_history(), ref_vm.demand_history()
    )


def test_max_vm_capacity_cache_matches_uncached():
    from repro.cluster.profiles import ClusterProfile
    from repro.cluster.simulator import ClusterSimulator

    from .test_simulator import GreedyScheduler

    sim = ClusterSimulator(
        ClusterProfile.palmetto(n_pms=2, vms_per_pm=2), GreedyScheduler()
    )
    uncached = legacy_max_vm_capacity(sim.vms)
    assert sim.max_vm_capacity() == uncached
    # Second read hits the memo; a changed VM set invalidates it.
    assert sim.max_vm_capacity() == uncached
    sim.vms = sim.vms[:1]
    assert sim.max_vm_capacity() == sim.vms[0].capacity
