"""Job lifecycle, demand indexing and the progress-under-contention model."""

import numpy as np
import pytest

from repro.cluster.job import Job, JobState
from repro.cluster.resources import ResourceVector
from repro.trace.records import TaskRecord


def make_record(
    *, duration_s=60.0, period_s=10.0, request=(2.0, 4.0, 10.0), util=None, task_id=0
) -> TaskRecord:
    n = max(1, int(np.ceil(duration_s / period_s)))
    req = np.asarray(request, dtype=float)
    if util is None:
        util = np.linspace(0.2, 0.8, n)
    usage = np.clip(np.asarray(util)[:, None] * req[None, :], 0, req)
    return TaskRecord(
        task_id=task_id,
        submit_time_s=0.0,
        duration_s=duration_s,
        requested=ResourceVector(req),
        usage=usage,
        sample_period_s=period_s,
    )


def make_job(**kw) -> Job:
    return Job(record=make_record(**kw), submit_slot=0)


class TestLifecycle:
    def test_initial_state(self):
        job = make_job()
        assert job.state is JobState.PENDING
        assert job.start_slot is None
        assert job.completion_slot is None

    def test_nominal_slots(self):
        assert make_job(duration_s=60).nominal_slots == 6
        assert make_job(duration_s=61).nominal_slots == 7
        assert make_job(duration_s=5).nominal_slots == 1

    def test_start(self):
        job = make_job()
        job.start(3, opportunistic=True)
        assert job.state is JobState.RUNNING
        assert job.start_slot == 3
        assert job.opportunistic

    def test_double_start_rejected(self):
        job = make_job()
        job.start(0, opportunistic=False)
        with pytest.raises(RuntimeError):
            job.start(1, opportunistic=False)

    def test_advance_requires_running(self):
        with pytest.raises(RuntimeError):
            make_job().advance(1.0, 0)

    def test_full_speed_completion(self):
        job = make_job(duration_s=30)  # 3 slots
        job.start(0, opportunistic=False)
        for slot in range(3):
            job.advance(1.0, slot)
        assert job.state is JobState.COMPLETED
        assert job.completion_slot == 2
        assert job.response_slots() == 3

    def test_half_speed_doubles_runtime(self):
        job = make_job(duration_s=30)
        job.start(0, opportunistic=False)
        slot = 0
        while job.state is JobState.RUNNING:
            job.advance(0.5, slot)
            slot += 1
        assert job.response_slots() == 6

    def test_queueing_delay_counts_in_response(self):
        job = make_job(duration_s=30)
        job.start(4, opportunistic=False)  # waited 4 slots
        for slot in range(4, 7):
            job.advance(1.0, slot)
        assert job.response_slots() == 7

    def test_rate_clipped(self):
        job = make_job(duration_s=30)
        job.start(0, opportunistic=False)
        job.advance(5.0, 0)  # clipped to 1
        assert job.progress == pytest.approx(1.0)
        job.advance(-1.0, 1)  # clipped to 0
        assert job.progress == pytest.approx(1.0)

    def test_response_none_before_completion(self):
        job = make_job()
        assert job.response_slots() is None


class TestDemand:
    def test_demand_indexed_by_progress(self):
        util = np.array([0.1, 0.5, 0.9])
        job = make_job(duration_s=30, util=util, request=(10, 10, 10))
        job.start(0, opportunistic=False)
        assert job.demand().cpu == pytest.approx(1.0)
        job.advance(1.0, 0)
        assert job.demand().cpu == pytest.approx(5.0)

    def test_slowed_job_replays_demand_curve(self):
        util = np.array([0.1, 0.5, 0.9])
        job = make_job(duration_s=30, util=util, request=(10, 10, 10))
        job.start(0, opportunistic=False)
        job.advance(0.5, 0)
        # progress 0.5 -> still on the first sample
        assert job.demand().cpu == pytest.approx(1.0)
        job.advance(0.5, 1)
        assert job.demand().cpu == pytest.approx(5.0)

    def test_demand_clamps_to_last_sample(self):
        util = np.array([0.2, 0.4])
        job = make_job(duration_s=20, util=util, request=(10, 10, 10))
        job.progress = 99.0  # past the end
        assert job.demand().cpu == pytest.approx(4.0)

    def test_demand_log_recorded_per_slot(self):
        job = make_job(duration_s=30)
        job.start(0, opportunistic=False)
        job.advance(1.0, 0)
        job.advance(1.0, 1)
        assert len(job.demand_log) == 2

    def test_utilization_history_shape_and_range(self):
        job = make_job(duration_s=40)
        job.start(0, opportunistic=False)
        for slot in range(4):
            job.advance(1.0, slot)
        hist = job.utilization_history()
        assert hist.shape == (4, 3)
        assert np.all(hist >= 0) and np.all(hist <= 1)

    def test_utilization_history_empty_before_running(self):
        assert make_job().utilization_history().shape == (0, 3)

    def test_utilization_history_zero_request_resource(self):
        job = make_job(request=(2.0, 0.0, 10.0))
        job.start(0, opportunistic=False)
        job.advance(1.0, 0)
        hist = job.utilization_history()
        assert np.all(hist[:, 1] == 0.0)


class TestComputeRate:
    def test_full_grant_full_rate(self):
        job = make_job(util=np.full(6, 0.5), request=(10, 10, 10))
        assert job.compute_rate(ResourceVector([5, 5, 5])) == pytest.approx(1.0)

    def test_min_across_resources(self):
        job = make_job(util=np.full(6, 0.5), request=(10, 10, 10))
        # demand 5 each; grant cpu only half
        assert job.compute_rate(ResourceVector([2.5, 5, 5])) == pytest.approx(0.5)

    def test_zero_demand_resource_ignored(self):
        job = make_job(util=np.full(6, 0.5), request=(10, 0, 10))
        rate = job.compute_rate(ResourceVector([5, 0, 5]))
        assert rate == pytest.approx(1.0)

    def test_no_demand_at_all_runs_full_speed(self):
        job = make_job(util=np.zeros(6), request=(10, 10, 10))
        assert job.compute_rate(ResourceVector.zeros()) == pytest.approx(1.0)

    def test_zero_grant_stalls(self):
        job = make_job(util=np.full(6, 0.5), request=(10, 10, 10))
        assert job.compute_rate(ResourceVector.zeros()) == 0.0

    def test_overgrant_capped_at_one(self):
        job = make_job(util=np.full(6, 0.2), request=(10, 10, 10))
        assert job.compute_rate(ResourceVector([100, 100, 100])) == 1.0


class TestRepr:
    def test_repr_fields(self):
        job = make_job()
        text = repr(job)
        assert "pending" in text and f"id={job.job_id}" in text
