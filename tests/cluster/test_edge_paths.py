"""Edge-path coverage: defensive branches in machine/simulator/provisioning."""

import numpy as np
import pytest

from repro.cluster.job import Job
from repro.cluster.machine import Placement, VirtualMachine
from repro.cluster.profiles import ClusterProfile
from repro.cluster.resources import ResourceVector
from repro.cluster.simulator import ClusterSimulator, SimulationConfig

from ..conftest import make_short_trace
from .test_job import make_record
from .test_simulator import GreedyScheduler


class TestPrimaryOverCapacityScaling:
    def test_caps_above_reservation_trigger_proportional_scaling(self):
        """granted_cap above the reservation can push the collective
        primary grant past capacity; the VM must scale grants back."""
        vm = VirtualMachine(0, ResourceVector([8, 32, 360]))
        jobs = []
        for i in range(3):
            job = Job(
                record=make_record(
                    request=(8, 8, 8), util=np.full(6, 0.5), task_id=i
                ),
                submit_slot=0,
            )
            # Tiny reservation (fits), huge explicit cap (defensive path).
            vm.add_placement(
                Placement(
                    job=job,
                    vm=vm,
                    reserved=ResourceVector([1, 1, 1]),
                    opportunistic=False,
                    granted_cap=ResourceVector([10, 10, 10]),
                )
            )
            job.start(0, opportunistic=False)
            jobs.append(job)
        outcome = vm.execute_slot(0)
        # 3 jobs x 4 cores demand = 12 > 8 capacity: grants scaled.
        assert outcome.served_demand.cpu <= vm.capacity.cpu + 1e-6
        assert all(j.rate_history[0] < 1.0 for j in jobs)


class TestSimulatorDefaults:
    def test_history_defaults_to_trace(self, small_profile):
        trace = make_short_trace(n_jobs=8, seed=55)
        sim = ClusterSimulator(small_profile, GreedyScheduler(), SimulationConfig())
        result = sim.run(trace)  # no history argument
        assert result.all_done

    def test_result_jobs_cover_all_submissions(self, small_profile):
        trace = make_short_trace(n_jobs=12, seed=56)
        sim = ClusterSimulator(small_profile, GreedyScheduler(), SimulationConfig())
        result = sim.run(trace)
        assert len(result.jobs) == result.n_submitted


class TestChurnEmission:
    def test_partial_window_sample_emitted_on_completion(self):
        """A VM whose only primary finishes mid-window still contributes
        its partial-window δ sample before tracking stops."""
        from ..core.test_provisioning import StubScheduler

        profile = ClusterProfile.palmetto(n_pms=1, vms_per_pm=1)
        sched = StubScheduler(window_slots=6)
        sim = ClusterSimulator(profile, sched, SimulationConfig())
        # An 80-second job (8 slots): alive at the slot-6 window
        # boundary (so a forecast tracks it) and completing at slot 7,
        # i.e. one slot into the window — the partial-sample path.
        from repro.trace.records import Trace

        record = make_record(request=(2, 4, 10), duration_s=80.0)
        result = sim.run(Trace([record]))
        assert result.n_completed == 1
        assert sched.gate.trackers[0].n_samples >= 1
        # Tracking stopped at the churn: no stale per-VM state remains.
        assert sched._window_forecast == {}
