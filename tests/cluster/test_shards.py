"""Sharded availability index: exact equivalence with the flat path.

The contract under test is *bit-identity*: for any shard count
(including more shards than VMs, which leaves some shards empty),
:class:`ShardedCandidateIndex` must return the same Eq. 22 winner, the
same random-feasible choice from the same rng stream position, and the
same feasibility views as a single :class:`CandidateSet` over the same
rows — and both must match the scalar reference loop the differential
checker re-derives placements with.  Capacities and demands are drawn
from a small grid on purpose so exact volume ties are common and the
tie-break path is exercised, not just the strict minimum.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourceVector
from repro.cluster.shards import (
    INDEX_BACKENDS,
    ScaleConfig,
    ShardedCandidateIndex,
)
from repro.core.vm_selection import (
    CandidateSet,
    select_most_matched as scalar_select_most_matched,
    tie_window,
)

from .test_machine import make_vm, place, running_job

# Small grids make exact ties likely (same request on several VMs).
_CAP_GRID = (2.0, 4.0, 8.0, 16.0)
_DEMAND_GRID = (0.0, 1.0, 2.0, 3.0, 5.0, 9.0, 20.0)

capacity_triples = st.tuples(*[st.sampled_from(_CAP_GRID)] * 3)
demand_triples = st.tuples(*[st.sampled_from(_DEMAND_GRID)] * 3)


def _build(caps, shards):
    vms = [make_vm(capacity=c, vm_id=i) for i, c in enumerate(caps)]
    matrix = np.array(caps, dtype=np.float64)
    index = ShardedCandidateIndex(vms, matrix.copy(), shards=shards)
    cset = CandidateSet(vms, matrix.copy())
    reference = ResourceVector(matrix.max(axis=0))
    return vms, index, cset, reference


class TestScaleConfig:
    def test_defaults(self):
        cfg = ScaleConfig()
        assert (cfg.shards, cfg.chunk_size, cfg.index_backend) == (
            1, 4096, "dense",
        )
        assert cfg.index_backend in INDEX_BACKENDS

    @pytest.mark.parametrize("kwargs", [
        {"shards": 0},
        {"shards": -3},
        {"chunk_size": 0},
        {"index_backend": "sparse"},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ScaleConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ScaleConfig().shards = 2


class TestShardedEquivalence:
    @settings(max_examples=60)
    @given(data=st.data())
    def test_matches_flat_set_and_scalar_oracle(self, data):
        """Place/consume sequences: every view equals the flat path's."""
        n = data.draw(st.integers(1, 8), label="n_vms")
        shards = data.draw(st.integers(1, 12), label="shards")
        caps = data.draw(
            st.lists(capacity_triples, min_size=n, max_size=n), label="caps"
        )
        vms, index, cset, reference = _build(caps, shards)
        seed = data.draw(st.integers(0, 2**16), label="seed")
        for _ in range(data.draw(st.integers(1, 8), label="n_ops")):
            demand = ResourceVector(data.draw(demand_triples, label="demand"))
            assert index.feasible_count(demand) == cset.feasible_count(demand)
            assert len(index) == len(cset)
            pick = index.select_most_matched(demand, reference)
            assert pick is cset.select_most_matched(demand, reference)
            assert pick is scalar_select_most_matched(
                demand, list(cset), reference
            )
            assert index.min_feasible_volume(demand, reference) == \
                cset.min_feasible_volume(demand, reference)
            rng_i = np.random.default_rng(seed)
            rng_c = np.random.default_rng(seed)
            assert index.select_random_feasible(demand, rng_i) is \
                cset.select_random_feasible(demand, rng_c)
            # Same number of draws consumed: the streams stay aligned.
            assert rng_i.bit_generator.state == rng_c.bit_generator.state
            if pick is not None:
                index.consume(pick, demand.as_array())
                cset.consume(pick, demand.as_array())
        for vm in vms:
            assert index.availability(vm) == cset.availability(vm)

    @settings(max_examples=40)
    @given(data=st.data())
    def test_persistent_index_tracks_vm_state(self, data):
        """refresh() after place/crash/restore/rescale equals a rebuild."""
        n = data.draw(st.integers(1, 6), label="n_vms")
        shards = data.draw(st.integers(1, 9), label="shards")
        caps = data.draw(
            st.lists(capacity_triples, min_size=n, max_size=n), label="caps"
        )
        vms = [make_vm(capacity=c, vm_id=i) for i, c in enumerate(caps)]
        index = ShardedCandidateIndex.for_vms(vms, shards=shards)
        assert index.refresh() <= shards
        task_id = 0
        for _ in range(data.draw(st.integers(1, 10), label="n_ops")):
            op = data.draw(
                st.sampled_from(("place", "crash", "restore", "rescale")),
                label="op",
            )
            vm = vms[data.draw(st.integers(0, n - 1), label="vm")]
            if op == "place" and vm.online:
                job = running_job(
                    request=data.draw(demand_triples, label="request"),
                    task_id=task_id,
                )
                task_id += 1
                if job.requested.fits_within(vm.unallocated()):
                    place(vm, job)
            elif op == "crash" and vm.online:
                vm.crash()
            elif op == "restore" and not vm.online:
                vm.restore()
            elif op == "rescale":
                vm.set_capacity_scale(
                    data.draw(st.sampled_from((0.25, 0.5, 1.0)), label="s")
                )
            index.refresh()
            live = [v for v in vms if v.online]
            fresh = CandidateSet(
                live,
                np.array([v.unallocated_array() for v in live])
                if live else np.zeros((0, 3)),
            )
            reference = ResourceVector(
                np.array([c for c in caps]).max(axis=0)
            )
            demand = ResourceVector(data.draw(demand_triples, label="demand"))
            assert len(index) == len(live)
            assert index.select_most_matched(demand, reference) is \
                fresh.select_most_matched(demand, reference)
            for v in vms:
                if v.online:
                    assert index.availability(v) == ResourceVector(
                        v.unallocated_array()
                    )
                else:
                    assert index.availability(v) is None

    def test_second_refresh_touches_nothing_when_idle(self):
        vms = [make_vm(vm_id=i) for i in range(6)]
        index = ShardedCandidateIndex.for_vms(vms, shards=3)
        assert index.refresh() == 3  # first sync fills every shard
        assert index.refresh() == 0  # nothing moved
        place(vms[0], running_job(request=(1, 1, 1)))
        assert index.refresh() == 1  # only vm 0's shard resynced

    def test_refresh_requires_tracking_index(self):
        vms = [make_vm(vm_id=0)]
        index = ShardedCandidateIndex(
            vms, np.array([vms[0].unallocated_array()])
        )
        with pytest.raises(RuntimeError):
            index.refresh()


class TestTieWindowScaleInvariance:
    """The 1e-12 tie window is relative, not absolute (the v1.7 fix).

    A lower-id VM whose volume is a hair *above* a higher-id VM's must
    still win the tie at any magnitude: with the old absolute window a
    0.25 gap at volume ~3e12 (well inside float rounding noise at that
    scale) read as a strict win for the higher id, so the same cluster
    described in different units picked different VMs.
    """

    def _two_vm_near_tie(self, magnitude):
        # vm 0's capacity is 0.25/magnitude "larger" in one lane; with
        # reference (1,1,1) its volume is greater by 0.25 at absolute
        # magnitude ~3*magnitude — inside the relative window, far
        # outside an absolute 1e-12 one when magnitude is large.
        caps = [
            (magnitude + 0.25, magnitude, magnitude),
            (magnitude, magnitude, magnitude),
        ]
        vms = [make_vm(capacity=c, vm_id=i) for i, c in enumerate(caps)]
        matrix = np.array(caps)
        reference = ResourceVector.of(cpu=1.0, mem=1.0, storage=1.0)
        demand = ResourceVector.of(cpu=1.0, mem=1.0, storage=1.0)
        return vms, matrix, reference, demand

    @pytest.mark.parametrize("magnitude", [1e12, 1e13])
    def test_near_tie_breaks_to_lower_id_at_large_magnitudes(
        self, magnitude
    ):
        vms, matrix, reference, demand = self._two_vm_near_tie(magnitude)
        gap = 0.25
        assert gap > 1e-12  # an absolute window would call this strict
        assert gap < tie_window(3 * magnitude)  # the relative one ties it
        cset = CandidateSet(vms, matrix.copy())
        assert cset.select_most_matched(demand, reference) is vms[0]
        index = ShardedCandidateIndex(vms, matrix.copy(), shards=2)
        assert index.select_most_matched(demand, reference) is vms[0]
        assert scalar_select_most_matched(
            demand, list(cset), reference
        ) is vms[0]

    def test_same_choice_across_magnitudes(self):
        """Scaling every volume by 1e12 must not change the winner."""
        winners = []
        for magnitude in (3.0, 3e12):
            vms, matrix, reference, demand = self._two_vm_near_tie(magnitude)
            # Keep the *relative* gap constant across magnitudes.
            matrix[0, 0] = magnitude * (1.0 + 1e-13)
            cset = CandidateSet(vms, matrix)
            winners.append(cset.select_most_matched(demand, reference).vm_id)
        assert winners == [0, 0]

    def test_tie_window_values(self):
        assert tie_window(0.0) == 0.0
        assert tie_window(1.0) == pytest.approx(1e-12)
        assert tie_window(-2e12) == pytest.approx(2.0)
        assert tie_window(3e12) == pytest.approx(3.0)

    def test_strict_minimum_still_wins(self):
        # Outside the window the genuinely smaller volume must win even
        # from the higher id.
        caps = [(8.0, 8.0, 8.0), (4.0, 4.0, 4.0)]
        vms = [make_vm(capacity=c, vm_id=i) for i, c in enumerate(caps)]
        cset = CandidateSet(vms, np.array(caps))
        reference = ResourceVector.of(cpu=8.0, mem=8.0, storage=8.0)
        demand = ResourceVector.of(cpu=1.0, mem=1.0, storage=1.0)
        assert cset.select_most_matched(demand, reference) is vms[1]
