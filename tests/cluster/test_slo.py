"""SLO specification and violation tracking."""

import pytest

from repro.cluster.job import Job
from repro.cluster.slo import SloSpec, SloTracker

from .test_job import make_record


def finished_job(nominal_slots: int, response_slots: int, task_id=0) -> Job:
    job = Job(
        record=make_record(duration_s=nominal_slots * 10.0, task_id=task_id),
        submit_slot=0,
    )
    job.start(0, opportunistic=False)
    # March to completion at the rate that yields the target response.
    rate = nominal_slots / response_slots
    slot = 0
    from repro.cluster.job import JobState

    while job.state is JobState.RUNNING:
        job.advance(rate, slot)
        slot += 1
    return job


class TestSloSpec:
    def test_rejects_sub_one_slack(self):
        with pytest.raises(ValueError):
            SloSpec(slack_factor=0.9)

    def test_threshold_rounding_up(self):
        spec = SloSpec(slack_factor=1.2)
        job = finished_job(nominal_slots=5, response_slots=5)
        assert spec.threshold_slots(job) == 6  # ceil(1.2*5)

    def test_threshold_exact_multiple(self):
        spec = SloSpec(slack_factor=1.5)
        job = finished_job(nominal_slots=4, response_slots=4)
        assert spec.threshold_slots(job) == 6

    def test_threshold_at_least_one(self):
        spec = SloSpec(slack_factor=1.0)
        job = finished_job(nominal_slots=1, response_slots=1)
        assert spec.threshold_slots(job) >= 1

    def test_on_time_not_violated(self):
        spec = SloSpec(slack_factor=1.2)
        assert not spec.is_violated(finished_job(5, 6))

    def test_late_violated(self):
        spec = SloSpec(slack_factor=1.2)
        assert spec.is_violated(finished_job(5, 7))

    def test_incomplete_job_rejected(self):
        job = Job(record=make_record(duration_s=60.0), submit_slot=0)
        with pytest.raises(ValueError):
            SloSpec().is_violated(job)


class TestSloTracker:
    def test_empty_tracker(self):
        assert SloTracker().violation_rate == 0.0

    def test_record_counts(self):
        tracker = SloTracker(spec=SloSpec(slack_factor=1.2))
        assert tracker.record(finished_job(5, 7, task_id=1)) is True
        assert tracker.record(finished_job(5, 5, task_id=2)) is False
        assert tracker.completed == 2
        assert tracker.violated == 1
        assert tracker.violation_rate == pytest.approx(0.5)

    def test_outcomes_recorded(self):
        tracker = SloTracker(spec=SloSpec(slack_factor=1.2))
        job = finished_job(5, 7, task_id=9)
        tracker.record(job)
        response, threshold, bad = tracker.outcomes[9]
        assert response == 7 and threshold == 6 and bad

    def test_incomplete_rejected(self):
        tracker = SloTracker()
        job = Job(record=make_record(duration_s=60.0), submit_slot=0)
        with pytest.raises(ValueError):
            tracker.record(job)

    def test_rate_all_good(self):
        tracker = SloTracker(spec=SloSpec(slack_factor=2.0))
        for i in range(5):
            tracker.record(finished_job(5, 6, task_id=i))
        assert tracker.violation_rate == 0.0
