"""Bandwidth accounting: the Section IV non-bottleneck claim."""

import pytest

from repro.cluster.bandwidth import BandwidthModel
from repro.cluster.machine import PhysicalMachine, Placement, VirtualMachine
from repro.cluster.resources import ResourceVector

from .test_machine import place, running_job


def loaded_pm(n_jobs: int) -> PhysicalMachine:
    pm = PhysicalMachine(0, ResourceVector([160, 640, 7200]))
    vm = VirtualMachine(0, ResourceVector([160, 640, 7200]))
    pm.add_vm(vm)
    for i in range(n_jobs):
        place(vm, running_job(request=(0.1, 0.1, 0.1), task_id=i))
    return pm


class TestBandwidthModel:
    def test_paper_defaults(self):
        model = BandwidthModel()
        assert model.node_gbps == 1.0
        assert model.per_job_mbps == 0.02
        assert model.node_capacity_mbps == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthModel(node_gbps=0.0)
        with pytest.raises(ValueError):
            BandwidthModel(per_job_mbps=-1.0)

    def test_usage_fraction(self):
        model = BandwidthModel()
        pm = loaded_pm(10)
        # 10 jobs x 0.02 MB/s over 1000 MB/s.
        assert model.pm_usage_fraction(pm) == pytest.approx(0.0002)

    def test_usage_by_pm_keys(self):
        model = BandwidthModel()
        usage = model.usage_by_pm([loaded_pm(3)])
        assert set(usage) == {0}

    def test_paper_setting_never_bottlenecks_realistic_loads(self):
        # Even 300 jobs on a single node use 0.6% of its bandwidth.
        model = BandwidthModel()
        assert model.max_supported_jobs_per_node() == 50_000
        assert not model.is_bottleneck([loaded_pm(300)])

    def test_bottleneck_detectable_with_heavy_jobs(self):
        model = BandwidthModel(per_job_mbps=200.0)
        assert model.is_bottleneck([loaded_pm(5)], threshold=0.5)

    def test_zero_per_job_capacity_unbounded(self):
        with pytest.raises(ValueError):
            BandwidthModel(per_job_mbps=0.0).max_supported_jobs_per_node()


class TestLiveSimulation:
    def test_non_bottleneck_holds_during_run(self, small_profile):
        from repro.cluster.simulator import ClusterSimulator, SimulationConfig
        from ..conftest import make_short_trace
        from .test_simulator import GreedyScheduler

        sim = ClusterSimulator(small_profile, GreedyScheduler(), SimulationConfig())
        model = BandwidthModel()
        checks = []
        orig = sim.metrics.record_arrays
        def patched(d, c):
            checks.append(model.is_bottleneck(sim.pms))
            orig(d, c)
        sim.metrics.record_arrays = patched
        sim.run(make_short_trace(n_jobs=25, seed=77))
        assert checks and not any(checks)
