"""Eq. 1-4 metric functions and the per-run recorder."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.metrics import (
    MetricsRecorder,
    overall_utilization,
    overall_wastage,
    utilization,
    wastage,
)
from repro.cluster.resources import DEFAULT_WEIGHTS, ResourceKind, ResourceVector

pos = st.floats(min_value=0.01, max_value=1e4, allow_nan=False)
vectors = st.builds(lambda a, b, c: ResourceVector([a, b, c]), pos, pos, pos)


class TestPointMetrics:
    def test_utilization_basic(self):
        u = utilization(ResourceVector([1, 2, 3]), ResourceVector([2, 4, 6]))
        np.testing.assert_allclose(u, [0.5, 0.5, 0.5])

    def test_utilization_zero_committed(self):
        u = utilization(ResourceVector([1, 2, 3]), ResourceVector.zeros())
        np.testing.assert_allclose(u, [0, 0, 0])

    def test_utilization_clipped_at_one(self):
        u = utilization(ResourceVector([3, 3, 3]), ResourceVector([2, 2, 2]))
        np.testing.assert_allclose(u, [1, 1, 1])

    def test_overall_utilization_weighted(self):
        # CPU fully used, storage unused; weights 0.4/0.4/0.2
        demand = ResourceVector([2, 0, 0])
        committed = ResourceVector([2, 2, 2])
        assert overall_utilization(demand, committed) == pytest.approx(0.4)

    def test_overall_utilization_zero_denominator(self):
        assert overall_utilization(ResourceVector([1, 1, 1]), ResourceVector.zeros()) == 0.0

    def test_wastage_is_complement(self):
        demand = ResourceVector([1, 2, 3])
        committed = ResourceVector([2, 4, 6])
        np.testing.assert_allclose(
            wastage(demand, committed), 1.0 - utilization(demand, committed)
        )

    def test_overall_wastage_complement(self):
        demand = ResourceVector([1, 1, 1])
        committed = ResourceVector([2, 2, 2])
        total = overall_utilization(demand, committed) + overall_wastage(
            demand, committed
        )
        assert total == pytest.approx(1.0)

    @given(vectors, vectors)
    def test_utilization_in_unit_interval(self, demand, committed):
        u = utilization(demand, committed)
        assert np.all(u >= 0) and np.all(u <= 1)

    @given(vectors, vectors)
    def test_overall_util_and_wastage_bounded(self, demand, committed):
        u = overall_utilization(demand, committed)
        w = overall_wastage(demand, committed)
        assert 0.0 <= u <= 1.0 and 0.0 <= w <= 1.0

    @given(vectors, vectors)
    def test_util_plus_wastage_is_one_when_demand_fits(self, demand, committed):
        # The exact complement only holds when no resource is
        # over-served (demand <= committed elementwise).
        capped = demand.minimum(committed)
        u = overall_utilization(capped, committed)
        w = overall_wastage(capped, committed)
        assert u + w == pytest.approx(1.0, abs=1e-9)

    @given(vectors)
    def test_full_demand_is_full_utilization(self, committed):
        assert overall_utilization(committed, committed) == pytest.approx(1.0)
        assert overall_wastage(committed, committed) == pytest.approx(0.0)


class TestDefaultWeights:
    def test_default_weights_are_read_only(self):
        # Regression: the module-level weights array is the shared
        # default argument of overall_utilization/overall_wastage; an
        # in-place mutation would silently skew every later call.
        with pytest.raises(ValueError):
            DEFAULT_WEIGHTS[0] = 0.9
        np.testing.assert_allclose(DEFAULT_WEIGHTS, [0.4, 0.4, 0.2])

    def test_caller_mutation_cannot_leak_into_defaults(self):
        # A caller normalizing or scaling "the" weights must not be able
        # to change what a later default-weight call computes.
        u = ResourceVector([1, 1, 1])
        c = ResourceVector([2, 2, 2])
        before = overall_utilization(u, c)
        weights = DEFAULT_WEIGHTS
        with pytest.raises(ValueError):
            weights *= 2.0
        assert overall_utilization(u, c) == before

    def test_recorder_weights_stay_independent(self):
        rec = MetricsRecorder()
        rec.weights[:] = [1.0, 0.0, 0.0]  # per-recorder copy is writable
        np.testing.assert_allclose(DEFAULT_WEIGHTS, [0.4, 0.4, 0.2])


class TestRecorder:
    def test_empty(self):
        rec = MetricsRecorder()
        assert rec.n_slots == 0
        assert rec.mean_overall_utilization() == 0.0
        assert rec.mean_overall_wastage() == 0.0
        assert rec.per_slot_utilization().shape == (0, 3)
        assert rec.per_slot_overall().shape == (0,)

    def test_single_slot(self):
        rec = MetricsRecorder()
        rec.record(ResourceVector([1, 1, 1]), ResourceVector([2, 2, 2]))
        assert rec.mean_overall_utilization() == pytest.approx(0.5)

    def test_idle_slots_excluded_from_mean(self):
        rec = MetricsRecorder()
        rec.record(ResourceVector.zeros(), ResourceVector.zeros())  # idle
        rec.record(ResourceVector([1, 1, 1]), ResourceVector([2, 2, 2]))
        assert rec.mean_overall_utilization() == pytest.approx(0.5)

    def test_all_idle_run(self):
        rec = MetricsRecorder()
        rec.record(ResourceVector.zeros(), ResourceVector.zeros())
        assert rec.mean_overall_utilization() == 0.0
        assert rec.mean_utilization(ResourceKind.CPU) == 0.0

    def test_per_resource_means(self):
        rec = MetricsRecorder()
        rec.record(ResourceVector([1, 2, 0]), ResourceVector([2, 2, 4]))
        assert rec.mean_utilization(ResourceKind.CPU) == pytest.approx(0.5)
        assert rec.mean_utilization(ResourceKind.MEM) == pytest.approx(1.0)
        assert rec.mean_utilization(ResourceKind.STORAGE) == pytest.approx(0.0)

    def test_utilization_by_resource_keys(self):
        rec = MetricsRecorder()
        rec.record(ResourceVector([1, 1, 1]), ResourceVector([2, 2, 2]))
        by = rec.utilization_by_resource()
        assert set(by) == set(ResourceKind)

    def test_mean_over_slots(self):
        rec = MetricsRecorder()
        rec.record(ResourceVector([1, 1, 1]), ResourceVector([2, 2, 2]))  # 0.5
        rec.record(ResourceVector([2, 2, 2]), ResourceVector([2, 2, 2]))  # 1.0
        assert rec.mean_overall_utilization() == pytest.approx(0.75)

    def test_wastage_is_one_minus_mean(self):
        rec = MetricsRecorder()
        rec.record(ResourceVector([1, 1, 1]), ResourceVector([4, 4, 4]))
        assert rec.mean_overall_wastage() == pytest.approx(0.75)

    def test_per_slot_series_shapes(self):
        rec = MetricsRecorder()
        for _ in range(5):
            rec.record(ResourceVector([1, 1, 1]), ResourceVector([2, 2, 2]))
        assert rec.per_slot_utilization().shape == (5, 3)
        assert rec.per_slot_overall().shape == (5,)

    def test_record_arrays_matches_record(self):
        # The array-based fast path the simulator uses must agree with
        # the ResourceVector entry point exactly.
        a, b = MetricsRecorder(), MetricsRecorder()
        a.record(ResourceVector([1, 2, 3]), ResourceVector([4, 4, 4]))
        b.record_arrays(np.array([1.0, 2.0, 3.0]), np.array([4.0, 4.0, 4.0]))
        np.testing.assert_array_equal(
            a.per_slot_utilization(), b.per_slot_utilization()
        )
        np.testing.assert_array_equal(a.per_slot_overall(), b.per_slot_overall())

    def test_recorder_copies_inputs(self):
        rec = MetricsRecorder()
        demand = ResourceVector([1, 1, 1])
        rec.record(demand, ResourceVector([2, 2, 2]))
        # The recorder keeps its own arrays; the originals stay immutable
        # anyway, so recorded values must equal the originals later.
        assert rec.per_slot_utilization()[0, 0] == pytest.approx(0.5)
