"""VM/PM accounting, placement rules and slot execution semantics."""

import numpy as np
import pytest

from repro.cluster.job import Job, JobState
from repro.cluster.machine import PhysicalMachine, Placement, VirtualMachine
from repro.cluster.resources import ResourceVector

from .test_job import make_record


def make_vm(capacity=(8.0, 32.0, 360.0), vm_id=0) -> VirtualMachine:
    return VirtualMachine(vm_id, ResourceVector(capacity))


def running_job(*, request=(2, 4, 10), util=None, duration_s=60.0, task_id=0) -> Job:
    job = Job(
        record=make_record(
            request=request, util=util, duration_s=duration_s, task_id=task_id
        ),
        submit_slot=0,
    )
    return job


def place(vm, job, *, opportunistic=False, reserved=None, cap=None, slot=0):
    reserved = (
        ResourceVector.zeros()
        if opportunistic
        else (reserved if reserved is not None else job.requested)
    )
    p = Placement(job=job, vm=vm, reserved=reserved, opportunistic=opportunistic,
                  granted_cap=cap)
    vm.add_placement(p)
    job.start(slot, opportunistic=opportunistic)
    return p


class TestVmConstruction:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            VirtualMachine(0, ResourceVector.zeros())

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            VirtualMachine(0, ResourceVector([-1, 2, 3]))


class TestCommitmentAccounting:
    def test_empty_vm(self):
        vm = make_vm()
        assert vm.committed() == ResourceVector.zeros()
        assert vm.unallocated() == vm.capacity

    def test_primary_commits(self):
        vm = make_vm()
        place(vm, running_job(request=(2, 4, 10)))
        assert vm.committed() == ResourceVector([2, 4, 10])
        assert vm.unallocated() == ResourceVector([6, 28, 350])

    def test_opportunistic_does_not_commit(self):
        vm = make_vm()
        place(vm, running_job(), opportunistic=True)
        assert vm.committed() == ResourceVector.zeros()

    def test_can_reserve_respects_unallocated(self):
        vm = make_vm(capacity=(4, 8, 20))
        place(vm, running_job(request=(3, 4, 10)))
        assert vm.can_reserve(ResourceVector([1, 4, 10]))
        assert not vm.can_reserve(ResourceVector([2, 4, 10]))

    def test_overcommit_primary_rejected(self):
        vm = make_vm(capacity=(4, 8, 20))
        place(vm, running_job(request=(3, 4, 10), task_id=1))
        job2 = running_job(request=(2, 2, 2), task_id=2)
        with pytest.raises(ValueError):
            vm.add_placement(
                Placement(job=job2, vm=vm, reserved=job2.requested, opportunistic=False)
            )

    def test_placement_on_wrong_vm_rejected(self):
        vm1, vm2 = make_vm(vm_id=1), make_vm(vm_id=2)
        job = running_job()
        with pytest.raises(ValueError):
            vm1.add_placement(
                Placement(job=job, vm=vm2, reserved=job.requested, opportunistic=False)
            )

    def test_actual_unused(self):
        vm = make_vm(capacity=(10, 10, 10))
        place(vm, running_job(request=(10, 10, 10), util=np.full(6, 0.4)))
        unused = vm.actual_unused()
        np.testing.assert_allclose(unused.as_array(), [6, 6, 6])


class TestSlotExecution:
    def test_primary_gets_full_demand(self):
        vm = make_vm()
        job = running_job(request=(4, 4, 4), util=np.full(6, 0.5))
        place(vm, job)
        outcome = vm.execute_slot(0)
        assert job.rate_history[-1] == pytest.approx(1.0)
        np.testing.assert_allclose(outcome.primary_demand.as_array(), [2, 2, 2])

    def test_granted_cap_squeezes_primary(self):
        vm = make_vm()
        job = running_job(request=(4, 4, 4), util=np.full(6, 0.5))
        place(vm, job, cap=ResourceVector([1, 4, 4]))  # cpu cap half the demand
        vm.execute_slot(0)
        assert job.rate_history[-1] == pytest.approx(0.5)

    def test_opportunistic_served_from_leftover(self):
        vm = make_vm(capacity=(4, 16, 100))
        primary = running_job(request=(4, 8, 50), util=np.full(6, 0.25), task_id=1)
        rider = running_job(request=(3, 3, 3), util=np.full(6, 0.5), task_id=2)
        place(vm, primary)
        place(vm, rider, opportunistic=True)
        vm.execute_slot(0)
        # leftover cpu = 4 - 1 = 3 >= rider demand 1.5 -> full speed
        assert rider.rate_history[-1] == pytest.approx(1.0)

    def test_opportunistic_squeezed_when_capacity_tight(self):
        vm = make_vm(capacity=(4, 16, 100))
        primary = running_job(request=(4, 8, 50), util=np.full(6, 0.75), task_id=1)
        rider = running_job(request=(4, 4, 4), util=np.full(6, 0.5), task_id=2)
        place(vm, primary)
        place(vm, rider, opportunistic=True)
        vm.execute_slot(0)
        # leftover cpu = 4 - 3 = 1; rider demand 2 -> rate 0.5
        assert primary.rate_history[-1] == pytest.approx(1.0)
        assert rider.rate_history[-1] == pytest.approx(0.5)

    def test_riders_share_leftover_proportionally(self):
        vm = make_vm(capacity=(4, 16, 100))
        primary = running_job(request=(4, 8, 50), util=np.full(6, 0.5), task_id=1)
        r1 = running_job(request=(4, 4, 4), util=np.full(6, 0.5), task_id=2)
        r2 = running_job(request=(4, 4, 4), util=np.full(6, 0.5), task_id=3)
        place(vm, primary)
        place(vm, r1, opportunistic=True)
        place(vm, r2, opportunistic=True)
        vm.execute_slot(0)
        # leftover cpu 2; rider demand 2+2=4 -> each at rate 0.5
        assert r1.rate_history[-1] == pytest.approx(0.5)
        assert r2.rate_history[-1] == pytest.approx(0.5)

    def test_outcome_unused_tracks_committed_minus_demand(self):
        vm = make_vm()
        place(vm, running_job(request=(8, 8, 8), util=np.full(6, 0.25)))
        outcome = vm.execute_slot(0)
        np.testing.assert_allclose(outcome.unused.as_array(), [6, 6, 6])

    def test_history_accumulates(self):
        vm = make_vm()
        place(vm, running_job(request=(8, 8, 8), util=np.full(6, 0.5)))
        vm.execute_slot(0)
        vm.execute_slot(1)
        assert vm.unused_history().shape == (2, 3)
        assert vm.unused_history(last=1).shape == (1, 3)
        assert vm.demand_history().shape == (2, 3)

    def test_empty_vm_histories(self):
        vm = make_vm()
        assert vm.unused_history().shape == (0, 3)
        assert vm.demand_history().shape == (0, 3)

    def test_history_last_zero_is_empty_window(self):
        # Regression: ``last=0`` used to fall through the truthiness
        # check and return the FULL history instead of an empty window.
        vm = make_vm()
        place(vm, running_job(request=(8, 8, 8), util=np.full(6, 0.5)))
        vm.execute_slot(0)
        vm.execute_slot(1)
        assert vm.unused_history(last=0).shape == (0, 3)
        assert vm.demand_history(last=0).shape == (0, 3)
        # ``last=None`` (the default) still means "everything".
        assert vm.unused_history(last=None).shape == (2, 3)
        assert vm.demand_history(last=None).shape == (2, 3)

    def test_remove_completed(self):
        vm = make_vm()
        job = running_job(duration_s=10)  # one slot
        place(vm, job)
        vm.execute_slot(0)
        assert job.state is JobState.COMPLETED
        done = vm.remove_completed()
        assert done == [job]
        assert vm.placements == []

    def test_remove_completed_keeps_running(self):
        vm = make_vm()
        job = running_job(duration_s=60)
        place(vm, job)
        vm.execute_slot(0)
        assert vm.remove_completed() == []
        assert len(vm.placements) == 1


class TestPlacementCaps:
    def test_effective_cap_primary_defaults_to_reservation(self):
        vm = make_vm()
        p = place(vm, running_job(request=(2, 4, 10)))
        assert p.effective_cap() == ResourceVector([2, 4, 10])

    def test_effective_cap_opportunistic_defaults_to_request(self):
        vm = make_vm()
        p = place(vm, running_job(request=(2, 4, 10)), opportunistic=True)
        assert p.effective_cap() == ResourceVector([2, 4, 10])

    def test_effective_cap_explicit(self):
        vm = make_vm()
        p = place(vm, running_job(), cap=ResourceVector([1, 1, 1]))
        assert p.effective_cap() == ResourceVector([1, 1, 1])


class TestPhysicalMachine:
    def test_add_vm_within_capacity(self):
        pm = PhysicalMachine(0, ResourceVector([16, 64, 720]))
        pm.add_vm(make_vm(capacity=(8, 32, 360), vm_id=0))
        pm.add_vm(make_vm(capacity=(8, 32, 360), vm_id=1))
        assert len(pm.vms) == 2
        assert pm.free_capacity() == ResourceVector.zeros()

    def test_add_vm_overflow_rejected(self):
        pm = PhysicalMachine(0, ResourceVector([8, 32, 360]))
        pm.add_vm(make_vm(capacity=(8, 32, 360)))
        with pytest.raises(ValueError):
            pm.add_vm(make_vm(capacity=(1, 1, 1), vm_id=1))

    def test_add_vm_sets_pm_id(self):
        pm = PhysicalMachine(7, ResourceVector([16, 64, 720]))
        vm = make_vm()
        pm.add_vm(vm)
        assert vm.pm_id == 7

    def test_repr(self):
        pm = PhysicalMachine(1, ResourceVector([16, 64, 720]))
        assert "id=1" in repr(pm)
        assert "id=0" in repr(make_vm())
