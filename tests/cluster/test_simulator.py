"""End-to-end simulator behaviour with a minimal greedy scheduler."""

from typing import Sequence

import numpy as np
import pytest

from repro.cluster.job import Job, JobState
from repro.cluster.machine import Placement
from repro.cluster.profiles import ClusterProfile
from repro.cluster.resources import ResourceVector
from repro.cluster.scheduler import Scheduler
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.cluster.slo import SloSpec
from repro.trace.records import Trace

from ..conftest import make_short_trace
from .test_job import make_record


class GreedyScheduler(Scheduler):
    """First-fit primary-only scheduler — the simplest valid policy."""

    name = "greedy"

    def place_jobs(self, pending: Sequence[Job], slot: int):
        placed = []
        for job in pending:
            for vm in self.vms:
                if vm.can_reserve(job.requested):
                    vm.add_placement(
                        Placement(
                            job=job,
                            vm=vm,
                            reserved=job.requested,
                            opportunistic=False,
                        )
                    )
                    job.start(slot, opportunistic=False)
                    placed.append(job)
                    break
        return placed


@pytest.fixture()
def profile():
    return ClusterProfile.palmetto(n_pms=4, vms_per_pm=2)


def run_greedy(trace: Trace, profile, **cfg_kw):
    sim = ClusterSimulator(profile, GreedyScheduler(), SimulationConfig(**cfg_kw))
    return sim.run(trace)


class TestBasicRun:
    def test_all_jobs_complete(self, profile):
        trace = make_short_trace(n_jobs=20, seed=5)
        result = run_greedy(trace, profile)
        assert result.n_submitted == len(trace)
        assert result.n_completed + result.n_rejected == result.n_submitted
        assert result.all_done

    def test_jobs_complete_in_nominal_time_when_uncontended(self, profile):
        trace = make_short_trace(n_jobs=5, seed=6)
        result = run_greedy(trace, profile)
        for job in result.jobs:
            if job.state is JobState.COMPLETED and job.start_slot == job.submit_slot:
                assert job.response_slots() <= job.nominal_slots + 1

    def test_metrics_recorded_every_slot(self, profile):
        trace = make_short_trace(n_jobs=10, seed=7)
        result = run_greedy(trace, profile)
        assert result.metrics.n_slots == result.n_slots

    def test_utilization_bounded(self, profile):
        trace = make_short_trace(n_jobs=20, seed=8)
        result = run_greedy(trace, profile)
        util = result.summary()["overall_utilization"]
        assert 0.0 < util <= 1.0

    def test_summary_keys(self, profile):
        result = run_greedy(make_short_trace(n_jobs=5, seed=9), profile)
        summary = result.summary()
        for key in (
            "overall_utilization",
            "overall_wastage",
            "slo_violation_rate",
            "allocation_latency_s",
            "utilization_cpu",
            "utilization_mem",
            "utilization_storage",
        ):
            assert key in summary

    def test_empty_prediction_log_reports_no_error_rate(self, profile):
        # The greedy scheduler never logs predictions; an empty log has
        # an undefined (NaN) error rate, which the result must surface
        # as "no metric", never as a perfect 0.0.
        result = run_greedy(make_short_trace(n_jobs=5, seed=13), profile)
        assert result.prediction_error_rate is None
        assert "prediction_error_rate" not in result.summary()

    def test_deterministic_given_seeded_trace(self, profile):
        trace = make_short_trace(n_jobs=15, seed=10)
        a = run_greedy(trace, ClusterProfile.palmetto(n_pms=4, vms_per_pm=2))
        b = run_greedy(trace, ClusterProfile.palmetto(n_pms=4, vms_per_pm=2))
        sa, sb = a.summary(), b.summary()
        # Wall-clock latency is inherently non-deterministic; everything
        # else must match bit-for-bit.
        sa.pop("allocation_latency_s"), sb.pop("allocation_latency_s")
        assert sa == sb


class TestAdmission:
    def test_oversized_job_rejected(self, profile):
        record = make_record(request=(999.0, 1.0, 1.0), duration_s=30.0)
        result = run_greedy(Trace([record]), profile)
        assert result.n_rejected == 1
        assert result.n_completed == 0

    def test_max_vm_capacity(self, profile):
        sim = ClusterSimulator(profile, GreedyScheduler())
        assert sim.max_vm_capacity() == profile.vm_capacity


class TestQueueing:
    def test_saturated_cluster_queues_jobs(self):
        # One tiny VM; several concurrent jobs must wait their turn.
        tiny = ClusterProfile(
            name="tiny",
            n_pms=1,
            pm_capacity=ResourceVector.of(cpu=4, mem=16, storage=100),
            vms_per_pm=1,
            comm_latency_s=0.0,
        )
        records = [
            make_record(request=(3, 4, 10), duration_s=50.0, task_id=i)
            for i in range(4)
        ]
        result = run_greedy(Trace(records), tiny)
        waits = [j.start_slot - j.submit_slot for j in result.jobs]
        assert max(waits) > 0
        assert result.n_completed == 4

    def test_queueing_creates_slo_violations(self):
        tiny = ClusterProfile(
            name="tiny",
            n_pms=1,
            pm_capacity=ResourceVector.of(cpu=4, mem=16, storage=100),
            vms_per_pm=1,
            comm_latency_s=0.0,
        )
        records = [
            make_record(request=(3, 4, 10), duration_s=50.0, task_id=i)
            for i in range(6)
        ]
        sim = ClusterSimulator(
            tiny, GreedyScheduler(), SimulationConfig(slo=SloSpec(slack_factor=1.1))
        )
        result = sim.run(Trace(records))
        assert result.slo.violation_rate > 0.0


class TestStopConditions:
    def test_max_slots_cap(self, profile):
        trace = make_short_trace(n_jobs=10, seed=11)
        result = run_greedy(trace, profile, max_slots=3)
        assert result.n_slots == 3

    def test_no_drain_stops_at_last_arrival(self, profile):
        trace = make_short_trace(n_jobs=10, seed=12)
        drained = run_greedy(trace, profile, drain=True)
        cut = run_greedy(trace, profile, drain=False)
        assert cut.n_slots <= drained.n_slots

    def test_single_job_runs_exactly_nominal_slots(self, profile):
        # Regression for the slot-loop off-by-one: one uncontended job
        # with a 30 s nominal runtime needs exactly 3 slots — no
        # guaranteed-empty trailing slot may execute after it drains.
        record = make_record(request=(1.0, 1.0, 1.0), duration_s=30.0)
        result = run_greedy(Trace([record]), profile)
        assert result.n_completed == 1
        assert result.n_slots == 3
        assert result.metrics.n_slots == 3

    def test_empty_trace_executes_zero_slots(self, profile):
        # With nothing to arrive and nothing to drain, the loop must
        # stop before executing a single slot (it used to run one).
        result = run_greedy(Trace(), profile)
        assert result.n_slots == 0
        assert result.n_submitted == 0
        assert result.metrics.n_slots == 0
