"""LatencyMeter and PredictionLog instrumentation."""

import time

import numpy as np
import pytest

from repro.cluster.scheduler import LatencyMeter, PredictionLog


class TestLatencyMeter:
    def test_initial_zero(self):
        meter = LatencyMeter(comm_latency_s=0.001)
        assert meter.total_s == 0.0

    def test_measure_accumulates(self):
        meter = LatencyMeter()
        with meter.measure():
            time.sleep(0.01)
        assert meter.compute_s >= 0.009

    def test_measure_multiple_blocks(self):
        meter = LatencyMeter()
        for _ in range(3):
            with meter.measure():
                pass
        assert meter.compute_s >= 0.0

    def test_comm_charges(self):
        meter = LatencyMeter(comm_latency_s=0.002)
        meter.charge_comm(5)
        assert meter.comm_ops == 5
        assert meter.comm_s == pytest.approx(0.01)

    def test_negative_comm_rejected(self):
        with pytest.raises(ValueError):
            LatencyMeter().charge_comm(-1)

    def test_total_is_sum(self):
        meter = LatencyMeter(comm_latency_s=0.001)
        meter.charge_comm(10)
        with meter.measure():
            pass
        assert meter.total_s == pytest.approx(meter.compute_s + 0.01)

    def test_measure_propagates_exceptions_but_records(self):
        meter = LatencyMeter()
        with pytest.raises(RuntimeError):
            with meter.measure():
                raise RuntimeError("boom")
        assert meter.compute_s >= 0.0


class TestPredictionLog:
    def test_empty(self):
        log = PredictionLog()
        assert len(log) == 0
        # No observations means the rate is undefined, not perfect.
        assert np.isnan(log.error_rate(0.5))
        assert log.rmse() == 0.0

    def test_errors_direction(self):
        # Eq. 20: δ = actual − predicted; positive = conservative.
        log = PredictionLog()
        log.add(predicted=1.0, actual=1.5)
        assert log.errors()[0] == pytest.approx(0.5)

    def test_error_rate_counts_band(self):
        log = PredictionLog()
        log.add(1.0, 1.2)   # δ=0.2 in [0, 0.5) -> correct
        log.add(1.0, 0.9)   # δ=-0.1 -> wrong (over-prediction)
        log.add(1.0, 1.6)   # δ=0.6 >= ε -> wrong
        log.add(1.0, 1.0)   # δ=0 -> correct (inclusive lower bound)
        assert log.error_rate(0.5) == pytest.approx(0.5)

    def test_error_rate_tolerance_validated(self):
        log = PredictionLog()
        log.add(1.0, 1.0)
        with pytest.raises(ValueError):
            log.error_rate(0.0)

    def test_rmse(self):
        log = PredictionLog()
        log.add(0.0, 3.0)
        log.add(0.0, -4.0)
        assert log.rmse() == pytest.approx(np.sqrt((9 + 16) / 2))

    def test_perfect_predictions(self):
        log = PredictionLog()
        for v in (0.5, 1.0, 2.0):
            log.add(v, v)
        assert log.error_rate(0.1) == 0.0
        assert log.rmse() == 0.0
