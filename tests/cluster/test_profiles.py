"""Cluster profiles: the two testbed descriptions of Section IV."""

import pytest

from repro.cluster.profiles import ClusterProfile
from repro.cluster.resources import ResourceVector


class TestPalmetto:
    def test_defaults(self):
        p = ClusterProfile.palmetto()
        assert p.name == "palmetto"
        assert p.n_pms == 50
        assert p.pm_capacity == ResourceVector.of(cpu=16, mem=64, storage=720)

    def test_vm_carving(self):
        p = ClusterProfile.palmetto(n_pms=10, vms_per_pm=2)
        assert p.n_vms == 20
        assert p.vm_capacity == ResourceVector.of(cpu=8, mem=32, storage=360)

    def test_build_counts(self):
        p = ClusterProfile.palmetto(n_pms=3, vms_per_pm=2)
        pms, vms = p.build()
        assert len(pms) == 3
        assert len(vms) == 6

    def test_build_vm_ids_sequential(self):
        _, vms = ClusterProfile.palmetto(n_pms=2, vms_per_pm=2).build()
        assert [vm.vm_id for vm in vms] == [0, 1, 2, 3]

    def test_build_assigns_pm_ids(self):
        pms, vms = ClusterProfile.palmetto(n_pms=2, vms_per_pm=2).build()
        assert vms[0].pm_id == 0 and vms[3].pm_id == 1

    def test_vms_fit_in_pm(self):
        pms, _ = ClusterProfile.palmetto(n_pms=1, vms_per_pm=4).build()
        assert pms[0].free_capacity() == ResourceVector.zeros()


class TestEc2:
    def test_defaults(self):
        p = ClusterProfile.ec2()
        assert p.name == "ec2"
        assert p.n_pms == 30
        assert p.vms_per_pm == 1
        assert p.n_vms == 30

    def test_comm_latency_above_cluster(self):
        # The EC2 communication overhead exceeds the cluster's — the
        # cause of Fig. 14's latencies exceeding Fig. 10's.
        assert ClusterProfile.ec2().comm_latency_s > ClusterProfile.palmetto().comm_latency_s

    def test_bandwidth_recorded(self):
        assert ClusterProfile.ec2().bandwidth_gbps == 1.0


class TestValidation:
    def test_rejects_zero_pms(self):
        with pytest.raises(ValueError):
            ClusterProfile(
                name="x",
                n_pms=0,
                pm_capacity=ResourceVector.of(cpu=1),
                vms_per_pm=1,
                comm_latency_s=0.0,
            )

    def test_rejects_zero_vms_per_pm(self):
        with pytest.raises(ValueError):
            ClusterProfile(
                name="x",
                n_pms=1,
                pm_capacity=ResourceVector.of(cpu=1),
                vms_per_pm=0,
                comm_latency_s=0.0,
            )

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            ClusterProfile(
                name="x",
                n_pms=1,
                pm_capacity=ResourceVector.of(cpu=1),
                vms_per_pm=1,
                comm_latency_s=-0.1,
            )

    def test_builds_are_independent(self):
        p = ClusterProfile.palmetto(n_pms=1, vms_per_pm=1)
        _, vms_a = p.build()
        _, vms_b = p.build()
        assert vms_a[0] is not vms_b[0]
