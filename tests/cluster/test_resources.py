"""Unit and property tests for ResourceVector / ResourceKind."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.resources import (
    DEFAULT_WEIGHTS,
    NUM_RESOURCES,
    ResourceKind,
    ResourceVector,
)

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
vectors = st.builds(
    lambda a, b, c: ResourceVector([a, b, c]), finite, finite, finite
)


class TestConstruction:
    def test_basic(self):
        v = ResourceVector([1.0, 2.0, 3.0])
        assert v.cpu == 1.0
        assert v.mem == 2.0
        assert v.storage == 3.0

    def test_of_named(self):
        v = ResourceVector.of(cpu=4, mem=8, storage=100)
        assert v.cpu == 4 and v.mem == 8 and v.storage == 100

    def test_of_defaults_zero(self):
        assert ResourceVector.of(cpu=1) == ResourceVector([1, 0, 0])

    def test_zeros(self):
        assert ResourceVector.zeros().total() == 0.0

    def test_full(self):
        assert ResourceVector.full(2.5).total() == pytest.approx(7.5)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector([1.0, 2.0])
        with pytest.raises(ValueError):
            ResourceVector([1.0, 2.0, 3.0, 4.0])

    def test_immutable_backing_array(self):
        v = ResourceVector([1, 2, 3])
        with pytest.raises(ValueError):
            v.as_array()[0] = 9.0

    def test_source_mutation_does_not_leak(self):
        src = np.array([1.0, 2.0, 3.0])
        v = ResourceVector(src)
        src[0] = 99.0
        assert v.cpu == 1.0

    def test_len_and_iter(self):
        v = ResourceVector([1, 2, 3])
        assert len(v) == NUM_RESOURCES
        assert list(v) == [1.0, 2.0, 3.0]

    def test_getitem_by_kind(self):
        v = ResourceVector([1, 2, 3])
        assert v[ResourceKind.MEM] == 2.0
        assert v[2] == 3.0


class TestArithmetic:
    def test_add(self):
        assert ResourceVector([1, 2, 3]) + ResourceVector([4, 5, 6]) == ResourceVector(
            [5, 7, 9]
        )

    def test_add_scalar(self):
        assert ResourceVector([1, 2, 3]) + 1 == ResourceVector([2, 3, 4])

    def test_sub(self):
        assert ResourceVector([4, 5, 6]) - ResourceVector([1, 2, 3]) == ResourceVector(
            [3, 3, 3]
        )

    def test_rsub(self):
        assert 10 - ResourceVector([1, 2, 3]) == ResourceVector([9, 8, 7])

    def test_mul_scalar(self):
        assert 2 * ResourceVector([1, 2, 3]) == ResourceVector([2, 4, 6])

    def test_mul_elementwise(self):
        assert ResourceVector([1, 2, 3]) * ResourceVector([2, 2, 2]) == ResourceVector(
            [2, 4, 6]
        )

    def test_div(self):
        assert ResourceVector([2, 4, 6]) / 2 == ResourceVector([1, 2, 3])

    def test_neg(self):
        assert -ResourceVector([1, 2, 3]) == ResourceVector([-1, -2, -3])

    @given(vectors, vectors)
    def test_add_commutative(self, a, b):
        assert a + b == b + a

    @given(vectors)
    def test_additive_identity(self, a):
        assert a + ResourceVector.zeros() == a

    @given(vectors, vectors)
    def test_sub_then_add_roundtrip(self, a, b):
        np.testing.assert_allclose(
            ((a - b) + b).as_array(), a.as_array(), rtol=1e-9, atol=1e-6
        )


class TestPredicates:
    def test_fits_within_true(self):
        assert ResourceVector([1, 1, 1]).fits_within(ResourceVector([2, 2, 2]))

    def test_fits_within_equal(self):
        v = ResourceVector([1, 2, 3])
        assert v.fits_within(v)

    def test_fits_within_false_single_axis(self):
        assert not ResourceVector([3, 1, 1]).fits_within(ResourceVector([2, 2, 2]))

    def test_is_nonnegative(self):
        assert ResourceVector([0, 0, 0]).is_nonnegative()
        assert not ResourceVector([-1, 0, 0]).is_nonnegative()

    def test_any_positive(self):
        assert ResourceVector([0, 0, 1]).any_positive()
        assert not ResourceVector.zeros().any_positive()

    @given(vectors, vectors)
    def test_fits_within_implies_componentwise(self, a, b):
        if a.fits_within(b):
            assert np.all(a.as_array() <= b.as_array() + 1e-9)


class TestElementwiseHelpers:
    def test_clip_nonnegative(self):
        assert ResourceVector([-1, 2, -3]).clip_nonnegative() == ResourceVector(
            [0, 2, 0]
        )

    def test_minimum_maximum(self):
        a, b = ResourceVector([1, 5, 3]), ResourceVector([2, 4, 3])
        assert a.minimum(b) == ResourceVector([1, 4, 3])
        assert a.maximum(b) == ResourceVector([2, 5, 3])

    def test_total(self):
        assert ResourceVector([1, 2, 3]).total() == 6.0

    def test_weighted_total_default(self):
        v = ResourceVector([1, 1, 1])
        assert v.weighted_total() == pytest.approx(DEFAULT_WEIGHTS.sum())

    def test_weighted_total_custom(self):
        assert ResourceVector([1, 2, 3]).weighted_total([1, 0, 0]) == 1.0

    def test_weighted_total_bad_weights(self):
        with pytest.raises(ValueError):
            ResourceVector([1, 2, 3]).weighted_total([1, 0])

    def test_dominant(self):
        assert ResourceVector([3, 1, 2]).dominant() is ResourceKind.CPU
        assert ResourceVector([1, 3, 2]).dominant() is ResourceKind.MEM
        assert ResourceVector([1, 2, 3]).dominant() is ResourceKind.STORAGE

    def test_dominant_tie_prefers_cpu(self):
        assert ResourceVector([2, 2, 2]).dominant() is ResourceKind.CPU

    def test_normalized_by(self):
        v = ResourceVector([5, 1, 15]).normalized_by(ResourceVector([25, 2, 30]))
        np.testing.assert_allclose(v.as_array(), [0.2, 0.5, 0.5])

    def test_normalized_by_zero_reference(self):
        v = ResourceVector([5, 1, 15]).normalized_by(ResourceVector([25, 0, 30]))
        assert v.mem == 0.0

    @given(vectors)
    def test_clip_nonnegative_idempotent(self, a):
        c = a.clip_nonnegative()
        assert c == c.clip_nonnegative()
        assert c.is_nonnegative()


class TestAggregation:
    def test_sum_empty(self):
        assert ResourceVector.sum([]) == ResourceVector.zeros()

    def test_sum(self):
        vs = [ResourceVector([1, 0, 0]), ResourceVector([0, 2, 0])]
        assert ResourceVector.sum(vs) == ResourceVector([1, 2, 0])

    def test_elementwise_max(self):
        vs = [ResourceVector([1, 5, 0]), ResourceVector([2, 1, 3])]
        assert ResourceVector.elementwise_max(vs) == ResourceVector([2, 5, 3])

    def test_elementwise_max_empty(self):
        assert ResourceVector.elementwise_max([]) == ResourceVector.zeros()


class TestEqualityHash:
    def test_eq_and_hash(self):
        a, b = ResourceVector([1, 2, 3]), ResourceVector([1, 2, 3])
        assert a == b and hash(a) == hash(b)

    def test_neq(self):
        assert ResourceVector([1, 2, 3]) != ResourceVector([1, 2, 4])

    def test_eq_other_type(self):
        assert ResourceVector([1, 2, 3]) != "nope"

    def test_repr_mentions_components(self):
        r = repr(ResourceVector([1, 2, 3]))
        assert "cpu=1" in r and "mem=2" in r and "storage=3" in r


class TestResourceKind:
    def test_values(self):
        assert int(ResourceKind.CPU) == 0
        assert int(ResourceKind.MEM) == 1
        assert int(ResourceKind.STORAGE) == 2

    def test_labels(self):
        assert ResourceKind.CPU.label == "CPU"
        assert ResourceKind.STORAGE.label == "STORAGE"

    def test_num_resources_consistent(self):
        assert NUM_RESOURCES == len(ResourceKind) == len(DEFAULT_WEIGHTS)

    def test_default_weights_sum_to_one(self):
        assert DEFAULT_WEIGHTS.sum() == pytest.approx(1.0)

    def test_default_weights_match_paper(self):
        # Section IV-A: CPU/MEM/storage weighted 0.4/0.4/0.2.
        np.testing.assert_allclose(DEFAULT_WEIGHTS, [0.4, 0.4, 0.2])
