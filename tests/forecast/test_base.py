"""Forecaster protocol defaults and validation."""

import numpy as np
import pytest

from repro.forecast.base import Forecaster


class ConstantForecaster(Forecaster):
    """Minimal concrete forecaster for protocol-level tests."""

    def __init__(self):
        self._value = None

    def fit(self, series):
        self._value = float(self._validate(series)[-1])
        return self

    def forecast(self, horizon=1):
        if self._value is None:
            raise RuntimeError("not fitted")
        return self._value + horizon  # horizon-dependent, for path tests


class TestProtocol:
    def test_forecast_path_default(self):
        f = ConstantForecaster().fit(np.array([1.0]))
        np.testing.assert_allclose(f.forecast_path(3), [2.0, 3.0, 4.0])

    def test_forecast_path_validates_horizon(self):
        f = ConstantForecaster().fit(np.array([1.0]))
        with pytest.raises(ValueError):
            f.forecast_path(0)

    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError):
            ConstantForecaster().fit(np.array([]))

    def test_validate_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            ConstantForecaster().fit(np.array([1.0, np.inf]))

    def test_validate_flattens(self):
        f = ConstantForecaster().fit(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert f.forecast(1) == 5.0
