"""Confidence machinery (Eq. 18-21), adaptive padding and error metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.forecast.confidence import (
    ConfidenceInterval,
    PredictionErrorTracker,
    z_value,
)
from repro.forecast.errors import mae, mean_error, prediction_error_rate, rmse
from repro.forecast.padding import AdaptivePadding


class TestZValue:
    def test_known_quantiles(self):
        assert z_value(0.9) == pytest.approx(1.6449, abs=1e-3)
        assert z_value(0.95) == pytest.approx(1.9600, abs=1e-3)
        assert z_value(0.5) == pytest.approx(0.6745, abs=1e-3)

    def test_monotone_in_confidence(self):
        assert z_value(0.9) > z_value(0.8) > z_value(0.5)

    def test_invalid(self):
        for eta in (0.0, 1.0, -0.2):
            with pytest.raises(ValueError):
                z_value(eta)


class TestConfidenceInterval:
    def test_bounds(self):
        ci = ConfidenceInterval(center=10.0, half_width=2.0)
        assert ci.lower == 8.0 and ci.upper == 12.0

    def test_contains(self):
        ci = ConfidenceInterval(center=0.0, half_width=1.0)
        assert ci.contains(0.0) and ci.contains(1.0) and ci.contains(-1.0)
        assert not ci.contains(1.5)


class TestErrorTracker:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            PredictionErrorTracker(window=1)

    def test_record_returns_delta(self):
        tracker = PredictionErrorTracker()
        assert tracker.record(predicted=1.0, actual=1.5) == pytest.approx(0.5)

    def test_sigma_needs_two_samples(self):
        tracker = PredictionErrorTracker()
        assert tracker.sigma() == 0.0
        tracker.record(0.0, 1.0)
        assert tracker.sigma() == 0.0
        tracker.record(0.0, 3.0)
        assert tracker.sigma() == pytest.approx(np.std([1.0, 3.0], ddof=1))

    def test_window_evicts_old(self):
        tracker = PredictionErrorTracker(window=3)
        for v in (1.0, 2.0, 3.0, 10.0):
            tracker.record(0.0, v)
        assert tracker.n_samples == 3
        assert max(tracker.errors() if hasattr(tracker, "errors") else [10.0]) or True
        assert tracker.quantile(1.0) == 10.0

    def test_conservative_is_lower_bound_floored(self):
        tracker = PredictionErrorTracker()
        for v in (-1.0, 1.0, -1.0, 1.0):
            tracker.record(0.0, v)
        adjusted = tracker.conservative(prediction=0.5, confidence_level=0.9)
        assert adjusted == 0.0  # lower bound negative -> floored

    def test_interval_uses_sigma_z(self):
        tracker = PredictionErrorTracker()
        for v in (-2.0, 2.0, -2.0, 2.0):
            tracker.record(0.0, v)
        ci = tracker.interval(10.0, 0.9)
        assert ci.half_width == pytest.approx(tracker.sigma() * z_value(0.9))

    def test_probability_within(self):
        tracker = PredictionErrorTracker()
        for d in (0.1, 0.2, 0.6, -0.1):
            tracker.record(0.0, d)
        assert tracker.probability_within(0.5) == pytest.approx(0.5)

    def test_probability_empty(self):
        # Undefined without samples — NaN, not a confident 0.0.
        assert np.isnan(PredictionErrorTracker().probability_within(0.5))

    def test_probability_bad_tolerance(self):
        with pytest.raises(ValueError):
            PredictionErrorTracker().probability_within(0.0)

    def test_seed(self):
        tracker = PredictionErrorTracker()
        tracker.seed(np.array([0.1, 0.2, 0.3]))
        assert tracker.n_samples == 3

    def test_quantile(self):
        tracker = PredictionErrorTracker()
        tracker.seed(np.linspace(0, 1, 101))
        assert tracker.quantile(0.05) == pytest.approx(0.05, abs=0.01)
        with pytest.raises(ValueError):
            tracker.quantile(1.5)

    def test_quantile_empty(self):
        assert PredictionErrorTracker().quantile(0.5) == 0.0

    def test_record_window(self):
        tracker = PredictionErrorTracker()
        tracker.record_window(1.0, np.array([1.2, 1.4]))
        assert tracker.n_samples == 2


class TestAdaptivePadding:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePadding(window=1)
        with pytest.raises(ValueError):
            AdaptivePadding(percentile=0.0)

    def test_empty_pads_zero(self):
        assert AdaptivePadding().pad() == 0.0

    def test_burst_pad_tracks_spikes(self):
        pad = AdaptivePadding(window=20, percentile=90)
        for v in [1.0] * 15 + [5.0] * 5:
            pad.observe_usage(v)
        assert pad.burst_pad() > 1.0

    def test_constant_usage_no_burst_pad(self):
        pad = AdaptivePadding()
        for _ in range(10):
            pad.observe_usage(3.0)
        assert pad.burst_pad() == pytest.approx(0.0)

    def test_error_pad_only_counts_underprediction(self):
        pad = AdaptivePadding()
        pad.observe_error(predicted=5.0, actual=3.0)  # over-predicted: no pad
        assert pad.error_pad() == 0.0
        pad.observe_error(predicted=3.0, actual=5.0)  # under: shortfall 2
        assert pad.error_pad() > 0.0

    def test_pad_is_max_of_components(self):
        pad = AdaptivePadding(percentile=100)
        for v in (1.0, 1.0, 2.0):
            pad.observe_usage(v)
        pad.observe_error(2.0, 6.0)
        assert pad.pad() == pytest.approx(max(pad.burst_pad(), pad.error_pad()))


class TestErrorMetrics:
    def test_prediction_error_rate_band(self):
        predicted = np.array([1.0, 1.0, 1.0, 1.0])
        actual = np.array([1.1, 0.9, 1.6, 1.0])
        # errors: 0.1 ok, -0.1 bad, 0.6 bad, 0.0 ok with eps 0.5
        assert prediction_error_rate(predicted, actual, 0.5) == pytest.approx(0.5)

    def test_error_rate_validation(self):
        with pytest.raises(ValueError):
            prediction_error_rate(np.ones(2), np.ones(2), 0.0)
        with pytest.raises(ValueError):
            prediction_error_rate(np.ones(2), np.ones(3), 0.5)
        with pytest.raises(ValueError):
            prediction_error_rate(np.array([]), np.array([]), 0.5)

    def test_rmse_mae(self):
        predicted = np.zeros(2)
        actual = np.array([3.0, -4.0])
        assert rmse(predicted, actual) == pytest.approx(np.sqrt(12.5))
        assert mae(predicted, actual) == pytest.approx(3.5)

    def test_mean_error_sign(self):
        assert mean_error(np.zeros(2), np.array([1.0, 3.0])) == pytest.approx(2.0)

    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=20))
    def test_error_rate_in_unit_interval(self, deltas):
        predicted = np.zeros(len(deltas))
        actual = np.asarray(deltas)
        rate = prediction_error_rate(predicted, actual, 0.5)
        assert 0.0 <= rate <= 1.0
