"""The data-driven quantile-histogram predictor (Pace et al.)."""

import numpy as np
import pytest

from repro.cluster.resources import NUM_RESOURCES, ResourceVector
from repro.core.config import CorpConfig
from repro.forecast.confidence import z_value
from repro.forecast.quantile import QuantileHistogramPredictor


@pytest.fixture(scope="module")
def fitted(history_trace):
    return QuantileHistogramPredictor().fit(history_trace)


class TestConstruction:
    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            QuantileHistogramPredictor(quantile=0.0)
        with pytest.raises(ValueError):
            QuantileHistogramPredictor(quantile=1.0)

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            QuantileHistogramPredictor(input_slots=0)

    def test_from_config_mirrors_corp_knobs(self):
        cfg = CorpConfig(
            input_slots=4, window_slots=3, train_quantile=0.7,
            prediction_target="window_min",
        )
        p = QuantileHistogramPredictor.from_config(cfg)
        assert p.quantile == 0.7
        assert p.input_slots == 4 and p.window_slots == 3
        assert p.prediction_target == "window_min"

    def test_from_config_none_quantile_defaults_to_median(self):
        p = QuantileHistogramPredictor.from_config(
            CorpConfig(train_quantile=None)
        )
        assert p.quantile == 0.5


class TestFit:
    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            QuantileHistogramPredictor().predict_job_unused(
                np.zeros((4, NUM_RESOURCES)), ResourceVector.full(1.0)
            )

    def test_fit_populates_error_statistics(self, fitted):
        assert fitted.fitted
        assert len(fitted.seed_errors) == NUM_RESOURCES
        assert all(e.size > 0 for e in fitted.seed_errors)
        assert fitted.prior_unused_fraction.shape == (NUM_RESOURCES,)
        assert np.all(fitted.prior_unused_fraction >= 0.0)
        assert np.all(fitted.prior_unused_fraction <= 1.0)
        assert fitted.target_quantiles.shape == (NUM_RESOURCES, 11)
        # Decile grids are non-decreasing by construction.
        assert np.all(np.diff(fitted.target_quantiles, axis=1) >= -1e-12)

    def test_fit_is_deterministic(self, history_trace, fitted):
        again = QuantileHistogramPredictor().fit(history_trace)
        for a, b in zip(fitted.seed_errors, again.seed_errors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            fitted.window_sigma, again.window_sigma
        )


class TestPredict:
    def test_short_history_falls_back_to_prior(self, fitted):
        request = ResourceVector.full(1.0)
        got = fitted.predict_job_unused(
            np.full((1, NUM_RESOURCES), 0.2), request
        )
        np.testing.assert_allclose(
            got.as_array(), fitted.prior_unused_fraction
        )

    def test_forecast_is_the_empirical_quantile(self, fitted):
        util = np.full((8, NUM_RESOURCES), 0.3)
        request = ResourceVector.full(2.0)
        got = fitted.predict_job_unused(util, request)
        # Constant 30% utilization -> 70% unused of a request of 2.
        np.testing.assert_allclose(got.as_array(), 1.4)

    def test_forecast_bounded_by_request(self, fitted, rng):
        util = rng.uniform(0.0, 1.0, size=(10, NUM_RESOURCES))
        request = ResourceVector.full(3.0)
        got = fitted.predict_job_unused(util, request).as_array()
        assert np.all(got >= 0.0) and np.all(got <= 3.0)

    def test_interval_uses_window_dispersion(self, fitted):
        lo, hi = fitted.predict_interval(0, 0.5, 0.95)
        half = float(fitted.window_sigma[0]) * z_value(0.95)
        assert hi - lo == pytest.approx(2 * half)
        assert (lo + hi) / 2 == pytest.approx(0.5)


class TestSerialization:
    def test_npz_round_trip_is_exact(self, fitted, tmp_path):
        path = tmp_path / "quantile.npz"
        fitted.save_npz(path)
        loaded = QuantileHistogramPredictor.load_npz(path)
        assert loaded.fitted
        assert loaded.quantile == fitted.quantile
        for a, b in zip(fitted.seed_errors, loaded.seed_errors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            fitted.target_quantiles, loaded.target_quantiles
        )
        np.testing.assert_array_equal(
            fitted.window_sigma, loaded.window_sigma
        )
        util = np.full((8, NUM_RESOURCES), 0.4)
        request = ResourceVector.full(1.0)
        np.testing.assert_array_equal(
            fitted.predict_job_unused(util, request).as_array(),
            loaded.predict_job_unused(util, request).as_array(),
        )

    def test_wrong_family_archive_rejected(self, fitted, tmp_path):
        from repro.forecast.classify import ClassifyThenPredictPredictor

        path = tmp_path / "quantile.npz"
        fitted.save_npz(path)
        with pytest.raises(ValueError, match="archive holds"):
            ClassifyThenPredictPredictor.load_npz(path)

    def test_unfitted_payload_rejected(self):
        with pytest.raises(ValueError, match="not fitted"):
            QuantileHistogramPredictor().to_payload()
