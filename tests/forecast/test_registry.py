"""The predictor registry: lookup, creation, resolution, registration."""

import pytest

from repro.core.config import CorpConfig
from repro.core.predictor import CorpPredictor
from repro.forecast import (
    ClassifyThenPredictPredictor,
    EtsJobPredictor,
    MarkovJobPredictor,
    OnlinePredictorSelector,
    Predictor,
    QuantileHistogramPredictor,
    available_predictors,
    create_predictor,
    predictor_class,
    predictor_summaries,
    register_predictor,
    resolve_predictor,
)
from repro.forecast import registry as registry_mod

BUILTINS = ("corp", "quantile", "classify", "ets", "markov", "auto")


class TestLookup:
    def test_builtins_registered_in_order(self):
        assert available_predictors() == BUILTINS

    def test_summaries_cover_every_name(self):
        summaries = predictor_summaries()
        assert tuple(summaries) == BUILTINS
        assert all(summaries[name] for name in BUILTINS)

    def test_predictor_class(self):
        assert predictor_class("corp") is CorpPredictor
        assert predictor_class("quantile") is QuantileHistogramPredictor
        assert predictor_class("classify") is ClassifyThenPredictPredictor
        assert predictor_class("ets") is EtsJobPredictor
        assert predictor_class("markov") is MarkovJobPredictor
        assert predictor_class("auto") is OnlinePredictorSelector

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="corp, quantile, classify"):
            predictor_class("nope")
        with pytest.raises(ValueError, match="unknown predictor 'nope'"):
            create_predictor("nope")

    def test_family_attribute_matches_registry_name(self):
        for name in BUILTINS:
            assert predictor_class(name).family == name


class TestCreate:
    def test_create_passes_config(self):
        cfg = CorpConfig(input_slots=4, window_slots=3)
        p = create_predictor("quantile", cfg)
        assert isinstance(p, QuantileHistogramPredictor)
        assert p.input_slots == 4 and p.window_slots == 3

    def test_create_default_config(self):
        p = create_predictor("corp")
        assert isinstance(p, CorpPredictor)
        assert p.config.window_slots == CorpConfig().window_slots

    def test_every_builtin_constructs(self):
        for name in BUILTINS:
            assert isinstance(create_predictor(name), Predictor)


class TestResolve:
    def test_name_resolves(self):
        assert isinstance(resolve_predictor("ets"), EtsJobPredictor)

    def test_instance_passes_through(self):
        p = QuantileHistogramPredictor()
        assert resolve_predictor(p) is p

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_predictor(42)


class TestRegister:
    def test_register_and_remove(self):
        class Dummy(QuantileHistogramPredictor):
            family = "dummyfam"

        register_predictor(
            "dummyfam",
            cls=lambda: Dummy,
            factory=lambda config: Dummy.from_config(config),
            summary="test-only",
        )
        try:
            assert "dummyfam" in available_predictors()
            assert predictor_class("dummyfam") is Dummy
            assert isinstance(create_predictor("dummyfam"), Dummy)
            assert predictor_summaries()["dummyfam"] == "test-only"
        finally:
            registry_mod._REGISTRY.pop("dummyfam", None)
        assert "dummyfam" not in available_predictors()

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="lowercase"):
            register_predictor(
                "Not Valid",
                cls=lambda: QuantileHistogramPredictor,
                factory=lambda config: QuantileHistogramPredictor(),
            )
        with pytest.raises(ValueError, match="lowercase"):
            register_predictor(
                "",
                cls=lambda: QuantileHistogramPredictor,
                factory=lambda config: QuantileHistogramPredictor(),
            )
