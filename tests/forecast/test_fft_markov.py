"""FFT-signature and Markov-chain predictors (CloudScale's models)."""

import numpy as np
import pytest

from repro.forecast.fft_signature import FftSignaturePredictor
from repro.forecast.markov_chain import MarkovChainPredictor


def periodic_series(n=128, period=16, amp=2.0, base=5.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return base + amp * np.sin(2 * np.pi * t / period) + rng.normal(0, noise, n)


class TestFftSignature:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FftSignaturePredictor(signature_threshold=0.0)
        with pytest.raises(ValueError):
            FftSignaturePredictor(max_period=1)

    def test_detects_periodicity(self):
        fft = FftSignaturePredictor().fit(periodic_series())
        assert fft.has_signature
        assert fft.period == pytest.approx(16, abs=1)

    def test_forecast_continues_phase(self):
        series = periodic_series(n=128, period=16)
        fft = FftSignaturePredictor().fit(series)
        # One full period ahead must look like the last sample; a half
        # period ahead like the sample half a period back.
        assert fft.forecast(16) == pytest.approx(series[-1], abs=0.3)
        assert fft.forecast(8) == pytest.approx(series[-9], abs=0.3)

    def test_no_signature_on_noise(self):
        rng = np.random.default_rng(1)
        fft = FftSignaturePredictor(signature_threshold=0.3).fit(
            rng.normal(size=256)
        )
        assert not fft.has_signature

    def test_fallback_forecast_is_mean(self):
        rng = np.random.default_rng(2)
        series = rng.normal(5.0, 1.0, size=256)
        fft = FftSignaturePredictor(signature_threshold=0.5).fit(series)
        assert not fft.has_signature
        assert fft.forecast(3) == pytest.approx(series.mean())

    def test_constant_series_no_signature(self):
        fft = FftSignaturePredictor().fit(np.full(64, 3.0))
        assert not fft.has_signature
        assert fft.forecast() == pytest.approx(3.0)

    def test_short_series_no_signature(self):
        fft = FftSignaturePredictor().fit(np.array([1.0, 2.0, 1.0]))
        assert not fft.has_signature

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FftSignaturePredictor().forecast()

    def test_bad_horizon(self):
        fft = FftSignaturePredictor().fit(periodic_series())
        with pytest.raises(ValueError):
            fft.forecast(0)


class TestMarkovChain:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MarkovChainPredictor(n_bins=1)
        with pytest.raises(ValueError):
            MarkovChainPredictor(smoothing=-1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MarkovChainPredictor().forecast()
        with pytest.raises(RuntimeError):
            MarkovChainPredictor().update(1.0)

    def test_transition_rows_stochastic(self):
        rng = np.random.default_rng(3)
        markov = MarkovChainPredictor(n_bins=6).fit(rng.uniform(0, 10, 200))
        np.testing.assert_allclose(markov._transition.sum(axis=1), 1.0)

    def test_constant_series(self):
        markov = MarkovChainPredictor(n_bins=4).fit(np.full(30, 2.0))
        # All mass in one bin; forecast must be near the value.
        assert markov.forecast(1) == pytest.approx(2.0, abs=1.0)

    def test_sticky_chain_short_horizon_prediction(self):
        # Alternating two-level series: one step ahead flips levels.
        series = np.tile([1.0, 9.0], 50)
        markov = MarkovChainPredictor(n_bins=2, smoothing=0.01).fit(series)
        # last value 9 -> next should be near 1.
        assert markov.forecast(1) < 5.0

    def test_long_horizon_converges_to_stationary_mean(self):
        # Section IV-A: multi-step Markov prediction loses correlation
        # with the actual state — the forecast drifts toward the mean.
        # A period-2 chain approaches it while oscillating, so compare
        # the average of two consecutive horizons and the contraction.
        series = np.tile([1.0, 9.0], 50)
        markov = MarkovChainPredictor(n_bins=2, smoothing=0.01).fit(series)
        pair_mean = 0.5 * (markov.forecast(49) + markov.forecast(50))
        assert pair_mean == pytest.approx(5.0, abs=0.5)
        assert abs(markov.forecast(50) - 5.0) < abs(markov.forecast(2) - 5.0)

    def test_state_distribution_normalized(self):
        rng = np.random.default_rng(4)
        markov = MarkovChainPredictor(n_bins=5).fit(rng.uniform(0, 1, 100))
        dist = markov.state_distribution(3)
        assert dist.sum() == pytest.approx(1.0)

    def test_update_moves_state(self):
        series = np.tile([1.0, 9.0], 50)
        markov = MarkovChainPredictor(n_bins=2, smoothing=0.01).fit(series)
        markov.update(1.0)  # now in the low bin
        assert markov.forecast(1) > 5.0  # low -> high next

    def test_bad_horizon(self):
        markov = MarkovChainPredictor().fit(np.arange(10.0))
        with pytest.raises(ValueError):
            markov.forecast(0)
