"""Exponential smoothing forecasters (RCCR's predictor)."""

import numpy as np
import pytest

from repro.forecast.ets import HoltLinear, SimpleExponentialSmoothing


class TestSimpleExponentialSmoothing:
    def test_invalid_alpha(self):
        for alpha in (0.0, 1.5, -0.1):
            with pytest.raises(ValueError):
                SimpleExponentialSmoothing(alpha)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SimpleExponentialSmoothing().forecast()

    def test_constant_series(self):
        ses = SimpleExponentialSmoothing(0.3).fit(np.full(20, 5.0))
        assert ses.forecast(1) == pytest.approx(5.0)
        assert ses.forecast(10) == pytest.approx(5.0)  # flat forecast

    def test_alpha_one_tracks_last_value(self):
        ses = SimpleExponentialSmoothing(1.0).fit(np.array([1.0, 2.0, 9.0]))
        assert ses.forecast() == pytest.approx(9.0)

    def test_recursion_by_hand(self):
        ses = SimpleExponentialSmoothing(0.5).fit(np.array([0.0, 4.0, 8.0]))
        # level: 0 -> 2 -> 5
        assert ses.forecast() == pytest.approx(5.0)

    def test_update_matches_fit(self):
        series = np.array([1.0, 3.0, 2.0, 5.0])
        fitted = SimpleExponentialSmoothing(0.4).fit(series)
        online = SimpleExponentialSmoothing(0.4)
        for v in series:
            online.update(float(v))
        assert online.forecast() == pytest.approx(fitted.forecast())

    def test_bad_horizon(self):
        ses = SimpleExponentialSmoothing().fit(np.ones(3))
        with pytest.raises(ValueError):
            ses.forecast(0)

    def test_rejects_empty_and_nonfinite(self):
        with pytest.raises(ValueError):
            SimpleExponentialSmoothing().fit(np.array([]))
        with pytest.raises(ValueError):
            SimpleExponentialSmoothing().fit(np.array([1.0, np.nan]))


class TestHoltLinear:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HoltLinear(alpha=0.0)
        with pytest.raises(ValueError):
            HoltLinear(beta=1.5)

    def test_linear_trend_extrapolated(self):
        series = np.arange(30, dtype=float)
        holt = HoltLinear(alpha=0.8, beta=0.5).fit(series)
        assert holt.forecast(1) == pytest.approx(30.0, abs=0.5)
        assert holt.forecast(5) == pytest.approx(34.0, abs=1.0)

    def test_constant_series_no_trend(self):
        holt = HoltLinear(0.3, 0.1).fit(np.full(20, 7.0))
        assert holt.forecast(10) == pytest.approx(7.0, abs=1e-6)

    def test_horizon_scales_trend(self):
        holt = HoltLinear(0.8, 0.5).fit(np.arange(30, dtype=float))
        one = holt.forecast(1)
        three = holt.forecast(3)
        assert three > one

    def test_single_point_fit(self):
        holt = HoltLinear().fit(np.array([4.0]))
        assert holt.forecast() == pytest.approx(4.0)

    def test_update_starts_fresh(self):
        holt = HoltLinear(0.5, 0.2)
        holt.update(3.0)
        assert holt.forecast() == pytest.approx(3.0)

    def test_forecast_path(self):
        holt = HoltLinear(0.8, 0.5).fit(np.arange(20, dtype=float))
        path = holt.forecast_path(4)
        assert path.shape == (4,)
        assert np.all(np.diff(path) > 0)


class TestSesClosedForm:
    """The vectorized fit must equal the textbook recursion exactly."""

    def recursive_level(self, series, alpha):
        level = series[0]
        for x in series[1:]:
            level = alpha * x + (1 - alpha) * level
        return level

    @pytest.mark.parametrize("alpha", [0.1, 0.3, 0.5, 0.9, 1.0])
    def test_matches_recursion(self, alpha):
        rng = np.random.default_rng(0)
        series = rng.uniform(0, 10, size=37)
        ses = SimpleExponentialSmoothing(alpha).fit(series)
        assert ses.forecast() == pytest.approx(
            self.recursive_level(series, alpha), rel=1e-12
        )

    def test_two_points(self):
        ses = SimpleExponentialSmoothing(0.25).fit(np.array([4.0, 8.0]))
        assert ses.forecast() == pytest.approx(0.25 * 8 + 0.75 * 4)
