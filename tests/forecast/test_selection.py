"""The ``"auto"`` online predictor selector (rolling Eq. 20 arbitration)."""

import numpy as np
import pytest

from repro import api
from repro.cluster.profiles import ClusterProfile
from repro.cluster.resources import NUM_RESOURCES, ResourceVector
from repro.core.config import CorpConfig
from repro.experiments.scenarios import cluster_scenario
from repro.faults.plan import FaultPlan, PredictorOutage
from repro.forecast.base import Predictor
from repro.forecast.selection import DEFAULT_CANDIDATES, OnlinePredictorSelector
from repro.obs.events import MemorySink


class _StubPredictor(Predictor):
    """Constant-fraction forecaster with controllable seed errors."""

    family = "stub"
    capabilities = frozenset()

    def __init__(self, fraction: float, seed_delta: float, n_seed: int = 10):
        self.fraction = fraction
        self.seed_errors = [
            np.full(n_seed, seed_delta) for _ in range(NUM_RESOURCES)
        ]
        self.prior_unused_fraction = np.full(NUM_RESOURCES, fraction)

    @property
    def fitted(self) -> bool:
        return True

    def fit(self, history, **kwargs):
        return self

    def predict_job_unused(self, util_history, request):
        return ResourceVector(self.fraction * request.as_array())


def _stub_selector(**overrides):
    """corp-stub predicts badly live but has good seed errors; the
    quantile-stub is its mirror image — so backtests flip the ranking."""
    cfg = CorpConfig(
        window_slots=2, error_tolerance=0.1, min_history_slots=1
    )
    kwargs = dict(
        config=cfg,
        candidates=("corp", "quantile"),
        hysteresis=0.05,
        min_dwell_windows=1,
    )
    kwargs.update(overrides)
    selector = OnlinePredictorSelector(**kwargs)
    stubs = {
        "corp": _StubPredictor(fraction=0.0, seed_delta=0.05),
        "quantile": _StubPredictor(fraction=0.55, seed_delta=0.5),
    }
    selector.fit(None, fit_candidate=lambda name: stubs[name])
    return selector


def _drive_backtests(selector, n: int) -> None:
    # Constant 40% utilization: the held-out window's actual unused
    # fraction is 0.6 — the corp stub (predicts 0.0) misses it, the
    # quantile stub (predicts 0.55) lands within tolerance.
    util = np.full((4, NUM_RESOURCES), 0.4)
    request = ResourceVector.full(1.0)
    for _ in range(n):
        selector.predict_job_unused(util, request)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            OnlinePredictorSelector(candidates=())
        with pytest.raises(ValueError, match="hysteresis"):
            OnlinePredictorSelector(hysteresis=-0.1)
        with pytest.raises(ValueError, match="min_dwell"):
            OnlinePredictorSelector(min_dwell_windows=0)

    def test_default_candidates(self):
        selector = OnlinePredictorSelector()
        assert selector.candidate_names == DEFAULT_CANDIDATES

    def test_unfitted(self):
        selector = OnlinePredictorSelector()
        assert not selector.fitted
        with pytest.raises(RuntimeError, match="not fitted"):
            selector.predict_job_unused(
                np.zeros((4, NUM_RESOURCES)), ResourceVector.full(1.0)
            )


class TestArbitration:
    def test_initial_active_has_best_seed_errors(self):
        selector = _stub_selector()
        assert selector.active == "corp"
        assert selector.error_rate("corp") == pytest.approx(0.0)
        assert selector.error_rate("quantile") == pytest.approx(1.0)

    def test_active_candidate_answers(self):
        selector = _stub_selector()
        got = selector.predict_job_unused(
            np.full((1, NUM_RESOURCES), 0.4), ResourceVector.full(2.0)
        )
        np.testing.assert_allclose(got.as_array(), 0.0)  # corp stub

    def test_backtests_flip_ranking_and_switch(self):
        selector = _stub_selector()
        _drive_backtests(selector, 15)
        assert selector.error_rate("corp") > selector.error_rate("quantile")
        selector.observe_slot(2)
        assert selector.active == "quantile"
        assert len(selector.switch_log) == 1
        record = selector.switch_log[0]
        assert record["slot"] == 2
        assert record["previous"] == "corp"
        assert record["active"] == "quantile"
        assert set(record["scores"]) == {"corp", "quantile"}

    def test_switch_emits_obs_event(self):
        selector = _stub_selector()
        _drive_backtests(selector, 15)
        sink = MemorySink()
        with api.capture_events(sink):
            selector.observe_slot(2)
        switches = [e for e in sink.events if e.name == "predictor_switch"]
        assert len(switches) == 1
        assert switches[0].to_dict()["active"] == "quantile"

    def test_non_boundary_slots_are_ignored(self):
        selector = _stub_selector()
        _drive_backtests(selector, 15)
        selector.observe_slot(0)
        selector.observe_slot(3)
        assert selector.active == "corp"
        assert selector.switch_log == []

    def test_hysteresis_blocks_marginal_switch(self):
        selector = _stub_selector(hysteresis=10.0)
        _drive_backtests(selector, 15)
        selector.observe_slot(2)
        assert selector.active == "corp"
        assert selector.switch_log == []

    def test_min_dwell_delays_switch(self):
        selector = _stub_selector(min_dwell_windows=3)
        _drive_backtests(selector, 15)
        selector.observe_slot(2)
        selector.observe_slot(4)
        assert selector.active == "corp"
        selector.observe_slot(6)
        assert selector.active == "quantile"
        assert selector.switch_log[0]["slot"] == 6

    def test_reset_restores_post_fit_state(self):
        selector = _stub_selector()
        _drive_backtests(selector, 15)
        selector.observe_slot(2)
        assert selector.active == "quantile"
        selector.reset()
        assert selector.active == "corp"
        assert selector.switch_log == []
        # Trackers are re-seeded from the candidates' seed errors only.
        assert selector.error_rate("corp") == pytest.approx(0.0)
        assert selector.error_rate("quantile") == pytest.approx(1.0)

    def test_seed_statistics_follow_the_active_candidate(self):
        selector = _stub_selector()
        np.testing.assert_array_equal(
            selector.seed_errors[0],
            selector.candidate("corp").seed_errors[0],
        )
        _drive_backtests(selector, 15)
        selector.observe_slot(2)
        np.testing.assert_array_equal(
            selector.seed_errors[0],
            selector.candidate("quantile").seed_errors[0],
        )


@pytest.fixture(scope="module")
def tiny_scenario():
    return cluster_scenario(
        20, seed=5, profile=ClusterProfile.palmetto(n_pms=4, vms_per_pm=2)
    )


def _behavior(result):
    """Summary minus the wall-clock field (timing is not replayable)."""
    summary = result.summary()
    summary.pop("allocation_latency_s", None)
    return summary


def _fresh_selector():
    # No DNN candidate: keeps the end-to-end runs fast while still
    # exercising fit-on-history, backtesting and slot-boundary switching.
    return OnlinePredictorSelector(
        config=CorpConfig(seed=5),
        candidates=("quantile", "classify"),
        hysteresis=0.0,
        min_dwell_windows=1,
    )


class TestEndToEnd:
    def test_same_seed_and_trace_same_switch_slots(self, tiny_scenario):
        runs = []
        for _ in range(2):
            selector = _fresh_selector()
            result = api.run_one(
                scenario=tiny_scenario, method="CORP", predictor=selector
            )
            runs.append((selector.switch_log, _behavior(result)))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]

    def test_switch_events_match_switch_log(self, tiny_scenario):
        selector = _fresh_selector()
        sink = MemorySink()
        with api.capture_events(sink):
            api.run_one(
                scenario=tiny_scenario, method="CORP", predictor=selector
            )
        events = [
            {
                key: value
                for key, value in e.to_dict().items()
                if key in ("slot", "previous", "active", "scores")
            }
            for e in sink.events
            if e.name == "predictor_switch"
        ]
        assert events == selector.switch_log

    def test_outage_slots_skip_arbitration(self, tiny_scenario):
        # A predictor outage freezes forecast consumption (Section V's
        # degraded mode); the selector must not arbitrate on slots it
        # never observed.
        outage = PredictorOutage(slot=2, duration_slots=8)
        plan = FaultPlan(events=(outage,))
        runs = []
        for _ in range(2):
            selector = _fresh_selector()
            result = api.run_one(
                scenario=tiny_scenario,
                method="CORP",
                predictor=selector,
                fault_plan=plan,
            )
            assert result.all_done
            blocked = range(outage.slot, outage.slot + outage.duration_slots)
            assert all(
                record["slot"] not in blocked
                for record in selector.switch_log
            )
            runs.append((selector.switch_log, _behavior(result)))
        assert runs[0] == runs[1]
