"""The classify-then-predict router (Zhu & Fan)."""

import numpy as np
import pytest

from repro.cluster.resources import NUM_RESOURCES, ResourceVector
from repro.core.config import CorpConfig
from repro.forecast.classify import (
    ClassifyThenPredictPredictor,
    _job_features,
    _kmeans,
)


@pytest.fixture(scope="module")
def fitted(history_trace):
    return ClassifyThenPredictPredictor(seed=3).fit(history_trace)


class TestKmeans:
    def test_seeded_kmeans_is_deterministic(self, rng):
        features = rng.normal(size=(40, 5))
        c1, a1 = _kmeans(features, 3, seed=9)
        c2, a2 = _kmeans(features, 3, seed=9)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(a1, a2)

    def test_k_capped_by_sample_count(self, rng):
        features = rng.normal(size=(2, 5))
        centroids, assignment = _kmeans(features, 8, seed=0)
        assert centroids.shape[0] == 2
        assert assignment.shape == (2,)

    def test_separated_clusters_recovered(self):
        lo = np.full((10, 4), 0.0)
        hi = np.full((10, 4), 10.0)
        features = np.vstack([lo, hi])
        _centroids, assignment = _kmeans(features, 2, seed=1)
        assert len(set(assignment[:10])) == 1
        assert len(set(assignment[10:])) == 1
        assert assignment[0] != assignment[-1]


class TestFeatures:
    def test_feature_vector_shape(self):
        util = np.linspace(0.0, 1.0, 5 * NUM_RESOURCES).reshape(
            5, NUM_RESOURCES
        )
        features = _job_features(util)
        assert features.shape == (2 * NUM_RESOURCES + 2,)
        np.testing.assert_allclose(features[:NUM_RESOURCES], util.mean(axis=0))

    def test_single_slot_burstiness_is_zero(self):
        features = _job_features(np.full((1, NUM_RESOURCES), 0.5))
        assert features[-1] == 0.0


class TestFit:
    def test_fit_populates_router_state(self, fitted):
        assert fitted.fitted
        assert 1 <= fitted.centroids.shape[0] <= fitted.n_classes
        assert fitted.class_shifts.shape == (
            fitted.centroids.shape[0],
            NUM_RESOURCES,
        )
        assert len(fitted.seed_errors) == NUM_RESOURCES
        assert all(e.size > 0 for e in fitted.seed_errors)
        # Calibration centres every class's residuals: the pooled seed
        # errors keep a near-zero median per class, so per-resource
        # medians stay small.
        for errors in fitted.seed_errors:
            assert abs(float(np.median(errors))) < 0.25

    def test_parallel_fit_matches_serial(self, history_trace, fitted):
        parallel = ClassifyThenPredictPredictor(seed=3).fit(
            history_trace, workers=2
        )
        np.testing.assert_array_equal(fitted.centroids, parallel.centroids)
        np.testing.assert_array_equal(
            fitted.class_shifts, parallel.class_shifts
        )
        for a, b in zip(fitted.seed_errors, parallel.seed_errors):
            np.testing.assert_array_equal(a, b)

    def test_from_config_threads_seed(self):
        p = ClassifyThenPredictPredictor.from_config(CorpConfig(seed=17))
        assert p.seed == 17

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ClassifyThenPredictPredictor(quantile=1.5)
        with pytest.raises(ValueError):
            ClassifyThenPredictPredictor(n_classes=0)


class TestPredict:
    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            ClassifyThenPredictPredictor().predict_job_unused(
                np.zeros((4, NUM_RESOURCES)), ResourceVector.full(1.0)
            )

    def test_short_history_falls_back_to_prior(self, fitted):
        got = fitted.predict_job_unused(
            np.full((1, NUM_RESOURCES), 0.9), ResourceVector.full(1.0)
        )
        np.testing.assert_allclose(
            got.as_array(), fitted.prior_unused_fraction
        )

    def test_routing_is_deterministic(self, fitted, rng):
        util = rng.uniform(0.0, 1.0, size=(8, NUM_RESOURCES))
        assert fitted.classify(util) == fitted.classify(util)

    def test_forecast_is_shifted_quantile(self, fitted):
        util = np.full((8, NUM_RESOURCES), 0.4)
        request = ResourceVector.full(2.0)
        class_id = fitted.classify(util)
        got = fitted.predict_job_unused(util, request).as_array()
        expected = (
            np.clip(0.6 + fitted.class_shifts[class_id], 0.0, 1.0) * 2.0
        )
        np.testing.assert_allclose(got, expected)

    def test_forecast_bounded_by_request(self, fitted, rng):
        util = rng.uniform(0.0, 1.0, size=(12, NUM_RESOURCES))
        got = fitted.predict_job_unused(
            util, ResourceVector.full(3.0)
        ).as_array()
        assert np.all(got >= 0.0) and np.all(got <= 3.0)


class TestSerialization:
    def test_npz_round_trip_preserves_routing(self, fitted, tmp_path, rng):
        path = tmp_path / "classify.npz"
        fitted.save_npz(path)
        loaded = ClassifyThenPredictPredictor.load_npz(path)
        assert loaded.fitted
        np.testing.assert_array_equal(fitted.centroids, loaded.centroids)
        np.testing.assert_array_equal(
            fitted.class_shifts, loaded.class_shifts
        )
        util = rng.uniform(0.0, 1.0, size=(8, NUM_RESOURCES))
        assert fitted.classify(util) == loaded.classify(util)
        np.testing.assert_array_equal(
            fitted.predict_job_unused(
                util, ResourceVector.full(1.0)
            ).as_array(),
            loaded.predict_job_unused(
                util, ResourceVector.full(1.0)
            ).as_array(),
        )
