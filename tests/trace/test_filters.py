"""Long-lived-job removal and job-count limiting (Section IV setup)."""

import pytest

from repro.trace.filters import (
    is_short_lived,
    keep_long_lived,
    limit_jobs,
    remove_long_lived,
)
from repro.trace.records import Trace

from .test_records import make_record


def mixed_trace():
    return Trace(
        [
            make_record(task_id=0, duration=60.0, is_short=True),
            make_record(task_id=1, duration=7200.0, is_short=False, submit=5.0),
            make_record(task_id=2, duration=120.0, is_short=True, submit=10.0),
            # inconsistent record: flagged short but over the timeout
            make_record(task_id=3, duration=900.0, is_short=True, submit=15.0),
        ]
    )


class TestIsShortLived:
    def test_short(self):
        assert is_short_lived(make_record(duration=60.0, is_short=True))

    def test_long_flag(self):
        assert not is_short_lived(make_record(duration=60.0, is_short=False))

    def test_over_timeout(self):
        assert not is_short_lived(make_record(duration=301.0, is_short=True))

    def test_custom_timeout(self):
        assert is_short_lived(make_record(duration=500.0, is_short=True), timeout_s=600)


class TestFilters:
    def test_remove_long_lived(self):
        kept = remove_long_lived(mixed_trace())
        assert [r.task_id for r in kept] == [0, 2]

    def test_keep_long_lived_is_complement(self):
        trace = mixed_trace()
        short = remove_long_lived(trace)
        long_ = keep_long_lived(trace)
        assert len(short) + len(long_) == len(trace)
        assert {r.task_id for r in long_} == {1, 3}

    def test_limit_jobs(self):
        trace = mixed_trace()
        assert len(limit_jobs(trace, 2)) == 2
        assert [r.task_id for r in limit_jobs(trace, 2)] == [0, 1]

    def test_limit_jobs_zero(self):
        assert len(limit_jobs(mixed_trace(), 0)) == 0

    def test_limit_jobs_over_length(self):
        assert len(limit_jobs(mixed_trace(), 99)) == 4

    def test_limit_jobs_negative(self):
        with pytest.raises(ValueError):
            limit_jobs(mixed_trace(), -1)
