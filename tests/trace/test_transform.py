"""5-minute → 10-second resampling (Section IV's trace transformation)."""

import numpy as np
import pytest

from repro.trace.generator import GoogleTraceGenerator, TraceConfig
from repro.trace.transform import resample_record, resample_trace

from .test_records import make_record


class TestResampleRecord:
    def test_factor_and_period(self):
        record = make_record(duration=600.0, period=300.0,
                             usage=np.tile([1.0, 2.0, 5.0], (2, 1)))
        fine = resample_record(record, 10.0, fluctuation_sigma=0.0)
        assert fine.sample_period_s == 10.0
        assert fine.n_samples == 60

    def test_noop_when_periods_match(self):
        record = make_record(period=10.0)
        assert resample_record(record, 10.0) is record

    def test_uneven_ratio_rejected(self):
        record = make_record(period=300.0, duration=300.0,
                             usage=np.tile([1.0, 2.0, 5.0], (1, 1)))
        with pytest.raises(ValueError):
            resample_record(record, 7.0)

    def test_nonpositive_target_rejected(self):
        record = make_record()
        with pytest.raises(ValueError):
            resample_record(record, 0.0)

    def test_interpolation_without_noise(self):
        usage = np.array([[0.0, 0.0, 0.0], [10.0, 10.0, 10.0]])
        record = make_record(duration=600.0, period=300.0, usage=usage,
                             request=(10, 10, 10))
        fine = resample_record(record, 100.0, fluctuation_sigma=0.0)
        # linear ramp: first three samples 0, 10/3, 20/3
        np.testing.assert_allclose(fine.usage[:3, 0], [0.0, 10 / 3, 20 / 3])

    def test_single_sample_repeats(self):
        usage = np.array([[2.0, 2.0, 2.0]])
        record = make_record(duration=300.0, period=300.0, usage=usage,
                             request=(4, 4, 4))
        fine = resample_record(record, 100.0, fluctuation_sigma=0.0)
        np.testing.assert_allclose(fine.usage, 2.0)

    def test_noise_zero_mean_per_window(self):
        usage = np.tile([5.0, 5.0, 5.0], (4, 1))
        record = make_record(duration=1200.0, period=300.0, usage=usage,
                             request=(10, 10, 10))
        fine = resample_record(record, 10.0, fluctuation_sigma=0.1, seed=1)
        coarse_back = fine.usage.reshape(4, 30, 3).mean(axis=1)
        np.testing.assert_allclose(coarse_back, 5.0, atol=0.35)

    def test_noise_respects_bounds(self):
        usage = np.tile([9.9, 9.9, 9.9], (2, 1))
        record = make_record(duration=600.0, period=300.0, usage=usage,
                             request=(10, 10, 10))
        fine = resample_record(record, 10.0, fluctuation_sigma=0.3, seed=2)
        assert np.all(fine.usage <= 10.0 + 1e-9)
        assert np.all(fine.usage >= 0.0)

    def test_trimmed_to_duration(self):
        # A 90-second job sampled at 300 s has one coarse sample but
        # only 9 fine (10 s) samples of life.
        usage = np.array([[1.0, 1.0, 1.0]])
        record = make_record(duration=90.0, period=300.0, usage=usage)
        fine = resample_record(record, 10.0, fluctuation_sigma=0.0)
        assert fine.n_samples == 9

    def test_deterministic_in_seed(self):
        record = make_record(duration=600.0, period=300.0,
                             usage=np.tile([5.0, 5.0, 5.0], (2, 1)),
                             request=(10, 10, 10))
        a = resample_record(record, 10.0, seed=7)
        b = resample_record(record, 10.0, seed=7)
        np.testing.assert_array_equal(a.usage, b.usage)

    def test_different_tasks_get_independent_noise(self):
        r1 = make_record(task_id=1, duration=600.0, period=300.0,
                         usage=np.tile([5.0, 5.0, 5.0], (2, 1)), request=(10, 10, 10))
        r2 = make_record(task_id=2, duration=600.0, period=300.0,
                         usage=np.tile([5.0, 5.0, 5.0], (2, 1)), request=(10, 10, 10))
        f1 = resample_record(r1, 10.0, seed=7)
        f2 = resample_record(r2, 10.0, seed=7)
        assert not np.array_equal(f1.usage, f2.usage)


class TestResampleTrace:
    def test_applies_to_every_record(self):
        trace = GoogleTraceGenerator(TraceConfig(n_jobs=10, seed=0)).generate()
        fine = resample_trace(trace, 10.0)
        assert len(fine) == len(trace)
        assert all(r.sample_period_s == 10.0 for r in fine)
