"""Statistical properties of the synthetic Google-trace generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourceKind
from repro.trace.generator import INTENSITY_CLASSES, GoogleTraceGenerator, TraceConfig
from repro.trace.records import SHORT_JOB_TIMEOUT_S


def generate(**kw):
    return GoogleTraceGenerator(TraceConfig(**kw)).generate()


class TestConfigValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(n_jobs=0)

    def test_bad_short_fraction(self):
        with pytest.raises(ValueError):
            TraceConfig(short_fraction=1.5)

    def test_bad_span(self):
        with pytest.raises(ValueError):
            TraceConfig(arrival_span_s=0.0)

    def test_bad_class_probs(self):
        with pytest.raises(ValueError):
            TraceConfig(class_probs=(0.5, 0.5, 0.5, 0.5))

    def test_mismatched_class_lists(self):
        with pytest.raises(ValueError):
            TraceConfig(class_names=("cpu",), class_probs=(0.5, 0.5))

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            TraceConfig(class_names=("nope",), class_probs=(1.0,))


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate(n_jobs=20, seed=4)
        b = generate(n_jobs=20, seed=4)
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            assert ra.submit_time_s == rb.submit_time_s
            np.testing.assert_array_equal(ra.usage, rb.usage)

    def test_different_seed_differs(self):
        a = generate(n_jobs=20, seed=1)
        b = generate(n_jobs=20, seed=2)
        assert any(
            ra.submit_time_s != rb.submit_time_s for ra, rb in zip(a, b)
        )


class TestArrivals:
    def test_poisson_arrivals_increasing(self):
        trace = generate(n_jobs=30, seed=0)
        times = [r.submit_time_s for r in trace]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_fixed_span_arrivals_within_span(self):
        trace = generate(n_jobs=30, seed=0, arrival_span_s=120.0)
        assert all(0.0 <= r.submit_time_s <= 120.0 for r in trace)

    def test_count(self):
        assert len(generate(n_jobs=17, seed=0)) == 17


class TestDurations:
    def test_short_jobs_respect_timeout(self):
        trace = generate(n_jobs=60, seed=3, short_fraction=1.0)
        assert all(r.duration_s <= SHORT_JOB_TIMEOUT_S for r in trace)
        assert all(r.is_short for r in trace)

    def test_short_jobs_respect_minimum(self):
        cfg = TraceConfig(n_jobs=60, seed=3, short_fraction=1.0, min_duration_s=20.0)
        trace = GoogleTraceGenerator(cfg).generate()
        assert all(r.duration_s >= 20.0 for r in trace)

    def test_long_jobs_run_hours(self):
        trace = generate(n_jobs=30, seed=3, short_fraction=0.0)
        assert all(r.duration_s >= 3600.0 for r in trace)
        assert not any(r.is_short for r in trace)

    def test_short_fraction_approximate(self):
        trace = generate(n_jobs=300, seed=5, short_fraction=0.9)
        assert 0.82 <= trace.short_fraction() <= 0.97


class TestUsage:
    def test_usage_never_exceeds_request(self):
        trace = generate(n_jobs=40, seed=6)
        for r in trace:
            assert np.all(r.usage <= r.requested.as_array() + 1e-9)
            assert np.all(r.usage >= 0)

    def test_short_jobs_fluctuate(self):
        # The patternless process must actually move (Section I's
        # "frequent fluctuations in resource requirements").
        trace = generate(
            n_jobs=30, seed=7, short_fraction=1.0, sample_period_s=10.0,
            min_duration_s=200.0, short_duration_mu=5.6,
        )
        spans = [
            r.utilization_series()[:, 0].max() - r.utilization_series()[:, 0].min()
            for r in trace
            if r.n_samples >= 10
        ]
        assert np.mean(spans) > 0.05

    def test_storage_usage_monotone(self):
        trace = generate(n_jobs=20, seed=8, short_fraction=1.0)
        for r in trace:
            storage = r.usage[:, ResourceKind.STORAGE]
            assert np.all(np.diff(storage) >= -1e-9)

    def test_storage_leaves_slack(self):
        # Jobs over-reserve disk (the packing-relevant slack).
        trace = generate(n_jobs=60, seed=9, short_fraction=1.0)
        final_fracs = [
            r.usage[-1, ResourceKind.STORAGE] / r.requested.storage for r in trace
        ]
        assert np.mean(final_fracs) < 0.7

    def test_long_jobs_show_periodic_pattern(self):
        trace = generate(
            n_jobs=10, seed=10, short_fraction=0.0, sample_period_s=300.0,
            long_pattern_period_s=3600.0,
        )
        for r in trace:
            util = r.utilization_series()[:, ResourceKind.CPU]
            if util.size < 24:
                continue
            centered = util - util.mean()
            spectrum = np.abs(np.fft.rfft(centered)) ** 2
            dominance = spectrum[1:].max() / spectrum[1:].sum()
            assert dominance > 0.2  # clear dominant frequency


class TestRequests:
    def test_requests_within_class_ranges(self):
        trace = generate(n_jobs=100, seed=11)
        lows = {
            kind: min(rng[0] for cls in INTENSITY_CLASSES.values() for k, rng in cls.items() if k == kind)
            for kind in ResourceKind
        }
        highs = {
            kind: max(rng[1] for cls in INTENSITY_CLASSES.values() for k, rng in cls.items() if k == kind)
            for kind in ResourceKind
        }
        for r in trace:
            for kind in ResourceKind:
                assert lows[kind] <= r.requested[kind] <= highs[kind]

    def test_complementary_classes_present(self):
        # Packing needs both CPU-dominant and non-CPU-dominant jobs.
        trace = generate(n_jobs=200, seed=12)
        dominants = {r.requested.dominant() for r in trace}
        assert ResourceKind.CPU in dominants
        assert len(dominants) >= 2

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_any_seed_produces_valid_trace(self, seed):
        trace = generate(n_jobs=5, seed=seed)
        assert len(trace) == 5
        for r in trace:
            assert r.duration_s > 0
            assert np.all(r.usage >= 0)


class TestStreaming:
    """generate_chunks / iter_records: identical records, bounded memory."""

    def test_chunks_concatenate_to_the_full_trace(self):
        cfg = TraceConfig(n_jobs=57, seed=5)
        full = GoogleTraceGenerator(cfg).generate()
        streamed = [
            r
            for chunk in GoogleTraceGenerator(cfg).generate_chunks(10)
            for r in chunk
        ]
        assert len(streamed) == len(full)
        for a, b in zip(full, streamed):
            assert a.task_id == b.task_id
            assert a.submit_time_s == b.submit_time_s
            assert a.duration_s == b.duration_s
            assert a.requested == b.requested
            assert np.array_equal(a.usage, b.usage)

    def test_chunk_sizes(self):
        chunks = list(GoogleTraceGenerator(
            TraceConfig(n_jobs=25, seed=1)
        ).generate_chunks(10))
        assert [len(c) for c in chunks] == [10, 10, 5]

    def test_chunk_size_must_be_positive(self):
        gen = GoogleTraceGenerator(TraceConfig(n_jobs=5, seed=1))
        with pytest.raises(ValueError):
            next(gen.generate_chunks(0))

    def test_streaming_peak_memory_stays_bounded(self):
        """A streamed pass must not hold the whole trace at once.

        tracemalloc peaks: materializing n jobs is O(n); streaming in
        small chunks must stay well under that regardless of n.
        """
        import tracemalloc

        cfg = TraceConfig(n_jobs=2000, seed=9)

        tracemalloc.start()
        trace = GoogleTraceGenerator(cfg).generate()
        _, full_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del trace

        tracemalloc.start()
        for chunk in GoogleTraceGenerator(cfg).generate_chunks(64):
            pass  # place-and-drop, like the scale benchmark
        _, streamed_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert streamed_peak < full_peak / 4, (
            f"streamed peak {streamed_peak / 1e6:.1f} MB not well below "
            f"materialized peak {full_peak / 1e6:.1f} MB"
        )
