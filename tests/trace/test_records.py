"""TaskRecord / Trace container behaviour."""

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.trace.records import SHORT_JOB_TIMEOUT_S, TaskRecord, Trace


def make_record(task_id=0, submit=0.0, duration=60.0, period=10.0,
                request=(2, 4, 10), usage=None, is_short=True):
    req = np.asarray(request, dtype=float)
    if usage is None:
        n = max(1, int(np.ceil(duration / period)))
        usage = 0.5 * np.tile(req, (n, 1))
    return TaskRecord(
        task_id=task_id,
        submit_time_s=submit,
        duration_s=duration,
        requested=ResourceVector(req),
        usage=np.asarray(usage, dtype=float),
        sample_period_s=period,
        is_short=is_short,
    )


class TestTaskRecordValidation:
    def test_valid(self):
        record = make_record()
        assert record.n_samples == 6

    def test_bad_usage_shape(self):
        with pytest.raises(ValueError):
            make_record(usage=np.zeros((4, 2)))

    def test_empty_usage(self):
        with pytest.raises(ValueError):
            make_record(usage=np.zeros((0, 3)))

    def test_negative_duration(self):
        with pytest.raises(ValueError):
            make_record(duration=-1.0)

    def test_negative_period(self):
        with pytest.raises(ValueError):
            make_record(period=0.0, usage=np.ones((3, 3)))

    def test_negative_usage(self):
        with pytest.raises(ValueError):
            make_record(usage=np.full((3, 3), -1.0))

    def test_negative_request(self):
        with pytest.raises(ValueError):
            make_record(request=(-1, 1, 1))

    def test_usage_made_readonly(self):
        record = make_record()
        with pytest.raises(ValueError):
            record.usage[0, 0] = 99.0


class TestTaskRecordDerived:
    def test_usage_at_clamps(self):
        record = make_record()
        assert record.usage_at(-5) == record.usage_at(0)
        assert record.usage_at(999) == record.usage_at(record.n_samples - 1)

    def test_unused_series(self):
        record = make_record(request=(2, 4, 10))
        unused = record.unused_series()
        np.testing.assert_allclose(unused, 0.5 * np.tile([2, 4, 10], (6, 1)))

    def test_unused_series_clipped(self):
        usage = np.tile([3.0, 4.0, 10.0], (2, 1))  # cpu above request
        record = make_record(request=(2, 4, 10), usage=usage, duration=20.0)
        assert np.all(record.unused_series() >= 0)

    def test_utilization_series_in_unit_range(self):
        record = make_record()
        util = record.utilization_series()
        assert np.all(util >= 0) and np.all(util <= 1)

    def test_utilization_zero_request(self):
        record = make_record(request=(2, 0, 10))
        assert np.all(record.utilization_series()[:, 1] == 0.0)

    def test_with_usage(self):
        record = make_record()
        finer = np.tile([1.0, 2.0, 5.0], (12, 1))
        out = record.with_usage(finer, 5.0)
        assert out.n_samples == 12
        assert out.sample_period_s == 5.0
        assert out.task_id == record.task_id


class TestTrace:
    def test_sorted_by_submit_time(self):
        trace = Trace(
            [make_record(task_id=1, submit=30.0), make_record(task_id=2, submit=10.0)]
        )
        assert [r.task_id for r in trace] == [2, 1]

    def test_sort_ties_by_task_id(self):
        trace = Trace(
            [make_record(task_id=5, submit=10.0), make_record(task_id=2, submit=10.0)]
        )
        assert [r.task_id for r in trace] == [2, 5]

    def test_len_getitem(self):
        trace = Trace([make_record(task_id=i) for i in range(3)])
        assert len(trace) == 3
        assert trace[1].task_id == 1

    def test_duration(self):
        trace = Trace([make_record(submit=100.0, duration=60.0)])
        assert trace.duration_s() == pytest.approx(160.0)

    def test_duration_empty(self):
        assert Trace().duration_s() == 0.0

    def test_short_fraction(self):
        trace = Trace(
            [
                make_record(task_id=1, is_short=True),
                make_record(task_id=2, is_short=False),
            ]
        )
        assert trace.short_fraction() == pytest.approx(0.5)
        assert Trace().short_fraction() == 0.0

    def test_filter(self):
        trace = Trace([make_record(task_id=i) for i in range(4)])
        kept = trace.filter(lambda r: r.task_id % 2 == 0)
        assert [r.task_id for r in kept] == [0, 2]

    def test_map(self):
        trace = Trace([make_record(task_id=0, duration=60.0)])
        finer = trace.map(
            lambda r: r.with_usage(np.repeat(r.usage, 2, axis=0), 5.0)
        )
        assert finer[0].n_samples == 12

    def test_stacked_usage(self):
        trace = Trace([make_record(task_id=0), make_record(task_id=1)])
        assert trace.stacked_usage().shape == (12, 3)
        assert Trace().stacked_usage().shape == (0, 3)

    def test_stacked_unused(self):
        trace = Trace([make_record(task_id=0)])
        assert trace.stacked_unused().shape == (6, 3)
        assert np.all(trace.stacked_unused() >= 0)

    def test_short_timeout_constant(self):
        # Section I: maximum timeout of 5 minutes.
        assert SHORT_JOB_TIMEOUT_S == 300.0
