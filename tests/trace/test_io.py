"""Trace persistence: JSONL round-trip and the CSV adapter."""

import numpy as np
import pytest

from repro.trace.io import load_jsonl, load_usage_csv, save_jsonl
from repro.trace.records import Trace

from ..conftest import make_short_trace
from .test_records import make_record


class TestJsonlRoundtrip:
    def test_lossless(self, tmp_path):
        trace = make_short_trace(n_jobs=12, seed=81)
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        loaded = load_jsonl(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a.task_id == b.task_id
            assert a.submit_time_s == b.submit_time_s
            assert a.duration_s == b.duration_s
            assert a.requested == b.requested
            assert a.sample_period_s == b.sample_period_s
            assert a.is_short == b.is_short
            np.testing.assert_array_equal(a.usage, b.usage)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_jsonl(Trace(), path)
        assert len(load_jsonl(path)) == 0

    def test_blank_lines_skipped(self, tmp_path):
        trace = Trace([make_record(task_id=1)])
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_jsonl(path)) == 1

    def test_corrupt_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"task_id": 1\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_jsonl(path)


class TestCsvAdapter:
    def write_pair(self, tmp_path, tasks, usage):
        tasks_path = tmp_path / "tasks.csv"
        usage_path = tmp_path / "usage.csv"
        tasks_path.write_text(
            "task_id,submit_time_s,duration_s,req_cpu,req_mem,req_storage\n"
            + "\n".join(tasks)
        )
        usage_path.write_text(
            "task_id,timestamp_s,cpu,mem,storage\n" + "\n".join(usage)
        )
        return tasks_path, usage_path

    def test_basic_assembly(self, tmp_path):
        tasks_path, usage_path = self.write_pair(
            tmp_path,
            ["1,0.0,30.0,2.0,4.0,10.0"],
            ["1,0,1.0,2.0,5.0", "1,10,1.5,2.5,6.0", "1,20,0.5,1.0,4.0"],
        )
        trace = load_usage_csv(tasks_path, usage_path, sample_period_s=10.0)
        assert len(trace) == 1
        record = trace[0]
        assert record.n_samples == 3
        np.testing.assert_allclose(record.usage[1], [1.5, 2.5, 6.0])
        assert record.is_short

    def test_long_task_flag(self, tmp_path):
        tasks_path, usage_path = self.write_pair(
            tmp_path,
            ["1,0.0,900.0,2.0,4.0,10.0"],
            ["1,0,1.0,2.0,5.0"],
        )
        trace = load_usage_csv(tasks_path, usage_path, sample_period_s=300.0)
        assert not trace[0].is_short

    def test_gaps_forward_filled(self, tmp_path):
        tasks_path, usage_path = self.write_pair(
            tmp_path,
            ["1,0.0,40.0,2.0,4.0,10.0"],
            ["1,0,1.0,2.0,5.0", "1,30,0.5,1.0,4.0"],  # slots 1-2 missing
        )
        trace = load_usage_csv(tasks_path, usage_path, sample_period_s=10.0)
        np.testing.assert_allclose(trace[0].usage[1], [1.0, 2.0, 5.0])
        np.testing.assert_allclose(trace[0].usage[2], [1.0, 2.0, 5.0])

    def test_usage_clipped_to_request(self, tmp_path):
        tasks_path, usage_path = self.write_pair(
            tmp_path,
            ["1,0.0,10.0,2.0,4.0,10.0"],
            ["1,0,99.0,99.0,99.0"],
        )
        trace = load_usage_csv(tasks_path, usage_path, sample_period_s=10.0)
        assert np.all(trace[0].usage <= [2.0, 4.0, 10.0])

    def test_unknown_task_rejected(self, tmp_path):
        tasks_path, usage_path = self.write_pair(
            tmp_path,
            ["1,0.0,10.0,2.0,4.0,10.0"],
            ["7,0,1.0,1.0,1.0"],
        )
        with pytest.raises(ValueError, match="unknown task_id 7"):
            load_usage_csv(tasks_path, usage_path, sample_period_s=10.0)

    def test_loaded_trace_runs_in_simulator(self, tmp_path):
        tasks_path, usage_path = self.write_pair(
            tmp_path,
            [f"{i},{i * 5.0},30.0,2.0,4.0,10.0" for i in range(4)],
            [f"{i},{t},1.0,2.0,5.0" for i in range(4) for t in (0, 10, 20)],
        )
        trace = load_usage_csv(tasks_path, usage_path, sample_period_s=10.0)
        from repro.cluster.profiles import ClusterProfile
        from repro.cluster.simulator import ClusterSimulator
        from ..cluster.test_simulator import GreedyScheduler

        sim = ClusterSimulator(
            ClusterProfile.palmetto(n_pms=2, vms_per_pm=1), GreedyScheduler()
        )
        result = sim.run(trace)
        assert result.n_completed == 4
