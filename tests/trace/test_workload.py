"""Slot bucketing of the workload driver."""

import numpy as np
import pytest

from repro.trace.records import Trace
from repro.trace.workload import build_workload

from .test_records import make_record


def record_at(submit, task_id, period=10.0, duration=60.0):
    return make_record(task_id=task_id, submit=submit, period=period,
                       duration=duration)


class TestBuildWorkload:
    def test_bucketing(self):
        trace = Trace([record_at(0.0, 1), record_at(9.9, 2), record_at(10.0, 3)])
        wl = build_workload(trace, 10.0)
        assert {r.task_id for r in wl.arrivals_at(0)} == {1, 2}
        assert {r.task_id for r in wl.arrivals_at(1)} == {3}

    def test_empty_slot(self):
        wl = build_workload(Trace([record_at(0.0, 1)]), 10.0)
        assert wl.arrivals_at(5) == ()

    def test_total_jobs(self):
        trace = Trace([record_at(float(i), i) for i in range(7)])
        assert build_workload(trace, 10.0).total_jobs() == 7

    def test_n_slots(self):
        # Last arrival in slot index 5 → six arrival slots (0..5).
        trace = Trace([record_at(0.0, 1), record_at(55.0, 2)])
        assert build_workload(trace, 10.0).n_slots == 6

    def test_n_slots_counts_slots_not_max_index(self):
        # Regression: a single job at t=0 means ONE arrival slot, not
        # zero (n_slots used to be the max slot index, off by one
        # against its documented count semantics).
        wl = build_workload(Trace([record_at(0.0, 1)]), 10.0)
        assert wl.n_slots == 1
        assert len(wl.arrival_counts()) == 1

    def test_empty_trace(self):
        wl = build_workload(Trace(), 10.0)
        assert wl.n_slots == 0
        assert wl.total_jobs() == 0

    def test_period_mismatch_rejected(self):
        trace = Trace([record_at(0.0, 1, period=300.0)])
        with pytest.raises(ValueError):
            build_workload(trace, 10.0)

    def test_bad_slot_duration(self):
        with pytest.raises(ValueError):
            build_workload(Trace(), 0.0)

    def test_iter_slots_ordered(self):
        trace = Trace([record_at(30.0, 1), record_at(0.0, 2)])
        slots = [slot for slot, _ in build_workload(trace, 10.0).iter_slots()]
        assert slots == [0, 3]

    def test_arrival_counts(self):
        trace = Trace([record_at(0.0, 1), record_at(0.5, 2), record_at(20.0, 3)])
        counts = build_workload(trace, 10.0).arrival_counts()
        np.testing.assert_array_equal(counts, [2, 0, 1])
        assert counts.sum() == 3
