"""SGD / Momentum / Adam update rules."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam, Momentum, get_optimizer


class TestSgd:
    def test_update_in_place(self):
        param = np.array([1.0, 2.0])
        SGD(0.1).step("p", param, np.array([1.0, -1.0]))
        np.testing.assert_allclose(param, [0.9, 2.1])

    def test_paper_equation_8(self):
        # Δw = μ · E · g — one gradient-descent step with rate μ.
        mu = 0.25
        param = np.zeros(3)
        grad = np.array([1.0, 2.0, 3.0])
        SGD(mu).step("p", param, grad)
        np.testing.assert_allclose(param, -mu * grad)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SGD(0.0)


class TestMomentum:
    def test_accumulates_velocity(self):
        opt = Momentum(0.1, momentum=0.9)
        param = np.zeros(1)
        for _ in range(3):
            opt.step("p", param, np.array([1.0]))
        # steps: -0.1, then -0.19, then -0.271
        assert param[0] == pytest.approx(-(0.1 + 0.19 + 0.271))

    def test_separate_state_per_param(self):
        opt = Momentum(0.1, momentum=0.9)
        a, b = np.zeros(1), np.zeros(1)
        opt.step("a", a, np.array([1.0]))
        opt.step("b", b, np.array([1.0]))
        assert a[0] == b[0]  # independent velocities

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            Momentum(0.1, momentum=1.0)


class TestAdam:
    def test_first_step_magnitude(self):
        opt = Adam(learning_rate=0.001)
        param = np.zeros(1)
        opt.step("p", param, np.array([10.0]))
        # bias-corrected first step ≈ lr regardless of gradient scale
        assert param[0] == pytest.approx(-0.001, rel=1e-3)

    def test_converges_on_quadratic(self):
        opt = Adam(0.1)
        theta = np.array([5.0])
        for _ in range(500):
            opt.step("t", theta, 2 * theta)  # d/dθ of θ²
        assert abs(theta[0]) < 0.05

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=0.0)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_optimizer("sgd"), SGD)
        assert isinstance(get_optimizer("momentum"), Momentum)
        assert isinstance(get_optimizer("adam", learning_rate=0.5), Adam)

    def test_kwargs_forwarded(self):
        assert get_optimizer("sgd", learning_rate=0.7).learning_rate == 0.7

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_optimizer("rmsprop")
