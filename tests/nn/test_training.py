"""Epoch loop, validation convergence and early stopping."""

import numpy as np
import pytest

from repro.nn.network import FeedForwardNetwork
from repro.nn.optimizers import Adam
from repro.nn.training import TrainingConfig, train, train_validation_split


def make_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(size=(n, 4))
    y = x @ np.array([[0.1], [0.2], [0.3], [0.4]])
    return x, y


class TestConfigValidation:
    def test_bad_epochs(self):
        with pytest.raises(ValueError):
            TrainingConfig(max_epochs=0)

    def test_bad_batch(self):
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            TrainingConfig(validation_fraction=1.0)

    def test_bad_patience(self):
        with pytest.raises(ValueError):
            TrainingConfig(patience=0)


class TestSplit:
    def test_sizes(self):
        x, y = make_data(100)
        xt, yt, xv, yv = train_validation_split(x, y, 0.2, np.random.default_rng(0))
        assert xt.shape[0] == 80 and xv.shape[0] == 20
        assert yt.shape[0] == 80 and yv.shape[0] == 20

    def test_disjoint_and_complete(self):
        x = np.arange(50, dtype=float)[:, None]
        y = x.copy()
        xt, _, xv, _ = train_validation_split(x, y, 0.3, np.random.default_rng(1))
        combined = sorted(np.concatenate([xt, xv]).ravel().tolist())
        assert combined == list(range(50))

    def test_mismatched_rows(self):
        with pytest.raises(ValueError):
            train_validation_split(
                np.zeros((5, 2)), np.zeros((4, 1)), 0.2, np.random.default_rng(0)
            )

    def test_all_validation_rejected(self):
        with pytest.raises(ValueError):
            train_validation_split(
                np.zeros((3, 2)), np.zeros((3, 1)), 0.99, np.random.default_rng(0)
            )


class TestTrain:
    def test_learns_linear_map(self):
        x, y = make_data()
        net = FeedForwardNetwork([4, 16, 1], seed=1)
        history = train(
            net, x, y, TrainingConfig(max_epochs=120, patience=20, seed=2),
            optimizer=Adam(0.01),
        )
        assert history.final_val_loss < 0.002
        assert history.n_epochs >= 1

    def test_history_lengths_match(self):
        x, y = make_data(60)
        net = FeedForwardNetwork([4, 8, 1], seed=1)
        history = train(net, x, y, TrainingConfig(max_epochs=10, patience=10))
        assert len(history.train_loss) == len(history.val_loss) == history.n_epochs

    def test_early_stop_on_plateau(self):
        x = np.zeros((40, 4))
        y = np.full((40, 1), 0.5)
        net = FeedForwardNetwork([4, 8, 1], seed=1)
        history = train(
            net, x, y, TrainingConfig(max_epochs=500, patience=3, seed=0)
        )
        assert history.stopped_early
        assert history.n_epochs < 500

    def test_best_weights_restored(self):
        x, y = make_data(80, seed=3)
        net = FeedForwardNetwork([4, 8, 1], seed=4)
        history = train(
            net, x, y, TrainingConfig(max_epochs=30, patience=30, seed=5),
            optimizer=Adam(0.05),
        )
        # The restored network's validation loss must equal the best seen
        # (recompute on the same split used internally is impractical, so
        # assert on the recorded trajectory instead).
        assert history.val_loss[history.best_epoch] == min(history.val_loss)

    def test_row_mismatch_rejected(self):
        net = FeedForwardNetwork([4, 8, 1])
        with pytest.raises(ValueError):
            train(net, np.zeros((5, 4)), np.zeros((4, 1)))

    def test_tiny_dataset_trains_without_split(self):
        net = FeedForwardNetwork([4, 8, 1])
        history = train(
            net, np.zeros((3, 4)), np.zeros((3, 1)),
            TrainingConfig(max_epochs=3, patience=2),
        )
        assert history.n_epochs >= 1

    def test_empty_history_nan(self):
        from repro.nn.training import TrainingHistory

        assert np.isnan(TrainingHistory().final_val_loss)
