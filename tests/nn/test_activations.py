"""Activation functions and their output-space derivatives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn.activations import LINEAR, RELU, SIGMOID, TANH, get_activation

floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


class TestSigmoid:
    def test_midpoint(self):
        assert SIGMOID(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_range(self):
        x = np.linspace(-30, 30, 201)
        y = SIGMOID(x)
        assert np.all(y > 0) and np.all(y < 1)

    def test_monotone(self):
        x = np.linspace(-10, 10, 101)
        assert np.all(np.diff(SIGMOID(x)) > 0)

    def test_no_overflow_extremes(self):
        y = SIGMOID(np.array([-1e6, 1e6]))
        assert y[0] == pytest.approx(0.0)
        assert y[1] == pytest.approx(1.0)

    def test_derivative_formula(self):
        g = SIGMOID(np.array([0.3]))
        assert SIGMOID.deriv(g)[0] == pytest.approx(g[0] * (1 - g[0]))

    @given(floats)
    def test_derivative_matches_numerical(self, x):
        h = 1e-6
        arr = np.array([x])
        numeric = (SIGMOID(arr + h) - SIGMOID(arr - h)) / (2 * h)
        analytic = SIGMOID.deriv(SIGMOID(arr))
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)


class TestTanh:
    def test_odd_function(self):
        x = np.array([1.7])
        assert TANH(-x)[0] == pytest.approx(-TANH(x)[0])

    @given(floats)
    def test_derivative_matches_numerical(self, x):
        h = 1e-6
        arr = np.array([x])
        numeric = (TANH(arr + h) - TANH(arr - h)) / (2 * h)
        analytic = TANH.deriv(TANH(arr))
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)


class TestRelu:
    def test_values(self):
        np.testing.assert_array_equal(
            RELU(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0]
        )

    def test_derivative(self):
        g = RELU(np.array([-2.0, 3.0]))
        np.testing.assert_array_equal(RELU.deriv(g), [0.0, 1.0])


class TestLinear:
    def test_identity(self):
        x = np.array([-1.5, 2.0])
        np.testing.assert_array_equal(LINEAR(x), x)
        np.testing.assert_array_equal(LINEAR.deriv(x), [1.0, 1.0])


class TestRegistry:
    @pytest.mark.parametrize("name", ["sigmoid", "tanh", "relu", "linear"])
    def test_lookup(self, name):
        assert get_activation(name).name == name

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown activation"):
            get_activation("swish")

    def test_callable(self):
        act = get_activation("sigmoid")
        assert act(np.zeros(1))[0] == pytest.approx(0.5)
