"""FeedForwardNetwork assembly, training step and weight management."""

import numpy as np
import pytest

from repro.nn.losses import MSE
from repro.nn.network import FeedForwardNetwork
from repro.nn.optimizers import SGD, Adam


class TestConstruction:
    def test_paper_architecture(self):
        # Table II: h = 4 hidden layers of N_n = 50 units.
        net = FeedForwardNetwork([6, 50, 50, 50, 50, 1])
        assert net.input_size == 6
        assert net.output_size == 1
        assert net.n_hidden_layers == 4

    def test_too_few_layers(self):
        with pytest.raises(ValueError):
            FeedForwardNetwork([6])

    def test_zero_width(self):
        with pytest.raises(ValueError):
            FeedForwardNetwork([6, 0, 1])

    def test_output_activation_applied(self):
        net = FeedForwardNetwork([2, 3, 1], output_activation="sigmoid")
        out = net.predict(np.zeros((4, 2)))
        assert np.all(out > 0) and np.all(out < 1)

    def test_linear_head_unbounded(self):
        net = FeedForwardNetwork([2, 3, 1], output_activation="linear", seed=1)
        for layer in net.layers:
            layer.weights[...] = 10.0
            layer.biases[...] = 5.0
        assert abs(net.predict(np.ones((1, 2)))[0, 0]) > 1.0

    def test_seed_determinism(self):
        a = FeedForwardNetwork([3, 4, 1], seed=5)
        b = FeedForwardNetwork([3, 4, 1], seed=5)
        np.testing.assert_array_equal(a.layers[0].weights, b.layers[0].weights)

    def test_repr(self):
        assert "6 -> 50" in repr(FeedForwardNetwork([6, 50, 1]))


class TestPrediction:
    def test_shapes(self):
        net = FeedForwardNetwork([4, 8, 2])
        assert net.predict(np.zeros((7, 4))).shape == (7, 2)
        assert net.predict(np.zeros(4)).shape == (1, 2)

    def test_forward_then_backward_runs(self):
        net = FeedForwardNetwork([4, 8, 2])
        out = net.forward(np.zeros((3, 4)))
        net.backward(np.ones_like(out))  # must not raise

    def test_predict_does_not_disturb_training_cache(self):
        net = FeedForwardNetwork([2, 4, 1])
        x = np.ones((2, 2))
        net.forward(x)
        net.predict(np.zeros((5, 2)))  # inference in between
        net.backward(np.ones((2, 1)))  # still uses the training cache


class TestTraining:
    def test_train_batch_reduces_loss(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(size=(64, 3))
        y = x.mean(axis=1, keepdims=True)
        net = FeedForwardNetwork([3, 8, 1], seed=2)
        first = net.evaluate(x, y)
        for _ in range(200):
            net.train_batch(x, y, optimizer=Adam(0.01))
        assert net.evaluate(x, y) < first * 0.5

    def test_train_batch_returns_loss(self):
        net = FeedForwardNetwork([2, 4, 1])
        loss = net.train_batch(np.zeros((4, 2)), np.full((4, 1), 0.5))
        assert loss == pytest.approx(
            MSE.fn(np.full((4, 1), net.predict(np.zeros((1, 2)))[0, 0]),
                   np.full((4, 1), 0.5)),
            rel=0.2,
        )

    def test_shape_mismatch_rejected(self):
        net = FeedForwardNetwork([2, 4, 1])
        with pytest.raises(ValueError):
            net.train_batch(np.zeros((4, 2)), np.zeros((4, 2)))

    def test_sgd_default_optimizer(self):
        net = FeedForwardNetwork([2, 4, 1], seed=1)
        before = net.layers[0].weights.copy()
        net.train_batch(np.ones((4, 2)), np.zeros((4, 1)), optimizer=SGD(0.5))
        assert not np.array_equal(before, net.layers[0].weights)


class TestWeightManagement:
    def test_roundtrip(self):
        net = FeedForwardNetwork([3, 5, 1], seed=1)
        saved = net.get_weights()
        net.train_batch(np.ones((4, 3)), np.zeros((4, 1)), optimizer=SGD(1.0))
        net.set_weights(saved)
        np.testing.assert_array_equal(net.layers[0].weights, saved[0]["weights"])

    def test_get_weights_detached(self):
        net = FeedForwardNetwork([3, 5, 1])
        saved = net.get_weights()
        saved[0]["weights"][0, 0] = 999.0
        assert net.layers[0].weights[0, 0] != 999.0

    def test_set_weights_wrong_count(self):
        net = FeedForwardNetwork([3, 5, 1])
        with pytest.raises(ValueError):
            net.set_weights([])

    def test_set_weights_wrong_shape(self):
        net = FeedForwardNetwork([3, 5, 1])
        bad = net.get_weights()
        bad[0]["weights"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.set_weights(bad)
