"""Losses and gradients, including the pinball (quantile) loss."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn.losses import MAE, MSE, get_loss, pinball

vals = st.floats(min_value=-10, max_value=10, allow_nan=False)


class TestMse:
    def test_value(self):
        pred = np.array([[1.0], [3.0]])
        target = np.array([[0.0], [0.0]])
        assert MSE.fn(pred, target) == pytest.approx(5.0)

    def test_zero_at_perfect(self):
        x = np.array([[1.0, 2.0]])
        assert MSE.fn(x, x) == 0.0

    def test_grad_direction(self):
        grad = MSE.grad(np.array([[2.0]]), np.array([[1.0]]))
        assert grad[0, 0] > 0  # prediction above target → push down

    @given(vals, vals)
    def test_grad_matches_paper_error_term(self, p, t):
        # Eq. 6's (t − g) is the negative of our d/dpred convention.
        grad = MSE.grad(np.array([[p]]), np.array([[t]]))
        assert grad[0, 0] == pytest.approx(p - t)


class TestMae:
    def test_value(self):
        assert MAE.fn(np.array([[2.0], [-2.0]]), np.zeros((2, 1))) == 2.0

    def test_grad_sign(self):
        grad = MAE.grad(np.array([[2.0], [-2.0]]), np.zeros((2, 1)))
        np.testing.assert_array_equal(grad.ravel(), [1.0, -1.0])


class TestPinball:
    def test_invalid_tau(self):
        for tau in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                pinball(tau)

    def test_median_is_half_mae(self):
        pred = np.array([[1.0], [5.0]])
        target = np.array([[0.0], [0.0]])
        assert pinball(0.5).fn(pred, target) == pytest.approx(0.5 * MAE.fn(pred, target))

    def test_asymmetric_penalty(self):
        loss = pinball(0.1)
        over = loss.fn(np.array([[1.0]]), np.array([[0.0]]))   # pred above target
        under = loss.fn(np.array([[0.0]]), np.array([[1.0]]))  # pred below target
        # τ=0.1 punishes over-prediction (pred > target) 9x harder.
        assert over == pytest.approx(0.9)
        assert under == pytest.approx(0.1)

    def test_gradient_values(self):
        loss = pinball(0.25)
        grad = loss.grad(np.array([[0.0], [2.0]]), np.array([[1.0], [1.0]]))
        np.testing.assert_allclose(grad.ravel(), [-0.25, 0.75])

    def test_minimizer_is_quantile(self):
        # Gradient descent on pinball(τ) over constant predictions should
        # converge to the τ-quantile of the targets.
        rng = np.random.default_rng(0)
        targets = rng.exponential(1.0, size=(4000, 1))
        tau = 0.2
        loss = pinball(tau)
        theta = 1.0
        for _ in range(4000):
            grad = loss.grad(np.full_like(targets, theta), targets).mean()
            theta -= 0.01 * grad
        assert theta == pytest.approx(np.quantile(targets, tau), abs=0.05)

    def test_name_embeds_tau(self):
        assert pinball(0.1).name == "pinball_0.1"


class TestRegistry:
    def test_lookup(self):
        assert get_loss("mse") is MSE
        assert get_loss("mae") is MAE

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_loss("huber")
