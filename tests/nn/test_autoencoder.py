"""Autoencoder pre-training path (Section III-A.1a)."""

import numpy as np
import pytest

from repro.nn.autoencoder import Autoencoder, pretrain_hidden_stack
from repro.nn.network import FeedForwardNetwork
from repro.nn.optimizers import Adam
from repro.nn.training import TrainingConfig


class TestAutoencoder:
    def test_symmetry(self):
        ae = Autoencoder([6, 3])
        assert ae.input_size == 6
        assert ae.code_size == 3
        assert ae.network.output_size == 6

    def test_deep_encoder(self):
        ae = Autoencoder([8, 6, 2])
        assert ae.code_size == 2
        # 8 -> 6 -> 2 -> 6 -> 8: four layers
        assert len(ae.network.layers) == 4

    def test_too_few_sizes(self):
        with pytest.raises(ValueError):
            Autoencoder([4])

    def test_encode_shape(self):
        ae = Autoencoder([6, 3])
        assert ae.encode(np.zeros((5, 6))).shape == (5, 3)

    def test_reconstruct_shape(self):
        ae = Autoencoder([6, 3])
        assert ae.reconstruct(np.zeros((5, 6))).shape == (5, 6)

    def test_training_reduces_reconstruction_error(self):
        rng = np.random.default_rng(0)
        # Data on a 2-D manifold inside 6-D space is compressible.
        latent = rng.uniform(0.2, 0.8, size=(300, 2))
        mix = rng.uniform(size=(2, 6))
        x = np.clip(latent @ mix, 0, 1)
        ae = Autoencoder([6, 3], seed=1)
        before = ae.reconstruction_error(x)
        ae.fit(x, TrainingConfig(max_epochs=60, patience=60, seed=2),
               optimizer=Adam(0.01))
        assert ae.reconstruction_error(x) < before


class TestPretrain:
    def test_copies_encoder_weights(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(size=(100, 6))
        net = FeedForwardNetwork([6, 4, 1], seed=4)
        ae = pretrain_hidden_stack(
            net, x, config=TrainingConfig(max_epochs=5, patience=5)
        )
        np.testing.assert_array_equal(
            net.layers[0].weights, ae.network.layers[0].weights
        )

    def test_network_still_trainable_after_pretrain(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(size=(100, 6))
        y = x.mean(axis=1, keepdims=True)
        net = FeedForwardNetwork([6, 4, 1], seed=6)
        pretrain_hidden_stack(net, x, config=TrainingConfig(max_epochs=3, patience=3))
        loss0 = net.evaluate(x, y)
        for _ in range(100):
            net.train_batch(x, y, optimizer=Adam(0.01))
        assert net.evaluate(x, y) < loss0
