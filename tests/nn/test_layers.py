"""DenseLayer forward/backward, including a numerical gradient check."""

import numpy as np
import pytest

from repro.nn.layers import DenseLayer


def make_layer(n_in=4, n_out=3, activation="sigmoid", seed=0):
    return DenseLayer(n_in, n_out, activation=activation,
                      rng=np.random.default_rng(seed))


class TestConstruction:
    def test_shapes(self):
        layer = make_layer(4, 3)
        assert layer.weights.shape == (3, 4)
        assert layer.biases.shape == (3,)
        assert layer.in_features == 4
        assert layer.out_features == 3

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            DenseLayer(0, 3)
        with pytest.raises(ValueError):
            DenseLayer(3, 0)

    def test_repr(self):
        assert "4->3" in repr(make_layer(4, 3))


class TestForward:
    def test_batched_shape(self):
        layer = make_layer(4, 3)
        out = layer.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_single_row_promoted(self):
        layer = make_layer(4, 3)
        assert layer.forward(np.zeros(4)).shape == (1, 3)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            make_layer(4, 3).forward(np.zeros((2, 5)))

    def test_matches_equation_5(self):
        # g = F(W x + e), elementwise sigmoid.
        layer = make_layer(2, 1)
        layer.weights[...] = np.array([[1.0, -1.0]])
        layer.biases[...] = np.array([0.5])
        x = np.array([[2.0, 1.0]])
        z = 1.0 * 2.0 - 1.0 * 1.0 + 0.5
        expected = 1.0 / (1.0 + np.exp(-z))
        assert layer.forward(x)[0, 0] == pytest.approx(expected)

    def test_inference_mode_does_not_cache(self):
        layer = make_layer()
        layer.forward(np.zeros((1, 4)), train=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 3)))


class TestBackward:
    def test_requires_forward_first(self):
        with pytest.raises(RuntimeError):
            make_layer().backward(np.zeros((1, 3)))

    def test_gradient_shapes(self):
        layer = make_layer(4, 3)
        layer.forward(np.random.default_rng(1).normal(size=(5, 4)))
        grad_in = layer.backward(np.ones((5, 3)))
        assert grad_in.shape == (5, 4)
        assert layer.grad_weights.shape == layer.weights.shape
        assert layer.grad_biases.shape == layer.biases.shape

    @pytest.mark.parametrize("activation", ["sigmoid", "tanh", "linear"])
    def test_numerical_gradient_weights(self, activation):
        """Backprop (Eq. 6-8) must match finite differences."""
        rng = np.random.default_rng(2)
        layer = make_layer(3, 2, activation=activation)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            out = layer.forward(x)
            return 0.5 * np.sum((out - target) ** 2)

        out = layer.forward(x)
        layer.backward(out - target)
        analytic_w = layer.grad_weights * x.shape[0]  # undo batch mean
        analytic_b = layer.grad_biases * x.shape[0]

        eps = 1e-6
        for index in np.ndindex(layer.weights.shape):
            layer.weights[index] += eps
            up = loss()
            layer.weights[index] -= 2 * eps
            down = loss()
            layer.weights[index] += eps
            numeric = (up - down) / (2 * eps)
            assert analytic_w[index] == pytest.approx(numeric, abs=1e-4)
        for i in range(layer.biases.size):
            layer.biases[i] += eps
            up = loss()
            layer.biases[i] -= 2 * eps
            down = loss()
            layer.biases[i] += eps
            numeric = (up - down) / (2 * eps)
            assert analytic_b[i] == pytest.approx(numeric, abs=1e-4)

    def test_numerical_gradient_inputs(self):
        rng = np.random.default_rng(3)
        layer = make_layer(3, 2)
        x = rng.normal(size=(1, 3))
        target = rng.normal(size=(1, 2))
        out = layer.forward(x)
        grad_in = layer.backward(out - target)

        def loss(xv):
            return 0.5 * np.sum((layer.forward(xv, train=False) - target) ** 2)

        eps = 1e-6
        for j in range(3):
            dx = np.zeros_like(x)
            dx[0, j] = eps
            numeric = (loss(x + dx) - loss(x - dx)) / (2 * eps)
            assert grad_in[0, j] == pytest.approx(numeric, abs=1e-4)


class TestParameterAccess:
    def test_parameters_are_live_views(self):
        layer = make_layer()
        layer.parameters()["weights"][0, 0] = 123.0
        assert layer.weights[0, 0] == 123.0

    def test_gradients_keys_match(self):
        layer = make_layer()
        assert set(layer.parameters()) == set(layer.gradients())
