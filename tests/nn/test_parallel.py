"""Data-parallel training: equivalence with the sequential path."""

import numpy as np
import pytest

from repro.nn.losses import MSE, pinball
from repro.nn.network import FeedForwardNetwork
from repro.nn.optimizers import SGD, Adam
from repro.nn.parallel import DataParallelTrainer, parallel_map


def make_data(n=64, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(size=(n, 4))
    y = x.mean(axis=1, keepdims=True)
    return x, y


class TestEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 3, 4])
    def test_matches_sequential_sgd_step(self, n_workers):
        """The averaged gradient equals the full-batch gradient, so one
        data-parallel SGD step equals one sequential SGD step."""
        x, y = make_data()
        sequential = FeedForwardNetwork([4, 8, 1], seed=1)
        parallel = FeedForwardNetwork([4, 8, 1], seed=1)
        sequential.train_batch(x, y, optimizer=SGD(0.5), loss=MSE)
        with DataParallelTrainer(parallel, n_workers, optimizer=SGD(0.5)) as trainer:
            trainer.train_batch(x, y)
        for a, b in zip(sequential.layers, parallel.layers):
            np.testing.assert_allclose(a.weights, b.weights, atol=1e-12)
            np.testing.assert_allclose(a.biases, b.biases, atol=1e-12)

    def test_matches_over_many_steps(self):
        x, y = make_data(48, seed=3)
        sequential = FeedForwardNetwork([4, 6, 1], seed=2)
        parallel = FeedForwardNetwork([4, 6, 1], seed=2)
        opt_a, opt_b = SGD(0.3), SGD(0.3)
        with DataParallelTrainer(parallel, 3, optimizer=opt_b) as trainer:
            for _ in range(20):
                sequential.train_batch(x, y, optimizer=opt_a)
                trainer.train_batch(x, y)
        np.testing.assert_allclose(
            sequential.layers[0].weights, parallel.layers[0].weights, atol=1e-9
        )

    def test_loss_matches_sequential(self):
        x, y = make_data()
        net_a = FeedForwardNetwork([4, 8, 1], seed=4)
        net_b = FeedForwardNetwork([4, 8, 1], seed=4)
        expected = net_a.train_batch(x, y, optimizer=SGD(0.1))
        with DataParallelTrainer(net_b, 4, optimizer=SGD(0.1)) as trainer:
            actual = trainer.train_batch(x, y)
        assert actual == pytest.approx(expected)

    def test_pinball_loss_supported(self):
        x, y = make_data()
        net = FeedForwardNetwork([4, 8, 1], seed=5)
        with DataParallelTrainer(net, 2, loss=pinball(0.35)) as trainer:
            loss = trainer.train_batch(x, y)
        assert loss > 0.0


class TestTrainingProgress:
    def test_converges(self):
        x, y = make_data(256, seed=6)
        net = FeedForwardNetwork([4, 16, 1], seed=7)
        with DataParallelTrainer(net, 4, optimizer=Adam(0.01)) as trainer:
            first = trainer.train_batch(x, y)
            for _ in range(150):
                last = trainer.train_batch(x, y)
        assert last < first * 0.5


# Module-level so the process pool can pickle it.
def _train_tiny_net(seed: int) -> np.ndarray:
    net = FeedForwardNetwork([4, 6, 1], seed=seed)
    x, y = make_data(32, seed=seed)
    for _ in range(5):
        net.train_batch(x, y, optimizer=SGD(0.2), loss=MSE)
    return net.layers[0].weights


class TestParallelMap:
    def test_serial_when_workers_low(self):
        assert parallel_map(_train_tiny_net, [], workers=4) == []
        out = parallel_map(lambda v: v * 2, [1, 2, 3], workers=0)
        assert out == [2, 4, 6]

    def test_single_task_stays_serial(self):
        """One task never pays process spawn cost (also: lambdas are
        fine there because nothing is pickled)."""
        assert parallel_map(lambda v: v + 1, [41], workers=8) == [42]

    def test_preserves_task_order(self):
        out = parallel_map(_train_tiny_net, [3, 1, 2], workers=3)
        for got, seed in zip(out, (3, 1, 2)):
            np.testing.assert_array_equal(got, _train_tiny_net(seed))

    def test_process_results_bit_identical_to_serial(self):
        serial = parallel_map(_train_tiny_net, [0, 1, 2], workers=0)
        fanned = parallel_map(_train_tiny_net, [0, 1, 2], workers=2)
        for a, b in zip(serial, fanned):
            np.testing.assert_array_equal(a, b)


class TestValidation:
    def test_bad_workers(self):
        with pytest.raises(ValueError):
            DataParallelTrainer(FeedForwardNetwork([2, 2, 1]), 0)

    def test_row_mismatch(self):
        net = FeedForwardNetwork([2, 2, 1])
        with DataParallelTrainer(net, 2) as trainer:
            with pytest.raises(ValueError):
                trainer.train_batch(np.zeros((4, 2)), np.zeros((3, 1)))

    def test_more_workers_than_rows(self):
        net = FeedForwardNetwork([2, 2, 1], seed=8)
        with DataParallelTrainer(net, 8) as trainer:
            loss = trainer.train_batch(np.ones((3, 2)), np.zeros((3, 1)))
        assert np.isfinite(loss)

    def test_replicas_share_master_parameters(self):
        net = FeedForwardNetwork([2, 2, 1], seed=9)
        trainer = DataParallelTrainer(net, 2)
        assert trainer._replicas[0].network.layers[0].weights is net.layers[0].weights
        trainer.close()
