"""MinMaxScaler and weight initializers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn.initializers import get_initializer, he_normal, small_uniform, xavier_uniform
from repro.nn.scaling import MinMaxScaler


class TestMinMaxScaler:
    def test_range_with_margin(self):
        data = np.array([[0.0], [10.0], [5.0]])
        scaled = MinMaxScaler(margin=0.05).fit_transform(data)
        assert scaled.min() == pytest.approx(0.05)
        assert scaled.max() == pytest.approx(0.95)

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(50, 3)) * 10
        scaler = MinMaxScaler()
        back = scaler.inverse_transform(scaler.fit_transform(data))
        np.testing.assert_allclose(back, data, rtol=1e-9, atol=1e-9)

    def test_constant_column(self):
        data = np.full((10, 2), 3.0)
        scaled = MinMaxScaler(margin=0.1).fit_transform(data)
        assert np.all(np.isfinite(scaled))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((1, 1)))
        with pytest.raises(RuntimeError):
            MinMaxScaler().inverse_transform(np.zeros((1, 1)))

    def test_bad_margin(self):
        with pytest.raises(ValueError):
            MinMaxScaler(margin=0.5)
        with pytest.raises(ValueError):
            MinMaxScaler(margin=-0.1)

    def test_out_of_range_inputs_clipped(self):
        scaler = MinMaxScaler(margin=0.0).fit(np.array([[0.0], [1.0]]))
        scaled = scaler.transform(np.array([[5.0], [-5.0]]))
        assert scaled.max() <= 1.0 and scaled.min() >= 0.0

    def test_fitted_property(self):
        scaler = MinMaxScaler()
        assert not scaler.fitted
        scaler.fit(np.zeros((2, 1)))
        assert scaler.fitted

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=30))
    def test_transform_within_margin_band(self, values):
        data = np.asarray(values)[:, None]
        scaled = MinMaxScaler(margin=0.05).fit_transform(data)
        assert scaled.min() >= 0.05 - 1e-9
        assert scaled.max() <= 0.95 + 1e-9


class TestInitializers:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        for fn in (xavier_uniform, he_normal, small_uniform):
            assert fn(4, 3, rng).shape == (3, 4)

    def test_xavier_bounds(self):
        rng = np.random.default_rng(1)
        w = xavier_uniform(100, 100, rng)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= limit)

    def test_he_scale(self):
        rng = np.random.default_rng(2)
        w = he_normal(1000, 50, rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.15)

    def test_small_uniform_bounds(self):
        rng = np.random.default_rng(3)
        assert np.all(np.abs(small_uniform(10, 10, rng)) <= 0.1)

    def test_registry(self):
        assert get_initializer("xavier_uniform") is xavier_uniform
        with pytest.raises(KeyError):
            get_initializer("orthogonal")
