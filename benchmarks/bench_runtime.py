#!/usr/bin/env python
"""Benchmark the end-to-end experiment sweep and write BENCH_runtime.json.

Times the full sweep (all four schedulers on both cluster profiles)
twice — once through the pre-optimization legacy shim, once through the
current hot path — checks the two produce identical results, and writes
both wall-clock numbers plus the speedup to a JSON report.

``--cold`` instead benchmarks the cold path (fresh-process comparison
runs where the offline DNN/HMM fit dominates): no store vs cold store
vs warm store vs process-parallel fits vs warm-started refit, written
to BENCH_coldpath.json.

Usage::

    python benchmarks/bench_runtime.py            # full sweep
    python benchmarks/bench_runtime.py --quick    # CI smoke (2 counts)
    python benchmarks/bench_runtime.py --workers 4
    python benchmarks/bench_runtime.py --out /tmp/bench.json --no-assert
    python benchmarks/bench_runtime.py --cold     # predictor-store bench
    python benchmarks/bench_runtime.py --quick \\
        --regression-against benchmarks/BENCH_reference_quick.json

Exits non-zero if the optimized sweep's summaries deviate from the
baseline's, (unless ``--no-assert``) a speedup floor is missed, or the
machine-normalized ``--regression-against`` gate fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.experiments.bench import (  # noqa: E402
    check_regression,
    write_benchmark,
    write_cold_benchmark,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="abbreviated sweep (job counts 50 and 150) for CI smoke runs",
    )
    parser.add_argument(
        "--cold", action="store_true",
        help="benchmark the cold path instead: predictor store "
             "(cold/warm), process-parallel fits, warm-started refits; "
             "writes BENCH_coldpath.json",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the optimized sweep (0 = serial)",
    )
    parser.add_argument(
        "--jobs", type=int, default=30,
        help="job count of the --cold comparison scenario (default: 30, "
             "the compare --quick setting)",
    )
    parser.add_argument(
        "--out", default=None,
        help="report path (default: BENCH_runtime.json, or "
             "BENCH_coldpath.json with --cold, at the repo root)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail below this baseline/optimized ratio "
             "(default: 3.0 full sweep, 2.0 quick smoke)",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="record the numbers without enforcing the speedup floors",
    )
    parser.add_argument(
        "--regression-against", metavar="PATH", default=None,
        help="after the run, fail if the optimized time regressed more "
             "than 25%% against this committed report "
             "(machine-normalized via the live legacy baseline)",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        name = "BENCH_coldpath.json" if args.cold else "BENCH_runtime.json"
        args.out = os.path.join(REPO_ROOT, name)
    try:
        if args.cold:
            report = write_cold_benchmark(
                args.out,
                jobs=args.jobs,
                seed=args.seed,
                assert_floors=not args.no_assert,
            )
        else:
            report = write_benchmark(
                args.out,
                quick=args.quick,
                workers=args.workers,
                seed=args.seed,
                min_speedup=(
                    float("-inf") if args.no_assert else args.min_speedup
                ),
            )
    except AssertionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    if args.regression_against:
        if args.cold:
            print(
                "error: --regression-against applies to the sweep bench, "
                "not --cold",
                file=sys.stderr,
            )
            return 2
        with open(args.regression_against) as fh:
            reference = json.load(fh)
        try:
            verdict = check_regression(report, reference)
        except AssertionError as exc:
            print(f"FAILED: {exc}", file=sys.stderr)
            return 1
        print(
            f"regression gate OK: {verdict['measured_s']:.3f}s within the "
            f"normalized budget {verdict['allowed_s']:.3f}s "
            f"(machine scale {verdict['machine_scale']:.3f})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
