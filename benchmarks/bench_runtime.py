#!/usr/bin/env python
"""Benchmark the end-to-end experiment sweep and write BENCH_runtime.json.

Times the full sweep (all four schedulers on both cluster profiles)
twice — once through the pre-optimization legacy shim, once through the
current hot path — checks the two produce identical results, and writes
both wall-clock numbers plus the speedup to a JSON report.

Usage::

    python benchmarks/bench_runtime.py            # full sweep
    python benchmarks/bench_runtime.py --quick    # CI smoke (2 counts)
    python benchmarks/bench_runtime.py --workers 4
    python benchmarks/bench_runtime.py --out /tmp/bench.json --no-assert

Exits non-zero if the optimized sweep's summaries deviate from the
baseline's or (unless ``--no-assert``) the speedup is below 3x.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.experiments.bench import write_benchmark  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="abbreviated sweep (job counts 50 and 150) for CI smoke runs",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the optimized sweep (0 = serial)",
    )
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_runtime.json"),
        help="report path (default: BENCH_runtime.json at the repo root)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail below this baseline/optimized ratio "
             "(default: 3.0 full sweep, 2.0 quick smoke)",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="record the numbers without enforcing the speedup floor",
    )
    args = parser.parse_args(argv)
    try:
        report = write_benchmark(
            args.out,
            quick=args.quick,
            workers=args.workers,
            seed=args.seed,
            min_speedup=float("-inf") if args.no_assert else args.min_speedup,
        )
    except AssertionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
