#!/usr/bin/env python
"""Benchmark the end-to-end experiment sweep and write BENCH_runtime.json.

Times the full sweep (all four schedulers on both cluster profiles)
twice — once through the pre-optimization legacy shim, once through the
current hot path — checks the two produce identical results, and writes
both wall-clock numbers plus the speedup to a JSON report.

``--cold`` instead benchmarks the cold path (fresh-process comparison
runs where the offline DNN/HMM fit dominates): no store vs cold store
vs warm store vs process-parallel fits vs warm-started refit, written
to BENCH_coldpath.json.

``--scale`` instead benchmarks the hyperscale placement engine: a
sharded availability index over ``--scale-vms`` machines driven by a
streamed trace at each ``--scale-jobs`` count, written (jobs/sec curve
plus tracemalloc peaks) to BENCH_scale.json.  The last point must stay
within 2x of the first point's jobs/sec.

Usage::

    python benchmarks/bench_runtime.py            # full sweep
    python benchmarks/bench_runtime.py --quick    # CI smoke (2 counts)
    python benchmarks/bench_runtime.py --workers 4
    python benchmarks/bench_runtime.py --out /tmp/bench.json --no-assert
    python benchmarks/bench_runtime.py --cold     # predictor-store bench
    python benchmarks/bench_runtime.py --scale    # 10k VMs, 100k+1M jobs
    python benchmarks/bench_runtime.py --scale --shards 2 \\
        --scale-vms 200 --scale-jobs 5000         # CI smoke
    python benchmarks/bench_runtime.py --quick \\
        --regression-against benchmarks/BENCH_reference_quick.json

Exits non-zero if the optimized sweep's summaries deviate from the
baseline's, (unless ``--no-assert``) a speedup floor is missed, or the
machine-normalized ``--regression-against`` gate fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.experiments.bench import (  # noqa: E402
    SCALE_COUNTS,
    check_regression,
    write_benchmark,
    write_cold_benchmark,
    write_scale_benchmark,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="abbreviated sweep (job counts 50 and 150) for CI smoke runs",
    )
    parser.add_argument(
        "--cold", action="store_true",
        help="benchmark the cold path instead: predictor store "
             "(cold/warm), process-parallel fits, warm-started refits; "
             "writes BENCH_coldpath.json",
    )
    parser.add_argument(
        "--scale", action="store_true",
        help="benchmark the hyperscale placement engine instead: "
             "sharded index + streamed trace, jobs/sec per job count; "
             "writes BENCH_scale.json",
    )
    parser.add_argument(
        "--shards", type=int, default=8, metavar="N",
        help="availability-index shard count for --scale (default: 8)",
    )
    parser.add_argument(
        "--scale-vms", type=int, default=10_000, metavar="N",
        help="VM-pool size for --scale (default: 10000)",
    )
    parser.add_argument(
        "--scale-jobs", type=int, nargs="+", default=None, metavar="N",
        help="job counts of the --scale curve "
             f"(default: {' '.join(str(c) for c in SCALE_COUNTS)})",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=4096, metavar="N",
        help="streaming-trace chunk size for --scale (default: 4096)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the optimized sweep (0 = serial)",
    )
    parser.add_argument(
        "--jobs", type=int, default=30,
        help="job count of the --cold comparison scenario (default: 30, "
             "the compare --quick setting)",
    )
    parser.add_argument(
        "--out", default=None,
        help="report path (default: BENCH_runtime.json, or "
             "BENCH_coldpath.json with --cold, at the repo root)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail below this baseline/optimized ratio "
             "(default: 3.0 full sweep, 2.0 quick smoke)",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="record the numbers without enforcing the speedup floors",
    )
    parser.add_argument(
        "--regression-against", metavar="PATH", default=None,
        help="after the run, fail if the optimized time regressed more "
             "than 25%% against this committed report "
             "(machine-normalized via the live legacy baseline)",
    )
    args = parser.parse_args(argv)
    if args.cold and args.scale:
        print("error: --cold and --scale are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.out is None:
        if args.scale:
            name = "BENCH_scale.json"
        elif args.cold:
            name = "BENCH_coldpath.json"
        else:
            name = "BENCH_runtime.json"
        args.out = os.path.join(REPO_ROOT, name)
    try:
        if args.scale:
            report = write_scale_benchmark(
                args.out,
                n_vms=args.scale_vms,
                shards=args.shards,
                chunk_size=args.chunk_size,
                job_counts=tuple(args.scale_jobs or SCALE_COUNTS),
                seed=args.seed,
                assert_floors=not args.no_assert,
            )
        elif args.cold:
            report = write_cold_benchmark(
                args.out,
                jobs=args.jobs,
                seed=args.seed,
                assert_floors=not args.no_assert,
            )
        else:
            report = write_benchmark(
                args.out,
                quick=args.quick,
                workers=args.workers,
                seed=args.seed,
                min_speedup=(
                    float("-inf") if args.no_assert else args.min_speedup
                ),
            )
    except AssertionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    if args.regression_against:
        if args.cold or args.scale:
            print(
                "error: --regression-against applies to the sweep bench, "
                "not --cold/--scale",
                file=sys.stderr,
            )
            return 2
        with open(args.regression_against) as fh:
            reference = json.load(fh)
        try:
            verdict = check_regression(report, reference)
        except AssertionError as exc:
            print(f"FAILED: {exc}", file=sys.stderr)
            return 1
        print(
            f"regression gate OK: {verdict['measured_s']:.3f}s within the "
            f"normalized budget {verdict['allowed_s']:.3f}s "
            f"(machine scale {verdict['machine_scale']:.3f})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
