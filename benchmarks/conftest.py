"""Shared state for the figure benchmarks.

The offline DNN/HMM fit is shared session-wide through one
:class:`PredictorCache`; each figure bench then reruns only its
simulations.  Benches print the same rows/series the paper reports and
assert the *shape* criteria of DESIGN.md §4.
"""

import pytest

from repro.experiments.runner import PredictorCache


@pytest.fixture(scope="session")
def cache() -> PredictorCache:
    return PredictorCache()


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark reproducing a paper figure"
    )
