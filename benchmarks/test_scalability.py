"""Simulator scalability: wall time vs job count (engineering bench).

Not a paper figure — this tracks the reproduction's own performance so
regressions in the hot paths (VM feasibility scans, forecast refreshes,
slot execution) are visible.  Uses the real pytest-benchmark timing
machinery (multiple rounds) on a mid-sized CORP run.
"""

import pytest

from repro.cluster.simulator import ClusterSimulator
from repro.core.config import CorpConfig
from repro.core.corp import CorpScheduler
from repro.experiments.scenarios import cluster_scenario


@pytest.mark.figure("scalability")
def test_simulator_throughput_200_jobs(benchmark, cache):
    scenario = cluster_scenario(200, seed=7)
    history = scenario.history_trace()
    trace = scenario.evaluation_trace()
    config = CorpConfig(seed=7)
    predictor = cache.get(config, history)  # offline fit excluded from timing

    def run():
        scheduler = CorpScheduler(config, predictor=predictor)
        sim = ClusterSimulator(scenario.profile, scheduler, scenario.sim_config)
        return sim.run(trace, history=history)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.all_done
    # A 200-job run must stay comfortably interactive.
    assert benchmark.stats["mean"] < 10.0
