"""Table II — parameter settings, regenerated from the live defaults.

Checks that the reproduction's defaults sit inside the ranges the paper
reports (DNN shape h=4/N_n=50, H=3 HMM states, P_th=0.95, l=3, servers
30-50, VMs 100-400, job sweep 50-300).
"""

import pytest

from repro.experiments.table2 import render_table2, table2_rows


@pytest.mark.figure("table2")
def test_table2_parameters(benchmark):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    print()
    print(render_table2())
    by_param = {r[0]: r for r in rows}

    assert by_param["h"][3] == "4"
    assert by_param["N_n"][3] == "50"
    assert by_param["H"][3] == "3"
    assert by_param["l"][3] == "3"
    assert by_param["P_th"][3] == "0.95"
    assert 30 <= int(by_param["N_p"][3]) <= 50
    assert int(by_param["N_v"][3]) <= 400
    assert by_param["|J|"][3] == "50-300"
