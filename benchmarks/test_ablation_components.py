"""Ablations A1-A6 — which of CORP's mechanisms carry the results?

Headline findings of this reproduction (details in EXPERIMENTS.md):

* The confidence-interval lower bound (A3) is load-bearing: without it
  the Eq. 21 gate never certifies the forecasts, reuse stops, and both
  utilization and SLO compliance collapse to baseline levels.
* The HMM peak/valley correction (A1) is near-neutral here: the DNN's
  input window already encodes the regime information the HMM decodes,
  so the correction rarely fires at the 1-minute horizon.
* Packing (A2) and most-matched placement (A4) trade a little
  utilization for SLO safety in this workload regime; the conservative
  window-min target (A6) trades riders for guaranteed availability.
"""

import pytest

from repro.experiments.ablations import ABLATIONS, run_ablations
from repro.experiments.report import format_table


@pytest.mark.figure("ablations")
def test_ablation_components(benchmark, cache):
    results = benchmark.pedantic(
        lambda: run_ablations(cache=cache), rounds=1, iterations=1
    )
    print()
    rows = [
        [
            name,
            s["overall_utilization"],
            s["slo_violation_rate"],
            s.get("prediction_error_rate", 0.0),
            int(s["riders"]),
        ]
        for name, s in results.items()
    ]
    print(
        format_table(
            ["variant", "utilization", "slo_rate", "err_rate", "riders"],
            rows,
            title="CORP ablations (300 jobs, cluster profile)",
        )
    )

    full = results["full"]
    assert set(results) == set(ABLATIONS)

    # A3 (no confidence interval): the gate never certifies the raw
    # forecasts — reuse stops and every headline metric degrades.
    no_ci = results["A3-no-ci"]
    assert no_ci["riders"] == 0
    assert no_ci["overall_utilization"] < full["overall_utilization"]
    assert no_ci["slo_violation_rate"] >= full["slo_violation_rate"]
    assert no_ci["prediction_error_rate"] > full["prediction_error_rate"]

    # A6 (window-min target): strictly more conservative sizing admits
    # fewer riders than the window-mean default.
    assert results["A6-window-min-target"]["riders"] < full["riders"]

    # A4 (random instead of most-matched VMs): placement safety erodes —
    # the violation rate may not drop below the full configuration's.
    assert (
        results["A4-random-vm"]["slo_violation_rate"]
        >= full["slo_violation_rate"] - 1e-9
    )

    # A1 (no HMM correction): near-neutral in this reproduction — the
    # DNN input window subsumes the regime signal (see module docstring).
    a1 = results["A1-no-hmm"]
    assert abs(
        a1["overall_utilization"] - full["overall_utilization"]
    ) < 0.05

    # Every variant keeps the cluster functional.
    for name, s in results.items():
        assert 0.0 < s["overall_utilization"] <= 1.0, name
        assert 0.0 <= s["slo_violation_rate"] <= 1.0, name
