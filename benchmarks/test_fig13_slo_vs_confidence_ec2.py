"""Fig. 13 — SLO violation rate vs confidence level (Amazon EC2).

Paper: "Figure 13 mirrors Figure 9" — violations fall as the confidence
level rises and CORP < RCCR < CloudScale < DRA throughout.
"""

import pytest

from repro.experiments.figures import fig09_slo_vs_confidence


@pytest.mark.figure("fig13")
def test_fig13_slo_vs_confidence_ec2(benchmark, cache):
    result = benchmark.pedantic(
        lambda: fig09_slo_vs_confidence(testbed="ec2", cache=cache),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    series = result.series
    means = {m: sum(v) / len(v) for m, v in series.items()}
    assert means["CORP"] == min(means.values())
    assert means["DRA"] >= means["RCCR"]
    for method in ("CloudScale", "DRA"):
        assert series[method][-1] <= series[method][0] + 1e-9, method
