"""Fig. 8 — overall utilization vs SLO violation rate (real cluster).

The paper varies ``P_th`` (and each baseline's analogous conservatism
knob) to trade SLO violations for utilization.  Paper shape: utilization
increases with the tolerated violation rate, and CORP's curve dominates.
"""

import pytest

from repro.experiments.figures import fig08_utilization_vs_slo
from repro.experiments.report import format_table


@pytest.mark.figure("fig08")
def test_fig08_util_vs_slo_cluster(benchmark, cache):
    curves = benchmark.pedantic(
        lambda: fig08_utilization_vs_slo(testbed="cluster", cache=cache),
        rounds=1,
        iterations=1,
    )
    print()
    rows = []
    for method, points in curves.items():
        for slo, util in points:
            rows.append([method, slo, util])
    print(
        format_table(
            ["method", "slo_violation_rate", "overall_utilization"],
            rows,
            title="Fig. 8 — utilization vs SLO violation rate (cluster)",
        )
    )

    # CORP's most aggressive point must beat every baseline's most
    # aggressive point on utilization.
    best_util = {m: max(u for _, u in pts) for m, pts in curves.items()}
    assert best_util["CORP"] == max(best_util.values())

    # Aggressiveness raises utilization for CORP (first level is the
    # most conservative, last the most aggressive).
    corp = curves["CORP"]
    assert corp[-1][1] >= corp[0][1] - 1e-9

    # For the cap-based baselines, aggressiveness raises the violation
    # rate (the x-axis of the paper's figure moves right).
    for method in ("CloudScale", "DRA"):
        pts = curves[method]
        assert pts[-1][0] >= pts[0][0] - 1e-9, method
