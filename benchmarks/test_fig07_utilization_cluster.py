"""Fig. 7 — per-resource utilization vs number of jobs (real cluster).

Paper shape: utilization CORP > RCCR > CloudScale > DRA, rising with the
job count; CPU/MEM utilization above storage (storage is not the
bottleneck and is over-reserved).
"""

import pytest

from repro.experiments.figures import fig07_utilization


@pytest.mark.figure("fig07")
def test_fig07_utilization_cluster(benchmark, cache):
    panels = benchmark.pedantic(
        lambda: fig07_utilization(testbed="cluster", cache=cache),
        rounds=1,
        iterations=1,
    )
    print()
    for key in ("cpu", "mem", "storage", "overall"):
        print(panels[key].to_table())
        print()

    overall = panels["overall"].series
    means = {m: sum(v) / len(v) for m, v in overall.items()}
    # Headline ordering (method means over the sweep).
    assert means["CORP"] == max(means.values())
    assert means["DRA"] <= means["RCCR"] + 1e-9
    assert means["CloudScale"] <= means["RCCR"] + 1e-9
    # CPU/MEM utilization above storage for every method (Fig. 11's note
    # applies to the cluster panels too).
    for method in means:
        cpu = sum(panels["cpu"].series[method]) / len(panels["cpu"].series[method])
        sto = sum(panels["storage"].series[method]) / len(
            panels["storage"].series[method]
        )
        assert cpu > sto, method
    # Utilization rises with density: the 300-job point beats the
    # 50-job point for the reuse-driven methods.
    assert overall["CORP"][-1] >= overall["CORP"][0] * 0.6
