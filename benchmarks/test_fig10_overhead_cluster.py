"""Fig. 10 — allocation latency for 300 jobs (real cluster).

Paper shape: CORP's latency is slightly above the others (the DNN+HMM
pipeline and its per-job telemetry cost accuracy-for-overhead), DRA's is
lowest.  In this reproduction CORP and CloudScale are within measurement
noise of each other on the cluster profile (CloudScale's per-window
PRESS refits are comparably heavy); see EXPERIMENTS.md.
"""

import pytest

from repro.experiments.figures import fig10_overhead
from repro.experiments.report import format_table


@pytest.mark.figure("fig10")
def test_fig10_overhead_cluster(benchmark, cache):
    latencies = benchmark.pedantic(
        lambda: fig10_overhead(testbed="cluster", cache=cache),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["method", "allocation_latency_s"],
            [[m, v] for m, v in latencies.items()],
            title="Fig. 10 — allocation latency, 300 jobs (cluster)",
        )
    )
    # CORP at or near the top of the overhead ranking (within 15% of the
    # maximum — wall-clock measurements carry noise).
    assert latencies["CORP"] >= 0.85 * max(latencies.values())
    # DRA (no prediction models beyond running averages) cheapest.
    assert latencies["DRA"] == min(latencies.values())
    # Everything in a plausible sub-minute range for a 300-job run.
    assert all(0.0 < v < 60.0 for v in latencies.values())
