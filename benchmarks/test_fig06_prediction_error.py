"""Fig. 6 — prediction error rate vs number of jobs (real cluster).

Paper shape: error rate CORP < RCCR < CloudScale < DRA at every job
count, with CORP's deep-learning + HMM + confidence pipeline delivering
the most reliably conservative unused-resource forecasts.
"""

import pytest

from repro.experiments.figures import fig06_prediction_error
from repro.experiments.runner import METHOD_ORDER


@pytest.mark.figure("fig06")
def test_fig06_prediction_error(benchmark, cache):
    result = benchmark.pedantic(
        lambda: fig06_prediction_error(cache=cache), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    # Shape: ascending error rate in METHOD_ORDER at most sweep points.
    assert result.shape_holds(min_points_fraction=0.6), result.series
    # CORP strictly best on average.
    means = {m: sum(v) / len(v) for m, v in result.series.items()}
    assert means["CORP"] == min(means.values())
    assert means["DRA"] == max(means.values())
