"""Fig. 11 — per-resource utilization vs number of jobs (Amazon EC2).

Paper shape: same ordering as Fig. 7 (CORP > RCCR > CloudScale > DRA),
utilization rising with the job count, and "the utilizations of CPU and
MEM are higher than storage" (Section IV-B).
"""

import pytest

from repro.experiments.figures import fig07_utilization


@pytest.mark.figure("fig11")
def test_fig11_utilization_ec2(benchmark, cache):
    panels = benchmark.pedantic(
        lambda: fig07_utilization(testbed="ec2", cache=cache),
        rounds=1,
        iterations=1,
    )
    print()
    for key in ("cpu", "mem", "storage", "overall"):
        print(panels[key].to_table())
        print()

    overall = panels["overall"].series
    means = {m: sum(v) / len(v) for m, v in overall.items()}
    assert means["CORP"] == max(means.values())
    assert means["DRA"] <= means["RCCR"] + 1e-9
    # Section IV-B: CPU and MEM utilization above storage utilization.
    for method in means:
        cpu = sum(panels["cpu"].series[method]) / len(panels["cpu"].series[method])
        mem = sum(panels["mem"].series[method]) / len(panels["mem"].series[method])
        sto = sum(panels["storage"].series[method]) / len(
            panels["storage"].series[method]
        )
        assert cpu > sto and mem > sto, method
    # Utilization increases with job count for CORP (low → high density).
    assert overall["CORP"][-1] > overall["CORP"][0] * 0.6
