"""Fig. 14 — allocation latency for 300 jobs (Amazon EC2).

Paper shapes: (a) CORP's latency is the highest within EC2 (DNN + HMM +
per-job telemetry); (b) every method's EC2 latency exceeds its cluster
latency ("the communication overhead in Amazon EC2 is relatively higher
than that in the cluster").
"""

import pytest

from repro.experiments.figures import fig10_overhead
from repro.experiments.report import format_table


@pytest.mark.figure("fig14")
def test_fig14_overhead_ec2(benchmark, cache):
    def run_both():
        return (
            fig10_overhead(testbed="ec2", cache=cache),
            fig10_overhead(testbed="cluster", cache=cache),
        )

    ec2, cluster = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["method", "ec2_latency_s", "cluster_latency_s"],
            [[m, ec2[m], cluster[m]] for m in ec2],
            title="Fig. 14 — allocation latency, 300 jobs (EC2 vs cluster)",
        )
    )
    # CORP highest within EC2.
    assert ec2["CORP"] == max(ec2.values())
    # EC2 latency above the cluster latency for every method.
    for method in ec2:
        assert ec2[method] > cluster[method], method
