"""Fig. 9 — SLO violation rate vs confidence level (real cluster).

Paper shape: the violation rate decreases as the confidence level η
rises, and CORP < RCCR < CloudScale < DRA throughout.
"""

import pytest

from repro.experiments.figures import fig09_slo_vs_confidence


@pytest.mark.figure("fig09")
def test_fig09_slo_vs_confidence_cluster(benchmark, cache):
    result = benchmark.pedantic(
        lambda: fig09_slo_vs_confidence(testbed="cluster", cache=cache),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())

    series = result.series
    means = {m: sum(v) / len(v) for m, v in series.items()}
    # CORP lowest violation rate on average; DRA highest among the
    # baselines' means.
    assert means["CORP"] == min(means.values())
    assert means["DRA"] >= means["RCCR"]
    assert means["CloudScale"] >= means["RCCR"]

    # Higher confidence must not increase violations for the CI-driven
    # methods (weakly decreasing from η=0.5 to η=0.9).
    for method in ("CloudScale", "DRA"):
        assert series[method][-1] <= series[method][0] + 1e-9, method
