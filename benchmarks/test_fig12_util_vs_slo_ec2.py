"""Fig. 12 — overall utilization vs SLO violation rate (Amazon EC2).

Paper: "Figure 12 mirrors Figure 8 due to the same reasons" — the
utilization/violation tradeoff holds on EC2, with CORP dominant.
"""

import pytest

from repro.experiments.figures import fig08_utilization_vs_slo
from repro.experiments.report import format_table


@pytest.mark.figure("fig12")
def test_fig12_util_vs_slo_ec2(benchmark, cache):
    curves = benchmark.pedantic(
        lambda: fig08_utilization_vs_slo(testbed="ec2", cache=cache),
        rounds=1,
        iterations=1,
    )
    print()
    rows = []
    for method, points in curves.items():
        for slo, util in points:
            rows.append([method, slo, util])
    print(
        format_table(
            ["method", "slo_violation_rate", "overall_utilization"],
            rows,
            title="Fig. 12 — utilization vs SLO violation rate (EC2)",
        )
    )
    best_util = {m: max(u for _, u in pts) for m, pts in curves.items()}
    assert best_util["CORP"] == max(best_util.values())
    corp = curves["CORP"]
    assert corp[-1][1] >= corp[0][1] - 1e-9
