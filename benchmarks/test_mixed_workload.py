"""Mixed short + long-lived workload (extension of Section IV's setup).

The paper removes long-lived jobs from the trace but claims CORP "can
also achieve good results using the original Google trace because it
can handle both long-lived and short-lived jobs".  This bench keeps the
long jobs in and checks that claim — and, pleasingly, also confirms the
paper's *premise* in reverse: with patterned long jobs in the mix,
RCCR's time-series forecasting becomes competitive on prediction
accuracy (patterns are exactly what ETS needs), while CORP still wins
where it matters (utilization and SLO compliance).
"""

import pytest

from repro.experiments.mixed import run_mixed_workload
from repro.experiments.report import format_table


@pytest.mark.figure("mixed")
def test_mixed_workload(benchmark, cache):
    results = benchmark.pedantic(
        lambda: run_mixed_workload(cache=cache), rounds=1, iterations=1
    )
    print()
    rows = [
        [
            m,
            s["overall_utilization"],
            s["slo_violation_rate"],
            s.get("prediction_error_rate", 0.0),
            int(s["riders"]),
            int(s["n_long"]),
        ]
        for m, s in results.items()
    ]
    print(
        format_table(
            ["method", "utilization", "slo_rate", "err_rate", "riders", "long_jobs"],
            rows,
            title="Mixed workload: 70% short-lived + 30% long-lived jobs",
        )
    )

    # Long jobs really participated.
    assert all(s["n_long"] > 0 for s in results.values())

    # The paper's claim: CORP's headline advantages survive the mix.
    utils = {m: s["overall_utilization"] for m, s in results.items()}
    slos = {m: s["slo_violation_rate"] for m, s in results.items()}
    assert utils["CORP"] == max(utils.values())
    assert slos["CORP"] == min(slos.values())
    assert results["CORP"]["riders"] > results["RCCR"]["riders"]

    # CORP's predictions stay far ahead of the no-pattern-handling
    # baselines even with patterned jobs present.
    errs = {m: s["prediction_error_rate"] for m, s in results.items()}
    assert errs["CORP"] < errs["CloudScale"]
    assert errs["CORP"] < errs["DRA"]
