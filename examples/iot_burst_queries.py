"""The paper's motivating workload: bursts of short-lived IoT queries.

Section I motivates CORP with "short-lived queries in the applications
of Internet-of-Things and online data processing [that] typically run
for seconds or minutes".  This example synthesizes exactly that: a
steady base of service-style jobs plus a sudden wave of sub-minute
query jobs, and shows how CORP absorbs the wave inside the *unused*
allocations of the resident jobs — where a reservation-only scheduler
has to queue it.

Run with::

    python examples/iot_burst_queries.py
"""

import dataclasses

import numpy as np

from repro import (
    ClusterProfile,
    ClusterSimulator,
    CorpConfig,
    CorpScheduler,
    GoogleTraceGenerator,
    SimulationConfig,
    Trace,
    TraceConfig,
    resample_trace,
)
from repro.baselines import CloudScaleScheduler
from repro.experiments.report import format_table


def make_burst_workload(seed: int = 3) -> Trace:
    """A resident batch + a dense wave of 15-60 s query jobs."""
    base_cfg = TraceConfig(
        n_jobs=60,
        arrival_span_s=60.0,
        short_fraction=1.0,
        sample_period_s=10.0,
        burst_prob=0.03,
        burst_mean_len=8.0,
        valley_prob=0.03,
        valley_mean_len=8.0,
        seed=seed,
    )
    residents = GoogleTraceGenerator(base_cfg).generate()

    # The query wave: many tiny, very short jobs hitting within 30 s,
    # two minutes into the run.
    wave_cfg = dataclasses.replace(
        base_cfg,
        n_jobs=80,
        arrival_span_s=30.0,
        short_duration_mu=3.4,   # median ~30 s
        short_duration_sigma=0.4,
        min_duration_s=15.0,
        class_names=("balanced",),
        class_probs=(1.0,),
        seed=seed + 1,
    )
    wave = GoogleTraceGenerator(wave_cfg).generate()
    shifted = [
        dataclasses.replace(r, task_id=1000 + r.task_id,
                            submit_time_s=120.0 + r.submit_time_s)
        for r in wave
    ]
    return resample_trace(Trace(list(residents) + shifted), 10.0, seed=seed)


def history_workload(seed: int = 4) -> Trace:
    cfg = TraceConfig(
        n_jobs=300,
        arrival_rate_per_s=0.2,
        short_fraction=1.0,
        sample_period_s=10.0,
        burst_prob=0.03,
        burst_mean_len=8.0,
        valley_prob=0.03,
        valley_mean_len=8.0,
        seed=seed,
    )
    return resample_trace(GoogleTraceGenerator(cfg).generate(), 10.0, seed=seed)


def main() -> None:
    trace = make_burst_workload()
    history = history_workload()
    profile = ClusterProfile.palmetto(n_pms=20)

    rows = []
    for scheduler in (CorpScheduler(CorpConfig()), CloudScaleScheduler()):
        sim = ClusterSimulator(profile, scheduler, SimulationConfig())
        result = sim.run(trace, history=history)
        wave_jobs = [j for j in result.jobs if j.job_id >= 1000]
        waits = [
            j.start_slot - j.submit_slot
            for j in wave_jobs
            if j.start_slot is not None
        ]
        riders = sum(1 for j in wave_jobs if j.opportunistic)
        rows.append(
            [
                scheduler.name,
                result.summary()["overall_utilization"],
                result.summary()["slo_violation_rate"],
                riders,
                float(np.mean(waits)) if waits else float("nan"),
            ]
        )

    print(
        format_table(
            ["scheduler", "utilization", "slo_rate", "wave_riders", "wave_wait_slots"],
            rows,
            title="IoT query wave: 80 sub-minute jobs landing within 30 s",
        )
    )
    print()
    print("CORP rides the wave on predicted-unused allocations of the")
    print("resident jobs (wave_riders > 0); the reservation-based scheme")
    print("must carve fresh reservations for every query.")


if __name__ == "__main__":
    main()
