"""Extending the framework: write your own provisioning scheduler.

:class:`~repro.core.provisioning.ProvisioningSchedulerBase` factors the
per-window rhythm (forecast → adjust → place → score) out of CORP and
the baselines; a new scheme only supplies its forecast and policies.

The example implements *OracleScheduler* — a cheating scheduler that
reads each job's true future demand from the trace — and uses it as an
upper bound to show how much headroom CORP leaves on the table.

Run with::

    python examples/custom_scheduler.py
"""

import numpy as np

from repro import ClusterSimulator, CorpScheduler, cluster_scenario
from repro.cluster.machine import VirtualMachine
from repro.cluster.resources import NUM_RESOURCES, ResourceVector
from repro.core.packing import JobEntity
from repro.core.provisioning import ProvisioningSchedulerBase
from repro.core.vm_selection import select_most_matched
from repro.experiments.report import format_table
from repro.experiments.runner import PredictorCache
from repro.core.config import CorpConfig


class OracleScheduler(ProvisioningSchedulerBase):
    """Forecasts each VM's unused resources from the *true* future demand.

    Real systems cannot do this — the oracle bounds what any prediction
    pipeline could achieve on this workload.  Its placement policies
    mirror CORP's (most-matched VM, expected-demand rider admission) so
    the comparison isolates prediction quality.
    """

    name = "Oracle"
    supports_opportunistic = True

    def predict_vm_unused(self, vm: VirtualMachine) -> np.ndarray:
        total = np.zeros(NUM_RESOURCES)
        horizon = self.window_slots
        for placement in vm.placements:
            if placement.opportunistic:
                continue
            job = placement.job
            record = job.record
            # True demand over the coming window, read straight from the
            # trace (starting at the job's current progress position).
            start = min(int(job.progress), record.n_samples - 1)
            window = record.usage[start : start + horizon]
            future_demand = window.mean(axis=0)
            total += np.maximum(job.requested.as_array() - future_demand, 0.0)
        return total

    def opportunistic_allowed(self) -> bool:
        return True  # an oracle needs no certification gate

    def opportunistic_admission_size(self, entity: JobEntity) -> ResourceVector:
        # True mean demand of each member job — perfect rider sizing.
        total = np.zeros(NUM_RESOURCES)
        for job in entity.jobs:
            total += job.record.usage.mean(axis=0)
        return ResourceVector(np.minimum(total, entity.demand.as_array()))

    def choose_vm(self, demand, candidates):
        return select_most_matched(
            demand, candidates, reference=self.sim.max_vm_capacity()
        )


def main() -> None:
    scenario = cluster_scenario(n_jobs=300, seed=7)
    history = scenario.history_trace()
    trace = scenario.evaluation_trace()
    cache = PredictorCache()

    rows = []
    config = CorpConfig(seed=7)
    for scheduler in (
        CorpScheduler(config, predictor=cache.get(config, history)),
        OracleScheduler(),
    ):
        sim = ClusterSimulator(scenario.profile, scheduler, scenario.sim_config)
        result = sim.run(trace, history=history)
        summary = result.summary()
        riders = sum(1 for j in result.jobs if j.opportunistic)
        rows.append(
            [
                scheduler.name,
                summary["overall_utilization"],
                summary["slo_violation_rate"],
                riders,
            ]
        )

    print(
        format_table(
            ["scheduler", "utilization", "slo_rate", "riders"],
            rows,
            title="CORP vs a future-knowing oracle (300 jobs)",
        )
    )
    print()
    print("The oracle bounds what better *prediction* could add on top of")
    print("CORP's placement policies on this workload.")


if __name__ == "__main__":
    main()
