"""Pick an operating point on the utilization/SLO tradeoff (Fig. 8 in use).

A cloud operator chooses how aggressively to reallocate unused capacity
by setting the preemption gate's probability threshold ``P_th`` and the
confidence level ``η`` (Table II).  This example sweeps CORP's
conservatism and prints the resulting (SLO violation, utilization)
frontier so an operator can pick the point matching their SLO budget.

Run with::

    python examples/capacity_planning.py
"""

import dataclasses

from repro import ClusterSimulator, CorpConfig, CorpScheduler, cluster_scenario
from repro.experiments.report import format_table
from repro.experiments.runner import PredictorCache


def main() -> None:
    scenario = cluster_scenario(n_jobs=300, seed=7)
    history = scenario.history_trace()
    trace = scenario.evaluation_trace()
    cache = PredictorCache()

    rows = []
    # Sweep from very conservative to very aggressive.
    for label, p_th, eta in [
        ("very conservative", 0.99, 0.90),
        ("conservative", 0.95, 0.90),
        ("balanced", 0.85, 0.80),
        ("aggressive", 0.70, 0.65),
        ("very aggressive", 0.50, 0.50),
    ]:
        config = dataclasses.replace(
            CorpConfig(seed=7),
            probability_threshold=p_th,
            confidence_level=eta,
        )
        scheduler = CorpScheduler(config, predictor=cache.get(config, history))
        sim = ClusterSimulator(scenario.profile, scheduler, scenario.sim_config)
        result = sim.run(trace, history=history)
        summary = result.summary()
        riders = sum(1 for j in result.jobs if j.opportunistic)
        rows.append(
            [
                label,
                p_th,
                eta,
                summary["slo_violation_rate"],
                summary["overall_utilization"],
                riders,
            ]
        )

    print(
        format_table(
            ["operating point", "P_th", "eta", "slo_rate", "utilization", "riders"],
            rows,
            title="CORP capacity-planning frontier (300 jobs, cluster profile)",
        )
    )
    print()
    print("Read the frontier top-down: each step trades SLO risk for")
    print("utilization — the choice the paper's Fig. 8 curves visualize.")


if __name__ == "__main__":
    main()
