"""Quickstart: run CORP on a simulated cluster and read the results.

This is the smallest end-to-end use of the public API:

1. build a scenario (cluster profile + synthetic Google-like workload),
2. run the CORP scheduler over it,
3. print the headline metrics of the paper's evaluation.

Run with::

    python examples/quickstart.py
"""

from repro import ClusterSimulator, CorpScheduler, cluster_scenario


def main() -> None:
    # A modest scenario: 100 short-lived jobs on the cluster profile
    # (Section IV-A's testbed, scaled per Table II).
    scenario = cluster_scenario(n_jobs=100, seed=7)

    scheduler = CorpScheduler()
    simulator = ClusterSimulator(scenario.profile, scheduler, scenario.sim_config)

    # The history trace plays the role of "the historical resource usage
    # data from the Google trace": CORP's DNN and HMM are fitted on it
    # before the evaluation workload replays.
    result = simulator.run(
        scenario.evaluation_trace(), history=scenario.history_trace()
    )

    summary = result.summary()
    riders = sum(1 for job in result.jobs if job.opportunistic)
    print(f"jobs completed        : {result.n_completed}/{result.n_submitted}")
    print(f"opportunistic riders  : {riders}")
    print(f"overall utilization   : {summary['overall_utilization']:.3f}")
    print(f"overall wastage       : {summary['overall_wastage']:.3f}")
    print(f"SLO violation rate    : {summary['slo_violation_rate']:.3f}")
    print(f"prediction error rate : {summary['prediction_error_rate']:.3f}")
    print(f"allocation latency    : {summary['allocation_latency_s']:.2f} s")


if __name__ == "__main__":
    main()
