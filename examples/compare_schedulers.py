"""Compare CORP against RCCR, CloudScale and DRA on one shared workload.

Reproduces a single column of the paper's evaluation: every scheme
replays the *same* trace (as Section IV does), and the table reports the
metrics the figures plot — utilization, SLO violation rate, prediction
error rate and allocation latency.

Run with::

    python examples/compare_schedulers.py [n_jobs]
"""

import sys

from repro import cluster_scenario, run_methods
from repro.experiments.report import format_table


def main(n_jobs: int = 200) -> None:
    scenario = cluster_scenario(n_jobs=n_jobs, seed=7)
    print(f"running all four methods on {n_jobs} jobs "
          f"({scenario.profile.n_vms} VMs) ...")
    results = run_methods(scenario=scenario)

    rows = []
    for method, result in results.items():
        summary = result.summary()
        riders = sum(1 for job in result.jobs if job.opportunistic)
        rows.append(
            [
                method,
                summary["overall_utilization"],
                summary["slo_violation_rate"],
                summary.get("prediction_error_rate", float("nan")),
                riders,
                summary["allocation_latency_s"],
            ]
        )
    print()
    print(
        format_table(
            ["method", "utilization", "slo_rate", "err_rate", "riders", "latency_s"],
            rows,
            title=f"Scheduler comparison — {n_jobs} short-lived jobs",
        )
    )
    print()
    print("Expected shape (paper Figs. 6-10): CORP highest utilization,")
    print("lowest SLO violation and prediction error; latency near the top.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
