"""Event-driven scheduler service ("CORP-as-a-daemon").

Two layers over the same machinery:

* :mod:`repro.service.kernel` — the event-driven scheduler kernel: an
  explicit event queue (job-submitted, slot-tick, fault-due,
  vm-restored) consumed one event at a time by
  :meth:`~repro.service.kernel.SchedulerKernel.advance`.  The batch
  :meth:`repro.cluster.simulator.ClusterSimulator.run` is a thin driver
  over this kernel, so batch summaries (and the golden traces) are
  byte-identical to the pre-kernel slot loop.
* :mod:`repro.service.daemon` — a long-lived asyncio allocation service
  over a streaming kernel: jobs are submitted while the system runs,
  placement decisions stream out to subscribers, and ``drain()`` closes
  the lifecycle with a full :class:`~repro.cluster.simulator.SimulationResult`.
  The PR-5 predictor store/cache is the shared warm state across
  service instances.

The kernel also supports :meth:`~repro.service.kernel.SchedulerKernel.snapshot`
/ :meth:`~repro.service.kernel.KernelSnapshot.restore`, which is what
the standby-takeover fault drill (:mod:`repro.faults.takeover`) builds
on.
"""

from .daemon import PlacementUpdate, SchedulerService, open_service
from .kernel import EventKind, KernelEvent, KernelSnapshot, SchedulerKernel

__all__ = [
    "EventKind",
    "KernelEvent",
    "KernelSnapshot",
    "SchedulerKernel",
    "PlacementUpdate",
    "SchedulerService",
    "open_service",
]
