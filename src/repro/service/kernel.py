"""The event-driven scheduler kernel.

The batch slot loop of :meth:`repro.cluster.simulator.ClusterSimulator.run`
is rebuilt here as an explicit event queue consumed one event at a time:

``vm-restored``
    Fault-layer recovery phase at the top of a slot: expired VM
    downtimes and capacity revocations end, predictor outages clear,
    backed-off jobs whose retry delay elapsed re-enter the queue.
``fault-due``
    The fault plan's events due this slot are applied (crashes,
    revocations, outage starts, targeted job failures) and the give-up
    deadline is swept.
``job-submitted``
    One job enters the system: admission control, then the pending
    queue.  Batch runs preload one such event per trace record; the
    asyncio daemon injects them live while the kernel runs.
``slot-tick``
    The slot pipeline: scheduling (the timed decision path), VM slot
    execution, completions, scheduler feedback, invariant checks and
    observability.  A tick re-arms the next slot while work remains.

Within a slot, events process in exactly that order — the same order
the batch loop hard-coded — so a batch driver over the kernel
reproduces the old loop byte-for-byte (the golden-trace suite pins
this).  :meth:`SchedulerKernel.advance` consumes a single event and
returns it, which is what the daemon, the standby-takeover drill and
the tests step on.

Termination mirrors the old loop's top-of-slot test: a slot is armed
while arrivals remain ahead of it or (with ``drain``) work is still in
flight; hitting ``max_slots`` with either condition still true marks
the run *truncated* (a ``warning`` event is emitted and
``SimulationResult.truncated`` is set) instead of silently reporting a
completed run.
"""

from __future__ import annotations

import copy
import heapq
from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..check import CHECK
from ..cluster.job import Job, JobState
from ..cluster.resources import NUM_RESOURCES
from ..obs import OBS

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..cluster.machine import SlotOutcome
    from ..cluster.simulator import ClusterSimulator, SimulationResult
    from ..trace.records import TaskRecord
    from ..trace.workload import Workload

__all__ = ["EventKind", "KernelEvent", "KernelSnapshot", "SchedulerKernel"]


class EventKind(IntEnum):
    """Event kinds, ordered by within-slot processing priority.

    The integer values are the priority: for one slot the kernel always
    processes restores before due faults, due faults before arrivals,
    and arrivals before the slot tick — the order the batch loop
    applied implicitly.
    """

    VM_RESTORED = 0
    FAULT_DUE = 1
    JOB_SUBMITTED = 2
    SLOT_TICK = 3


@dataclass(frozen=True)
class KernelEvent:
    """One consumed queue entry, returned by :meth:`SchedulerKernel.advance`."""

    slot: int
    kind: EventKind
    seq: int
    #: The submitted trace record (``JOB_SUBMITTED`` only).
    record: "TaskRecord | None" = None


@dataclass(frozen=True)
class KernelSnapshot:
    """A deep, self-contained copy of a kernel mid-run.

    Restoring yields an independent standby kernel that resumes from
    the captured event-queue position with its own copy of every VM,
    job, scheduler and fault-injector state — the live kernel can keep
    running (or crash) without affecting it.  Restores are repeatable:
    each call hands out a fresh copy.
    """

    taken_at_slot: int
    _kernel: "SchedulerKernel"

    def restore(self) -> "SchedulerKernel":
        """An independent kernel resuming from this snapshot."""
        return copy.deepcopy(self._kernel)


class SchedulerKernel:
    """Single-stepped event kernel over one :class:`ClusterSimulator`.

    Parameters
    ----------
    sim:
        The simulator holding cluster/scheduler/fault state.  The
        scheduler must already be prepared (offline fit done).
    streaming:
        ``False`` (batch): the run finishes when the arrival horizon is
        exhausted and — with ``drain`` — nothing is in flight.
        ``True`` (daemon): exhausting the queue leaves the kernel
        *idle* instead of finished; a later :meth:`submit` re-arms it.
    """

    def __init__(self, sim: "ClusterSimulator", *, streaming: bool = False) -> None:
        self.sim = sim
        self.streaming = streaming
        #: First slot with no known arrival: slots ``0..horizon-1``
        #: may receive submissions.  Grows as streaming submits arrive.
        self.horizon = 0
        self.n_submitted = 0
        #: Slots fully executed so far (== the old loop's final counter).
        self.executed_slots = 0
        #: The next slot a tick would run.
        self.next_slot = 0
        self.finished = False
        self.truncated = False
        #: Streaming hook: called as ``on_placements(slot, placed_jobs)``
        #: right after a tick's placements commit (non-empty only).
        self.on_placements: Optional[Callable[[int, list[Job]], None]] = None
        self._queue: list[tuple[int, int, int, "TaskRecord | None"]] = []
        self._seq = 0
        self._armed = False

    # ------------------------------------------------------------------
    # construction and event intake
    # ------------------------------------------------------------------
    @classmethod
    def from_workload(
        cls, sim: "ClusterSimulator", workload: "Workload"
    ) -> "SchedulerKernel":
        """Batch kernel preloaded with one submission event per record."""
        kernel = cls(sim, streaming=False)
        for slot, records in workload.iter_slots():
            for record in records:
                kernel._push(slot, EventKind.JOB_SUBMITTED, record)
        kernel.horizon = workload.n_slots
        kernel._maybe_arm(0)
        return kernel

    def submit(self, record: "TaskRecord", *, slot: int | None = None) -> int:
        """Enqueue a live job submission; returns the arrival slot.

        ``slot`` defaults to the record's trace arrival slot; either way
        it is clamped to the next unexecuted slot — the kernel cannot
        deliver work into the past.
        """
        if self.finished:
            raise RuntimeError("cannot submit to a finished kernel")
        if slot is None:
            slot = int(
                record.submit_time_s // self.sim.config.slot_duration_s
            )
        slot = max(slot, self.next_slot)
        self._push(slot, EventKind.JOB_SUBMITTED, record)
        self.horizon = max(self.horizon, slot + 1)
        if not self._armed:
            self._maybe_arm(self.next_slot)
        return slot

    def _push(
        self, slot: int, kind: EventKind, record: "TaskRecord | None" = None
    ) -> None:
        heapq.heappush(self._queue, (slot, int(kind), self._seq, record))
        self._seq += 1

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """No event is queued (streaming kernels wait here for work)."""
        return not self._queue or self.finished

    def advance(self) -> KernelEvent | None:
        """Consume and process the next event; ``None`` when there is none.

        A batch kernel returns ``None`` exactly when the run finished; a
        streaming kernel also returns ``None`` while merely idle
        (waiting for submissions).
        """
        if self.finished or not self._queue:
            return None
        slot, kind_value, seq, record = heapq.heappop(self._queue)
        kind = EventKind(kind_value)
        sim = self.sim
        sim.current_slot = slot
        if kind is EventKind.VM_RESTORED:
            sim.faults.restore_phase(slot, sim)
        elif kind is EventKind.FAULT_DUE:
            sim.faults.fault_phase(slot, sim)
        elif kind is EventKind.JOB_SUBMITTED:
            self._submit_job(record, slot)
        else:
            self._run_tick(slot)
        return KernelEvent(slot=slot, kind=kind, seq=seq, record=record)

    def run_until_blocked(self) -> int:
        """Advance until finished (batch) or idle (streaming); event count."""
        n = 0
        while self.advance() is not None:
            n += 1
        return n

    # ------------------------------------------------------------------
    # slot arming / termination
    # ------------------------------------------------------------------
    def _in_flight(self) -> bool:
        sim = self.sim
        return bool(
            sim.pending
            or sim.running
            or (sim.faults is not None and sim.faults.has_backlog())
        )

    def _would_continue(self, slot: int) -> bool:
        """The old loop's top-of-slot test: does ``slot`` need to run?"""
        if slot < self.horizon:
            return True
        return self.sim.config.drain and self._in_flight()

    def _maybe_arm(self, slot: int) -> None:
        if self.finished or self._armed:
            return
        if not self._would_continue(slot):
            if not self.streaming:
                self.finished = True
            return
        if slot >= self.sim.config.max_slots:
            self._truncate(slot)
            return
        self._arm(slot)

    def _arm(self, slot: int) -> None:
        if self.sim.faults is not None:
            self._push(slot, EventKind.VM_RESTORED)
            self._push(slot, EventKind.FAULT_DUE)
        self._push(slot, EventKind.SLOT_TICK)
        self._armed = True

    def _truncate(self, slot: int) -> None:
        """Hit ``max_slots`` with work still ahead: flag, warn, stop."""
        self.finished = True
        self.truncated = True
        sim = self.sim
        backlog = 0 if sim.faults is None else sim.faults.backlog_count()
        OBS.emit(
            "warning",
            kind="run_truncated",
            slot=slot,
            scheduler=sim.scheduler.name,
            max_slots=sim.config.max_slots,
            pending=len(sim.pending),
            running=len(sim.running),
            backlog=backlog,
            arrivals_remaining=max(self.horizon - slot, 0),
        )
        OBS.count("sim.truncated")

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _submit_job(self, record: "TaskRecord", slot: int) -> None:
        sim = self.sim
        job = Job(record=record, submit_slot=slot)
        self.n_submitted += 1
        if sim._admit(job):
            sim.pending.append(job)
        else:
            sim.rejected.append(job)

    def _run_tick(self, slot: int) -> None:
        """The slot pipeline (old loop steps 2-5, verbatim semantics).

        Scale note: every VM mutation this tick performs (placements
        landing, completions, fault evictions) bumps the VM's
        ``state_version``, so the next ``place_jobs`` refresh of the
        persistent sharded availability index recomputes only the
        shards this slot actually touched.
        """
        sim = self.sim

        # scheduling (the timed decision path)
        with sim.scheduler.latency.measure():
            sim.scheduler.on_slot_start(slot)
            placed = sim.scheduler.place_jobs(tuple(sim.pending), slot)
        placed_ids = {j.job_id for j in placed}
        if placed_ids:
            sim.pending = [j for j in sim.pending if j.job_id not in placed_ids]
            sim.running.extend(placed)
            if sim.faults is not None:
                sim.faults.note_placements(placed, slot)
            if self.on_placements is not None:
                self.on_placements(slot, list(placed))

        # execute the slot on every VM (accumulated as flat arrays —
        # per-VM ResourceVector sums dominated this loop)
        outcomes: dict[int, "SlotOutcome"] = {}
        total_demand = np.zeros(NUM_RESOURCES)
        total_committed = np.zeros(NUM_RESOURCES)
        for vm in sim.vms:
            if not vm.online:
                continue
            snapshot = (
                CHECK.checker.before_execute(vm) if CHECK.enabled else None
            )
            outcome = vm.execute_slot(slot)
            if CHECK.enabled:
                CHECK.checker.after_execute(
                    vm, slot, outcome, snapshot,
                    scheduler=sim.scheduler.name,
                )
            outcomes[vm.vm_id] = outcome
            total_demand += outcome.served_demand.as_array()
            total_committed += outcome.committed.as_array()
        sim.metrics.record_arrays(total_demand, total_committed)

        # completions — VMs with no placements cannot have completed
        # anything; skipping them keeps this sweep proportional to the
        # occupied VMs rather than the cluster size (10k+ at hyperscale).
        for vm in sim.vms:
            if not vm.placements:
                continue
            for job in vm.remove_completed():
                sim.slo_tracker.record(job)
                sim.completed.append(job)
        sim.running = [j for j in sim.running if j.state is JobState.RUNNING]

        # scheduler feedback
        sim.scheduler.on_slot_end(slot, outcomes)

        if CHECK.enabled:
            CHECK.checker.end_slot(sim, slot, self.n_submitted)

        if OBS.enabled:
            w = sim.metrics.weights
            den = float(total_committed @ w)
            util = (
                min(float(total_demand @ w) / den, 1.0)
                if den > 1e-12 else 0.0
            )
            OBS.emit(
                "slot",
                slot=slot,
                scheduler=sim.scheduler.name,
                utilization=util,
                wastage=1.0 - util if den > 1e-12 else 0.0,
                queue_depth=len(sim.pending),
                running=len(sim.running),
                completed=len(sim.completed),
                rejected=len(sim.rejected),
            )
            OBS.count("sim.slots")

        self.executed_slots = slot + 1
        self.next_slot = slot + 1
        self._armed = False
        self._maybe_arm(slot + 1)

    # ------------------------------------------------------------------
    # results and takeover support
    # ------------------------------------------------------------------
    def result(self) -> "SimulationResult":
        """The run's metrics in batch-identical :class:`SimulationResult` form."""
        from ..cluster.simulator import SimulationResult

        sim = self.sim
        # An empty prediction log has no error rate (it is NaN, not a
        # perfect 0.0) — report None so summaries omit the metric.
        error_rate = None
        if len(sim.scheduler.prediction_log) > 0:
            error_rate = sim.scheduler.prediction_log.error_rate(
                tolerance=getattr(sim.scheduler, "error_tolerance", 0.75)
            )
            if np.isnan(error_rate):  # pragma: no cover - defensive
                error_rate = None
        jobs = sim.completed + sim.running + sim.pending + sim.rejected
        resilience = None
        if sim.faults is not None:
            jobs += sim.failed + sim.faults.backlog_jobs()
            resilience = sim.faults.result_stats(sim)
        return SimulationResult(
            scheduler_name=sim.scheduler.name,
            metrics=sim.metrics,
            slo=sim.slo_tracker,
            n_slots=self.executed_slots,
            n_submitted=self.n_submitted,
            n_completed=len(sim.completed),
            n_rejected=len(sim.rejected),
            allocation_latency_s=sim.scheduler.latency.total_s,
            prediction_error_rate=error_rate,
            jobs=jobs,
            n_failed=len(sim.failed),
            resilience=resilience,
            truncated=self.truncated,
        )

    def snapshot(self) -> KernelSnapshot:
        """Freeze the whole kernel (queue, simulator, scheduler, faults).

        The copy is deep and independent — the pattern behind HA
        scheduler pairs: a standby holding a snapshot can take over
        mid-run and finish the workload exactly as the live kernel
        would have (:mod:`repro.faults.takeover` is the drill).
        """
        return KernelSnapshot(
            taken_at_slot=self.next_slot, _kernel=copy.deepcopy(self)
        )
