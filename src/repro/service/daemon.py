"""Long-lived asyncio allocation service over the event kernel.

``CORP-as-a-daemon``: instead of replaying a fixed batch, the service
accepts job submissions while the system runs, streams placement
decisions out to any number of subscribers, and closes the lifecycle
with ``drain()`` — the full :class:`~repro.cluster.simulator.SimulationResult`
of everything the service scheduled.  The architectural precedent is
Pace et al.'s data-driven allocation service and the CML-Cloud-Manager
scheduler-service decomposition (SNIPPETS.md snippet 1): a placement
engine behind a small submit/stream/drain surface.

Warm state: the offline DNN/HMM fit comes from the shared
:class:`~repro.experiments.runner.PredictorCache` (optionally backed by
the on-disk :class:`~repro.core.predictor_store.PredictorStore`), so a
service instance starts from fitted models whenever any earlier run —
in this process or another — trained on the same history.

Determinism: by default the kernel only advances inside :meth:`pump` /
:meth:`SchedulerService.drain`, so a test that submits a scenario's
records (each carrying its trace arrival slot) and then drains
reproduces the batch run of the same scenario exactly.
``auto_advance=True`` instead advances eagerly in a background task —
live-mode semantics, where a submission races the virtual clock and
lands at whatever slot the kernel has reached.

Usage::

    async with open_service(scenario=scn, method="CORP") as svc:
        stream = asyncio.create_task(collect(svc.placements()))
        for record in scn.evaluation_trace():
            await svc.submit(record)
        result = await svc.drain()
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, AsyncIterator, Optional

from ..cluster.simulator import ClusterSimulator, SimulationResult
from .kernel import SchedulerKernel

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..cluster.shards import ScaleConfig
    from ..core.config import CorpConfig
    from ..experiments.runner import PredictorCache
    from ..experiments.scenarios import Scenario
    from ..faults.plan import FaultPlan
    from ..forecast.base import Predictor
    from ..trace.records import TaskRecord, Trace

__all__ = [
    "PlacementUpdate",
    "SchedulerService",
    "build_kernel",
    "open_service",
]


@dataclass(frozen=True)
class PlacementUpdate:
    """One placement decision streamed to :meth:`SchedulerService.placements`."""

    slot: int
    job_id: int
    vm_id: Optional[int]
    opportunistic: bool
    method: str

    def as_dict(self) -> dict[str, object]:
        """Flat form for JSONL output and table rows."""
        return {
            "slot": self.slot,
            "job": self.job_id,
            "vm": self.vm_id,
            "opportunistic": self.opportunistic,
            "method": self.method,
        }


#: Stream-termination sentinel pushed to every subscriber on drain/close.
_CLOSE = object()


def build_kernel(
    *,
    scenario: "Scenario",
    method: str = "CORP",
    seed: int = 0,
    corp_config: "CorpConfig | None" = None,
    predictor_cache: "PredictorCache | None" = None,
    predictor: "str | Predictor" = "corp",
    streaming: bool = True,
) -> SchedulerKernel:
    """A prepared kernel for one (scenario, method) pair.

    The offline phase (predictor fit) happens here, through the shared
    cache/store tiers; ``predictor`` selects the registered forecasting
    family CORP runs on.  ``streaming=True`` returns an empty live
    kernel awaiting :meth:`~SchedulerKernel.submit`; ``streaming=False``
    preloads the scenario's evaluation trace — the batch form the
    standby-takeover drill steps manually.
    """
    from ..experiments.runner import METHOD_ORDER, default_schedulers

    if method not in METHOD_ORDER:
        raise ValueError(
            f"unknown method {method!r} (expected one of {METHOD_ORDER})"
        )
    history = scenario.history_trace()
    factories = default_schedulers(
        corp_config=corp_config,
        history=history,
        predictor_cache=predictor_cache,
        seed=seed,
        predictor=predictor,
    )
    scheduler = factories[method]()
    sim = ClusterSimulator(
        scenario.profile,
        scheduler,
        scenario.sim_config,
        fault_plan=scenario.fault_plan,
    )
    scheduler.prepare(history)
    if streaming:
        return SchedulerKernel(sim, streaming=True)
    from ..trace.workload import build_workload

    workload = build_workload(
        scenario.evaluation_trace(), scenario.sim_config.slot_duration_s
    )
    return SchedulerKernel.from_workload(sim, workload)


class SchedulerService:
    """``submit(job)`` / ``placements()`` / ``drain()`` over a live kernel.

    Construct via :func:`open_service` and use as an async context
    manager; all methods must be called from one event loop.
    """

    def __init__(
        self,
        *,
        scenario: "Scenario",
        method: str = "CORP",
        seed: int = 0,
        corp_config: "CorpConfig | None" = None,
        predictor_cache: "PredictorCache | None" = None,
        predictor: "str | Predictor" = "corp",
        auto_advance: bool = False,
        yield_every: int = 32,
    ) -> None:
        if yield_every < 1:
            raise ValueError("yield_every must be >= 1")
        self.scenario = scenario
        self.method = method
        self._seed = seed
        self._corp_config = corp_config
        self._predictor_cache = predictor_cache
        self._predictor = predictor
        self._auto_advance = auto_advance
        self._yield_every = yield_every
        self._kernel: SchedulerKernel | None = None
        self._subscribers: list[asyncio.Queue] = []
        self._updates: list[PlacementUpdate] = []
        self._pump_lock = asyncio.Lock()
        self._wake = asyncio.Event()
        self._pump_task: asyncio.Task | None = None
        self._result: SimulationResult | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SchedulerService":
        """Build the kernel (runs the offline fit) and go live."""
        if self._kernel is not None:
            return self
        self._kernel = build_kernel(
            scenario=self.scenario,
            method=self.method,
            seed=self._seed,
            corp_config=self._corp_config,
            predictor_cache=self._predictor_cache,
            predictor=self._predictor,
            streaming=True,
        )
        self._kernel.on_placements = self._emit_placements
        if self._auto_advance:
            self._pump_task = asyncio.ensure_future(self._auto_pump())
        return self

    async def __aenter__(self) -> "SchedulerService":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Stop the pump and close every placement stream."""
        self._closed = True
        if self._pump_task is not None:
            self._wake.set()
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        self._close_streams()

    @property
    def kernel(self) -> SchedulerKernel:
        """The live kernel (raises before :meth:`start`)."""
        if self._kernel is None:
            raise RuntimeError("service not started (use `async with`)")
        return self._kernel

    @property
    def result(self) -> SimulationResult | None:
        """The drained run's result (``None`` until :meth:`drain`)."""
        return self._result

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    async def submit(
        self, record: "TaskRecord", *, slot: int | None = None
    ) -> int:
        """Submit one job; returns the arrival slot it was accepted at."""
        if self._result is not None or self._closed:
            raise RuntimeError("service is drained/closed; open a new one")
        arrival = self.kernel.submit(record, slot=slot)
        self._wake.set()
        return arrival

    async def submit_trace(self, trace: "Trace") -> int:
        """Submit every record of ``trace`` (at its own arrival slot)."""
        n = 0
        for record in trace:
            await self.submit(record)
            n += 1
        return n

    # ------------------------------------------------------------------
    # placement streaming
    # ------------------------------------------------------------------
    def _emit_placements(self, slot: int, placed: list) -> None:
        vm_by_job: dict[int, int] = {}
        for vm in self.kernel.sim.vms:
            for placement in vm.placements:
                vm_by_job[placement.job.job_id] = vm.vm_id
        for job in placed:
            update = PlacementUpdate(
                slot=slot,
                job_id=job.job_id,
                vm_id=vm_by_job.get(job.job_id),
                opportunistic=job.opportunistic,
                method=self.method,
            )
            self._updates.append(update)
            for queue in self._subscribers:
                queue.put_nowait(update)

    async def placements(
        self, *, replay: bool = True
    ) -> AsyncIterator[PlacementUpdate]:
        """Async stream of placement decisions, closed by drain/close.

        With ``replay`` (the default) the stream opens with every
        decision already made, then continues live — a subscriber
        always sees the complete decision sequence no matter when its
        task first ran.  ``replay=False`` starts at the current point
        (the past is still in :attr:`history`).
        """
        queue: asyncio.Queue = asyncio.Queue()
        if replay:
            for update in self._updates:
                queue.put_nowait(update)
        if self._result is not None or self._closed:
            queue.put_nowait(_CLOSE)
        else:
            self._subscribers.append(queue)
        try:
            while True:
                item = await queue.get()
                if item is _CLOSE:
                    break
                yield item
        finally:
            if queue in self._subscribers:
                self._subscribers.remove(queue)

    @property
    def history(self) -> tuple[PlacementUpdate, ...]:
        """Every placement decision made so far, in decision order."""
        return tuple(self._updates)

    def _close_streams(self) -> None:
        for queue in self._subscribers:
            queue.put_nowait(_CLOSE)

    # ------------------------------------------------------------------
    # advancing
    # ------------------------------------------------------------------
    async def pump(self) -> int:
        """Advance the kernel until idle, yielding control periodically.

        Returns the number of events processed.  Subscribers run (and
        receive streamed placements) at every yield point.
        """
        kernel = self.kernel
        n = 0
        async with self._pump_lock:
            while True:
                event = kernel.advance()
                if event is None:
                    break
                n += 1
                if n % self._yield_every == 0:
                    await asyncio.sleep(0)
        if n:
            await asyncio.sleep(0)
        return n

    async def _auto_pump(self) -> None:
        while not self._closed:
            await self._wake.wait()
            self._wake.clear()
            await self.pump()

    async def drain(self) -> SimulationResult:
        """Run everything submitted to completion and close the service.

        Idempotent: a second call returns the same result.  Submissions
        after a drain raise — the run's accounting is final.
        """
        if self._result is not None:
            return self._result
        await self.pump()
        kernel = self.kernel
        kernel.finished = True
        self._result = kernel.result()
        self._close_streams()
        return self._result


def open_service(
    *,
    scenario: "Scenario | None" = None,
    jobs: int = 50,
    testbed: str = "cluster",
    seed: int = 7,
    method: str = "CORP",
    corp_config: "CorpConfig | None" = None,
    predictor_cache: "PredictorCache | None" = None,
    predictor: "str | Predictor" = "corp",
    fault_plan: "FaultPlan | None" = None,
    auto_advance: bool = False,
    scale: "ScaleConfig | None" = None,
) -> SchedulerService:
    """A ready-to-start :class:`SchedulerService` (async context manager).

    Pass a prebuilt ``scenario`` or the (``jobs``, ``testbed``,
    ``seed``) triple; ``seed`` also seeds the scheduler factories (the
    randomized baselines), so match it with the batch entry points when
    comparing runs.  ``fault_plan=`` attaches a seeded fault schedule
    the service replays while jobs stream in.  ``predictor=`` selects
    the registered forecasting family (or instance) CORP runs on, and
    ``scale=`` the hyperscale knobs (availability-index shards,
    streaming chunk size).  The heavy lifting (offline predictor fit)
    happens on
    ``start``/``__aenter__``, through ``predictor_cache`` when given —
    pass a store-backed cache to share fitted models across service
    instances and processes.
    """
    if scenario is None:
        from ..experiments.scenarios import cluster_scenario, ec2_scenario

        builders = {"cluster": cluster_scenario, "ec2": ec2_scenario}
        try:
            builder = builders[testbed]
        except KeyError:
            raise ValueError(
                f"unknown testbed {testbed!r} (expected 'cluster' or 'ec2')"
            ) from None
        scenario = builder(jobs, seed=seed)
    if fault_plan is not None:
        scenario = scenario.with_fault_plan(fault_plan)
    scenario = scenario.with_scale(scale)
    return SchedulerService(
        scenario=scenario,
        method=method,
        seed=seed,
        corp_config=corp_config,
        predictor_cache=predictor_cache,
        predictor=predictor,
        auto_advance=auto_advance,
    )
