"""Runtime invariant checking and differential replay for the reproduction.

Three tools behind one process-global hub (:data:`CHECK`):

* **invariant rules** — the paper's guarantees, evaluated live at the
  simulator's decision points (:class:`InvariantChecker`): per-slot
  capacity conservation, job conservation under faults, Eq. 21 gate
  soundness, packing feasibility, Eq. 22 most-matched optimality, and
  an opt-in reference-vs-vectorized differential execution rule;
* **differential replay** — re-run a captured JSONL event stream and
  diff per-slot state against the live run (:func:`replay_events`);
* **golden traces** — committed digests of the seeded ``compare()``
  summaries that turn behavioural drift into readable test failures
  (:mod:`repro.check.golden`).

Disabled by default: with no checker installed every instrumentation
point reduces to one attribute load and a branch, exactly like
:mod:`repro.obs`.  Prefer the :func:`repro.api.check_run` /
:func:`repro.api.replay` entry points (or ``repro check`` on the CLI)
over wiring the hub manually.

Usage::

    from repro.check import CHECK, InvariantChecker

    with CHECK.session(InvariantChecker()) as checker:
        ...  # run experiments; invariants are verified live
    assert checker.ok, checker.violations
"""

from .differential import (
    ReferenceOutcome,
    SlotSnapshot,
    capture_snapshot,
    diff_outcome,
    reference_outcome,
)
from .hub import CHECK, CheckHub
from .replay import ReplayMismatch, ReplayReport, replay_events
from .rules import (
    ALL_RULES,
    DEFAULT_RULES,
    CheckReport,
    InvariantChecker,
    Violation,
)

__all__ = [
    "CHECK",
    "CheckHub",
    "InvariantChecker",
    "Violation",
    "CheckReport",
    "ALL_RULES",
    "DEFAULT_RULES",
    "SlotSnapshot",
    "ReferenceOutcome",
    "capture_snapshot",
    "reference_outcome",
    "diff_outcome",
    "ReplayMismatch",
    "ReplayReport",
    "replay_events",
]
