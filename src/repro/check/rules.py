"""The invariant rules and the checker that evaluates them at runtime.

Each rule encodes one of the paper's stated guarantees:

``capacity``
    Per-slot capacity conservation (Section II accounting): the sum of
    primary reservations on a VM matches its incrementally maintained
    commitment, never exceeds the nominal capacity, the served demand
    never exceeds the effective (revocation-aware) capacity, and the
    unlocked opportunistic pools stay inside the allocated-but-idle
    slack they were carved from.
``jobs``
    Job conservation under faults: every submitted job is, at the end of
    every slot, in exactly one of queued / running / completed /
    rejected / failed / retry-backoff.
``gate``
    Eq. 21 soundness: the preemption gate may only report *unlocked*
    when the empirical ``Pr(0 ≤ δ < ε)`` (plus its binomial standard
    error credit) actually meets ``P_th`` on every resource.
``packing``
    Packing feasibility (Section III-B): a placed entity's demand fits
    the availability the chooser saw, and a primary reservation fits the
    capacity that is genuinely still unreserved (recomputed from the
    placement list, not from the incremental total).
``volume``
    Eq. 22 optimality: when the scheduler selects by unused-resource
    volume, the chosen VM minimizes that volume over the feasible set it
    was offered.
``pipeline``
    Phase ordering for DAG/pipeline scenarios: when a pipeline phase is
    submitted, no job of any earlier phase may still be live (queued,
    running or in retry backoff) — the "phase N completes before phase
    N+1 submits" DAG edge, checked at the submission barrier.
``differential``
    Opt-in reference-vs-vectorized diff (the PR 1 property test as a
    runtime tool): every slot of every VM is re-derived with the
    per-placement reference semantics and compared to the vectorized
    outcome (see :mod:`repro.check.differential`), and every Eq. 22
    VM selection is re-derived with the scalar reference loop of
    :func:`repro.core.vm_selection.select_most_matched` and compared
    to the scheduler's (vectorized) choice — the vectorized selector
    is never its own oracle.

The checker is strictly read-only: it never mutates simulator, VM, job
or scheduler state, so a checked run's summaries are byte-identical to
an unchecked run's on every deterministic field (the wall-clock
``allocation_latency_s`` differs between any two runs, checked or not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..cluster.machine import SlotOutcome, VirtualMachine
    from ..cluster.simulator import ClusterSimulator
    from ..core.packing import JobEntity
    from ..core.preemption import PreemptionGate
    from .differential import SlotSnapshot

__all__ = [
    "ALL_RULES",
    "DEFAULT_RULES",
    "Violation",
    "InvariantChecker",
    "CheckReport",
]

#: Every known rule name, in reporting order.
ALL_RULES: tuple[str, ...] = (
    "capacity",
    "jobs",
    "gate",
    "packing",
    "volume",
    "pipeline",
    "differential",
)

#: Rules enabled by default — everything except the (expensive)
#: per-slot differential re-execution, which is opt-in.
DEFAULT_RULES: tuple[str, ...] = (
    "capacity",
    "jobs",
    "gate",
    "packing",
    "volume",
    "pipeline",
)


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough context to locate it."""

    rule: str
    detail: str
    slot: Optional[int] = None
    scheduler: Optional[str] = None
    vm: Optional[int] = None
    job: Optional[int] = None

    def as_row(self) -> dict[str, object]:
        """Flat dict form for tables and JSON output."""
        return {
            "rule": self.rule,
            "slot": self.slot,
            "scheduler": self.scheduler,
            "vm": self.vm,
            "job": self.job,
            "detail": self.detail,
        }


class InvariantChecker:
    """Evaluates the enabled rules at the simulator's decision points.

    Parameters
    ----------
    rules:
        Rule names to enable (default: :data:`DEFAULT_RULES`).  Unknown
        names raise immediately — a typo silently checking nothing is
        exactly the failure mode this subsystem exists to prevent.
    tolerance:
        Absolute float slack for the accounting comparisons.
    max_violations:
        Violations beyond this many are counted but not stored.
    """

    def __init__(
        self,
        *,
        rules: Iterable[str] | None = None,
        tolerance: float = 1e-6,
        max_violations: int = 200,
    ) -> None:
        chosen = tuple(rules) if rules is not None else DEFAULT_RULES
        unknown = sorted(set(chosen) - set(ALL_RULES))
        if unknown:
            raise ValueError(
                f"unknown invariant rule(s) {unknown}; known: {list(ALL_RULES)}"
            )
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.rules = frozenset(chosen)
        self.tolerance = tolerance
        self.max_violations = max_violations
        self.violations: list[Violation] = []
        self.n_violations = 0
        #: Per-rule count of evaluations performed (not failures) — a
        #: run that "passes" with zero checks performed proves nothing,
        #: so reports surface these alongside the violations.
        self.checks: dict[str, int] = {rule: 0 for rule in chosen}

    @property
    def ok(self) -> bool:
        """True while no invariant has been violated."""
        return self.n_violations == 0

    def _report(
        self,
        rule: str,
        detail: str,
        *,
        slot: int | None = None,
        scheduler: str | None = None,
        vm: int | None = None,
        job: int | None = None,
    ) -> None:
        self.n_violations += 1
        if len(self.violations) < self.max_violations:
            self.violations.append(
                Violation(
                    rule=rule, detail=detail, slot=slot,
                    scheduler=scheduler, vm=vm, job=job,
                )
            )

    # ------------------------------------------------------------------
    # simulator slot-loop hooks
    # ------------------------------------------------------------------
    def before_execute(self, vm: "VirtualMachine") -> "SlotSnapshot | None":
        """Capture a pre-execution snapshot (differential rule only)."""
        if "differential" not in self.rules:
            return None
        from .differential import capture_snapshot

        return capture_snapshot(vm)

    def after_execute(
        self,
        vm: "VirtualMachine",
        slot: int,
        outcome: "SlotOutcome",
        snapshot: "SlotSnapshot | None" = None,
        *,
        scheduler: str | None = None,
    ) -> None:
        """Per-VM capacity conservation + optional differential diff."""
        tol = self.tolerance
        if "capacity" in self.rules:
            self.checks["capacity"] += 1
            committed = vm._committed
            recomputed = vm.reserved_total()
            if np.any(np.abs(committed - recomputed) > tol):
                self._report(
                    "capacity",
                    f"commitment drift: incremental {committed.tolist()} != "
                    f"recomputed {recomputed.tolist()}",
                    slot=slot, scheduler=scheduler, vm=vm.vm_id,
                )
            base = vm.base_capacity.as_array()
            if np.any(committed > base + tol):
                self._report(
                    "capacity",
                    f"committed {committed.tolist()} exceeds nominal "
                    f"capacity {base.tolist()}",
                    slot=slot, scheduler=scheduler, vm=vm.vm_id,
                )
            cap = vm.capacity.as_array()
            served = outcome.served_demand.as_array()
            if np.any(served > cap + tol):
                self._report(
                    "capacity",
                    f"served demand {served.tolist()} exceeds effective "
                    f"capacity {cap.tolist()}",
                    slot=slot, scheduler=scheduler, vm=vm.vm_id,
                )
            expected_unused = np.maximum(
                outcome.committed.as_array() - outcome.primary_demand.as_array(),
                0.0,
            )
            if np.any(np.abs(outcome.unused.as_array() - expected_unused) > tol):
                self._report(
                    "capacity",
                    f"unused {outcome.unused.as_array().tolist()} != "
                    f"max(committed - primary demand, 0) "
                    f"{expected_unused.tolist()}",
                    slot=slot, scheduler=scheduler, vm=vm.vm_id,
                )
        if snapshot is not None:
            self.checks["differential"] += 1
            from .differential import diff_outcome

            for detail in diff_outcome(snapshot, outcome, vm):
                self._report(
                    "differential", detail,
                    slot=slot, scheduler=scheduler, vm=vm.vm_id,
                )

    def end_slot(
        self, sim: "ClusterSimulator", slot: int, n_submitted: int
    ) -> None:
        """Job conservation + opportunistic-pool sanity, once per slot.

        ``n_submitted`` counts jobs actually delivered to the system
        (the kernel's submission counter), not the trace length — so the
        accounting also holds on a *truncated* run (``max_slots`` hit
        with arrivals never submitted): jobs still in flight sit in the
        pending/running/backoff buckets, and never-submitted arrivals
        are absent from both sides of the equation.
        """
        if "jobs" in self.rules:
            self.checks["jobs"] += 1
            backlog = 0 if sim.faults is None else sim.faults.backlog_count()
            buckets = {
                "pending": len(sim.pending),
                "running": len(sim.running),
                "completed": len(sim.completed),
                "rejected": len(sim.rejected),
                "failed": len(sim.failed),
                "backoff": backlog,
            }
            accounted = sum(buckets.values())
            if accounted != n_submitted:
                self._report(
                    "jobs",
                    f"job conservation broken: {buckets} sums to "
                    f"{accounted}, but {n_submitted} jobs were submitted",
                    slot=slot, scheduler=sim.scheduler.name,
                )
        if "capacity" in self.rules:
            # The unlocked opportunistic pools live inside commitments:
            # they can never go negative or exceed the VM's nominal
            # capacity.  (They may transiently exceed the *current*
            # commitment mid-window when a primary completes early — the
            # strict committed-slack bound is checked at refresh time by
            # observe_pools.)
            pools = getattr(sim.scheduler, "_available_unused", None)
            if pools:
                tol = self.tolerance
                vms = {vm.vm_id: vm for vm in sim.vms}
                for vm_id, pool in pools.items():
                    self.checks["capacity"] += 1
                    vm = vms.get(vm_id)
                    if vm is None:  # pragma: no cover - defensive
                        continue
                    base = vm.base_capacity.as_array()
                    if np.any(pool < -tol) or np.any(pool > base + tol):
                        self._report(
                            "capacity",
                            f"opportunistic pool {np.asarray(pool).tolist()} "
                            f"outside [0, nominal capacity "
                            f"{base.tolist()}]",
                            slot=slot, scheduler=sim.scheduler.name, vm=vm_id,
                        )

    # ------------------------------------------------------------------
    # provisioning hooks
    # ------------------------------------------------------------------
    def observe_pools(self, scheduler: object) -> None:
        """At forecast refresh: unlocked pools fit the committed slack.

        This is the strict form of the "unlocked resource never exceeds
        allocated-but-idle capacity" invariant — valid exactly when the
        pools are (re)derived, before mid-window completions can shrink
        the commitment underneath them.
        """
        if "capacity" not in self.rules:
            return
        pools = getattr(scheduler, "_available_unused", None)
        if not pools:
            return
        tol = self.tolerance
        sim = getattr(scheduler, "_sim", None)
        slot = sim.current_slot if sim is not None else None
        vms = {vm.vm_id: vm for vm in getattr(scheduler, "vms", ())}
        for vm_id, pool in pools.items():
            self.checks["capacity"] += 1
            vm = vms.get(vm_id)
            if vm is None:  # pragma: no cover - defensive
                continue
            slack = vm.committed().as_array()
            if np.any(pool < -tol) or np.any(pool > slack + tol):
                self._report(
                    "capacity",
                    f"refreshed opportunistic pool "
                    f"{np.asarray(pool).tolist()} exceeds committed "
                    f"slack {slack.tolist()}",
                    slot=slot,
                    scheduler=getattr(scheduler, "name", None),
                    vm=vm_id,
                )

    def observe_placement(
        self,
        scheduler: object,
        entity: "JobEntity",
        vm: "VirtualMachine",
        slot: int,
        *,
        opportunistic: bool,
        candidates: Sequence[tuple["VirtualMachine", object]] | None = None,
        demand: object = None,
    ) -> None:
        """Packing feasibility (Section III-B) and Eq. 22 optimality."""
        name = getattr(scheduler, "name", None)
        chosen_avail = None
        if candidates is not None:
            chosen_avail = next((a for v, a in candidates if v is vm), None)
        if "packing" in self.rules:
            self.checks["packing"] += 1
            if (
                chosen_avail is not None
                and demand is not None
                and not demand.fits_within(chosen_avail, atol=self.tolerance)
            ):
                self._report(
                    "packing",
                    f"entity demand {demand.as_array().tolist()} does not "
                    f"fit the chosen availability "
                    f"{chosen_avail.as_array().tolist()}",
                    slot=slot, scheduler=name, vm=vm.vm_id,
                    job=entity.job_ids()[0],
                )
            if not opportunistic:
                # Recompute the genuinely unreserved capacity from the
                # placement list itself — an over-allocation that fooled
                # the (possibly corrupted) incremental accounting cannot
                # fool this.
                free = vm.capacity.as_array() - vm.reserved_total()
                need = entity.demand.as_array()
                if np.any(need > free + self.tolerance):
                    self._report(
                        "packing",
                        f"primary reservation {need.tolist()} exceeds "
                        f"unreserved capacity {free.tolist()}",
                        slot=slot, scheduler=name, vm=vm.vm_id,
                        job=entity.job_ids()[0],
                    )
        if (
            "volume" in self.rules
            and candidates is not None
            and demand is not None
            and chosen_avail is not None
            and getattr(scheduler, "uses_volume_selection", False)
        ):
            sim = getattr(scheduler, "_sim", None)
            if sim is not None:
                from ..core.vm_selection import min_feasible_volume, unused_volume

                self.checks["volume"] += 1
                reference = sim.max_vm_capacity()
                best = min_feasible_volume(demand, candidates, reference)
                chosen_volume = unused_volume(chosen_avail, reference)
                if best is not None and chosen_volume > best + 1e-9:
                    self._report(
                        "volume",
                        f"chosen VM volume {chosen_volume:.6f} is not the "
                        f"feasible minimum {best:.6f} "
                        f"(Eq. 22 most-matched)",
                        slot=slot, scheduler=name, vm=vm.vm_id,
                        job=entity.job_ids()[0],
                    )
        if (
            "differential" in self.rules
            and candidates is not None
            and demand is not None
            and getattr(scheduler, "uses_volume_selection", False)
        ):
            sim = getattr(scheduler, "_sim", None)
            if sim is not None:
                from ..core.vm_selection import select_most_matched

                # Re-derive the whole choice with the scalar reference
                # loop (iterating the candidate set as plain pairs, so a
                # corrupted CandidateSet fast path cannot vouch for
                # itself) and demand the identical VM, tie-break
                # included — strictly stronger than the volume bound.
                self.checks["differential"] += 1
                expected = select_most_matched(
                    demand, list(candidates), sim.max_vm_capacity()
                )
                if expected is not vm:
                    self._report(
                        "differential",
                        f"vectorized selection chose VM {vm.vm_id}, but "
                        f"the per-placement reference selection chooses "
                        f"VM {expected.vm_id if expected is not None else None} "
                        f"(Eq. 22 most-matched)",
                        slot=slot, scheduler=name, vm=vm.vm_id,
                        job=entity.job_ids()[0],
                    )

    # ------------------------------------------------------------------
    # pipeline-barrier hook
    # ------------------------------------------------------------------
    def observe_pipeline_submission(
        self,
        sim: "ClusterSimulator",
        *,
        phase: int,
        slot: int,
        job_phase: dict[int, int],
    ) -> None:
        """DAG edge: no earlier-phase job may be live at a phase barrier.

        Called by the pipeline driver right before it submits phase
        ``phase``.  ``job_phase`` maps job id → phase index; jobs of
        phases ``< phase`` found queued, running or backed off mean the
        gate released the next phase early.
        """
        if "pipeline" not in self.rules:
            return
        self.checks["pipeline"] += 1
        backlog = [] if sim.faults is None else sim.faults.backlog_jobs()
        live = list(sim.pending) + list(sim.running) + list(backlog)
        stale = [
            job
            for job in live
            if job_phase.get(job.job_id, phase) < phase
        ]
        if stale:
            worst = min(stale, key=lambda j: j.job_id)
            self._report(
                "pipeline",
                f"phase {phase} submitted with {len(stale)} job(s) of "
                f"earlier phases still live (e.g. job {worst.job_id} of "
                f"phase {job_phase[worst.job_id]}) — the phase-ordering "
                f"DAG edge is broken",
                slot=slot,
                scheduler=sim.scheduler.name,
                job=worst.job_id,
            )

    # ------------------------------------------------------------------
    # preemption-gate hook
    # ------------------------------------------------------------------
    def observe_gate(
        self,
        gate: "PreemptionGate",
        unlocked: bool,
        *,
        scheduler: str | None = None,
        slot: int | None = None,
    ) -> None:
        """Eq. 21: an *unlock* must be backed by the tracked evidence.

        The deny direction is always sound (keeping resources locked can
        cost utilization, never correctness), so only unlocks are
        re-derived from the trackers.
        """
        if "gate" not in self.rules:
            return
        self.checks["gate"] += 1
        if not unlocked:
            return
        for kind in range(len(gate.trackers)):
            p, standard_error, n = gate.evidence(kind)
            if n == 0:
                self._report(
                    "gate",
                    f"unlocked with zero error samples on resource {kind}",
                    slot=slot, scheduler=scheduler,
                )
                continue
            if np.isnan(p):  # pragma: no cover - n > 0 implies a value
                self._report(
                    "gate",
                    f"unlocked with undefined Pr(0 <= delta < eps) on "
                    f"resource {kind}",
                    slot=slot, scheduler=scheduler,
                )
                continue
            if p + standard_error < gate.probability_threshold - 1e-12:
                self._report(
                    "gate",
                    f"unlocked on resource {kind} with Pr={p:.4f} "
                    f"(+{standard_error:.4f} s.e., n={n}) below "
                    f"P_th={gate.probability_threshold:.4f}",
                    slot=slot, scheduler=scheduler,
                )


@dataclass
class CheckReport:
    """What one checked run produced: violations, coverage, summaries."""

    violations: list[Violation]
    checks: dict[str, int]
    n_violations: int
    #: Per-method run summaries, identical to what an unchecked
    #: ``compare()`` over the same scenario would return.
    summaries: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return self.n_violations == 0

    @property
    def n_checks(self) -> int:
        """Total rule evaluations performed across the run."""
        return sum(self.checks.values())

    def rows(self) -> list[dict[str, object]]:
        """Stored violations as flat table rows."""
        return [v.as_row() for v in self.violations]
