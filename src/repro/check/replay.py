"""Differential replay: re-run a captured event stream and diff it.

A JSONL capture whose first record is a ``run_meta`` event (emitted by
:func:`repro.api.compare` / :func:`repro.api.check_run` whenever a sink
is attached and the scenario was built from its ``(jobs, testbed,
seed)`` triple) fully describes the run that produced it: workload
parameters, method list, and the serialized fault plan.  Replay rebuilds
that exact run, captures its own event stream in memory, and diffs the
per-slot state (``slot`` events: utilization / wastage / queue depth /
running / completed / rejected) and every placement decision
(``placement`` events: job / VM / class / packing partner / Eq. 22
volume) against the capture, in order.

The simulator is deterministic, so a clean replay matches the capture
*exactly*; any mismatch localizes a behavioural drift to the first slot
and field where the two streams diverge — Buchbinder et al.
(arXiv:2011.06250) evaluate prediction-driven allocation the same way,
by differential comparison against a reference run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..obs.events import MemorySink, _sanitize, events_by_name, read_jsonl

__all__ = ["ReplayMismatch", "ReplayReport", "replay_events"]

#: Event names whose streams are compared record-by-record.
COMPARED_EVENTS: tuple[str, ...] = ("slot", "placement")


@dataclass(frozen=True)
class ReplayMismatch:
    """One divergence between the captured and the live stream."""

    kind: str            # "slot" | "placement" | "stream"
    index: int           # position within the compared stream
    field: str
    captured: object
    live: object
    slot: object = None
    scheduler: object = None

    def as_row(self) -> dict[str, object]:
        """Flat dict form for tables and JSON output."""
        return {
            "kind": self.kind,
            "index": self.index,
            "slot": self.slot,
            "scheduler": self.scheduler,
            "field": self.field,
            "captured": self.captured,
            "live": self.live,
        }


@dataclass
class ReplayReport:
    """Outcome of one differential replay."""

    meta: dict
    n_compared: int
    mismatches: list[ReplayMismatch] = field(default_factory=list)
    #: True when mismatches beyond the storage cap were dropped.
    truncated: bool = False

    @property
    def ok(self) -> bool:
        """True when the live run reproduced the capture exactly."""
        return not self.mismatches and not self.truncated


def _values_match(a: object, b: object, tolerance: float) -> bool:
    """JSON-round-trip-aware equality (None stands for NaN in JSONL)."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a == b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        fa, fb = float(a), float(b)
        if math.isnan(fa) or math.isnan(fb):
            return math.isnan(fa) and math.isnan(fb)
        return math.isclose(fa, fb, rel_tol=tolerance, abs_tol=tolerance)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _values_match(x, y, tolerance) for x, y in zip(a, b)
        )
    return a == b


def _diff_streams(
    kind: str,
    captured: Sequence[dict],
    live: Sequence[dict],
    tolerance: float,
    out: list[ReplayMismatch],
    limit: int,
) -> int:
    """Diff two event streams in order; returns records compared."""
    if len(captured) != len(live):
        out.append(
            ReplayMismatch(
                kind="stream",
                index=min(len(captured), len(live)),
                field=f"{kind}_count",
                captured=len(captured),
                live=len(live),
            )
        )
    compared = 0
    for index, (want, got) in enumerate(zip(captured, live)):
        compared += 1
        keys = (set(want) | set(got)) - {"event"}
        for key in sorted(keys):
            if len(out) >= limit:
                return compared
            if not _values_match(want.get(key), got.get(key), tolerance):
                out.append(
                    ReplayMismatch(
                        kind=kind,
                        index=index,
                        field=key,
                        captured=want.get(key),
                        live=got.get(key),
                        slot=want.get("slot", got.get("slot")),
                        scheduler=want.get(
                            "scheduler", got.get("scheduler")
                        ),
                    )
                )
    return compared


def _rebuild_fault_plan(meta: dict):
    payload = meta.get("fault_plan")
    if payload is None:
        return None
    from ..faults.plan import FaultPlan, RetryPolicy

    return FaultPlan.from_dicts(
        payload["events"], retry=RetryPolicy(**payload["retry"])
    )


def replay_events(
    *,
    events: str,
    methods: Iterable[str] | None = None,
    tolerance: float = 1e-9,
    max_mismatches: int = 100,
) -> ReplayReport:
    """Re-run the scenario a capture describes and diff the two streams.

    Parameters
    ----------
    events:
        Path to a JSONL capture containing a ``run_meta`` record.
    methods:
        Restrict the replay to a subset of the captured methods
        (default: replay exactly what was captured).
    tolerance:
        Relative/absolute tolerance for float field comparisons (floats
        survive the JSON round trip exactly; the slack only absorbs
        platform-level libm differences).
    """
    records = list(
        read_jsonl(events, names=("run_meta",) + COMPARED_EVENTS)
    )
    meta = next(
        (r for r in records if r.get("event") == "run_meta"), None
    )
    if meta is None:
        raise ValueError(
            f"{events!r} has no run_meta record; re-capture it with "
            "repro check --events / repro compare --events (v1.3+), "
            "which embed the run parameters replay needs"
        )
    if not meta.get("replayable", False):
        raise ValueError(
            "capture is not replayable: the original run used a prebuilt "
            "scenario whose construction parameters were not recorded"
        )
    from ..obs.observer import OBS

    if OBS.sink is not None:
        raise RuntimeError(
            "an event sink is attached; detach it before replaying "
            "(replay captures its own in-memory stream)"
        )
    chosen = tuple(methods) if methods is not None else tuple(meta["methods"])
    unknown = sorted(set(chosen) - set(meta["methods"]))
    if unknown:
        raise ValueError(
            f"method(s) {unknown} were not part of the capture "
            f"(captured: {meta['methods']})"
        )

    from .. import api

    sink = MemorySink()
    with api.capture_events(sink):
        api.compare(
            jobs=int(meta["jobs"]),
            testbed=str(meta["testbed"]),
            seed=int(meta["seed"]),
            methods=chosen,
            workers=0,
            predictor=str(meta.get("predictor", "corp")),
            fault_plan=_rebuild_fault_plan(meta),
        )
    # Sanitize the live events exactly the way JsonlSink would have
    # serialized them (numpy scalars -> JSON types, NaN -> None), so the
    # comparison sees what a round-tripped capture would contain.
    live_records = [_sanitize(e.to_dict()) for e in sink.events]

    chosen_set = set(chosen)

    def select(recs: Iterable[dict], name: str) -> list[dict]:
        return [
            r
            for r in recs
            if r.get("event") == name and r.get("scheduler") in chosen_set
        ]

    captured_by_name = events_by_name(records)
    live_by_name = events_by_name(live_records)
    mismatches: list[ReplayMismatch] = []
    n_compared = 0
    for name in COMPARED_EVENTS:
        n_compared += _diff_streams(
            name,
            select(captured_by_name.get(name, ()), name),
            select(live_by_name.get(name, ()), name),
            tolerance,
            mismatches,
            max_mismatches,
        )
    return ReplayReport(
        meta=meta,
        n_compared=n_compared,
        mismatches=mismatches,
        truncated=len(mismatches) >= max_mismatches,
    )
