"""Reference-vs-vectorized differential execution (the PR 1 oracle as a tool).

The vectorized :meth:`~repro.cluster.machine.VirtualMachine.execute_slot`
was property-tested against the per-placement reference semantics
(:mod:`repro.cluster._legacy`) on randomized placements.  This module
generalizes that one-shot test into a runtime tool: snapshot a VM just
before it executes a slot, re-derive the slot with a *pure* (non-mutating)
transcription of the reference semantics, and diff the aggregates and
per-job execution rates against what the vectorized path produced.

Enabled via the ``differential`` rule of
:class:`~repro.check.rules.InvariantChecker` (``repro check
--differential``); it re-executes every slot of every VM, so it is
opt-in rather than part of the default rule set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..cluster.machine import SlotOutcome, VirtualMachine

__all__ = [
    "SlotSnapshot",
    "ReferenceOutcome",
    "capture_snapshot",
    "reference_outcome",
    "diff_outcome",
]

#: Absolute tolerance for vectorized-vs-reference float comparisons;
#: the two paths reorder the same additions, so disagreement beyond
#: accumulated rounding noise indicates a semantic divergence.
DIFF_ATOL = 1e-9


@dataclass(frozen=True)
class SlotSnapshot:
    """A VM's execution inputs, captured just before ``execute_slot``."""

    vm_id: int
    capacity: np.ndarray       # effective (revocation-aware) capacity
    committed: np.ndarray      # commitment total at snapshot time
    demands: np.ndarray        # (n_placements, l) current job demands
    caps: np.ndarray           # (n_placements, l) effective grant ceilings
    opportunistic: np.ndarray  # (n_placements,) placement class flags
    job_ids: tuple[int, ...]


@dataclass(frozen=True)
class ReferenceOutcome:
    """What the per-placement reference semantics produce for one slot."""

    primary_demand: np.ndarray
    opportunistic_demand: np.ndarray
    served_demand: np.ndarray
    unused: np.ndarray
    rates: np.ndarray  # (n_placements,) execution rates, snapshot order


def capture_snapshot(vm: "VirtualMachine") -> SlotSnapshot:
    """Copy everything ``execute_slot`` will read (demands, caps, capacity)."""
    placements = vm.placements
    n = len(placements)
    n_resources = len(vm._committed)
    demands = np.empty((n, n_resources))
    caps = np.empty((n, n_resources))
    opportunistic = np.zeros(n, dtype=bool)
    for i, p in enumerate(placements):
        demands[i] = p.job.demand_array()
        caps[i] = p.effective_cap_array()
        opportunistic[i] = p.opportunistic
    return SlotSnapshot(
        vm_id=vm.vm_id,
        capacity=vm.capacity.as_array().copy(),
        committed=vm._committed.copy(),
        demands=demands,
        caps=caps,
        opportunistic=opportunistic,
        job_ids=tuple(p.job.job_id for p in placements),
    )


def reference_outcome(snapshot: SlotSnapshot) -> ReferenceOutcome:
    """Pure transcription of ``repro.cluster._legacy.legacy_execute_slot``.

    Same placement-by-placement grant arithmetic (primaries first, each
    capped at ``min(demand, cap)``, scaled back if they collectively
    exceed capacity; opportunists share the remainder proportionally),
    but computed from the snapshot without touching any job or VM state.
    """
    cap_arr = snapshot.capacity
    n = len(snapshot.job_ids)
    n_resources = cap_arr.shape[0]
    grants: list[np.ndarray] = [np.zeros(n_resources) for _ in range(n)]

    # --- primaries ---------------------------------------------------
    primary_demand = np.zeros(n_resources)
    primary_granted = np.zeros(n_resources)
    for i in range(n):
        if snapshot.opportunistic[i]:
            continue
        d = snapshot.demands[i]
        g = np.minimum(d, snapshot.caps[i])
        primary_demand = primary_demand + d
        grants[i] = g
        primary_granted = primary_granted + g
    over = primary_granted > cap_arr + 1e-9
    if over.any():
        scale = np.ones(n_resources)
        scale[over] = cap_arr[over] / primary_granted[over]
        for i in range(n):
            if not snapshot.opportunistic[i]:
                grants[i] = grants[i] * scale
        primary_granted = np.minimum(primary_granted, cap_arr)

    # --- opportunists -------------------------------------------------
    remaining = np.maximum(cap_arr - primary_granted, 0.0)
    opp_demand = np.zeros(n_resources)
    for i in range(n):
        if snapshot.opportunistic[i]:
            opp_demand = opp_demand + snapshot.demands[i]
    if snapshot.opportunistic.any():
        scale = np.ones(n_resources)
        tight = opp_demand > remaining + 1e-12
        scale[tight] = np.where(
            opp_demand[tight] > 0, remaining[tight] / opp_demand[tight], 0.0
        )
        for i in range(n):
            if snapshot.opportunistic[i]:
                grants[i] = np.minimum(snapshot.demands[i] * scale,
                                       snapshot.caps[i])

    # --- rates / aggregates ------------------------------------------
    served = np.zeros(n_resources)
    rates = np.empty(n)
    for i in range(n):
        d = snapshot.demands[i]
        g = grants[i]
        served = served + np.minimum(g, d)
        needed = d > 1e-12
        if not needed.any():
            rates[i] = 1.0
        else:
            rates[i] = float(np.clip((g[needed] / d[needed]).min(), 0.0, 1.0))

    unused = np.maximum(snapshot.committed - primary_demand, 0.0)
    return ReferenceOutcome(
        primary_demand=primary_demand,
        opportunistic_demand=opp_demand,
        served_demand=served,
        unused=unused,
        rates=rates,
    )


def diff_outcome(
    snapshot: SlotSnapshot,
    outcome: "SlotOutcome",
    vm: "VirtualMachine",
    *,
    atol: float = DIFF_ATOL,
) -> list[str]:
    """Human-readable divergences between reference and vectorized paths."""
    details: list[str] = []
    if tuple(p.job.job_id for p in vm.placements) != snapshot.job_ids:
        # execute_slot never edits the placement list; a mismatch means
        # the snapshot and outcome describe different states.
        return [
            f"placement list changed during execution on VM {snapshot.vm_id}"
        ]
    ref = reference_outcome(snapshot)
    pairs = (
        ("primary_demand", outcome.primary_demand, ref.primary_demand),
        ("opportunistic_demand", outcome.opportunistic_demand,
         ref.opportunistic_demand),
        ("served_demand", outcome.served_demand, ref.served_demand),
        ("unused", outcome.unused, ref.unused),
    )
    for name, got, want in pairs:
        got_arr = got.as_array()
        if not np.allclose(got_arr, want, atol=atol, rtol=atol):
            details.append(
                f"{name}: vectorized {got_arr.tolist()} != reference "
                f"{np.asarray(want).tolist()}"
            )
    for i, p in enumerate(vm.placements):
        if not p.job.rate_history:  # pragma: no cover - advance records one
            details.append(f"job {p.job.job_id}: no rate recorded")
            continue
        got_rate = p.job.rate_history[-1]
        if abs(got_rate - ref.rates[i]) > atol:
            details.append(
                f"job {p.job.job_id}: vectorized rate {got_rate:.12f} != "
                f"reference {ref.rates[i]:.12f}"
            )
    return details
