"""The process-global invariant-check hub.

Mirrors the :mod:`repro.obs` observer pattern: one :class:`CheckHub`
instance (``CHECK``) that every instrumented decision point consults
through ``if CHECK.enabled:``.  Disabled (the default) the whole
subsystem costs one attribute load and a branch per call site — the
same contract as ``OBS`` — so production runs pay nothing.

Enabling means *installing* an
:class:`~repro.check.rules.InvariantChecker` for the duration of a run
(usually via :meth:`CheckHub.session` or the :func:`repro.api.check_run`
entry point).  The checker only ever *reads* simulator state: a run with
a checker installed produces summaries byte-identical to a checker-off
run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .rules import InvariantChecker

__all__ = ["CheckHub", "CHECK"]


class CheckHub:
    """Routes invariant hooks to the installed checker (if any)."""

    __slots__ = ("enabled", "checker")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.checker: Optional["InvariantChecker"] = None

    def install(self, checker: "InvariantChecker") -> "InvariantChecker":
        """Start routing hooks to ``checker`` (replacing any current one)."""
        self.checker = checker
        self.enabled = True
        return checker

    def uninstall(self) -> Optional["InvariantChecker"]:
        """Stop checking; returns the checker that was installed."""
        checker = self.checker
        self.checker = None
        self.enabled = False
        return checker

    @contextmanager
    def session(
        self, checker: "InvariantChecker"
    ) -> Iterator["InvariantChecker"]:
        """Install ``checker`` for the duration of a block."""
        self.install(checker)
        try:
            yield checker
        finally:
            if self.checker is checker:
                self.uninstall()


#: The process-global check hub every instrumentation point consults.
CHECK = CheckHub()
