"""Golden-trace regression digests for the seeded ``compare()`` runs.

A golden file freezes the per-method summary dicts of one seeded
comparison — every method of :data:`repro.api.METHOD_ORDER`, fault-free
and under one seeded fault intensity — with floats rounded to 10
significant digits and a SHA-256 digest over the canonical JSON.  The
committed files under ``tests/golden/`` turn any behavioural drift in
the simulator, schedulers, predictors or fault layer into a readable
test failure (method, metric, old vs new value) instead of a silently
shifted benchmark number.

Since v1.8 each scenario family of the zoo
(:data:`GOLDEN_FAMILIES` — ``pipeline``, ``diurnal``, ``storm``) pins
its own golden file alongside the base one, so the phased-submission
barriers, the diurnal time warp and the revocation-wave storm path are
all frozen, not just the flat-arrival run.

Regenerate after an *intentional* behavioural change with::

    PYTHONPATH=src python -m repro golden --update
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Mapping

__all__ = [
    "GOLDEN_JOBS",
    "GOLDEN_SEED",
    "GOLDEN_FAULT_INTENSITY",
    "GOLDEN_FAULT_SEED",
    "GOLDEN_FAMILIES",
    "NONDETERMINISTIC_KEYS",
    "default_golden_path",
    "family_golden_path",
    "compute_golden",
    "compute_family_golden",
    "golden_digest",
    "diff_golden",
    "write_golden",
    "load_golden",
]

#: Parameters of the committed golden runs — small enough for CI, large
#: enough that every scheduler exercises packing, gating and faults.
GOLDEN_JOBS = 30
GOLDEN_SEED = 7
GOLDEN_TESTBED = "cluster"
GOLDEN_FAULT_INTENSITY = 0.5
GOLDEN_FAULT_SEED = 0

#: Scenario families with their own committed golden file each
#: (``{family}_j{jobs}_seed{seed}.json``).  Mirrors
#: :data:`repro.experiments.scenarios.SCENARIO_FAMILIES`.
GOLDEN_FAMILIES = ("pipeline", "diurnal", "storm")


def default_golden_path(directory: str, *, jobs: int, testbed: str, seed: int) -> str:
    """Canonical file name for one golden parameter set."""
    return os.path.join(directory, f"{testbed}_j{jobs}_seed{seed}.json")


def family_golden_path(directory: str, *, family: str, jobs: int, seed: int) -> str:
    """Canonical file name for one scenario-family golden."""
    return os.path.join(directory, f"{family}_j{jobs}_seed{seed}.json")


#: Summary keys measured from the wall clock — different on every run,
#: so goldens must not freeze them.
NONDETERMINISTIC_KEYS = frozenset({"allocation_latency_s"})


def _round(value: float) -> float:
    """10-significant-digit rounding: stable across platforms, still far
    tighter than any behavioural change would move a summary metric."""
    return float(f"{float(value):.10g}")


def _rounded_summaries(results: Mapping[str, object]) -> dict[str, dict[str, float]]:
    return {
        method: {
            key: _round(val)
            for key, val in result.summary().items()
            if key not in NONDETERMINISTIC_KEYS
        }
        for method, result in results.items()
    }


def golden_digest(payload: dict) -> str:
    """SHA-256 over the canonical JSON of a golden payload (sans digest)."""
    body = {k: v for k, v in payload.items() if k != "digest"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def compute_golden(
    *,
    jobs: int = GOLDEN_JOBS,
    testbed: str = GOLDEN_TESTBED,
    seed: int = GOLDEN_SEED,
    fault_intensity: float = GOLDEN_FAULT_INTENSITY,
    fault_seed: int = GOLDEN_FAULT_SEED,
) -> dict:
    """Run the seeded comparisons and build the golden payload."""
    from .. import api

    fault_free = api.compare(jobs=jobs, testbed=testbed, seed=seed)
    plan = api.build_fault_plan(seed=fault_seed, intensity=fault_intensity)
    faulted = api.compare(
        jobs=jobs, testbed=testbed, seed=seed, fault_plan=plan
    )
    payload: dict = {
        "meta": {
            "jobs": jobs,
            "testbed": testbed,
            "seed": seed,
            "fault_intensity": fault_intensity,
            "fault_seed": fault_seed,
            "methods": list(api.METHOD_ORDER),
            "precision": "10 significant digits",
        },
        "fault_free": _rounded_summaries(fault_free),
        "faulted": _rounded_summaries(faulted),
    }
    payload["digest"] = golden_digest(payload)
    return payload


def compute_family_golden(
    family: str,
    *,
    jobs: int = GOLDEN_JOBS,
    testbed: str = GOLDEN_TESTBED,
    seed: int = GOLDEN_SEED,
) -> dict:
    """Run one scenario-family comparison and build its golden payload.

    The payload's single ``summaries`` section carries the family's
    extra metrics (``pipeline_stall_slots``, ``flash_crowd_p99_wait``,
    ``storm_*``) through :meth:`SimulationResult.summary`, so the
    phased barriers, the time warp and the wave schedule are all under
    the digest.  The storm family runs its builder's default seeded
    plan at intensity :data:`GOLDEN_FAULT_INTENSITY`.
    """
    from .. import api

    if family not in GOLDEN_FAMILIES:
        raise ValueError(
            f"unknown golden family {family!r}; expected one of {GOLDEN_FAMILIES}"
        )
    scenario = api.build_scenario(
        jobs=jobs, testbed=testbed, seed=seed, family=family
    )
    results = api.compare(scenario=scenario)
    payload: dict = {
        "meta": {
            "family": family,
            "jobs": jobs,
            "testbed": testbed,
            "seed": seed,
            "methods": list(api.METHOD_ORDER),
            "precision": "10 significant digits",
        },
        "summaries": _rounded_summaries(results),
    }
    payload["digest"] = golden_digest(payload)
    return payload


def diff_golden(recorded: dict, fresh: dict) -> list[str]:
    """Readable drift lines between a committed and a fresh payload.

    Sections are discovered from the payloads themselves (``fault_free``
    and ``faulted`` for the base golden, ``summaries`` for the family
    goldens), so one differ serves every golden shape.  Values are
    compared exactly — both sides passed through the same
    10-significant-digit rounding, and the runs are deterministic.
    """
    lines: list[str] = []
    sections = sorted((set(recorded) | set(fresh)) - {"meta", "digest"})
    for section in sections:
        old = recorded.get(section, {})
        new = fresh.get(section, {})
        for method in sorted(set(old) | set(new)):
            old_m = old.get(method)
            new_m = new.get(method)
            if old_m is None or new_m is None:
                lines.append(
                    f"{section}/{method}: "
                    f"{'missing from recorded' if old_m is None else 'missing from fresh run'}"
                )
                continue
            for key in sorted(set(old_m) | set(new_m)):
                old_v = old_m.get(key)
                new_v = new_m.get(key)
                if old_v != new_v:
                    lines.append(
                        f"{section}/{method}/{key}: recorded {old_v!r} -> "
                        f"fresh {new_v!r}"
                    )
    if not lines and recorded.get("digest") != fresh.get("digest"):
        lines.append(
            f"digest drift without value drift (metadata changed): "
            f"recorded {recorded.get('digest')} -> fresh {fresh.get('digest')}"
        )
    return lines


def write_golden(path: str, payload: dict) -> None:
    """Write a golden payload as stable, diff-friendly JSON."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_golden(path: str) -> dict:
    """Read a committed golden payload."""
    with open(path) as fh:
        return json.load(fh)
