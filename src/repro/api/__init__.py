"""The stable public API facade.

Everything a consumer of the reproduction needs sits behind typed,
keyword-only entry points plus the observability attachments:

* :func:`run_one` — one (scenario, method) run → :class:`SimulationResult`;
* :func:`compare` — all methods on one workload → ``method → result``;
* :func:`sweep` — scenarios × methods, optionally process-parallel;
* ``predictor=`` (v1.6, on :func:`run_one` / :func:`compare` /
  :func:`sweep` / :func:`open_service`) — the registered forecasting
  family CORP runs on: ``"corp"`` (default), ``"quantile"``,
  ``"classify"``, ``"ets"``, ``"markov"`` or ``"auto"`` (online
  per-workload selection); :func:`available_predictors` /
  :func:`predictor_summaries` enumerate the registry;
* ``scale=`` (v1.7, on :func:`run_one` / :func:`compare` /
  :func:`sweep` / :func:`open_service`) — a typed
  :class:`~repro.cluster.shards.ScaleConfig` selecting the hyperscale
  knobs: availability-index shard count, streaming-trace chunk size and
  index backend; the default single-shard config is byte-identical to
  pre-sharding output;
* :func:`build_fault_plan` / :func:`inject` — seeded deterministic
  fault schedules and their attachment to scenarios (``fault_plan=`` on
  the entry points is the shorthand);
* :func:`attach_sink` / :func:`detach_sink` / :func:`capture_events` —
  stream structured decision events (JSONL or custom sinks);
* :func:`profile_run` — a profiled comparison run returning the
  per-stage timing table ``repro profile`` prints;
* :func:`check_run` / :func:`replay` (v1.3) — a comparison run with the
  runtime invariant checker installed, and differential replay of a
  captured event stream against a fresh live run;
* :func:`open_service` / :func:`takeover_run` (v1.5) — the long-lived
  asyncio allocation service over the event kernel (submit jobs live,
  stream placements, ``drain()`` for the final result), and the
  standby-takeover drill (a snapshot-restored kernel must finish the
  run identically to the live one);
* the scenario zoo (v1.8) — ``family=`` on :func:`build_scenario`
  selects ``"pipeline"`` (phased DAG submission through the streaming
  kernel, :class:`PipelineSpec`), ``"diurnal"`` (day/night arrivals
  with flash-crowd spikes, :class:`DiurnalPattern`) or ``"storm"``
  (correlated spot revocations); :func:`build_revocation_storm` builds
  seeded :class:`RevocationWave` schedules and
  :func:`storm_sweep_scenarios` sweeps their intensity.

This facade is the **only supported import surface**: deeper imports
(``repro.experiments.runner`` and friends) may break without notice
between releases, while the signatures here are the ones the
deprecation policy protects.

Since v1.6 the facade is a package (``repro/api/``) split by concern —
``_run`` (batch entry points), ``_check`` (invariant checking and
replay), ``_faults`` (fault-plan helpers), ``_service`` (service mode)
— with this ``__init__`` re-exporting the identical public surface; the
underscore modules are implementation detail.
"""

from ..cluster.shards import ScaleConfig
from ..cluster.simulator import SimulationResult
from ..core.predictor_store import PredictorStore, default_store_dir
from ..experiments.runner import METHOD_ORDER, PredictorCache
from ..experiments.scenarios import Scenario, storm_sweep_scenarios
from ..experiments.workloads.diurnal import DiurnalPattern
from ..experiments.workloads.pipeline import PipelineSpec
from ..faults.plan import (
    FaultPlan,
    RetryPolicy,
    RevocationWave,
    build_fault_plan,
    build_revocation_storm,
)
from ..forecast.registry import available_predictors, predictor_summaries
from ..obs import capture_events, detach_sink
from ._check import check_run, replay
from ._faults import inject
from ._run import (
    attach_sink,
    build_scenario,
    compare,
    profile_run,
    run_one,
    sweep,
)
from ._service import (
    PlacementUpdate,
    SchedulerService,
    TakeoverReport,
    open_service,
    takeover_run,
)

__all__ = [
    "compare",
    "sweep",
    "run_one",
    "profile_run",
    "check_run",
    "replay",
    "inject",
    "build_fault_plan",
    "build_revocation_storm",
    "storm_sweep_scenarios",
    "open_service",
    "takeover_run",
    "PlacementUpdate",
    "SchedulerService",
    "TakeoverReport",
    "attach_sink",
    "detach_sink",
    "capture_events",
    "build_scenario",
    "available_predictors",
    "predictor_summaries",
    "FaultPlan",
    "RetryPolicy",
    "RevocationWave",
    "PipelineSpec",
    "DiurnalPattern",
    "PredictorCache",
    "PredictorStore",
    "default_store_dir",
    "ScaleConfig",
    "Scenario",
    "SimulationResult",
    "METHOD_ORDER",
]
