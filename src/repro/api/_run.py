"""Batch entry points: ``run_one`` / ``compare`` / ``sweep`` / ``profile_run``.

Internal module — import these through :mod:`repro.api`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..cluster.shards import ScaleConfig
from ..cluster.simulator import SimulationResult
from ..core.config import CorpConfig
from ..experiments.runner import (
    METHOD_ORDER,
    PredictorCache,
    default_schedulers,
    run_methods,
    run_scenario,
    run_specs,
    sweep_specs,
)
from ..experiments.scenarios import (
    SCENARIO_FAMILIES,
    Scenario,
    cluster_scenario,
    diurnal_scenario,
    ec2_scenario,
    pipeline_scenario,
    storm_scenario,
)
from ..faults.plan import FaultPlan
from ..forecast.base import Predictor
from ..obs import OBS, Sink
from ..obs import attach_sink as _attach_sink
from ..obs import detach_sink

__all__ = [
    "attach_sink",
    "build_scenario",
    "run_one",
    "compare",
    "sweep",
    "profile_run",
]


def attach_sink(sink: Sink | str) -> Sink:
    """Attach an event sink (a :class:`~repro.obs.Sink` or a JSONL path).

    Events from subsequent runs stream to the sink until
    :func:`detach_sink`.  Prefer the :func:`capture_events` context
    manager when the capture window is a single block.
    """
    return _attach_sink(sink)


def build_scenario(
    *,
    jobs: int = 200,
    testbed: str = "cluster",
    seed: int = 7,
    family: str | None = None,
) -> Scenario:
    """A testbed scenario by name (``"cluster"`` or ``"ec2"``).

    ``family=`` selects a scenario-zoo variant on the chosen testbed's
    profile: ``"pipeline"`` (phased DAG submission), ``"diurnal"``
    (day/night arrivals with flash crowds) or ``"storm"`` (spot
    revocation waves at intensity 0.5); ``None`` is the paper's plain
    steady-arrival scenario.
    """
    builders = {"cluster": cluster_scenario, "ec2": ec2_scenario}
    try:
        builder = builders[testbed]
    except KeyError:
        raise ValueError(
            f"unknown testbed {testbed!r} (expected 'cluster' or 'ec2')"
        ) from None
    if family is None:
        return builder(jobs, seed=seed)
    profile = builder(1, seed=seed).profile
    family_builders = {
        "pipeline": pipeline_scenario,
        "diurnal": diurnal_scenario,
        "storm": storm_scenario,
    }
    try:
        family_builder = family_builders[family]
    except KeyError:
        raise ValueError(
            f"unknown scenario family {family!r} "
            f"(expected one of {list(SCENARIO_FAMILIES)})"
        ) from None
    return family_builder(jobs, seed=seed, profile=profile)


def _apply_fault_plan(
    scenario: Scenario, fault_plan: FaultPlan | None
) -> Scenario:
    """Fold an explicit ``fault_plan=`` argument into the scenario."""
    if fault_plan is None:
        return scenario
    return scenario.with_fault_plan(fault_plan)


def _apply_scale(scenario: Scenario, scale: ScaleConfig | None) -> Scenario:
    """Fold an explicit ``scale=`` argument into the scenario.

    ``None`` keeps whatever the scenario's ``sim_config`` already says —
    the default single-shard config, byte-identical to pre-sharding
    output.
    """
    return scenario.with_scale(scale)


def _predictor_name(predictor: "str | Predictor") -> str:
    """The registry-name form of a ``predictor=`` argument (for specs/meta)."""
    if isinstance(predictor, str):
        return predictor
    return predictor.family


def _require_named_predictor(
    predictor: "str | Predictor", workers: int
) -> None:
    """Instances carry process-local state; parallel runs need names."""
    if workers >= 2 and isinstance(predictor, Predictor):
        raise ValueError(
            "workers >= 2 with a predictor instance: fitted predictors "
            "cannot cross process boundaries. Pass the registry name "
            f"(e.g. predictor={predictor.family!r}) or run with workers=0."
        )


def _parallel_events_path(workers: int) -> str | None:
    """How a parallel run coexists with attached observability.

    Returns the shard base path (the attached sink's file path) when
    per-worker event shards can be merged on join, or ``None`` when no
    sink is attached.  Observability modes that cannot cross process
    boundaries raise a clear :class:`ValueError` instead of silently
    forcing the serial path.
    """
    if workers < 2:
        return None
    from ..check import CHECK

    if CHECK.enabled:
        raise ValueError(
            "workers >= 2 is incompatible with an installed invariant "
            "checker: violations recorded in worker processes cannot reach "
            "it. Use workers=0 while checking."
        )
    if OBS.profiling:
        raise ValueError(
            "workers >= 2 is incompatible with profiling: counters and "
            "timers are process-local. Use workers=0 while profiling."
        )
    sink = OBS.sink
    if sink is None:
        return None
    path = getattr(sink, "path", None)
    if path is None:
        raise ValueError(
            "workers >= 2 with an in-memory or stream-backed sink attached: "
            "events recorded in worker processes cannot reach it. Attach a "
            "path-backed JSONL sink (attach_sink('events.jsonl')) to have "
            "per-worker shards merged on join, or run with workers=0."
        )
    return path


def _emit_run_meta(
    *,
    scenario: Scenario,
    methods: tuple[str, ...],
    jobs: int | None,
    testbed: str | None,
    seed: int | None,
    replayable: bool,
    predictor: str = "corp",
) -> None:
    """Stamp an attached capture with the parameters replay needs.

    Emitted only when a sink is attached; a capture without this record
    cannot be replayed (:func:`replay` says so).  ``replayable`` is
    False for prebuilt scenarios — their construction parameters are
    unknown here, so the record still documents the run but replay
    refuses it.
    """
    if OBS.sink is None:
        return
    from dataclasses import asdict

    from .. import __version__

    plan = scenario.fault_plan
    plan_payload = None
    if plan:
        plan_payload = {"retry": asdict(plan.retry), "events": plan.to_dicts()}
    OBS.emit(
        "run_meta",
        version=__version__,
        replayable=replayable,
        jobs=jobs,
        testbed=testbed,
        seed=seed,
        scenario=scenario.name,
        methods=list(methods),
        predictor=predictor,
        fault_plan=plan_payload,
    )


def run_one(
    *,
    scenario: Scenario,
    method: str,
    seed: int = 0,
    corp_config: CorpConfig | None = None,
    predictor_cache: PredictorCache | None = None,
    predictor: "str | Predictor" = "corp",
    fault_plan: FaultPlan | None = None,
    scale: ScaleConfig | None = None,
) -> SimulationResult:
    """Run one method on one scenario (optionally under a fault plan).

    ``predictor=`` names the registered forecasting family CORP runs on
    (or passes a prebuilt :class:`~repro.forecast.base.Predictor`
    instance); baselines ignore it.  Unknown names raise
    :class:`ValueError` listing the registry.  ``scale=`` overrides the
    scenario's :class:`~repro.cluster.shards.ScaleConfig` (availability-
    index sharding, streaming chunk size).
    """
    if method not in METHOD_ORDER:
        raise ValueError(
            f"unknown method {method!r} (expected one of {METHOD_ORDER})"
        )
    scenario = _apply_fault_plan(scenario, fault_plan)
    scenario = _apply_scale(scenario, scale)
    with OBS.span("trace:generate"):
        trace = scenario.evaluation_trace()
        history = scenario.history_trace()
    factories = default_schedulers(
        corp_config=corp_config,
        history=history,
        predictor_cache=predictor_cache,
        seed=seed,
        predictor=predictor,
    )
    return run_scenario(
        scenario, factories[method](), trace=trace, history=history
    )


def compare(
    *,
    scenario: Scenario | None = None,
    jobs: int = 200,
    testbed: str = "cluster",
    seed: int = 7,
    methods: Iterable[str] = METHOD_ORDER,
    workers: int = 0,
    predictor_cache: PredictorCache | None = None,
    predictor: "str | Predictor" = "corp",
    fault_plan: FaultPlan | None = None,
    scale: ScaleConfig | None = None,
) -> dict[str, SimulationResult]:
    """Run every method on the same workload; ``method → result``.

    Pass either a prebuilt ``scenario`` or the (``jobs``, ``testbed``,
    ``seed``) triple to build one; ``fault_plan=`` replays a fault
    schedule against every method, ``predictor=`` selects CORP's
    forecasting family and ``scale=`` sets the hyperscale knobs
    (availability-index shards, streaming chunk size).  ``workers >= 2`` fans the methods over worker
    processes — results are bit-identical to serial, and the predictor
    must then be a registry name (instances are process-local).  With a
    path-backed JSONL sink attached, each worker records its events to a
    shard merged (in method order) on join; in-memory sinks and
    profiling cannot cross processes and raise :class:`ValueError`.
    """
    built_here = scenario is None
    if scenario is None:
        scenario = build_scenario(jobs=jobs, testbed=testbed, seed=seed)
    scenario = _apply_fault_plan(scenario, fault_plan)
    scenario = _apply_scale(scenario, scale)
    methods = tuple(methods)
    _emit_run_meta(
        scenario=scenario,
        methods=methods,
        jobs=jobs if built_here else None,
        testbed=testbed if built_here else None,
        seed=seed if built_here else None,
        replayable=built_here,
        predictor=_predictor_name(predictor),
    )
    if workers >= 2:
        _require_named_predictor(predictor, workers)
        events_path = _parallel_events_path(workers)
        specs = sweep_specs(
            scenarios=[scenario],
            methods=methods,
            seed=seed,
            predictor=predictor,
        )
        by_spec = run_specs(
            specs=specs,
            workers=workers,
            predictor_cache=predictor_cache,
            events_path=events_path,
        )
        return {s.method: r for s, r in zip(specs, by_spec)}
    return run_methods(
        scenario=scenario,
        methods=methods,
        predictor_cache=predictor_cache,
        seed=seed,
        predictor=predictor,
    )


def sweep(
    *,
    scenarios: Sequence[Scenario],
    methods: Iterable[str] = METHOD_ORDER,
    seed: int = 0,
    corp_config: CorpConfig | None = None,
    workers: int = 0,
    predictor_cache: PredictorCache | None = None,
    predictor: "str | Predictor" = "corp",
    fault_plan: FaultPlan | None = None,
    scale: ScaleConfig | None = None,
) -> list[SimulationResult]:
    """Scenarios × methods, in sweep order (scenario-major).

    The list aligns with ``sweep_specs(scenarios=...)``.  A
    ``fault_plan=`` here applies the same schedule to *every* scenario
    (build per-scenario plans with :func:`inject` for anything finer,
    e.g. a fault-intensity sweep); ``predictor=`` selects CORP's
    forecasting family and ``scale=`` the hyperscale knobs for every
    run.  Parallel observability follows
    :func:`compare`'s rules: path-backed JSONL sinks shard per worker
    and merge on join; other recording modes raise :class:`ValueError`
    with ``workers >= 2`` — as does a predictor *instance*, which
    cannot cross process boundaries.
    """
    scenarios = [
        _apply_scale(_apply_fault_plan(s, fault_plan), scale)
        for s in scenarios
    ]
    _require_named_predictor(predictor, workers)
    if isinstance(predictor, Predictor):
        # One shared instance across every run: execute the same
        # scenario-major order inline (specs carry names, not objects).
        methods = tuple(methods)
        results: list[SimulationResult] = []
        for scn in scenarios:
            with OBS.span("trace:generate"):
                trace = scn.evaluation_trace()
                history = scn.history_trace()
            factories = default_schedulers(
                corp_config=corp_config,
                history=history,
                predictor_cache=predictor_cache,
                seed=seed,
                predictor=predictor,
            )
            for method in methods:
                results.append(
                    run_scenario(
                        scn, factories[method](), trace=trace, history=history
                    )
                )
        return results
    specs = sweep_specs(
        scenarios=scenarios,
        methods=methods,
        seed=seed,
        corp_config=corp_config,
        predictor=predictor,
    )
    events_path = _parallel_events_path(workers)
    return run_specs(
        specs=specs,
        workers=workers,
        predictor_cache=predictor_cache,
        events_path=events_path,
    )


def profile_run(
    *,
    jobs: int = 50,
    testbed: str = "cluster",
    seed: int = 7,
    methods: Iterable[str] = METHOD_ORDER,
    predictor_cache: PredictorCache | None = None,
    predictor_cache_size: int = 16,
    predictor: "str | Predictor" = "corp",
    events: str | None = None,
) -> dict:
    """Run a profiled comparison and return the per-stage report.

    Enables counter/timer recording for the duration of one serial
    :func:`compare`, then returns::

        {
          "stages":   [{"stage", "calls", "total_s", "mean_s", "share"}...],
          "counters": {name: value, ...},
          "summaries": {method: summary-dict, ...},
          "predictor_cache": {size, maxsize, hits, misses[, store...]},
          "total_s":  float,
        }

    ``predictor_cache=`` profiles against a caller-configured cache
    (e.g. one with a :class:`PredictorStore` attached); otherwise a
    fresh in-memory cache of ``predictor_cache_size`` entries is used.
    ``events=`` additionally captures the run's event stream to a JSONL
    file for the duration of the profile — the sink is always detached
    on the way out, even when the run raises.  Without ``events=`` the
    caller keeps any already-attached sink; profiling state and
    previously recorded counters/timers are reset first so the report
    covers exactly this run.
    """
    cache = (
        predictor_cache
        if predictor_cache is not None
        else PredictorCache(maxsize=predictor_cache_size)
    )
    OBS.counters.reset()
    OBS.timers.reset()
    attached = attach_sink(events) if events is not None else None
    OBS.enable_profiling()
    try:
        results = compare(
            jobs=jobs, testbed=testbed, seed=seed, methods=methods,
            workers=0, predictor_cache=cache, predictor=predictor,
        )
    finally:
        OBS.disable_profiling()
        if attached is not None and OBS.sink is attached:
            detach_sink()
    stats = OBS.timers.snapshot()
    total = sum(s.total_s for s in stats)
    stages = [
        {
            "stage": s.name,
            "calls": s.count,
            "total_s": round(s.total_s, 6),
            "mean_s": round(s.mean_s, 6),
            "share": round(s.total_s / total, 4) if total > 0 else 0.0,
        }
        for s in stats
    ]
    return {
        "profile": "per-stage wall clock, one serial compare run",
        "jobs": jobs,
        "testbed": testbed,
        "seed": seed,
        "predictor": _predictor_name(predictor),
        "stages": stages,
        "counters": OBS.counters.snapshot(),
        "summaries": {m: r.summary() for m, r in results.items()},
        "predictor_cache": cache.stats(),
        "total_s": round(total, 6),
    }
