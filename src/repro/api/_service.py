"""Service-mode and takeover-drill surface of the facade.

Internal module — import these through :mod:`repro.api`.  The
implementations live in :mod:`repro.service.daemon` and
:mod:`repro.faults.takeover`; this module pins which of their names the
facade re-exports.
"""

from __future__ import annotations

from ..faults.takeover import TakeoverReport, takeover_run
from ..service.daemon import PlacementUpdate, SchedulerService, open_service

__all__ = [
    "open_service",
    "takeover_run",
    "PlacementUpdate",
    "SchedulerService",
    "TakeoverReport",
]
