"""Invariant-checked runs and differential replay.

Internal module — import these through :mod:`repro.api`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..experiments.runner import METHOD_ORDER, PredictorCache
from ..experiments.scenarios import Scenario
from ..faults.plan import FaultPlan
from ..forecast.base import Predictor
from ..obs import OBS, detach_sink
from ._run import attach_sink, compare

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..check import CheckReport, ReplayReport

__all__ = ["check_run", "replay"]


def check_run(
    *,
    scenario: Scenario | None = None,
    jobs: int = 200,
    testbed: str = "cluster",
    seed: int = 7,
    methods: Iterable[str] = METHOD_ORDER,
    predictor_cache: PredictorCache | None = None,
    predictor: "str | Predictor" = "corp",
    fault_plan: FaultPlan | None = None,
    rules: Iterable[str] | None = None,
    tolerance: float = 1e-6,
    differential: bool = False,
    events: str | None = None,
) -> "CheckReport":
    """Run every method with the runtime invariant checker installed.

    Same workload semantics as :func:`compare` (forced serial — checker
    state is process-local), with the :mod:`repro.check` rules evaluated
    at every decision point: capacity conservation, job conservation
    under faults, Eq. 21 gate soundness, packing feasibility and Eq. 22
    optimality.  ``differential=True`` adds the per-slot
    reference-vs-vectorized execution diff; ``rules=`` selects an
    explicit subset.  ``events=`` additionally captures the run's event
    stream (with the ``run_meta`` record :func:`replay` needs) to a
    JSONL file.

    The checker is read-only: the returned report's ``summaries`` are
    byte-identical to what an unchecked :func:`compare` would produce
    (modulo ``allocation_latency_s``, which is measured from the wall
    clock and so differs between *any* two runs).
    """
    from ..check import CHECK, CheckReport, InvariantChecker

    rule_set = tuple(rules) if rules is not None else None
    if differential:
        if rule_set is None:
            from ..check import DEFAULT_RULES

            rule_set = DEFAULT_RULES
        if "differential" not in rule_set:
            rule_set = rule_set + ("differential",)
    checker = InvariantChecker(rules=rule_set, tolerance=tolerance)
    attached = attach_sink(events) if events is not None else None
    try:
        with CHECK.session(checker):
            results = compare(
                scenario=scenario,
                jobs=jobs,
                testbed=testbed,
                seed=seed,
                methods=methods,
                workers=0,
                predictor_cache=predictor_cache,
                predictor=predictor,
                fault_plan=fault_plan,
            )
    finally:
        if attached is not None and OBS.sink is attached:
            detach_sink()
    return CheckReport(
        violations=list(checker.violations),
        checks=dict(checker.checks),
        n_violations=checker.n_violations,
        summaries={m: r.summary() for m, r in results.items()},
    )


def replay(
    *,
    events: str,
    methods: Iterable[str] | None = None,
    tolerance: float = 1e-9,
    max_mismatches: int = 100,
) -> "ReplayReport":
    """Differential replay: re-run a capture and diff the event streams.

    ``events`` must be a JSONL capture with a ``run_meta`` record (any
    v1.3+ capture from :func:`compare` or :func:`check_run` taken while
    a sink was attached).  The scenario is rebuilt from that record —
    including the fault plan and the predictor family — run live into
    an in-memory sink, and the per-slot state (``slot`` events) plus
    every placement decision is compared record-by-record.  The
    simulator is deterministic, so a clean replay reproduces the
    capture exactly; the report pinpoints the first diverging
    slot/field otherwise.
    """
    from ..check.replay import replay_events

    return replay_events(
        events=events,
        methods=methods,
        tolerance=tolerance,
        max_mismatches=max_mismatches,
    )
