"""Fault-plan helpers of the facade.

Internal module — import these through :mod:`repro.api`.
"""

from __future__ import annotations

from ..experiments.scenarios import Scenario
from ..faults.plan import FaultPlan

__all__ = ["inject"]


def inject(*, scenario: Scenario, plan: FaultPlan | None) -> Scenario:
    """A copy of ``scenario`` replaying ``plan`` (``None`` removes one).

    The returned scenario runs the same workload under the plan's fault
    schedule; the original is untouched (scenarios are immutable).
    """
    return scenario.with_fault_plan(plan)
