"""CORP's unused-resource prediction pipeline (paper Section III-A).

Per resource type, a from-scratch DNN (Table II: 4 layers × 50 units,
sigmoid) maps a job's utilization over the last ``Δ`` slots to its
*unused fraction* of the request at horizon ``t + L``; an HMM predicts
the next fluctuation symbol and adjusts the estimate by
``± min(h − m, m − l)`` (Section III-A.1b).  Working in fractions of the
request makes one network serve jobs of every size; amounts are
recovered by multiplying with the job's request.

The confidence-interval step (Eq. 18-19) and preemption gate (Eq. 21)
operate at VM granularity in the scheduler (:mod:`repro.core.corp`),
where predictions are aggregated and compared to actuals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.resources import NUM_RESOURCES, ResourceKind, ResourceVector
from ..hmm.fluctuation import FluctuationPredictor
from ..obs import OBS
from ..nn.losses import MSE, pinball
from ..nn.network import FeedForwardNetwork
from ..nn.optimizers import Adam
from ..nn.training import TrainingConfig, train
from ..trace.records import Trace
from .config import CorpConfig

__all__ = ["CorpPredictor", "build_training_set"]


def build_training_set(
    trace: Trace,
    kind: ResourceKind,
    input_slots: int,
    horizon: int,
    *,
    target: str = "window_min",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sliding-window supervised pairs from a historical trace.

    Returns ``(X, y, requests)``: inputs are ``input_slots`` of
    utilization, targets the unused *fraction* over the prediction
    window ``ΔW = (t, t+L]`` (Section III-A), and ``requests`` the
    per-sample request amount (to convert validation errors back to
    absolute units).  Records shorter than ``input_slots + horizon``
    contribute nothing.

    ``target`` selects what "the amount of temporarily-unused resource
    in a time window" means:

    * ``"window_min"`` (default) — the window's minimum unused fraction:
      the amount guaranteed available across the whole window, i.e. the
      safely *allocatable* amount.  Conservative by construction, which
      is what lets the Eq. 21 gate (``Pr(0 ≤ δ < ε) ≥ P_th``) pass for
      an accurate predictor.
    * ``"window_mean"`` — the window's mean unused fraction.
    * ``"point"`` — the unused fraction at exactly ``t + L``.
    """
    if target not in ("window_min", "window_mean", "point"):
        raise ValueError(f"unknown prediction target {target!r}")
    xs: list[np.ndarray] = []
    ys: list[float] = []
    reqs: list[float] = []
    k = int(kind)
    for record in trace:
        util = record.utilization_series()[:, k]
        n = util.size
        span = input_slots + horizon
        if n < span:
            continue
        for start in range(n - span + 1):
            window = util[start + input_slots : start + span]
            if target == "window_min":
                y = 1.0 - float(window.max())
            elif target == "window_mean":
                y = 1.0 - float(window.mean())
            else:
                y = 1.0 - float(window[-1])
            xs.append(util[start : start + input_slots])
            ys.append(y)
            reqs.append(record.requested[kind])
    if not xs:
        return (
            np.zeros((0, input_slots)),
            np.zeros((0, 1)),
            np.zeros(0),
        )
    return np.asarray(xs), np.asarray(ys)[:, None], np.asarray(reqs)


@dataclass
class CorpPredictor:
    """Fit-once DNN + HMM predictor over all resource types."""

    config: CorpConfig = field(default_factory=CorpConfig)
    networks: list[FeedForwardNetwork] = field(default_factory=list)
    fluctuation: list[FluctuationPredictor] = field(default_factory=list)
    #: Per-resource validation errors (actual − predicted unused
    #: fraction of the request) collected during fit — seeds the
    #: scheduler's Eq. 20/21 trackers so the gate has "historical data
    #: with prediction error samples" from the start, as the paper
    #: assumes.
    seed_errors: list[np.ndarray] = field(default_factory=list)
    #: Per-resource mean unused fraction of the training data — the
    #: prior used for jobs too young to feed the DNN.
    prior_unused_fraction: np.ndarray = field(
        default_factory=lambda: np.zeros(NUM_RESOURCES)
    )

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has produced all per-resource models."""
        return len(self.networks) == NUM_RESOURCES

    def fit(self, history: Trace) -> "CorpPredictor":
        """Offline phase: train one DNN and one HMM per resource type."""
        with OBS.span("predictor:fit"):
            return self._fit(history)

    def _fit(self, history: Trace) -> "CorpPredictor":
        cfg = self.config
        self.networks = []
        self.fluctuation = []
        self.seed_errors = []
        self.prior_unused_fraction = np.zeros(NUM_RESOURCES)
        for kind in ResourceKind:
            x, y, reqs = build_training_set(
                history,
                kind,
                cfg.input_slots,
                cfg.window_slots,
                target=cfg.prediction_target,
            )
            net = FeedForwardNetwork(
                cfg.dnn_layer_sizes(), seed=cfg.seed + int(kind)
            )
            loss = MSE if cfg.train_quantile is None else pinball(cfg.train_quantile)
            training = None
            if x.shape[0] >= 8:
                training = train(
                    net,
                    x,
                    y,
                    TrainingConfig(
                        max_epochs=cfg.train_max_epochs,
                        batch_size=cfg.train_batch_size,
                        patience=8,
                        seed=cfg.seed + 17 * (int(kind) + 1),
                    ),
                    optimizer=Adam(0.01),
                    loss=loss,
                )
                pred = net.predict(x).ravel()
                # Fraction-of-request errors: the same commitment-fraction
                # units the scheduler's Eq. 20 trackers use.
                self.seed_errors.append(y.ravel() - pred)
            else:
                self.seed_errors.append(np.zeros(0))
            if y.size:
                # Prior at the same conservatism level the DNN trains to.
                q = cfg.train_quantile if cfg.train_quantile is not None else 0.5
                self.prior_unused_fraction[int(kind)] = float(np.quantile(y, q))
            self.networks.append(net)

            # HMM over job-level unused-fraction series.
            fp = FluctuationPredictor(
                window=cfg.window_slots,
                mode=cfg.hmm_mode,  # type: ignore[arg-type]
                seed=cfg.seed + 101 * (int(kind) + 1),
            )
            histories = [
                1.0 - r.utilization_series()[:, int(kind)]
                for r in history
                if r.n_samples >= 2 * cfg.window_slots
            ]
            if histories:
                fp.fit(histories)
                self.fluctuation.append(fp)
            else:
                self.fluctuation.append(fp)  # unfitted: corrections disabled
            if OBS.enabled:
                errors = self.seed_errors[-1]
                OBS.emit(
                    "predictor_fit",
                    resource=kind.label.lower(),
                    n_samples=int(x.shape[0]),
                    epochs=training.n_epochs if training else 0,
                    stopped_early=bool(training.stopped_early)
                    if training else False,
                    val_loss=float(training.final_val_loss)
                    if training else None,
                    rmse=float(np.sqrt(np.mean(errors**2)))
                    if errors.size else None,
                    hmm_fitted=bool(fp.fitted),
                )
        return self

    # ------------------------------------------------------------------
    def _predict_fraction(self, kind: int, util: np.ndarray) -> float:
        """DNN unused-fraction forecast from a (possibly short) history."""
        cfg = self.config
        window = util[-cfg.input_slots :]
        if window.size < cfg.input_slots:
            # Left-pad young jobs with their earliest observed utilization.
            pad = np.full(cfg.input_slots - window.size, window[0])
            window = np.concatenate([pad, window])
        return float(self.networks[kind].predict(window[None, :])[0, 0])

    def predict_job_unused(
        self, util_history: np.ndarray, request: ResourceVector
    ) -> ResourceVector:
        """Predicted unused amount of one job at ``t + L``, HMM-corrected.

        ``util_history`` is the job's per-slot utilization ``(n, l)``
        (fractions of its request).  Jobs with fewer than
        ``min_history_slots`` observations fall back to the training
        prior (a discounted mean unused fraction): evidence-free but far
        closer than predicting zero, which would register as a large
        under-prediction and poison the Eq. 20 error statistics.
        """
        if not self.fitted:
            raise RuntimeError("predictor not fitted")
        cfg = self.config
        util_history = np.atleast_2d(np.asarray(util_history, dtype=np.float64))
        out = np.zeros(NUM_RESOURCES)
        if OBS.enabled:
            OBS.count("predictor.predict")
        if util_history.shape[0] < cfg.min_history_slots:
            # Quantile prior: already at the trained conservatism level.
            if OBS.enabled:
                OBS.count("predictor.prior_fallback")
            return ResourceVector(self.prior_unused_fraction * request.as_array())
        for kind in range(NUM_RESOURCES):
            util = util_history[:, kind]
            fraction = self._predict_fraction(kind, util)
            if cfg.use_hmm_correction and self.fluctuation[kind].fitted:
                fp = self.fluctuation[kind]
                recent_unused = 1.0 - util[-3 * cfg.window_slots :]
                symbol = fp.predict_next_symbol(recent_unused)
                fraction += fp.correction(symbol)
                if OBS.enabled:
                    OBS.count("predictor.hmm_correction")
            out[kind] = np.clip(fraction, 0.0, 1.0) * request[ResourceKind(kind)]
        return ResourceVector(out)

    # ------------------------------------------------------------------
    def validation_rmse(self) -> np.ndarray:
        """Per-resource RMSE of the seed errors, in request fractions."""
        return np.array(
            [
                float(np.sqrt(np.mean(e**2))) if e.size else 0.0
                for e in self.seed_errors
            ]
        )
