"""CORP's unused-resource prediction pipeline (paper Section III-A).

Per resource type, a from-scratch DNN (Table II: 4 layers × 50 units,
sigmoid) maps a job's utilization over the last ``Δ`` slots to its
*unused fraction* of the request at horizon ``t + L``; an HMM predicts
the next fluctuation symbol and adjusts the estimate by
``± min(h − m, m − l)`` (Section III-A.1b).  Working in fractions of the
request makes one network serve jobs of every size; amounts are
recovered by multiplying with the job's request.

The confidence-interval step (Eq. 18-19) and preemption gate (Eq. 21)
operate at VM granularity in the scheduler (:mod:`repro.core.corp`),
where predictions are aggregated and compared to actuals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.resources import NUM_RESOURCES, ResourceKind, ResourceVector
from ..forecast.base import Predictor, window_samples
from ..hmm.fluctuation import FluctuationPredictor
from ..hmm.model import HiddenMarkovModel
from ..obs import OBS
from ..nn.losses import MSE, pinball
from ..nn.network import FeedForwardNetwork
from ..nn.optimizers import Adam
from ..nn.parallel import parallel_map
from ..nn.training import TrainingConfig, train
from ..trace.records import Trace
from .config import CorpConfig

__all__ = ["CorpPredictor", "build_training_set"]


def build_training_set(
    trace: Trace,
    kind: ResourceKind,
    input_slots: int,
    horizon: int,
    *,
    target: str = "window_min",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sliding-window supervised pairs from a historical trace.

    Returns ``(X, y, requests)``: inputs are ``input_slots`` of
    utilization, targets the unused *fraction* over the prediction
    window ``ΔW = (t, t+L]`` (Section III-A), and ``requests`` the
    per-sample request amount (to convert validation errors back to
    absolute units).  Records shorter than ``input_slots + horizon``
    contribute nothing.

    The sample loop itself lives in
    :func:`repro.forecast.base.window_samples`, which every predictor
    family shares — identical numerics across the zoo.  ``target``
    selects what "the amount of temporarily-unused resource in a time
    window" means (``"window_min"`` / ``"window_mean"`` / ``"point"``;
    see :func:`~repro.forecast.base.window_samples`).
    """
    xs: list[np.ndarray] = []
    ys: list[float] = []
    reqs: list[float] = []
    for window, y, request in window_samples(
        trace, int(kind), input_slots, horizon, target=target
    ):
        xs.append(window)
        ys.append(y)
        reqs.append(request)
    if not xs:
        return (
            np.zeros((0, input_slots)),
            np.zeros((0, 1)),
            np.zeros(0),
        )
    return np.asarray(xs), np.asarray(ys)[:, None], np.asarray(reqs)


@dataclass(frozen=True)
class _ResourceFitTask:
    """Everything one resource type's fit needs — plain picklable data.

    Per-resource seeds (net init ``seed + kind``, training shuffle
    ``seed + 17·(kind+1)``, HMM ``seed + 101·(kind+1)``) make the three
    fits fully independent, which is what lets :func:`parallel_map` fan
    them across worker processes bit-identically to the serial loop.
    """

    config: CorpConfig
    kind: int
    x: np.ndarray
    y: np.ndarray
    histories: tuple[np.ndarray, ...]
    warm_weights: list | None = None
    warm_model: HiddenMarkovModel | None = None


@dataclass
class _ResourceFitResult:
    """One resource type's fitted models plus telemetry for the parent."""

    net: FeedForwardNetwork
    fluctuation: FluctuationPredictor
    seed_errors: np.ndarray
    prior: float
    info: dict


def _fit_one_resource(task: _ResourceFitTask) -> _ResourceFitResult:
    """Fit one resource type's DNN + HMM (module-level: pool-callable)."""
    cfg = task.config
    kind = task.kind
    x, y = task.x, task.y
    net = FeedForwardNetwork(cfg.dnn_layer_sizes(), seed=cfg.seed + kind)
    if task.warm_weights is not None:
        # Warm start: begin from the donor's converged weights; the
        # validation-convergence early stop then spends epochs only on
        # what the shifted training window actually changed.
        net.set_weights(task.warm_weights)
    loss = MSE if cfg.train_quantile is None else pinball(cfg.train_quantile)
    training = None
    if x.shape[0] >= 8:
        training = train(
            net,
            x,
            y,
            TrainingConfig(
                max_epochs=cfg.train_max_epochs,
                batch_size=cfg.train_batch_size,
                patience=8,
                seed=cfg.seed + 17 * (kind + 1),
            ),
            optimizer=Adam(0.01),
            loss=loss,
        )
        pred = net.predict(x).ravel()
        # Fraction-of-request errors: the same commitment-fraction
        # units the scheduler's Eq. 20 trackers use.
        seed_errors = y.ravel() - pred
    else:
        seed_errors = np.zeros(0)
    prior = 0.0
    if y.size:
        # Prior at the same conservatism level the DNN trains to.
        q = cfg.train_quantile if cfg.train_quantile is not None else 0.5
        prior = float(np.quantile(y, q))

    # HMM over job-level unused-fraction series.
    fp = FluctuationPredictor(
        window=cfg.window_slots,
        mode=cfg.hmm_mode,  # type: ignore[arg-type]
        seed=cfg.seed + 101 * (kind + 1),
    )
    if task.histories:
        fp.fit(task.histories, init_model=task.warm_model)
    # else: unfitted — corrections disabled
    info = {
        "n_samples": int(x.shape[0]),
        "epochs": training.n_epochs if training else 0,
        "stopped_early": bool(training.stopped_early) if training else False,
        "val_loss": float(training.final_val_loss) if training else None,
        "warm_start": task.warm_weights is not None,
    }
    return _ResourceFitResult(
        net=net, fluctuation=fp, seed_errors=seed_errors, prior=prior, info=info
    )


@dataclass
class CorpPredictor(Predictor):
    """Fit-once DNN + HMM predictor over all resource types.

    Registered as family ``"corp"`` — the default implementation of the
    :class:`~repro.forecast.base.Predictor` protocol.  Serialization
    goes through :mod:`repro.core.persistence` (DNN weights, HMM
    parameters), not the generic payload path.
    """

    family = "corp"
    capabilities = frozenset({"serialize", "warm_start", "parallel_fit"})

    config: CorpConfig = field(default_factory=CorpConfig)
    networks: list[FeedForwardNetwork] = field(default_factory=list)
    fluctuation: list[FluctuationPredictor] = field(default_factory=list)
    #: Per-resource validation errors (actual − predicted unused
    #: fraction of the request) collected during fit — seeds the
    #: scheduler's Eq. 20/21 trackers so the gate has "historical data
    #: with prediction error samples" from the start, as the paper
    #: assumes.
    seed_errors: list[np.ndarray] = field(default_factory=list)
    #: Per-resource mean unused fraction of the training data — the
    #: prior used for jobs too young to feed the DNN.
    prior_unused_fraction: np.ndarray = field(
        default_factory=lambda: np.zeros(NUM_RESOURCES)
    )

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has produced all per-resource models."""
        return len(self.networks) == NUM_RESOURCES

    def fit(
        self,
        history: Trace,
        *,
        warm_start: "CorpPredictor | None" = None,
        workers: int = 0,
    ) -> "CorpPredictor":
        """Offline phase: train one DNN and one HMM per resource type.

        ``warm_start`` seeds each resource's DNN weights and HMM
        parameters from a previously fitted predictor (typically the
        nearest artifact in a :class:`~repro.core.predictor_store.
        PredictorStore`) before training — the validation-convergence
        early stop then skips the epochs the donor already paid for.
        The donor must share the architecture; incompatible or unfitted
        donors are ignored.  Warm-started fits converge to (slightly)
        different weights than cold fits, so warm starting is strictly
        opt-in.

        ``workers >= 2`` fans the per-resource fits (independent by
        per-resource seeding) across worker processes via
        :func:`repro.nn.parallel.parallel_map`; results are
        bit-identical to the serial loop.
        """
        with OBS.span("predictor:fit"):
            return self._fit(history, warm_start=warm_start, workers=workers)

    def _fit(
        self,
        history: Trace,
        *,
        warm_start: "CorpPredictor | None" = None,
        workers: int = 0,
    ) -> "CorpPredictor":
        cfg = self.config
        donor = warm_start
        if donor is not None and (
            not donor.fitted
            or donor.config.dnn_layer_sizes() != cfg.dnn_layer_sizes()
        ):
            donor = None
        tasks: list[_ResourceFitTask] = []
        for kind in ResourceKind:
            x, y, _reqs = build_training_set(
                history,
                kind,
                cfg.input_slots,
                cfg.window_slots,
                target=cfg.prediction_target,
            )
            histories = tuple(
                1.0 - r.utilization_series()[:, int(kind)]
                for r in history
                if r.n_samples >= 2 * cfg.window_slots
            )
            warm_weights = warm_model = None
            if donor is not None:
                warm_weights = donor.networks[int(kind)].get_weights()
                donor_fp = donor.fluctuation[int(kind)]
                if donor_fp.fitted:
                    warm_model = donor_fp.model
            tasks.append(
                _ResourceFitTask(
                    config=cfg,
                    kind=int(kind),
                    x=x,
                    y=y,
                    histories=histories,
                    warm_weights=warm_weights,
                    warm_model=warm_model,
                )
            )
        if donor is not None:
            OBS.count("predictor.warm_start")
        results = parallel_map(_fit_one_resource, tasks, workers=workers)
        self.networks = [r.net for r in results]
        self.fluctuation = [r.fluctuation for r in results]
        self.seed_errors = [r.seed_errors for r in results]
        self.prior_unused_fraction = np.array([r.prior for r in results])
        if OBS.enabled:
            for kind, result in zip(ResourceKind, results):
                errors = result.seed_errors
                OBS.emit(
                    "predictor_fit",
                    resource=kind.label.lower(),
                    rmse=float(np.sqrt(np.mean(errors**2)))
                    if errors.size else None,
                    hmm_fitted=bool(result.fluctuation.fitted),
                    **result.info,
                )
        return self

    # ------------------------------------------------------------------
    def _predict_fraction(self, kind: int, util: np.ndarray) -> float:
        """DNN unused-fraction forecast from a (possibly short) history."""
        cfg = self.config
        window = util[-cfg.input_slots :]
        if window.size < cfg.input_slots:
            # Left-pad young jobs with their earliest observed utilization.
            pad = np.full(cfg.input_slots - window.size, window[0])
            window = np.concatenate([pad, window])
        return float(self.networks[kind].predict(window[None, :])[0, 0])

    def predict_job_unused(
        self, util_history: np.ndarray, request: ResourceVector
    ) -> ResourceVector:
        """Predicted unused amount of one job at ``t + L``, HMM-corrected.

        ``util_history`` is the job's per-slot utilization ``(n, l)``
        (fractions of its request).  Jobs with fewer than
        ``min_history_slots`` observations fall back to the training
        prior (a discounted mean unused fraction): evidence-free but far
        closer than predicting zero, which would register as a large
        under-prediction and poison the Eq. 20 error statistics.
        """
        if not self.fitted:
            raise RuntimeError("predictor not fitted")
        cfg = self.config
        util_history = np.atleast_2d(np.asarray(util_history, dtype=np.float64))
        out = np.zeros(NUM_RESOURCES)
        if OBS.enabled:
            OBS.count("predictor.predict")
        if util_history.shape[0] < cfg.min_history_slots:
            # Quantile prior: already at the trained conservatism level.
            if OBS.enabled:
                OBS.count("predictor.prior_fallback")
            return ResourceVector(self.prior_unused_fraction * request.as_array())
        for kind in range(NUM_RESOURCES):
            util = util_history[:, kind]
            fraction = self._predict_fraction(kind, util)
            if cfg.use_hmm_correction and self.fluctuation[kind].fitted:
                fp = self.fluctuation[kind]
                recent_unused = 1.0 - util[-3 * cfg.window_slots :]
                symbol = fp.predict_next_symbol(recent_unused)
                fraction += fp.correction(symbol)
                if OBS.enabled:
                    OBS.count("predictor.hmm_correction")
            out[kind] = np.clip(fraction, 0.0, 1.0) * request[ResourceKind(kind)]
        return ResourceVector(out)
