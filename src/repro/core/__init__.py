"""CORP — the paper's primary contribution.

DNN + HMM unused-resource prediction with confidence intervals and the
Eq. 21 preemption gate, complementary job packing, and most-matched VM
selection, assembled into :class:`CorpScheduler`.
"""

from .config import CorpConfig
from .corp import CorpScheduler
from .packing import (
    JobEntity,
    deviation,
    dominant_resource,
    pack_jobs,
    singleton_entities,
)
from .persistence import load_predictor, save_predictor
from .predictor import CorpPredictor, build_training_set
from .preemption import PreemptionGate
from .provisioning import ProvisioningSchedulerBase
from .vm_selection import select_most_matched, select_random_feasible, unused_volume

__all__ = [
    "CorpConfig",
    "CorpScheduler",
    "JobEntity",
    "deviation",
    "dominant_resource",
    "pack_jobs",
    "singleton_entities",
    "CorpPredictor",
    "build_training_set",
    "load_predictor",
    "save_predictor",
    "PreemptionGate",
    "ProvisioningSchedulerBase",
    "select_most_matched",
    "select_random_feasible",
    "unused_volume",
]
