"""Most-matched VM selection via unused-resource volume (paper Eq. 22).

Among VMs whose available resources satisfy a job entity's demand, CORP
picks the one with the *smallest* unused-resource volume

.. math:: volume_j = \\sum_k \\hat r_{jk} / C'_k

where ``C'`` is the elementwise maximum capacity across all VMs — the
least-remaining feasible VM, so big holes stay available for big
entities (best-fit in volume space; Fig. 5's worked example).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..cluster.machine import VirtualMachine
from ..cluster.resources import NUM_RESOURCES, ResourceVector

__all__ = [
    "unused_volume",
    "min_feasible_volume",
    "select_most_matched",
    "select_random_feasible",
    "tie_window",
    "CandidateSet",
]

#: Feasibility slack, matching :meth:`ResourceVector.fits_within`.
_FIT_ATOL = 1e-9
#: Relative volume tie window (see :func:`tie_window`).
_TIE_RTOL = 1e-12


def tie_window(best: float) -> float:
    """Width of the volume tie window around ``best``.

    Relative (``1e-12 * |best|``) rather than absolute: volumes scale
    with ``1/C'``, so an absolute ``1e-12`` window that is a genuine
    rounding allowance at unit magnitudes becomes either meaninglessly
    tight or spuriously wide once capacities span hyperscale ranges.  A
    relative window makes tie-breaking scale-invariant — multiplying
    every availability row by a constant leaves the chosen VM unchanged.
    At ``best == 0`` the window is zero and only exact ties resolve by
    ``vm_id``, which is the deterministic case that matters.
    """
    return _TIE_RTOL * abs(best)


class CandidateSet:
    """A candidate pool as one ``(n_vms, l)`` availability matrix.

    The vectorized counterpart of the ``[(vm, ResourceVector), ...]``
    candidate lists: feasibility scans, Eq. 22 volume ranking and the
    baselines' uniform-random choice become single matrix expressions
    instead of per-VM Python loops.  The schedulers build one set per
    placement class per ``place_jobs`` call and keep its rows current
    with :meth:`consume` as placements land, mirroring the incremental
    ``execute_slot`` vectorization of PR 1.

    Iteration yields ``(vm, ResourceVector)`` pairs — the exact shape
    the scalar reference functions, the invariant checker and custom
    ``choose_vm`` overrides consume — so a ``CandidateSet`` can stand in
    anywhere a candidate list is expected.  The yielded vectors are
    snapshots (copies) of the current rows.

    Selection semantics match the scalar loop: smallest Eq. 22 volume
    over the feasible rows, ties within the scale-invariant
    :func:`tie_window` broken toward the lowest ``vm_id``.  (The loop
    applies its tie tolerance pairwise against a running best, which
    could chain across candidates closer than the window apart without
    being exactly tied; real capacity data never produces such
    near-ties, and exact ties — the case that matters for determinism —
    resolve identically.)
    """

    __slots__ = ("vms", "matrix", "_ids", "_rows")

    def __init__(
        self, vms: Sequence[VirtualMachine], matrix: np.ndarray
    ) -> None:
        self.vms = list(vms)
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.size == 0:
            matrix = np.zeros((len(self.vms), NUM_RESOURCES))
        if matrix.shape != (len(self.vms), NUM_RESOURCES):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match "
                f"{len(self.vms)} VMs x {NUM_RESOURCES} resources"
            )
        self.matrix = matrix.copy()
        self._ids = np.array([vm.vm_id for vm in self.vms], dtype=np.int64)
        self._rows = {vm.vm_id: i for i, vm in enumerate(self.vms)}

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[tuple[VirtualMachine, ResourceVector]]
    ) -> "CandidateSet":
        """Build from a scalar-style candidate list."""
        pairs = list(pairs)
        vms = [vm for vm, _ in pairs]
        matrix = (
            np.array([avail.as_array() for _, avail in pairs])
            if pairs else np.zeros((0, NUM_RESOURCES))
        )
        return cls(vms, matrix)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.vms)

    def __iter__(self) -> Iterator[tuple[VirtualMachine, ResourceVector]]:
        for i, vm in enumerate(self.vms):
            yield vm, ResourceVector(self.matrix[i])

    def availability(self, vm: VirtualMachine) -> ResourceVector | None:
        """Current availability row of ``vm`` (None if not a candidate)."""
        row = self._rows.get(vm.vm_id)
        if row is None:
            return None
        return ResourceVector(self.matrix[row])

    # ------------------------------------------------------------------
    def consume(self, vm: VirtualMachine, amount: np.ndarray) -> None:
        """Decrement ``vm``'s row by ``amount``, clipping at zero.

        Keeps the matrix in sync with a placement that just landed —
        the incremental update that lets one matrix serve a whole
        ``place_jobs`` call instead of being rebuilt per entity.
        """
        row = self._rows.get(vm.vm_id)
        if row is None:  # pragma: no cover - placement outside the pool
            return
        np.clip(self.matrix[row] - amount, 0.0, None, out=self.matrix[row])

    # ------------------------------------------------------------------
    def feasible_mask(self, demand: ResourceVector) -> np.ndarray:
        """Boolean row mask of candidates the demand fits within."""
        return (demand.as_array() <= self.matrix + _FIT_ATOL).all(axis=1)

    def feasible_count(self, demand: ResourceVector) -> int:
        """How many candidates the demand fits within."""
        return int(self.feasible_mask(demand).sum())

    def volumes(self, reference: ResourceVector) -> np.ndarray:
        """Eq. 22 volume of every row (one matrix-vector product)."""
        ref = reference.as_array()
        inv = np.zeros(NUM_RESOURCES)
        nz = ref > 0
        inv[nz] = 1.0 / ref[nz]
        return self.matrix @ inv

    # ------------------------------------------------------------------
    def select_most_matched(
        self, demand: ResourceVector, reference: ResourceVector
    ) -> VirtualMachine | None:
        """Vectorized Eq. 22 most-matched choice (see class docstring)."""
        mask = self.feasible_mask(demand)
        if not mask.any():
            return None
        volumes = self.volumes(reference)
        best = volumes[mask].min()
        tied = mask & (volumes <= best + tie_window(best))
        (indices,) = np.nonzero(tied)
        return self.vms[indices[np.argmin(self._ids[indices])]]

    def min_feasible_volume(
        self, demand: ResourceVector, reference: ResourceVector
    ) -> float | None:
        """Vectorized :func:`min_feasible_volume` (None if none feasible)."""
        mask = self.feasible_mask(demand)
        if not mask.any():
            return None
        return float(self.volumes(reference)[mask].min())

    def select_random_feasible(
        self, demand: ResourceVector, rng: np.random.Generator
    ) -> VirtualMachine | None:
        """Vectorized uniform-random feasible choice.

        Consumes exactly one ``rng.integers(n_feasible)`` draw — the
        same stream usage as the scalar loop, so baselines produce
        identical placements either way.
        """
        (indices,) = np.nonzero(self.feasible_mask(demand))
        if indices.size == 0:
            return None
        return self.vms[indices[int(rng.integers(indices.size))]]


def unused_volume(available: ResourceVector, reference: ResourceVector) -> float:
    """Eq. 22: capacity-normalized total of an availability vector."""
    return float(available.normalized_by(reference).as_array().sum())


def min_feasible_volume(
    demand: ResourceVector,
    candidates: Sequence[tuple[VirtualMachine, ResourceVector]],
    reference: ResourceVector,
) -> float | None:
    """Smallest Eq. 22 volume over the feasible candidates (None if none).

    The optimality bound the invariant checker (:mod:`repro.check`)
    holds a :func:`select_most_matched` choice to: whatever VM was
    picked, no feasible candidate may have had a strictly smaller
    volume.
    """
    best: float | None = None
    for _, available in candidates:
        if not demand.fits_within(available):
            continue
        volume = unused_volume(available, reference)
        if best is None or volume < best:
            best = volume
    return best


def select_most_matched(
    demand: ResourceVector,
    candidates: Sequence[tuple[VirtualMachine, ResourceVector]],
    reference: ResourceVector,
) -> VirtualMachine | None:
    """Feasible VM with the smallest availability volume, or None.

    ``candidates`` pairs each VM with the availability vector relevant to
    the placement class being attempted (predicted unused for
    opportunistic placements, unallocated capacity for primary ones).
    Ties break toward the lower VM id for determinism.

    This per-VM loop is the *reference* semantics: the schedulers' hot
    path runs :meth:`CandidateSet.select_most_matched` instead, and the
    invariant checker's volume/differential rules re-derive choices
    through this function — a corrupted vectorized selector therefore
    cannot hide by also being used as its own oracle.
    """
    best_vm: VirtualMachine | None = None
    best_volume = np.inf
    for vm, available in candidates:
        if not demand.fits_within(available):
            continue
        volume = unused_volume(available, reference)
        if best_vm is None:
            best_volume = volume
            best_vm = vm
            continue
        tol = tie_window(best_volume)
        if volume < best_volume - tol or (
            abs(volume - best_volume) <= tol and vm.vm_id < best_vm.vm_id
        ):
            best_volume = volume
            best_vm = vm
    return best_vm


def select_random_feasible(
    demand: ResourceVector,
    candidates: Sequence[tuple[VirtualMachine, ResourceVector]],
    rng: np.random.Generator,
) -> VirtualMachine | None:
    """Uniformly random feasible VM — the baselines' placement rule.

    Section IV: RCCR, CloudScale and DRA all "randomly chose a VM that
    can satisfy the resource demands of the job".
    """
    feasible = [vm for vm, available in candidates if demand.fits_within(available)]
    if not feasible:
        return None
    return feasible[int(rng.integers(len(feasible)))]
