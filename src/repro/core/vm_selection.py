"""Most-matched VM selection via unused-resource volume (paper Eq. 22).

Among VMs whose available resources satisfy a job entity's demand, CORP
picks the one with the *smallest* unused-resource volume

.. math:: volume_j = \\sum_k \\hat r_{jk} / C'_k

where ``C'`` is the elementwise maximum capacity across all VMs — the
least-remaining feasible VM, so big holes stay available for big
entities (best-fit in volume space; Fig. 5's worked example).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..cluster.machine import VirtualMachine
from ..cluster.resources import ResourceVector

__all__ = [
    "unused_volume",
    "min_feasible_volume",
    "select_most_matched",
    "select_random_feasible",
]


def unused_volume(available: ResourceVector, reference: ResourceVector) -> float:
    """Eq. 22: capacity-normalized total of an availability vector."""
    return float(available.normalized_by(reference).as_array().sum())


def min_feasible_volume(
    demand: ResourceVector,
    candidates: Sequence[tuple[VirtualMachine, ResourceVector]],
    reference: ResourceVector,
) -> float | None:
    """Smallest Eq. 22 volume over the feasible candidates (None if none).

    The optimality bound the invariant checker (:mod:`repro.check`)
    holds a :func:`select_most_matched` choice to: whatever VM was
    picked, no feasible candidate may have had a strictly smaller
    volume.
    """
    best: float | None = None
    for _, available in candidates:
        if not demand.fits_within(available):
            continue
        volume = unused_volume(available, reference)
        if best is None or volume < best:
            best = volume
    return best


def select_most_matched(
    demand: ResourceVector,
    candidates: Sequence[tuple[VirtualMachine, ResourceVector]],
    reference: ResourceVector,
) -> VirtualMachine | None:
    """Feasible VM with the smallest availability volume, or None.

    ``candidates`` pairs each VM with the availability vector relevant to
    the placement class being attempted (predicted unused for
    opportunistic placements, unallocated capacity for primary ones).
    Ties break toward the lower VM id for determinism.
    """
    best_vm: VirtualMachine | None = None
    best_volume = np.inf
    for vm, available in candidates:
        if not demand.fits_within(available):
            continue
        volume = unused_volume(available, reference)
        if volume < best_volume - 1e-12 or (
            abs(volume - best_volume) <= 1e-12
            and best_vm is not None
            and vm.vm_id < best_vm.vm_id
        ):
            best_volume = volume
            best_vm = vm
    return best_vm


def select_random_feasible(
    demand: ResourceVector,
    candidates: Sequence[tuple[VirtualMachine, ResourceVector]],
    rng: np.random.Generator,
) -> VirtualMachine | None:
    """Uniformly random feasible VM — the baselines' placement rule.

    Section IV: RCCR, CloudScale and DRA all "randomly chose a VM that
    can satisfy the resource demands of the job".
    """
    feasible = [vm for vm, available in candidates if demand.fits_within(available)]
    if not feasible:
        return None
    return feasible[int(rng.integers(len(feasible)))]
