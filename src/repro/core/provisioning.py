"""Shared plumbing of the predictive provisioning schedulers.

CORP, RCCR and CloudScale all follow the same per-window rhythm
(Section III / Section IV):

1. every ``L`` slots, poll each VM's usage history (one communication
   operation per VM) and forecast its unused resources for the window;
2. adjust the forecast conservatively (CI lower bound, padding, ...);
3. when new jobs arrive, build schedulable entities (packed pairs for
   CORP, singletons otherwise) and place each on a VM — first trying
   *unlocked predicted unused* resources (opportunistic placement, if
   the scheme supports reuse), then unallocated capacity (primary
   placement with a full reservation);
4. at slot end, compare forecasts to actual unused amounts (Eq. 20) and
   feed the error trackers.

Subclasses provide the forecast, the adjustment, the entity builder and
the VM-choice rule.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Sequence

import numpy as np

from ..check import CHECK
from ..cluster.job import Job
from ..cluster.machine import Placement, SlotOutcome, VirtualMachine
from ..cluster.resources import NUM_RESOURCES, ResourceVector
from ..cluster.scheduler import Scheduler
from ..cluster.shards import ShardedCandidateIndex
from ..obs import OBS
from .packing import JobEntity, singleton_entities
from .preemption import PreemptionGate
from .vm_selection import CandidateSet, select_random_feasible, unused_volume

#: The pool shapes the placement path selects from: the original
#: single-matrix set or its shard-partitioned hyperscale counterpart
#: (duck-compatible; see :mod:`repro.cluster.shards`).
CandidatePool = (CandidateSet, ShardedCandidateIndex)

__all__ = ["ProvisioningSchedulerBase"]


class ProvisioningSchedulerBase(Scheduler):
    """Window-driven predictive scheduler skeleton."""

    #: Whether the scheme reallocates predicted-unused resources
    #: opportunistically (CORP and RCCR do; CloudScale and DRA do not).
    supports_opportunistic: bool = True

    #: Whether ``choose_vm`` selects by Eq. 22 unused-resource volume.
    #: The invariant checker only asserts most-matched optimality for
    #: schedulers that claim it (CORP overrides this per its config).
    uses_volume_selection: bool = False

    #: Which realized aggregate the window forecast is compared against
    #: in the Eq. 20 error samples: the window's *mean* availability
    #: (what a forecast of "the amount of unused resource in ΔW" being
    #: consumed by expected-demand riders is accountable to) or its
    #: *min* (the guaranteed-throughout amount; stricter — ablation).
    actual_aggregate: str = "mean"

    def __init__(
        self,
        *,
        window_slots: int = 6,
        error_tolerance: float = 0.75,
        probability_threshold: float = 0.95,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if window_slots < 1:
            raise ValueError("window_slots must be >= 1")
        self.window_slots = window_slots
        self.error_tolerance = error_tolerance
        self.gate = PreemptionGate(error_tolerance, probability_threshold)
        #: Raw (pre-adjustment) forecast errors, the σ̂ source for the
        #: confidence interval (Eq. 18).  Kept separate from ``gate`` —
        #: estimating σ̂ from already-adjusted errors would feed the CI
        #: shift back into its own estimate.
        self.raw_errors = PreemptionGate(error_tolerance, probability_threshold)
        self.rng = np.random.default_rng(seed)
        #: Per-VM predicted unused still available for opportunistic
        #: placements in the current window (decremented on placement).
        self._available_unused: dict[int, np.ndarray] = {}
        #: Per-VM *adjusted* (conservative) forecast of the current
        #: window, kept for Eq. 20 error tracking and the Fig. 6 log —
        #: Eq. 19 redefines the forecast as the CI lower bound before
        #: Eq. 20's errors are taken, so conservatism is part of the
        #: tracked prediction (schemes without error handling, like DRA,
        #: track their raw forecast).
        self._window_forecast: dict[int, np.ndarray] = {}
        #: Commitment of each VM when its forecast was made, plus the
        #: primary job set it covered.  Error samples are only taken
        #: while the job set is unchanged: a completed job frees real
        #: capacity (an opportunistic rider is never squeezed by a
        #: completion) and a newly placed job was never part of the
        #: forecast, so churned windows carry no information about
        #: predictor quality.
        self._window_committed: dict[int, np.ndarray] = {}
        self._window_jobset: dict[int, frozenset[int]] = {}
        self._window_raw_forecast: dict[int, np.ndarray] = {}
        #: Candidate pools the placement path selects from.  The
        #: primary pool is a *persistent* sharded availability index
        #: refreshed in place via VM ``state_version`` dirty tracking;
        #: the opportunistic pool is per-window forecast state and is
        #: rebuilt each call (its rows are scheduler bookkeeping, not
        #: VM state a version counter could mirror).
        self._primary_index: ShardedCandidateIndex | None = None
        self._primary_pool: CandidateSet | ShardedCandidateIndex = CandidateSet(
            [], np.zeros((0, NUM_RESOURCES))
        )
        self._opp_pool: CandidateSet | ShardedCandidateIndex = CandidateSet(
            [], np.zeros((0, NUM_RESOURCES))
        )
        #: Running (min, sum, count) of realized availability over the
        #: window's valid slots — the realized counterpart the forecast
        #: is scored against (see ``actual_aggregate``).
        self._window_actual: dict[int, tuple[np.ndarray, np.ndarray, int]] = {}
        #: True while the prediction service is down (fault injection):
        #: no forecasts, no opportunistic placement — provisioning falls
        #: back to the jobs' requested resources.
        self._degraded = False

    def bind(self, sim) -> None:
        """Attach to a simulator, dropping any prior availability index.

        The persistent primary index mirrors one simulator's VM list; a
        rebind (fresh run, takeover replica) must not carry rows from
        the previous cluster.
        """
        super().bind(sim)
        self._primary_index = None

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def predict_vm_unused(self, vm: VirtualMachine) -> np.ndarray:
        """Raw forecast of the VM's unused resources for the next window."""

    def adjust_forecast(self, raw: np.ndarray, vm: VirtualMachine) -> np.ndarray:
        """Conservative adjustment (default: none)."""
        return raw

    def make_entities(self, pending: Sequence[Job]) -> list[JobEntity]:
        """Group pending jobs into schedulable entities (default: singletons)."""
        return singleton_entities(pending)

    def choose_vm(
        self,
        demand: ResourceVector,
        candidates: Sequence[tuple[VirtualMachine, ResourceVector]],
    ) -> VirtualMachine | None:
        """Pick a feasible VM (default: the baselines' uniform random).

        ``candidates`` is a :class:`CandidateSet` (or its sharded
        counterpart) on the scheduler's own path; overrides that iterate
        it as ``(vm, availability)`` pairs (the documented shape) keep
        working unchanged.
        """
        if isinstance(candidates, CandidatePool):
            return candidates.select_random_feasible(demand, self.rng)
        return select_random_feasible(demand, candidates, self.rng)

    def opportunistic_allowed(self) -> bool:
        """Scheme-level switch on reuse for this window (CORP: Eq. 21)."""
        return True

    def opportunistic_admission_size(self, entity: JobEntity) -> ResourceVector:
        """How much pool an opportunistic placement consumes.

        Default: the entity's full request — the conservative admission
        for schemes with no per-job demand model.  CORP overrides this
        with its expected demand (admitting best-effort riders at
        expected rather than worst-case consumption is the point of
        overcommit; riders absorb any squeeze, per the weaker SLO class
        of Section I's opportunistic provisioning).
        """
        return entity.demand

    # ------------------------------------------------------------------
    # window mechanics
    # ------------------------------------------------------------------
    def on_slot_start(self, slot: int) -> None:
        """Refresh forecasts at every window boundary.

        During a predictor outage the scheme degrades gracefully: no
        forecasts are made, opportunistic placement is disabled and any
        prediction-derived state is dropped (``on_degraded``).  Recovery
        refreshes forecasts immediately rather than waiting for the next
        window boundary.
        """
        degraded = self._sim is not None and not self.sim.predictor_available
        if degraded != self._degraded:
            self._degraded = degraded
            if degraded:
                self._enter_degraded(slot)
            else:
                OBS.emit(
                    "degraded_mode", slot=slot, scheduler=self.name, active=False
                )
                self._refresh_forecasts()
                return
        if self._degraded:
            return
        if slot % self.window_slots == 0:
            self._refresh_forecasts()

    def _enter_degraded(self, slot: int) -> None:
        """Drop all prediction-derived state for the outage's duration.

        Window tracking is discarded *without* emitting samples —
        realized availability observed during an outage says nothing
        about predictor quality.
        """
        self._window_forecast.clear()
        self._window_raw_forecast.clear()
        self._window_committed.clear()
        self._window_jobset.clear()
        self._window_actual.clear()
        self._available_unused.clear()
        self.on_degraded(slot)
        OBS.emit("degraded_mode", slot=slot, scheduler=self.name, active=True)
        OBS.count("faults.degraded_mode")

    def on_degraded(self, slot: int) -> None:
        """Subclass hook: drop scheme-specific prediction-derived state."""

    def _refresh_forecasts(self) -> None:
        # Emit the previous window's samples before starting a new one.
        self._emit_window_samples()
        self._window_forecast.clear()
        self._window_raw_forecast.clear()
        self._window_committed.clear()
        self._window_jobset.clear()
        self._window_actual.clear()
        self._available_unused.clear()
        for vm in self.vms:
            if not vm.online:
                continue  # a crashed VM has no usage to poll
            # Polling a VM's usage history is one remote operation.
            self.latency.charge_comm(1)
            raw = np.asarray(self.predict_vm_unused(vm), dtype=np.float64)
            if raw.shape != (NUM_RESOURCES,):
                raise ValueError("forecast must have one entry per resource")
            committed = vm.committed()
            # No forecast can exceed the commitment it is slack of.
            raw = np.clip(raw, 0.0, committed.as_array())
            adjusted = np.clip(self.adjust_forecast(raw, vm), 0.0, None)
            if committed.any_positive():
                self._window_forecast[vm.vm_id] = adjusted
                self._window_raw_forecast[vm.vm_id] = raw
                self._window_committed[vm.vm_id] = committed.as_array().copy()
                self._window_jobset[vm.vm_id] = frozenset(
                    p.job.job_id for p in vm.placements if not p.opportunistic
                )
            if not self.supports_opportunistic:
                continue
            committed_slack = (
                committed.as_array() - vm.opportunistic_demand().as_array()
            )
            # Opportunistic capacity can never exceed what is actually
            # committed (the slack lives inside reservations).
            self._available_unused[vm.vm_id] = np.clip(
                np.minimum(adjusted, committed_slack), 0.0, None
            )
        if CHECK.enabled:
            CHECK.checker.observe_pools(self)

    def _drop_window_tracking(self, vm_id: int) -> None:
        for store in (
            self._window_forecast,
            self._window_raw_forecast,
            self._window_committed,
            self._window_jobset,
            self._window_actual,
        ):
            store.pop(vm_id, None)

    def _realized(self, vm_id: int) -> np.ndarray:
        """The realized availability aggregate the forecast is scored on."""
        minimum, total, count = self._window_actual[vm_id]
        if self.actual_aggregate == "min":
            return minimum
        return total / count

    def _emit_one(self, vm_id: int) -> None:
        committed = self._window_committed[vm_id]
        scale = np.maximum(committed, 1e-9)
        actual = self._realized(vm_id)
        self.gate.record(self._window_forecast[vm_id] / scale, actual / scale)
        self.raw_errors.record(
            self._window_raw_forecast[vm_id] / scale, actual / scale
        )
        # Fig. 6 log: CPU forecast vs realized unused CPU (the paper's
        # running example resource), commitment fractions.
        if committed[0] > 1e-9:
            self.prediction_log.add(
                self._window_forecast[vm_id][0] / scale[0], actual[0] / scale[0]
            )

    def _emit_window_samples(self) -> None:
        """One δ sample per tracked VM per window (Eq. 20/21).

        δ compares the forecast against the realized availability over
        the window (mean or min per ``actual_aggregate``), normalized by
        the VM's commitment so one tolerance ε compares CPU cores and
        storage GBs alike.
        """
        for vm_id in self._window_actual:
            self._emit_one(vm_id)

    def on_slot_end(self, slot: int, outcomes: dict[int, SlotOutcome]) -> None:
        """Score forecasts against realized availability (Eq. 20)."""
        # Accumulate each tracked VM's realized availability minimum for
        # as long as its primary job set stays the one the forecast
        # covered; the first churn (completion or new placement) emits
        # the sample early and stops tracking — a completed job frees
        # real capacity and a new placement was never in the forecast,
        # so later slots carry no information about predictor quality.
        jobsets = {
            vm.vm_id: frozenset(
                p.job.job_id for p in vm.placements if not p.opportunistic
            )
            for vm in self.vms
            if vm.vm_id in self._window_forecast
        }
        for vm_id in list(self._window_forecast):
            # A VM absent from the outcomes crashed this slot (its
            # eviction already churned the jobset, but guard anyway).
            if vm_id not in outcomes or jobsets[vm_id] != self._window_jobset[vm_id]:
                if vm_id in self._window_actual:
                    # Emit the partial-window sample, then stop tracking.
                    self._emit_one(vm_id)
                self._drop_window_tracking(vm_id)
                continue
            actual = (
                self._window_committed[vm_id]
                - outcomes[vm_id].primary_demand.as_array()
            )
            seen = self._window_actual.get(vm_id)
            if seen is None:
                self._window_actual[vm_id] = (actual.copy(), actual.copy(), 1)
            else:
                minimum, total, count = seen
                np.minimum(minimum, actual, out=minimum)
                total += actual
                self._window_actual[vm_id] = (minimum, total, count + 1)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place_jobs(self, pending: Sequence[Job], slot: int) -> list[Job]:
        """Place pending jobs entity by entity; returns those placed.

        The primary pool (unallocated capacity) is a *persistent*
        :class:`ShardedCandidateIndex` over the cluster's VMs:
        :meth:`~repro.cluster.shards.ShardedCandidateIndex.refresh`
        re-reads only the rows whose VM ``state_version`` moved since
        the last call, so a slot that touched two shards recomputes two
        shards rather than rebuilding an ``(n_vms, l)`` matrix from
        Python attribute reads.  The opportunistic pool (unlocked
        predicted unused) is per-window scheduler bookkeeping and is
        rebuilt each call as before.  Both pools are updated
        incrementally (``consume``) as placements land within the call.
        """
        if not pending:
            return []
        placed: list[Job] = []
        allow_opportunistic = (
            self.supports_opportunistic
            and not self._degraded
            and self.opportunistic_allowed()
        )
        scale = self.sim.config.scale
        vms = self.sim.vms
        index = self._primary_index
        if (
            index is None
            or index.source_vms is not vms
            or index.n_shards != scale.shards
        ):
            index = self._primary_index = ShardedCandidateIndex.for_vms(
                vms, shards=scale.shards
            )
        touched = index.refresh()
        if OBS.enabled:
            OBS.count("shards.touched", touched)
            OBS.count("shards.skipped", index.n_shards - touched)
        self._primary_pool = index
        opp_vms = [
            vm for vm in vms if vm.online and vm.vm_id in self._available_unused
        ]
        opp_matrix = (
            np.array([self._available_unused[vm.vm_id] for vm in opp_vms])
            if opp_vms
            else np.zeros((0, NUM_RESOURCES))
        )
        if scale.shards > 1:
            self._opp_pool = ShardedCandidateIndex(
                opp_vms, opp_matrix, shards=scale.shards
            )
        else:
            self._opp_pool = CandidateSet(opp_vms, opp_matrix)
        for entity in self.make_entities(pending):
            placed.extend(
                self._place_entity_units(entity, slot, allow_opportunistic)
            )
        return placed

    def _place_entity_units(
        self, entity: JobEntity, slot: int, allow_opportunistic: bool
    ) -> list[Job]:
        """Place an entity: unused pools first, then unallocated capacity.

        A packed pair that fits no single unused pool falls back to
        per-job opportunistic attempts before taking a reservation —
        packing targets fragmentation of *reserved* capacity (Fig. 4),
        and refusing reuse because the pair only fits apart would waste
        the very slack CORP exists to harvest.
        """
        placed: list[Job] = []
        remaining = list(entity.jobs)
        if allow_opportunistic:
            if self._try_opportunistic(entity, slot):
                return list(entity.jobs)
            if entity.is_packed:
                for job in list(remaining):
                    if self._try_opportunistic(JobEntity(jobs=(job,)), slot):
                        placed.append(job)
                        remaining.remove(job)
        if not remaining:
            return placed
        group = JobEntity(jobs=tuple(remaining))
        if self._try_primary(group, slot):
            placed.extend(remaining)
            return placed
        if len(remaining) > 1:
            for job in remaining:
                if self._try_primary(JobEntity(jobs=(job,)), slot):
                    placed.append(job)
        return placed

    def _opportunistic_candidates(self) -> "CandidateSet | ShardedCandidateIndex":
        return self._opp_pool

    def _try_opportunistic(self, entity: JobEntity, slot: int) -> bool:
        admission = self.opportunistic_admission_size(entity)
        candidates = self._opportunistic_candidates()
        vm = self.choose_vm(admission, candidates)
        if vm is None:
            return False
        self._place_entity(
            entity, vm, slot, opportunistic=True,
            candidates=candidates, demand=admission,
        )
        self._available_unused[vm.vm_id] = np.clip(
            self._available_unused[vm.vm_id] - admission.as_array(), 0.0, None
        )
        candidates.consume(vm, admission.as_array())
        return True

    def _try_primary(self, entity: JobEntity, slot: int) -> bool:
        candidates = self._primary_pool
        vm = self.choose_vm(entity.demand, candidates)
        if vm is None:
            return False
        self._place_entity(
            entity, vm, slot, opportunistic=False,
            candidates=candidates, demand=entity.demand,
        )
        # The reservation just reduced the VM's unallocated capacity;
        # the clip-at-zero mirrors ``max(capacity - committed, 0)``.
        candidates.consume(vm, entity.demand.as_array())
        return True

    def _emit_placement(
        self,
        entity: JobEntity,
        vm: VirtualMachine,
        slot: int,
        opportunistic: bool,
        candidates: Sequence[tuple[VirtualMachine, ResourceVector]] | None,
        demand: ResourceVector | None,
    ) -> None:
        """One ``placement`` event per placed job (decision telemetry).

        ``feasible_vms`` is the size of the feasible set the chooser saw;
        ``volume`` is the chosen VM's Eq. 22 availability volume.  Both
        are computed only here, i.e. only when a sink/profiler listens.
        """
        feasible = volume = None
        if candidates is not None and demand is not None:
            if isinstance(candidates, CandidatePool):
                feasible = candidates.feasible_count(demand)
                chosen = candidates.availability(vm)
            else:
                feasible = sum(
                    1 for _, avail in candidates if demand.fits_within(avail)
                )
                chosen = next((a for v, a in candidates if v is vm), None)
            if chosen is not None and self._sim is not None:
                volume = unused_volume(chosen, self.sim.max_vm_capacity())
        ids = entity.job_ids()
        for job in entity.jobs:
            partner = next((i for i in ids if i != job.job_id), None)
            OBS.emit(
                "placement",
                slot=slot,
                scheduler=self.name,
                job=job.job_id,
                vm=vm.vm_id,
                opportunistic=opportunistic,
                packed=entity.is_packed,
                partner=partner,
                feasible_vms=feasible,
                volume=volume,
            )
        OBS.count(
            "placement.opportunistic" if opportunistic else "placement.primary",
            len(entity.jobs),
        )

    def _place_entity(
        self,
        entity: JobEntity,
        vm: VirtualMachine,
        slot: int,
        *,
        opportunistic: bool,
        candidates: Sequence[tuple[VirtualMachine, ResourceVector]] | None = None,
        demand: ResourceVector | None = None,
    ) -> None:
        # Dispatching an entity to a VM is one remote operation.
        self.latency.charge_comm(1)
        if OBS.enabled:
            self._emit_placement(
                entity, vm, slot, opportunistic, candidates, demand
            )
        if CHECK.enabled:
            # Before add_placement mutates anything: the availabilities
            # in ``candidates`` still describe the pre-placement state.
            CHECK.checker.observe_placement(
                self, entity, vm, slot,
                opportunistic=opportunistic,
                candidates=candidates, demand=demand,
            )
        for job in entity.jobs:
            reserved = (
                ResourceVector.zeros() if opportunistic else job.requested
            )
            vm.add_placement(
                Placement(job=job, vm=vm, reserved=reserved, opportunistic=opportunistic)
            )
            job.start(slot, opportunistic=opportunistic)
