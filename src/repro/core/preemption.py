"""Probabilistic-based resource preemption (paper Eq. 21).

A predicted temporarily-unused resource may be reallocated to a newly
arriving job only when its prediction error satisfies

.. math:: Pr(0 \\le \\delta_{t+L} < \\varepsilon) \\ge P_{th}

— the prediction must be *reliably conservative*.  Resources passing the
test are "unlocked predicted unused resources"; the rest stay locked and
only unallocated capacity can serve new jobs.
"""

from __future__ import annotations

import numpy as np

from ..cluster.resources import NUM_RESOURCES, ResourceKind
from ..forecast.confidence import PredictionErrorTracker

__all__ = ["PreemptionGate"]


class PreemptionGate:
    """Per-resource Eq. 21 gate over shared error trackers.

    One :class:`PredictionErrorTracker` per resource type accumulates
    the δ samples (Eq. 20); :meth:`unlocked` evaluates the gate.
    """

    def __init__(
        self,
        error_tolerance: float,
        probability_threshold: float,
        *,
        window: int = 200,
    ) -> None:
        if error_tolerance <= 0:
            raise ValueError("error_tolerance must be positive")
        if not 0.0 < probability_threshold <= 1.0:
            raise ValueError("probability_threshold must be in (0, 1]")
        self.error_tolerance = error_tolerance
        self.probability_threshold = probability_threshold
        self.trackers: list[PredictionErrorTracker] = [
            PredictionErrorTracker(window=window) for _ in range(NUM_RESOURCES)
        ]

    # ------------------------------------------------------------------
    def record(self, predicted: np.ndarray, actual: np.ndarray) -> None:
        """Record one δ sample per resource (vectors of length l)."""
        p = np.asarray(predicted, dtype=np.float64).ravel()
        a = np.asarray(actual, dtype=np.float64).ravel()
        if p.shape != (NUM_RESOURCES,) or a.shape != (NUM_RESOURCES,):
            raise ValueError("predicted/actual must have one entry per resource")
        for k in range(NUM_RESOURCES):
            self.trackers[k].record(p[k], a[k])

    def tracker(self, kind: ResourceKind) -> PredictionErrorTracker:
        """The δ tracker of one resource type."""
        return self.trackers[int(kind)]

    # ------------------------------------------------------------------
    def probability(self, kind: ResourceKind) -> float:
        """Empirical ``Pr(0 ≤ δ < ε)`` for one resource."""
        return self.trackers[int(kind)].probability_within(self.error_tolerance)

    def evidence(self, kind: ResourceKind) -> tuple[float, float, int]:
        """``(probability, standard error, n samples)`` behind the gate.

        The tuple the unlock decision is a function of — exposed so the
        invariant checker (:mod:`repro.check`) can re-derive Eq. 21
        independently of :meth:`unlocked`'s verdict.  With no samples
        the probability is NaN (not a confident 0 or 1).
        """
        n = self.trackers[int(kind)].n_samples
        if n == 0:
            return (float("nan"), float("nan"), 0)
        p = self.probability(kind)
        standard_error = float(np.sqrt(max(p * (1.0 - p), 1e-12) / n))
        return (p, standard_error, n)

    def unlocked(self, kind: ResourceKind) -> bool:
        """Eq. 21 for one resource type.

        The empirical probability is credited one binomial standard
        error: with ``η = 90%`` and ``P_th = 0.95`` (Table II), the
        gate's theoretical ceiling is exactly ``1 − θ/2 = P_th``, so an
        estimator meeting its nominal coverage would still fail a strict
        comparison about half the time purely from sampling noise.
        """
        p, standard_error, n = self.evidence(kind)
        if n == 0:
            # No evidence yet: probability_within is NaN and the gate
            # stays locked (the conservative default).
            return False
        return p + standard_error >= self.probability_threshold

    def all_unlocked(self) -> bool:
        """Gate for multi-resource reallocation: every type must pass.

        An entity placed on predicted-unused resources consumes all
        resource types, so one unreliable dimension locks the placement.
        """
        return all(self.unlocked(kind) for kind in ResourceKind)

    def sigma(self, kind: ResourceKind) -> float:
        """σ̂ of one resource's error tracker (feeds Eq. 18-19)."""
        return self.trackers[int(kind)].sigma()

    def sigmas(self) -> np.ndarray:
        """Vector of per-resource σ̂ values."""
        return np.array([t.sigma() for t in self.trackers])
