"""CORP configuration (paper Table II defaults).

| Parameter | Meaning                     | Paper setting |
|-----------|-----------------------------|---------------|
| h         | # of DNN layers             | 4 [33]        |
| N_n       | # of units per layer        | 50            |
| H         | # of HMM states             | 3             |
| P_th      | probability threshold       | 0.95          |
| θ         | significance level          | 5%-30%        |
| η         | confidence level            | 50%-90%       |
| l         | # of resource types         | 3             |

The prediction window ``L`` is 1 minute (Section III-A: "we chose to
make the predictions for a 1 minute window because short-lived jobs
typically run minutes"), i.e. 6 slots of 10 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.resources import DEFAULT_WEIGHTS

__all__ = ["CorpConfig"]


@dataclass(frozen=True)
class CorpConfig:
    """All CORP knobs with Table II defaults."""

    #: Prediction window L, in slots (1 minute at 10-second slots).
    window_slots: int = 6
    #: DNN input width Δ — utilization of the last Δ slots.
    input_slots: int = 6
    #: Number of hidden layers ``h`` (Table II: 4).
    n_hidden_layers: int = 4
    #: Units per hidden layer ``N_n`` (Table II: 50).
    units_per_layer: int = 50
    #: Probability threshold ``P_th`` of Eq. 21 (Table II: 0.95).
    probability_threshold: float = 0.95
    #: Confidence level ``η`` for Eq. 18-19 (Table II sweeps 50%-90%).
    confidence_level: float = 0.9
    #: Prediction-error tolerance ``ε`` of Eq. 21 / Fig. 6, expressed as
    #: a fraction of VM capacity so one tolerance covers every resource
    #: type (δ samples are capacity-normalized; see provisioning base).
    error_tolerance: float = 0.75
    #: Resource weights ω_j of Eq. 2/4 (paper: 0.4/0.4/0.2).
    weights: np.ndarray = field(default_factory=lambda: DEFAULT_WEIGHTS.copy())
    #: Use the HMM peak/valley correction (ablation A1 switches it off).
    use_hmm_correction: bool = True
    #: Use complementary job packing (ablation A2 switches it off).
    use_packing: bool = True
    #: Use the confidence-interval lower bound (ablation A3).
    use_confidence_interval: bool = True
    #: Select VMs by smallest unused-resource volume; False = random
    #: feasible VM (ablation A4).
    use_volume_selection: bool = True
    #: HMM symbolization mode ("level" default; "range" is the paper's
    #: literal Δ_j rule — ablation A5 territory).
    hmm_mode: str = "level"
    #: What "the amount of temporarily-unused resource in a time window
    #: ΔW" means for the DNN target: the window mean (default — the
    #: amount expected-demand riders are accountable to), the window
    #: minimum (guaranteed-throughout; stricter — ablation), or the
    #: point value at t+L.  See
    #: :func:`repro.core.predictor.build_training_set`.
    prediction_target: str = "window_mean"
    #: Minimum slots of job history before the DNN predicts for it
    #: (younger jobs fall back to the training prior — conservative).
    min_history_slots: int = 2
    #: DNN training epochs / batch size for the offline phase.
    train_max_epochs: int = 60
    train_batch_size: int = 64
    #: Quantile level of the pinball training loss.  0.35 gives the DNN
    #: the mild built-in conservatism the Eq. 21 gate needs headroom
    #: for: with a coverage-exact estimator the gate's ceiling equals
    #: P_th and sampling noise keeps it shut.  0.5 (the median) is the
    #: neutral estimator, ``None`` trains with plain MSE (ablations).
    train_quantile: float | None = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window_slots < 1 or self.input_slots < 1:
            raise ValueError("window_slots and input_slots must be >= 1")
        if self.n_hidden_layers < 1 or self.units_per_layer < 1:
            raise ValueError("DNN shape parameters must be >= 1")
        if not 0.0 < self.probability_threshold <= 1.0:
            raise ValueError("probability_threshold must be in (0, 1]")
        if not 0.0 < self.confidence_level < 1.0:
            raise ValueError("confidence_level must be in (0, 1)")
        if self.error_tolerance <= 0:
            raise ValueError("error_tolerance must be positive")
        if self.hmm_mode not in ("level", "range"):
            raise ValueError("hmm_mode must be 'level' or 'range'")
        if self.prediction_target not in ("window_min", "window_mean", "point"):
            raise ValueError(
                "prediction_target must be 'window_min', 'window_mean' or 'point'"
            )
        if self.train_quantile is not None and not 0.0 < self.train_quantile < 1.0:
            raise ValueError("train_quantile must be in (0, 1) or None")

    @property
    def significance_level(self) -> float:
        """``θ = 1 − η``."""
        return 1.0 - self.confidence_level

    def dnn_layer_sizes(self) -> list[int]:
        """Input → h hidden layers of N_n units → scalar output."""
        return (
            [self.input_slots]
            + [self.units_per_layer] * self.n_hidden_layers
            + [1]
        )
