"""Save/load fitted CORP predictors.

The offline phase (DNN training + HMM fitting on historical trace data)
is the expensive part of CORP; a production deployment trains once and
ships the models to the schedulers.  This module serializes a fitted
:class:`~repro.core.predictor.CorpPredictor` to a single ``.npz``
archive and restores it bit-identically.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..cluster.resources import NUM_RESOURCES
from ..hmm.discretize import ThresholdBands
from ..hmm.fluctuation import FluctuationPredictor
from ..hmm.model import HiddenMarkovModel
from ..nn.network import FeedForwardNetwork
from .config import CorpConfig
from .predictor import CorpPredictor

__all__ = ["save_predictor", "load_predictor"]

_FORMAT_VERSION = 1

#: CorpConfig fields that shape the serialized models (the rest are
#: runtime knobs the scheduler owns).
_CONFIG_FIELDS = (
    "window_slots",
    "input_slots",
    "n_hidden_layers",
    "units_per_layer",
    "hmm_mode",
    "use_hmm_correction",
    "prediction_target",
    "min_history_slots",
    "train_quantile",
    "seed",
)


def save_predictor(predictor: CorpPredictor, path: str | Path) -> None:
    """Serialize a fitted predictor to ``path`` (.npz archive)."""
    if not predictor.fitted:
        raise ValueError("predictor is not fitted")
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {
        "format_version": _FORMAT_VERSION,
        "config": {
            name: getattr(predictor.config, name) for name in _CONFIG_FIELDS
        },
        "fluctuation": [],
    }
    for k in range(NUM_RESOURCES):
        for li, layer in enumerate(predictor.networks[k].layers):
            arrays[f"net{k}/layer{li}/weights"] = layer.weights
            arrays[f"net{k}/layer{li}/biases"] = layer.biases
        arrays[f"seed_errors{k}"] = predictor.seed_errors[k]
        fp = predictor.fluctuation[k]
        if fp.fitted:
            arrays[f"hmm{k}/A"] = fp.model.transition
            arrays[f"hmm{k}/B"] = fp.model.emission
            arrays[f"hmm{k}/pi"] = fp.model.initial
            meta["fluctuation"].append(
                {
                    "fitted": True,
                    "window": fp.window,
                    "mode": fp.mode,
                    "seed": fp.seed,
                    "bands": [fp.bands.minimum, fp.bands.mean, fp.bands.maximum],
                    "correction_scale": fp.correction_scale,
                }
            )
        else:
            meta["fluctuation"].append(
                {"fitted": False, "window": fp.window, "mode": fp.mode,
                 "seed": fp.seed}
            )
    arrays["prior_unused_fraction"] = predictor.prior_unused_fraction
    arrays["_meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_predictor(path: str | Path) -> CorpPredictor:
    """Restore a predictor saved by :func:`save_predictor`."""
    path = Path(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["_meta"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported predictor format {meta.get('format_version')!r}"
            )
        config = CorpConfig(**meta["config"])
        predictor = CorpPredictor(config=config)
        predictor.networks = []
        predictor.fluctuation = []
        predictor.seed_errors = []
        for k in range(NUM_RESOURCES):
            net = FeedForwardNetwork(config.dnn_layer_sizes(), seed=config.seed)
            for li, layer in enumerate(net.layers):
                layer.weights[...] = archive[f"net{k}/layer{li}/weights"]
                layer.biases[...] = archive[f"net{k}/layer{li}/biases"]
            predictor.networks.append(net)
            predictor.seed_errors.append(archive[f"seed_errors{k}"].copy())
            info = meta["fluctuation"][k]
            fp = FluctuationPredictor(
                window=info["window"], mode=info["mode"], seed=info["seed"]
            )
            if info["fitted"]:
                fp.model = HiddenMarkovModel(
                    archive[f"hmm{k}/A"].copy(),
                    archive[f"hmm{k}/B"].copy(),
                    archive[f"hmm{k}/pi"].copy(),
                )
                lo, mean, hi = info["bands"]
                fp.bands = ThresholdBands(minimum=lo, mean=mean, maximum=hi)
                fp.correction_scale = float(info["correction_scale"])
            predictor.fluctuation.append(fp)
        predictor.prior_unused_fraction = archive["prior_unused_fraction"].copy()
    return predictor
