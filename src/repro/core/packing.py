"""Complementary job packing (paper Section III-B, Fig. 4/5).

CORP pairs jobs whose *dominant resources* differ, choosing for each job
the partner with the largest demand deviation

.. math::

    DV(j, i) = \\sum_k \\Big( (d_{jk} - \\mu_k)^2 + (d_{ik} - \\mu_k)^2 \\Big),
    \\qquad \\mu_k = \\tfrac{d_{jk} + d_{ik}}{2}

(algebraically ``Σ_k (d_jk − d_ik)² / 2``): the more complementary two
jobs' demands, the larger the deviation.  Packed pairs are placed as one
entity on one VM, cutting fragmentation (Fig. 1's motivating example).

Demands are normalized by a per-resource reference capacity before
comparison by default — raw units would let the storage axis (hundreds
of GB) drown out CPU cores in both the dominant-resource test and the
deviation.  ``normalize=False`` recovers the paper's literal raw-unit
arithmetic (used by the worked-example test of Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cluster.job import Job
from ..cluster.resources import ResourceKind, ResourceVector

__all__ = [
    "JobEntity",
    "deviation",
    "dominant_resource",
    "pack_jobs",
    "singleton_entities",
]


@dataclass(frozen=True)
class JobEntity:
    """One schedulable unit: a packed pair or a singleton job."""

    jobs: tuple[Job, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.jobs) <= 2:
            raise ValueError("an entity holds one or two jobs")
        if len(self.jobs) == 2 and self.jobs[0].job_id == self.jobs[1].job_id:
            # A job packed with itself would double-count its demand in
            # every feasibility check downstream.
            raise ValueError("a packed pair must hold two distinct jobs")

    @property
    def demand(self) -> ResourceVector:
        """Combined allocation request of the member jobs."""
        return ResourceVector.sum(j.requested for j in self.jobs)

    @property
    def is_packed(self) -> bool:
        """Whether the entity is a complementary pair."""
        return len(self.jobs) == 2

    def job_ids(self) -> tuple[int, ...]:
        """Member job ids, in packing order."""
        return tuple(j.job_id for j in self.jobs)


def _normalized(demand: ResourceVector, reference: ResourceVector | None) -> np.ndarray:
    if reference is None:
        return demand.as_array()
    return demand.normalized_by(reference).as_array()


def dominant_resource(
    demand: ResourceVector, reference: ResourceVector | None = None
) -> ResourceKind:
    """The resource the demand is largest on (Section III-B).

    With a ``reference``, demands are normalized per resource first so
    "largest" compares like with like across units.
    """
    return ResourceKind(int(np.argmax(_normalized(demand, reference))))


def deviation(
    a: ResourceVector,
    b: ResourceVector,
    reference: ResourceVector | None = None,
) -> float:
    """The paper's ``DV`` between two demand vectors."""
    va = _normalized(a, reference)
    vb = _normalized(b, reference)
    mid = 0.5 * (va + vb)
    return float(np.sum((va - mid) ** 2 + (vb - mid) ** 2))


def pack_jobs(
    jobs: Sequence[Job],
    reference: ResourceVector | None = None,
) -> list[JobEntity]:
    """Greedy complementary pairing, in arrival order.

    CORP "fetches each job J_i, and tries to find its complementary job
    from the list": among not-yet-packed jobs with a *different*
    dominant resource, the one maximizing ``DV`` is chosen; with no such
    job, ``J_i`` becomes a singleton entity.  Ties break toward the
    earlier-listed job for determinism.
    """
    entities: list[JobEntity] = []
    remaining = list(jobs)
    dominants = {
        j.job_id: dominant_resource(j.requested, reference) for j in remaining
    }
    used: set[int] = set()
    for i, job in enumerate(remaining):
        if job.job_id in used:
            continue
        used.add(job.job_id)
        best: Job | None = None
        best_dv = -1.0
        for other in remaining[i + 1 :]:
            if other.job_id in used:
                continue
            if dominants[other.job_id] == dominants[job.job_id]:
                continue
            dv = deviation(job.requested, other.requested, reference)
            if dv > best_dv + 1e-12:
                best_dv = dv
                best = other
        if best is not None:
            used.add(best.job_id)
            entities.append(JobEntity(jobs=(job, best)))
        else:
            entities.append(JobEntity(jobs=(job,)))
    return entities


def singleton_entities(jobs: Sequence[Job]) -> list[JobEntity]:
    """No-packing variant (ablation A2 and the non-packing baselines)."""
    return [JobEntity(jobs=(j,)) for j in jobs]
