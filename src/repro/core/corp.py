"""The CORP scheduler (paper Section III).

Ties the pieces together:

* **Prediction** — per primary job, the DNN + HMM pipeline of
  :class:`~repro.core.predictor.CorpPredictor` forecasts unused
  resources; per VM the job forecasts are summed (Section IV: "we can
  know the amount of unused resources of each VM after we get the
  amount of unused resource of jobs").
* **Confidence interval** — the VM forecast is lowered by
  ``σ̂ · z_{θ/2}`` (Eq. 18-19).
* **Preemption gate** — predicted unused is only reallocated while
  ``Pr(0 ≤ δ < ε) ≥ P_th`` holds per resource (Eq. 21); the trackers
  are seeded from the predictor's held-out training errors, the
  "historical data with prediction error samples" of Section III-A.2.
* **Packing** — complementary pairs by maximum demand deviation
  (Section III-B).
* **Placement** — most-matched VM by smallest unused-resource volume
  (Eq. 22), first over unlocked predicted unused, then over unallocated
  capacity.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..check import CHECK
from ..cluster.job import Job
from ..cluster.machine import VirtualMachine
from ..cluster.resources import NUM_RESOURCES, ResourceKind, ResourceVector
from ..forecast.base import Predictor
from ..forecast.confidence import z_value
from ..obs import OBS
from ..trace.records import Trace
from .config import CorpConfig
from .packing import JobEntity, pack_jobs, singleton_entities
from .predictor import CorpPredictor
from .provisioning import CandidatePool, ProvisioningSchedulerBase
from .vm_selection import select_most_matched, select_random_feasible

__all__ = ["CorpScheduler"]


class CorpScheduler(ProvisioningSchedulerBase):
    """Cooperative Opportunistic Resource Provisioning."""

    name = "CORP"
    supports_opportunistic = True

    def __init__(
        self,
        config: CorpConfig | None = None,
        *,
        predictor: Predictor | None = None,
    ) -> None:
        self.config = config or CorpConfig()
        # Eq. 21's gate asks whether the conservative forecast delivers
        # its promised reliability.  The CI lower bound's nominal
        # one-sided coverage is 1 − θ/2 (= 0.95 at the paper's η = 90%,
        # exactly Table II's P_th) — an estimator cannot exceed its own
        # nominal coverage, so at lower confidence levels the gate tests
        # against that nominal level instead of an unreachable constant.
        nominal_coverage = 1.0 - (1.0 - self.config.confidence_level) / 2.0
        effective_threshold = min(
            self.config.probability_threshold, nominal_coverage
        )
        super().__init__(
            window_slots=self.config.window_slots,
            error_tolerance=self.config.error_tolerance,
            probability_threshold=effective_threshold,
            seed=self.config.seed,
        )
        #: A pre-fitted predictor may be injected to share the (offline)
        #: DNN/HMM training across experiment runs.  Any registered
        #: :class:`~repro.forecast.base.Predictor` family drops in here;
        #: the DNN+HMM pipeline remains the default.
        self.predictor = predictor or CorpPredictor(config=self.config)
        self._z = z_value(self.config.confidence_level)

    # ------------------------------------------------------------------
    def prepare(self, history: Trace) -> None:
        """Offline phase: fit the predictor and seed the error trackers."""
        if not self.predictor.fitted:
            self.predictor.fit(history)
        elif "online_selection" in self.predictor.capabilities:
            # A cached selector carries live arbitration state from a
            # previous run; restore the post-fit baseline so every run
            # starts from the same trackers and active predictor.
            self.predictor.reset()
        theta_half = self.config.significance_level / 2.0
        for kind in range(NUM_RESOURCES):
            # Trackers hold commitment-fraction δ samples at VM
            # granularity, where a VM aggregates ~2 jobs and their
            # individual errors partially cancel; pair-averaging the
            # job-level validation errors approximates that granularity
            # (raw job-level errors have fatter tails and would inflate
            # the quantile shift).
            errors = self.predictor.seed_errors[kind]
            if errors.size >= 2:
                half = (errors.size // 2) * 2
                errors = 0.5 * (errors[:half:2] + errors[1:half:2])
            errors = errors[-150:]
            self.raw_errors.trackers[kind].seed(errors)
            if errors.size and self.config.use_confidence_interval:
                # The gate's seeded δ samples describe the *conservative*
                # forecast (Eq. 19 applied) with the same empirical-
                # quantile shift the runtime adjustment uses.
                errors = errors - float(np.quantile(errors, theta_half))
            self.gate.trackers[kind].seed(errors)

    # ------------------------------------------------------------------
    def on_slot_start(self, slot: int) -> None:
        """Give online-selecting predictors their slot tick first.

        The ``"auto"`` selector arbitrates at window boundaries; running
        :meth:`~repro.forecast.base.Predictor.observe_slot` *before* the
        base class refreshes forecasts means a switch takes effect in
        the same window's forecasts, not one window late.  Outage slots
        are skipped — arbitration over windows the predictor never saw
        would be noise.
        """
        if (
            "online_selection" in self.predictor.capabilities
            and not (self._sim is not None and not self.sim.predictor_available)
        ):
            self.predictor.observe_slot(slot)
        super().on_slot_start(slot)

    # ------------------------------------------------------------------
    # forecasting hooks
    # ------------------------------------------------------------------
    def predict_vm_unused(self, vm: VirtualMachine) -> np.ndarray:
        """Sum of per-primary-job DNN+HMM forecasts on this VM.

        Each prediction consumes the *per-job* utilization history — one
        extra telemetry fetch per job, where the baselines poll only the
        VM-level aggregate counters.  This finer-grained monitoring is
        part of CORP's overhead story (Fig. 10/14: "The DNN has complex
        structure ... obtains accuracy at the expense of computation
        overhead").
        """
        total = np.zeros(NUM_RESOURCES)
        for placement in vm.placements:
            if placement.opportunistic:
                continue
            job = placement.job
            self.latency.charge_comm(1)  # per-job usage-history fetch
            forecast = self.predictor.predict_job_unused(
                job.utilization_history(), job.requested
            )
            total += forecast.as_array()
        return total

    def adjust_forecast(self, raw: np.ndarray, vm: VirtualMachine) -> np.ndarray:
        """Eq. 19: subtract the CI lower-bound shift per resource.

        The shift is the distribution-free analogue of ``σ̂ · z_{θ/2}``:
        the empirical ``θ/2``-quantile of the raw forecast errors, which
        gives one-sided coverage ``1 − θ/2`` even on the left-skewed,
        burst-driven error distributions short jobs produce (the
        Gaussian form under-covers there).  Falls back to ``σ̂ · z`` when
        too few samples exist.  Errors are tracked in commitment
        fractions, hence the rescale by this VM's commitment.
        """
        if not self.config.use_confidence_interval:
            return raw
        theta_half = self.config.significance_level / 2.0
        # Independent per-job errors: the VM-level half-width grows with
        # the root-sum-square of the member requests, not with the
        # commitment itself — consolidation averages errors out.
        sum_sq = np.zeros_like(raw)
        for p in vm.placements:
            if not p.opportunistic:
                sum_sq += p.job.requested.as_array() ** 2
        rss = np.sqrt(sum_sq)
        shift = np.zeros_like(raw)
        for k, tracker in enumerate(self.raw_errors.trackers):
            errors = self.predictor.seed_errors[k]
            if errors.size >= 20:
                # Per-job error scale: the empirical θ/2-quantile
                # magnitude of the job-level validation errors
                # (fractions of the request).
                job_scale = max(-float(np.quantile(errors, theta_half)), 0.0)
            else:
                job_scale = tracker.sigma() * self._z
            shift[k] = job_scale * rss[k]
        if OBS.enabled:
            OBS.count("forecast.ci_adjusted")
            OBS.gauge("forecast.ci_shift_mean", float(shift.mean()))
        return raw - shift

    def opportunistic_allowed(self) -> bool:
        """Eq. 21 gate across all resource types.

        Emits one ``preemption`` event per evaluation (the unlock/deny
        decision with the per-resource empirical Eq. 21 probability)
        when observability is on.
        """
        unlocked = self.gate.all_unlocked()
        if CHECK.enabled:
            CHECK.checker.observe_gate(
                self.gate, unlocked,
                scheduler=self.name,
                slot=self._sim.current_slot if self._sim is not None else None,
            )
        if OBS.enabled:
            OBS.emit(
                "preemption",
                slot=self._sim.current_slot if self._sim is not None else None,
                scheduler=self.name,
                unlocked=unlocked,
                probabilities=[
                    float(self.gate.probability(k)) for k in ResourceKind
                ],
                threshold=self.gate.probability_threshold,
                tolerance=self.gate.error_tolerance,
            )
            OBS.count(
                "preemption.unlock" if unlocked else "preemption.deny"
            )
        return unlocked

    def opportunistic_admission_size(self, entity: JobEntity) -> ResourceVector:
        """Admit riders at expected demand, not worst-case request.

        The predictor's unused-fraction prior says how much of a request
        a short job typically leaves idle; the complement is its
        expected draw.  Sizing admissions this way is what makes reuse
        the common path rather than the exception — riders that burst
        past it get squeezed first, which the P_th / η knobs trade
        against utilization (Fig. 8).
        """
        expected_draw = 1.0 - self.predictor.prior_unused_fraction
        return ResourceVector(
            entity.demand.as_array() * np.clip(expected_draw, 0.05, 1.0)
        )

    # ------------------------------------------------------------------
    # packing / placement hooks
    # ------------------------------------------------------------------
    @property
    def uses_volume_selection(self) -> bool:
        """Whether ``choose_vm`` applies the Eq. 22 most-matched rule."""
        return self.config.use_volume_selection

    def make_entities(self, pending: Sequence[Job]) -> list[JobEntity]:
        """Complementary packing (Section III-B), unless ablated off."""
        if not self.config.use_packing:
            return singleton_entities(pending)
        return pack_jobs(pending, reference=self.sim.max_vm_capacity())

    def choose_vm(
        self,
        demand: ResourceVector,
        candidates: Sequence[tuple[VirtualMachine, ResourceVector]],
    ) -> VirtualMachine | None:
        """Most-matched VM by unused-resource volume (Eq. 22).

        On the scheduler's own path ``candidates`` is a
        :class:`CandidateSet` (or, at ``scale.shards > 1``, the
        shard-partitioned index with identical selection semantics) and
        the choice is one matrix expression per shard; plain pair lists
        fall back to the scalar reference loop.
        """
        if not self.config.use_volume_selection:
            if isinstance(candidates, CandidatePool):
                return candidates.select_random_feasible(demand, self.rng)
            return select_random_feasible(demand, candidates, self.rng)
        if isinstance(candidates, CandidatePool):
            return candidates.select_most_matched(
                demand, self.sim.max_vm_capacity()
            )
        return select_most_matched(
            demand, candidates, reference=self.sim.max_vm_capacity()
        )
