"""Persistent, content-addressed store of fitted CORP predictors.

The in-process :class:`~repro.experiments.runner.PredictorCache` (PR 1)
amortizes the offline DNN/HMM fit *within* one process; every fresh CLI
run, CI job and pool worker still pays the full Eq. 5-8 training cost.
This store extends the cache across processes: each fitted predictor is
serialized (via :mod:`repro.core.persistence`) under a file name derived
from the *fit fingerprint* — a digest of the history trace's content and
every config field that shapes the fit — so a second process that would
train on identical data loads the artifact instead.

Layout (one artifact = one npz + one sidecar, both named by fingerprint)::

    <root>/
        <fingerprint>.npz    # DNN weights, HMM (A, B, pi), CI seed
                             # errors, priors (save_predictor format)
        <fingerprint>.json   # store/format version stamp, history
                             # digest, fit config, creation time

Invalidation is purely content-driven: the fingerprint covers
:data:`STORE_VERSION`, the persistence format version, the history
digest and :data:`FIT_FIELDS`, so changing any of them changes the file
name and old artifacts simply stop being found (``repro cache clear``
reclaims the space).  Writers are concurrency-safe by construction:
artifacts are written to a temp file in the store directory and
published with an atomic :func:`os.replace`, so readers only ever see
complete files and the last concurrent writer of one key wins with
identical content.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING

from ..obs import OBS
from .config import CorpConfig
from .persistence import _FORMAT_VERSION, load_predictor, save_predictor

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .predictor import CorpPredictor

__all__ = [
    "STORE_VERSION",
    "FIT_FIELDS",
    "PredictorStore",
    "fit_fingerprint",
    "default_store_dir",
]

#: Bumped when stored artifacts become semantically incompatible with
#: the current fit pipeline; part of the fingerprint, so a bump
#: invalidates every old artifact without touching the files.
STORE_VERSION = 1

#: Every CorpConfig field that shapes the fitted models.  This is the
#: persistence layer's identity set plus the training-loop knobs
#: (epoch cap, batch size) — two configs that differ in any of these
#: may fit different models and must map to different artifacts.
FIT_FIELDS: tuple[str, ...] = (
    "window_slots",
    "input_slots",
    "n_hidden_layers",
    "units_per_layer",
    "hmm_mode",
    "use_hmm_correction",
    "prediction_target",
    "min_history_slots",
    "train_quantile",
    "seed",
    "train_max_epochs",
    "train_batch_size",
)


def fit_fingerprint(
    config: CorpConfig, history_digest: str, family: str = "corp"
) -> str:
    """Hex digest identifying one (family, config, history) fit.

    Covers the predictor family, the store and persistence format
    versions, the full :data:`FIT_FIELDS` identity and the history
    trace's content digest — everything that determines the bit pattern
    of a deterministic fit.  The family is part of the key so artifacts
    from different predictor implementations can never shadow each
    other.
    """
    payload = {
        "store_version": STORE_VERSION,
        "format_version": _FORMAT_VERSION,
        "family": family,
        "history_digest": history_digest,
        "config": {name: getattr(config, name) for name in FIT_FIELDS},
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def default_store_dir() -> Path:
    """The on-disk cache root: ``$REPRO_CACHE_DIR`` or the XDG default."""
    # expanduser(): a literal `~` in either env var would otherwise
    # create a directory named "~" in the CWD.
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-corp" / "predictors"


class PredictorStore:
    """Digest-keyed directory of serialized fitted predictors.

    All operations tolerate a missing directory (it is created lazily on
    the first save) and corrupt or foreign files (skipped, never
    raised past) — the store is a cache, and a cache must degrade to a
    miss, not to a crash.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_dir()
        self.hits = 0
        self.misses = 0
        self.saves = 0
        self.warm_hits = 0

    # ------------------------------------------------------------------
    def _npz_path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.npz"

    def _meta_path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    def load(
        self,
        config: CorpConfig,
        history_digest: str,
        family: str = "corp",
    ):
        """The stored predictor for (family, config, history), or None.

        The CORP family round-trips through the legacy
        :mod:`repro.core.persistence` archive; every other family
        restores via its class's :meth:`Predictor.load_npz`.  A
        returned CORP predictor carries the *requested* config object:
        the archive only serializes the fit-shaping fields, and the
        fingerprint guarantees those match, so adopting the caller's
        config restores the runtime knobs too.
        """
        fingerprint = fit_fingerprint(config, history_digest, family)
        path = self._npz_path(fingerprint)
        if not path.is_file():
            self.misses += 1
            OBS.count("predictor_store.miss")
            return None
        try:
            if family == "corp":
                predictor = load_predictor(path)
                predictor.config = config
            else:
                from ..forecast.registry import predictor_class

                predictor = predictor_class(family).load_npz(
                    path, config=config
                )
        except Exception:  # corrupt / truncated / stale-format artifact
            self.misses += 1
            OBS.count("predictor_store.miss")
            return None
        self.hits += 1
        OBS.count("predictor_store.hit")
        return predictor

    def save(
        self,
        config: CorpConfig,
        history_digest: str,
        predictor,
    ) -> Path:
        """Persist a fitted predictor; returns the artifact path.

        The family is taken from the predictor itself and keyed into
        the fingerprint; CORP uses the legacy archive, every other
        family its own :meth:`Predictor.save_npz` payload.  Write-to-
        temp + atomic rename: concurrent writers of the same key race
        harmlessly (identical content, last rename wins) and readers
        never observe a partial file.
        """
        family = getattr(predictor, "family", "corp")
        fingerprint = fit_fingerprint(config, history_digest, family)
        self.root.mkdir(parents=True, exist_ok=True)
        final = self._npz_path(fingerprint)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{fingerprint[:16]}-", suffix=".tmp.npz"
        )
        os.close(fd)
        try:
            if family == "corp":
                save_predictor(predictor, tmp)
            else:
                predictor.save_npz(tmp)
            os.replace(tmp, final)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - failed save
                os.unlink(tmp)
        meta = {
            "store_version": STORE_VERSION,
            "format_version": _FORMAT_VERSION,
            "family": family,
            "fingerprint": fingerprint,
            "history_digest": history_digest,
            "config": {name: getattr(config, name) for name in FIT_FIELDS},
            "created": time.time(),
        }
        fd, tmp_meta = tempfile.mkstemp(
            dir=self.root, prefix=f".{fingerprint[:16]}-", suffix=".tmp.json"
        )
        with os.fdopen(fd, "w") as handle:
            json.dump(meta, handle, sort_keys=True)
        os.replace(tmp_meta, self._meta_path(fingerprint))
        self.saves += 1
        OBS.count("predictor_store.save")
        return final

    # ------------------------------------------------------------------
    def nearest(
        self, config: CorpConfig, *, exclude_digest: str | None = None
    ) -> "CorpPredictor | None":
        """Warm-start donor: a stored fit of the same config on *other* data.

        Scans the sidecar metadata for artifacts whose fit config
        matches ``config`` exactly but whose history digest differs
        (the "training window shifted" case), and returns the most
        recently created one.  The donor's weights seed the refit; they
        never substitute for it.
        """
        wanted = {name: getattr(config, name) for name in FIT_FIELDS}
        best: dict | None = None
        for meta in self.entries():
            if meta.get("store_version") != STORE_VERSION:
                continue
            # Warm starts are a DNN-weights concept; only the CORP
            # family (legacy entries carry no family stamp) qualifies.
            if meta.get("family", "corp") != "corp":
                continue
            if meta.get("config") != wanted:
                continue
            if exclude_digest is not None and meta.get("history_digest") == exclude_digest:
                continue
            if best is None or meta.get("created", 0) > best.get("created", 0):
                best = meta
        if best is None:
            return None
        try:
            donor = load_predictor(self._npz_path(best["fingerprint"]))
        except Exception:  # pragma: no cover - corrupt donor
            return None
        self.warm_hits += 1
        OBS.count("predictor_store.warm_hit")
        return donor

    # ------------------------------------------------------------------
    def entries(self) -> list[dict]:
        """Sidecar metadata of every complete artifact, unordered."""
        if not self.root.is_dir():
            return []
        out: list[dict] = []
        for meta_path in self.root.glob("*.json"):
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):  # pragma: no cover - corrupt
                continue
            if not isinstance(meta, dict) or "fingerprint" not in meta:
                continue
            if self._npz_path(meta["fingerprint"]).is_file():
                out.append(meta)
        return out

    def stats(self) -> dict:
        """Store summary for ``repro cache stats`` and profile output."""
        entries = self.entries()
        total_bytes = 0
        for meta in entries:
            try:
                total_bytes += self._npz_path(meta["fingerprint"]).stat().st_size
            except OSError:  # pragma: no cover - racing clear
                pass
        return {
            "root": str(self.root),
            "store_version": STORE_VERSION,
            "entries": len(entries),
            "total_bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "saves": self.saves,
            "warm_hits": self.warm_hits,
        }

    def clear(self) -> int:
        """Delete every artifact (and stray temp file); returns the count.

        Only complete npz/json pairs count toward the return value, but
        leftovers from crashed writers are swept too.
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in self.root.iterdir():
            if path.suffix == ".npz" and not path.name.startswith("."):
                removed += 1
            if path.is_file() and (
                path.suffix in (".npz", ".json") or ".tmp." in path.name
            ):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing clear
                    pass
        return removed

    def __len__(self) -> int:
        return len(self.entries())
