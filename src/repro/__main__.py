"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------
``compare``   — run all four schedulers on one workload and print the
                comparison table (a single column of the evaluation);
                ``--scenario {pipeline,diurnal,storm}`` swaps in a
                scenario-zoo family with its extra summary metrics.
``storms``    — revocation-storm sweep: every method at every storm
                intensity, with per-intensity resilience tables.
``profile``   — run a profiled comparison, print the per-stage timing
                table and counters, and write ``PROFILE_runtime.json``.
``figure``    — regenerate one of the paper's figures (fig06..fig14).
``ablations`` — run the CORP component ablations (DESIGN.md §5).
``mixed``     — the mixed short+long workload extension.
``bench``     — time the end-to-end sweep against the pre-optimization
                baseline and write a JSON report.
``check``     — run a comparison with the runtime invariant checker
                installed and print the violation table (exit 1 on any
                violation); ``--replay capture.jsonl`` instead re-runs a
                captured event stream and diffs per-slot state.
``golden``    — compare the seeded summaries against the committed
                golden trace under ``tests/golden/`` (``--update``
                regenerates it after an intentional change).
``cache``     — manage the on-disk predictor store: ``stats`` prints
                the artifact inventory, ``clear`` deletes it, ``warm``
                pre-fits a scenario's predictor into it so later runs
                skip the offline DNN/HMM fit entirely.
``predictors``— list the registered predictor families the
                ``--predictor`` flag accepts.

``compare`` and ``profile`` accept ``--store [DIR]`` (reuse fitted
predictors across processes via the on-disk store), ``--warm-start``
(seed unavoidable refits from the nearest stored artifact; changes
fitted weights, so opt-in), ``--fit-workers N`` (fan the per-resource
fits across processes, bit-identical to serial), and
``--predictor-cache-size N`` (in-memory LRU bound).  ``compare``,
``profile`` and ``serve`` accept ``--predictor NAME`` to run CORP on a
different registered forecasting family (``corp``, ``quantile``,
``classify``, ``ets``, ``markov`` or ``auto``).

Experiment execution routes exclusively through :mod:`repro.api`; pass
``--events out.jsonl`` to stream structured decision events (slots,
placements, preemption-gate evaluations, predictor fits) to a JSONL
file.

Examples::

    python -m repro compare --jobs 200 --workers 4
    python -m repro compare --quick --predictor quantile
    python -m repro predictors
    python -m repro compare --jobs 50 --events /tmp/ev.jsonl
    python -m repro compare --faults 0.5 --quick
    python -m repro profile --jobs 50
    python -m repro figure fig09 --testbed cluster
    python -m repro bench --quick --bench-out BENCH_runtime.json
    python -m repro check --quick --differential
    python -m repro check --jobs 30 --events /tmp/cap.jsonl
    python -m repro check --replay /tmp/cap.jsonl
    python -m repro golden
    python -m repro golden --update
    python -m repro cache warm --jobs 200 --seed 7
    python -m repro compare --jobs 200 --store
    python -m repro cache stats
    python -m repro cache clear
"""

from __future__ import annotations

import argparse
import json
import sys

from . import __version__, api
from .experiments.report import format_table

FIGURES = (
    "fig06", "fig07", "fig08", "fig09", "fig10",
    "fig11", "fig12", "fig13", "fig14",
)


def _open_events(args: argparse.Namespace) -> bool:
    """Attach a JSONL sink when ``--events`` was given."""
    path = getattr(args, "events", None)
    if not path:
        return False
    api.attach_sink(path)
    return True


def _make_cache(args: argparse.Namespace) -> api.PredictorCache:
    """A :class:`PredictorCache` configured from the shared CLI flags."""
    store = None
    if getattr(args, "store", None) is not None:
        store = api.PredictorStore(args.store or None)
    if getattr(args, "warm_start", False) and store is None:
        raise ValueError("--warm-start requires --store")
    return api.PredictorCache(
        maxsize=args.predictor_cache_size,
        store=store,
        warm_start=getattr(args, "warm_start", False),
        fit_workers=args.fit_workers,
    )


def _print_cache_stats(stats: dict) -> None:
    """Render the in-memory + store hit/miss summary as a table."""
    rows = [
        ["memory entries", f"{stats['size']}/{stats['maxsize']}"],
        ["memory hits", stats["hits"]],
        ["memory misses", stats["misses"]],
    ]
    store = stats.get("store")
    if store is not None:
        rows += [
            ["store dir", store["root"]],
            ["store entries", store["entries"]],
            ["store hits", store["hits"]],
            ["store misses", store["misses"]],
            ["store saves", store["saves"]],
            ["warm starts", stats.get("warm_starts", 0)],
        ]
    print(format_table(["predictor cache", "value"], rows, title="predictor cache"))


def _warn_truncated(results: dict) -> None:
    """Flag runs that hit ``max_slots`` with work still outstanding."""
    names = [m for m, r in results.items() if r.truncated]
    if names:
        print(
            f"\nWARNING: truncated at max_slots with work still "
            f"outstanding: {', '.join(names)} — summaries cover an "
            f"incomplete run",
            file=sys.stderr,
        )


def _print_extra_metrics(results: dict) -> None:
    """Scenario-family metrics table (pipeline/diurnal/storm summaries)."""
    if not any(r.extra_metrics for r in results.values()):
        return
    keys = sorted(
        {k for r in results.values() for k in (r.extra_metrics or {})}
    )
    rows = [
        [method]
        + [(r.extra_metrics or {}).get(k, float("nan")) for k in keys]
        for method, r in results.items()
    ]
    print()
    print(format_table(["method"] + keys, rows, title="scenario metrics"))


def _cmd_compare(args: argparse.Namespace) -> int:
    jobs = min(args.jobs, 30) if args.quick else args.jobs
    fault_plan = None
    if args.faults is not None:
        fault_plan = api.build_fault_plan(
            seed=args.fault_seed, intensity=args.faults
        )
    scenario = None
    if args.scenario is not None:
        scenario = api.build_scenario(
            jobs=jobs, testbed=args.testbed, seed=args.seed,
            family=args.scenario,
        )
    cache = _make_cache(args)
    capturing = _open_events(args)
    try:
        results = api.compare(
            scenario=scenario,
            jobs=jobs,
            testbed=args.testbed,
            seed=args.seed,
            workers=args.workers,
            fault_plan=fault_plan,
            predictor_cache=cache,
            predictor=args.predictor,
            scale=_scale_from_args(args),
        )
    finally:
        if capturing:
            api.detach_sink()
    rows = []
    for method, result in results.items():
        summary = result.summary()
        rows.append(
            [
                method,
                summary["overall_utilization"],
                summary["slo_violation_rate"],
                summary.get("prediction_error_rate", float("nan")),
                summary["allocation_latency_s"],
            ]
        )
    workload = (
        f"the {args.scenario} scenario ({args.testbed} profile)"
        if args.scenario is not None
        else f"the {args.testbed} profile"
    )
    print(
        format_table(
            ["method", "utilization", "slo_rate", "err_rate", "latency_s"],
            rows,
            title=f"{jobs} jobs on {workload}",
        )
    )
    if any(r.resilience is not None for r in results.values()):
        fault_rows = []
        for method, result in results.items():
            summary = result.summary()
            fault_rows.append(
                [
                    method,
                    int(summary["evictions"]),
                    int(summary["retries"]),
                    int(summary["gave_up"]),
                    int(summary["slo_violations_faulted"]),
                    summary["recovery_latency_slots"],
                ]
            )
        if args.faults is not None:
            res_title = (
                f"resilience under fault intensity {args.faults:g} "
                f"(fault seed {args.fault_seed})"
            )
        else:  # the scenario carries its own plan (e.g. --scenario storm)
            res_title = "resilience under the scenario's fault plan"
        print()
        print(
            format_table(
                [
                    "method", "evictions", "retries", "gave_up",
                    "slo_viol_faulted", "recovery_slots",
                ],
                fault_rows,
                title=res_title,
            )
        )
    _print_extra_metrics(results)
    if cache.store is not None:
        stats = cache.stats()
        store = stats["store"]
        print(
            f"\npredictor store {store['root']}: "
            f"{store['hits']} hit(s), {store['misses']} miss(es), "
            f"{store['saves']} save(s), {stats['warm_starts']} warm start(s)"
        )
    if capturing:
        print(f"\nwrote events to {args.events}")
    _warn_truncated(results)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """One lifecycle of the asyncio allocation service (v1.5).

    Opens the service, streams every record of the generated workload
    into it, consumes the placement stream concurrently, drains, and
    prints the drained run's summary — the CI smoke path for
    ``CORP-as-a-daemon``.
    """
    import asyncio

    fault_plan = None
    if args.faults is not None:
        fault_plan = api.build_fault_plan(
            seed=args.fault_seed, intensity=args.faults
        )
    cache = _make_cache(args)
    capturing = _open_events(args)
    scenario = api.build_scenario(
        jobs=args.jobs, testbed=args.testbed, seed=args.seed
    )

    async def _serve():
        updates = []

        async def _consume(svc):
            async for update in svc.placements():
                updates.append(update)
                if args.show_placements and len(updates) <= args.show_placements:
                    opp = " (opportunistic)" if update.opportunistic else ""
                    print(
                        f"  slot {update.slot:>4}  job {update.job_id:>5}"
                        f" -> vm {update.vm_id}{opp}"
                    )

        async with api.open_service(
            scenario=scenario,
            method=args.method,
            fault_plan=fault_plan,
            predictor_cache=cache,
            predictor=args.predictor,
            scale=_scale_from_args(args),
        ) as svc:
            consumer = asyncio.ensure_future(_consume(svc))
            n = await svc.submit_trace(scenario.evaluation_trace())
            print(
                f"{args.method} service up on the {args.testbed} profile; "
                f"{n} job(s) submitted, draining..."
            )
            result = await svc.drain()
            await consumer
        return n, updates, result

    try:
        n_submitted, updates, result = asyncio.run(_serve())
    finally:
        if capturing:
            api.detach_sink()

    summary = result.summary()
    rows = [
        [
            args.method,
            summary["overall_utilization"],
            summary["slo_violation_rate"],
            summary.get("prediction_error_rate", float("nan")),
            summary["allocation_latency_s"],
        ]
    ]
    print(
        format_table(
            ["method", "utilization", "slo_rate", "err_rate", "latency_s"],
            rows,
            title=f"service drain: {n_submitted} job(s) submitted, "
                  f"{len(updates)} placement update(s) streamed",
        )
    )
    if cache.store is not None:
        _print_cache_stats(cache.stats())
    if capturing:
        print(f"\nwrote events to {args.events}")
    _warn_truncated({args.method: result})
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    cache = _make_cache(args)
    capturing = _open_events(args)
    try:
        report = api.profile_run(
            jobs=args.jobs, testbed=args.testbed, seed=args.seed,
            predictor_cache=cache, predictor=args.predictor,
        )
    finally:
        if capturing:
            api.detach_sink()
    stage_rows = [
        [s["stage"], s["calls"], s["total_s"], s["mean_s"], s["share"]]
        for s in report["stages"]
    ]
    print(
        format_table(
            ["stage", "calls", "total_s", "mean_s", "share"],
            stage_rows,
            title=f"per-stage wall clock ({args.jobs} jobs, {args.testbed})",
        )
    )
    counters = report["counters"]
    if counters:
        print()
        print(
            format_table(
                ["counter", "value"],
                [[name, value] for name, value in counters.items()],
                title="counters",
            )
        )
    print()
    _print_cache_stats(report["predictor_cache"])
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .experiments.figures import (
        fig06_prediction_error,
        fig07_utilization,
        fig08_utilization_vs_slo,
        fig09_slo_vs_confidence,
        fig10_overhead,
    )
    from .experiments.plot import save_figure_svg

    cache = api.PredictorCache()
    name = args.name
    testbed = args.testbed
    # EC2 figures are the cluster figures rerun on the EC2 profile.
    mapped = {
        "fig11": ("fig07", "ec2"),
        "fig12": ("fig08", "ec2"),
        "fig13": ("fig09", "ec2"),
        "fig14": ("fig10", "ec2"),
    }
    if name in mapped:
        name, testbed = mapped[name]
    if name == "fig06":
        result = fig06_prediction_error(testbed=testbed, seed=args.seed, cache=cache)
        print(result.to_table())
        if args.svg:
            print("wrote", save_figure_svg(result, args.svg, y_label="error rate"))
    elif name == "fig07":
        panels = fig07_utilization(testbed=testbed, seed=args.seed, cache=cache)
        for key in ("cpu", "mem", "storage", "overall"):
            print(panels[key].to_table())
            print()
        if args.svg:
            print("wrote", save_figure_svg(
                panels["overall"], args.svg, y_label="overall utilization"))
    elif name == "fig08":
        curves = fig08_utilization_vs_slo(testbed=testbed, seed=args.seed, cache=cache)
        rows = [
            [method, slo, util]
            for method, points in curves.items()
            for slo, util in points
        ]
        print(
            format_table(
                ["method", "slo_violation_rate", "overall_utilization"],
                rows,
                title=f"utilization vs SLO violation rate ({testbed})",
            )
        )
    elif name == "fig09":
        result = fig09_slo_vs_confidence(testbed=testbed, seed=args.seed, cache=cache)
        print(result.to_table())
        if args.svg:
            print("wrote", save_figure_svg(result, args.svg, y_label="SLO violation rate"))
    elif name == "fig10":
        latencies = fig10_overhead(testbed=testbed, seed=args.seed, cache=cache)
        print(
            format_table(
                ["method", "allocation_latency_s"],
                [[m, v] for m, v in latencies.items()],
                title=f"allocation latency, 300 jobs ({testbed})",
            )
        )
    else:
        raise ValueError(f"unknown figure {name!r} (expected {FIGURES})")
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from .experiments.ablations import run_ablations, run_predictor_ablation

    if args.predictors:
        results = run_predictor_ablation(n_jobs=args.jobs, seed=args.seed)
        rows = [
            [
                name,
                s["overall_utilization"],
                s["slo_violation_rate"],
                s.get("prediction_error_rate", 0.0),
                int(s["riders"]),
                int(s["switches"]) if "switches" in s else "-",
            ]
            for name, s in results.items()
        ]
        print(
            format_table(
                [
                    "predictor", "utilization", "slo_rate", "err_rate",
                    "riders", "switches",
                ],
                rows,
                title="CORP predictor ablation (all families, same workload)",
            )
        )
        return 0
    results = run_ablations(n_jobs=args.jobs, seed=args.seed)
    rows = [
        [
            name,
            s["overall_utilization"],
            s["slo_violation_rate"],
            s.get("prediction_error_rate", 0.0),
            int(s["riders"]),
        ]
        for name, s in results.items()
    ]
    print(
        format_table(
            ["variant", "utilization", "slo_rate", "err_rate", "riders"],
            rows,
            title="CORP ablations",
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .experiments.bench import write_benchmark

    try:
        report = write_benchmark(
            args.bench_out,
            quick=args.quick,
            workers=args.workers,
            seed=args.seed,
            min_speedup=float("-inf") if args.no_assert else None,
        )
    except AssertionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.bench_out}")
    return 0


def _cmd_mixed(args: argparse.Namespace) -> int:
    from .experiments.mixed import run_mixed_workload

    results = run_mixed_workload(n_jobs=args.jobs, seed=args.seed)
    rows = [
        [
            m,
            s["overall_utilization"],
            s["slo_violation_rate"],
            s.get("prediction_error_rate", 0.0),
            int(s["riders"]),
        ]
        for m, s in results.items()
    ]
    print(
        format_table(
            ["method", "utilization", "slo_rate", "err_rate", "riders"],
            rows,
            title="Mixed short+long workload",
        )
    )
    return 0


def _cmd_storms(args: argparse.Namespace) -> int:
    """Revocation-storm sweep: every method at every storm intensity.

    The storm analogue of ``compare --faults``: one shared workload
    replayed under seeded :class:`RevocationWave` schedules of
    increasing intensity, with the per-intensity resilience and
    storm-recovery metrics tabulated for all four methods.
    """
    from .experiments.scenarios import FAULT_INTENSITIES

    jobs = min(args.jobs, 30) if args.quick else args.jobs
    intensities = (
        tuple(args.intensities) if args.intensities else FAULT_INTENSITIES
    )
    methods = tuple(args.methods) if args.methods else api.METHOD_ORDER
    base = api.build_scenario(
        jobs=jobs, testbed=args.testbed, seed=args.seed
    )
    scenarios = api.storm_sweep_scenarios(
        base, intensities=intensities, seed=args.storm_seed,
        n_slots=args.slots,
    )
    results = api.sweep(
        scenarios=scenarios,
        methods=methods,
        workers=args.workers,
        predictor_cache=api.PredictorCache(),
    )
    print(
        f"storm sweep: {jobs} jobs on the {args.testbed} profile, "
        f"storm seed {args.storm_seed}, intensities "
        f"{', '.join(f'{i:g}' for i in intensities)}"
    )
    for index, intensity in enumerate(intensities):
        rows = []
        for m, method in enumerate(methods):
            summary = results[index * len(methods) + m].summary()
            rows.append(
                [
                    method,
                    summary["overall_utilization"],
                    summary["slo_violation_rate"],
                    int(summary.get("storm_waves", 0)),
                    int(summary.get("storm_vms_hit", 0)),
                    summary.get("storm_recovery_slots", 0.0),
                    int(summary.get("evictions", 0)),
                    int(summary.get("gave_up", 0)),
                ]
            )
        print()
        print(
            format_table(
                [
                    "method", "utilization", "slo_rate", "waves",
                    "vms_hit", "recovery_slots", "evictions", "gave_up",
                ],
                rows,
                title=f"storm intensity {intensity:g}"
                      + ("" if intensity > 0 else " (fault-free control)"),
            )
        )
    _warn_truncated(
        {f"run{idx}": r for idx, r in enumerate(results) if r.truncated}
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    if args.replay:
        report = api.replay(
            events=args.replay,
            methods=tuple(args.methods) if args.methods else None,
            tolerance=args.tolerance if args.tolerance is not None else 1e-9,
        )
        meta = report.meta
        print(
            f"replayed {meta['jobs']} jobs on the {meta['testbed']} "
            f"profile (seed {meta['seed']}, methods "
            f"{', '.join(meta['methods'])}): {report.n_compared} events "
            f"compared"
        )
        if report.ok:
            print("replay OK: live run reproduced the capture exactly")
            return 0
        rows = [list(m.as_row().values()) for m in report.mismatches]
        print(
            format_table(
                list(report.mismatches[0].as_row().keys()),
                rows,
                title=f"{len(report.mismatches)} replay mismatch(es)"
                + (" [truncated]" if report.truncated else ""),
            )
        )
        return 1

    jobs = min(args.jobs, 30) if args.quick else args.jobs
    fault_plan = None
    if args.faults is not None:
        fault_plan = api.build_fault_plan(
            seed=args.fault_seed, intensity=args.faults
        )
    report = api.check_run(
        jobs=jobs,
        testbed=args.testbed,
        seed=args.seed,
        methods=tuple(args.methods) if args.methods else api.METHOD_ORDER,
        fault_plan=fault_plan,
        rules=tuple(args.rules) if args.rules else None,
        tolerance=args.tolerance if args.tolerance is not None else 1e-6,
        differential=args.differential,
        events=args.events,
    )
    checked = ", ".join(
        f"{rule}={count}" for rule, count in sorted(report.checks.items())
    )
    print(
        f"checked {jobs} jobs on the {args.testbed} profile "
        f"(seed {args.seed}): {report.n_checks} invariant evaluations "
        f"({checked})"
    )
    if args.events:
        print(f"wrote events to {args.events}")
    if report.ok:
        print("check OK: no invariant violations")
        return 0
    rows = [list(v.as_row().values()) for v in report.violations]
    print(
        format_table(
            list(report.violations[0].as_row().keys()),
            rows,
            title=f"{report.n_violations} invariant violation(s)",
        )
    )
    return 1


def _cmd_golden(args: argparse.Namespace) -> int:
    from .check.golden import (
        GOLDEN_FAMILIES,
        compute_family_golden,
        compute_golden,
        default_golden_path,
        diff_golden,
        family_golden_path,
        load_golden,
        write_golden,
    )

    if args.family == "all":
        targets = ("base",) + GOLDEN_FAMILIES
    else:
        targets = (args.family,)

    status = 0
    for target in targets:
        if target == "base":
            path = default_golden_path(
                args.dir, jobs=args.jobs, testbed=args.testbed, seed=args.seed
            )
            fresh = compute_golden(
                jobs=args.jobs,
                testbed=args.testbed,
                seed=args.seed,
                fault_intensity=args.faults,
                fault_seed=args.fault_seed,
            )
        else:
            path = family_golden_path(
                args.dir, family=target, jobs=args.jobs, seed=args.seed
            )
            fresh = compute_family_golden(
                target, jobs=args.jobs, testbed=args.testbed, seed=args.seed
            )
        if args.update:
            write_golden(path, fresh)
            print(f"wrote {path} (digest {fresh['digest'][:12]})")
            continue
        try:
            recorded = load_golden(path)
        except FileNotFoundError:
            print(
                f"error: no golden file at {path}; record one with "
                f"python -m repro golden --update",
                file=sys.stderr,
            )
            status = max(status, 2)
            continue
        drift = diff_golden(recorded, fresh)
        if not drift:
            print(f"golden OK: {path} matches (digest {fresh['digest'][:12]})")
            continue
        print(f"golden DRIFT against {path}:")
        for line in drift:
            print(f"  {line}")
        print(
            "re-record with `python -m repro golden --update` if the "
            "behavioural change is intentional"
        )
        status = max(status, 1)
    return status


def _cmd_cache(args: argparse.Namespace) -> int:
    store = api.PredictorStore(args.dir or None)
    if args.action == "stats":
        stats = store.stats()
        rows = [
            ["dir", stats["root"]],
            ["store version", stats["store_version"]],
            ["entries", stats["entries"]],
            ["total bytes", stats["total_bytes"]],
        ]
        print(format_table(["predictor store", "value"], rows,
                           title="on-disk predictor store"))
        import time

        for meta in store.entries():
            created = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(meta["created"])
            )
            print(
                f"  {meta['fingerprint'][:12]}  "
                f"history {meta['history_digest'][:12]}  {created}"
            )
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} artifact(s) from {store.root}")
        return 0
    # warm: fit this scenario's predictor into the store so any later
    # run with the same (config, history) loads instead of fitting.
    from .core.config import CorpConfig

    jobs = min(args.jobs, 30) if args.quick else args.jobs
    scenario = api.build_scenario(
        jobs=jobs, testbed=args.testbed, seed=args.seed
    )
    cache = api.PredictorCache(store=store, fit_workers=args.fit_workers)
    cache.get(CorpConfig(seed=args.seed), scenario.history_trace())
    verb = "loaded (already warm)" if store.hits else "fitted and stored"
    print(
        f"{verb}: predictor for {jobs} jobs on the {args.testbed} "
        f"profile (seed {args.seed}) in {store.root}"
    )
    return 0


def _cmd_predictors(args: argparse.Namespace) -> int:
    """List the registered predictor families ``--predictor`` accepts."""
    rows = [
        [name, summary]
        for name, summary in api.predictor_summaries().items()
    ]
    print(
        format_table(
            ["predictor", "summary"],
            rows,
            title="registered predictor families (--predictor NAME)",
        )
    )
    return 0


def _add_predictor_option(parser: argparse.ArgumentParser) -> None:
    """The ``--predictor`` flag shared by compare/profile/serve.

    Free-form (not ``choices=``) so third-party registrations work; an
    unknown name raises the registry's ValueError, which main() turns
    into the usual one-line error + exit 2.
    """
    parser.add_argument(
        "--predictor", default="corp", metavar="NAME",
        help="registered forecasting family CORP runs on: corp "
             "(DNN+HMM, default), quantile, classify, ets, markov, or "
             "auto (online per-workload selection); see `repro "
             "predictors`",
    )


def _add_scale_options(parser: argparse.ArgumentParser) -> None:
    """The hyperscale flags shared by ``compare`` and ``serve``."""
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the availability index into N VM-pool shards "
             "(default: 1; results are identical at any shard count — "
             "sharding bounds per-slot recompute work on 10k+-VM "
             "clusters)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="records per chunk for streaming trace generation "
             "(default: 4096)",
    )


def _scale_from_args(args: argparse.Namespace) -> "api.ScaleConfig | None":
    """Build the ``scale=`` argument from the CLI flags (None = defaults)."""
    if args.shards is None and args.chunk_size is None:
        return None
    kwargs = {}
    if args.shards is not None:
        kwargs["shards"] = args.shards
    if args.chunk_size is not None:
        kwargs["chunk_size"] = args.chunk_size
    return api.ScaleConfig(**kwargs)


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    """The predictor-cache flags shared by ``compare`` and ``profile``."""
    parser.add_argument(
        "--store", nargs="?", const="", default=None, metavar="DIR",
        help="persist fitted predictors to an on-disk store and load "
             "them back on later runs (bare flag = $REPRO_CACHE_DIR or "
             "the XDG cache dir)",
    )
    parser.add_argument(
        "--warm-start", action="store_true",
        help="seed unavoidable refits from the nearest same-config "
             "stored artifact (requires --store; changes the fitted "
             "weights, so results differ from a cold fit)",
    )
    parser.add_argument(
        "--fit-workers", type=int, default=0,
        help="fan the three per-resource DNN/HMM fits across N worker "
             "processes (0 = serial; results are identical either way)",
    )
    parser.add_argument(
        "--predictor-cache-size", type=int, default=16,
        help="in-memory LRU bound of the fitted-predictor cache "
             "(default: 16)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CORP (CLUSTER 2016) reproduction — experiment CLI",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="run all four schedulers once")
    compare.add_argument("--jobs", type=int, default=200)
    compare.add_argument("--testbed", choices=("cluster", "ec2"), default="cluster")
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument(
        "--workers", type=int, default=0,
        help="run the four schedulers across N worker processes "
             "(0 = in-process; results are identical either way)",
    )
    compare.add_argument(
        "--events", metavar="PATH", default=None,
        help="stream structured decision events (slot, placement, "
             "preemption, predictor_fit, vm_fail, evict, retry) to a "
             "JSONL file; with --workers, per-worker shards are merged",
    )
    compare.add_argument(
        "--faults", nargs="?", const=0.3, type=float, default=None,
        metavar="INTENSITY",
        help="replay a seeded deterministic fault plan (VM crashes, "
             "capacity revocations, predictor outages, job failures) of "
             "the given intensity against every scheduler and report "
             "resilience metrics (bare flag = 0.3)",
    )
    compare.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault plan (independent of the workload seed)",
    )
    compare.add_argument(
        "--quick", action="store_true",
        help="cap the job count at 30 (the CI smoke setting)",
    )
    from .experiments.scenarios import SCENARIO_FAMILIES

    compare.add_argument(
        "--scenario", choices=SCENARIO_FAMILIES, default=None,
        help="run a scenario-zoo family instead of the steady arrival "
             "mix: pipeline (phased DAG submission), diurnal (day/night "
             "arrivals with flash crowds) or storm (correlated spot "
             "revocations at intensity 0.5)",
    )
    _add_cache_options(compare)
    _add_predictor_option(compare)
    _add_scale_options(compare)
    compare.set_defaults(func=_cmd_compare)

    serve = sub.add_parser(
        "serve",
        help="run the asyncio allocation service over a generated workload",
    )
    serve.add_argument("--jobs", type=int, default=50)
    serve.add_argument("--testbed", choices=("cluster", "ec2"), default="cluster")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--method", choices=api.METHOD_ORDER, default="CORP",
        help="the scheduler the service runs (default: CORP)",
    )
    serve.add_argument(
        "--show-placements", type=int, default=0, metavar="N",
        help="echo the first N streamed placement updates",
    )
    serve.add_argument(
        "--events", metavar="PATH", default=None,
        help="stream structured decision events to a JSONL file",
    )
    serve.add_argument(
        "--faults", nargs="?", const=0.3, type=float, default=None,
        metavar="INTENSITY",
        help="replay a seeded deterministic fault plan while jobs "
             "stream in (bare flag = 0.3)",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault plan (independent of the workload seed)",
    )
    _add_cache_options(serve)
    _add_predictor_option(serve)
    _add_scale_options(serve)
    serve.set_defaults(func=_cmd_serve)

    profile = sub.add_parser(
        "profile",
        help="profiled comparison: per-stage timing table + counters",
    )
    profile.add_argument("--jobs", type=int, default=50)
    profile.add_argument("--testbed", choices=("cluster", "ec2"), default="cluster")
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument(
        "--out", default="PROFILE_runtime.json",
        help="JSON report path (default: PROFILE_runtime.json, next to "
             "BENCH_runtime.json)",
    )
    profile.add_argument(
        "--events", metavar="PATH", default=None,
        help="also stream decision events to a JSONL file",
    )
    _add_cache_options(profile)
    _add_predictor_option(profile)
    profile.set_defaults(func=_cmd_profile)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=FIGURES)
    figure.add_argument("--testbed", choices=("cluster", "ec2"), default="cluster")
    figure.add_argument("--seed", type=int, default=7)
    figure.add_argument(
        "--svg", metavar="PATH", default=None,
        help="also render the figure as a standalone SVG chart "
             "(fig06/fig07/fig09 and their EC2 twins)",
    )
    figure.set_defaults(func=_cmd_figure)

    ablations = sub.add_parser("ablations", help="CORP component ablations")
    ablations.add_argument("--jobs", type=int, default=300)
    ablations.add_argument("--seed", type=int, default=7)
    ablations.add_argument(
        "--predictors", action="store_true",
        help="ablate the forecasting family instead of the scheduler "
             "components: one CORP run per registered predictor",
    )
    ablations.set_defaults(func=_cmd_ablations)

    mixed = sub.add_parser("mixed", help="mixed short+long workload")
    mixed.add_argument("--jobs", type=int, default=200)
    mixed.add_argument("--seed", type=int, default=7)
    mixed.set_defaults(func=_cmd_mixed)

    bench = sub.add_parser(
        "bench", help="time the sweep against the pre-optimization baseline"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="abbreviated sweep (job counts 50 and 150)",
    )
    bench.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the optimized sweep (0 = serial)",
    )
    bench.add_argument(
        "--bench-out", default="BENCH_runtime.json",
        help="path of the JSON report (default: BENCH_runtime.json)",
    )
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--no-assert", action="store_true",
        help="record the numbers without enforcing the speedup floor",
    )
    bench.set_defaults(func=_cmd_bench)

    storms = sub.add_parser(
        "storms",
        help="revocation-storm sweep: all methods at every storm intensity",
    )
    storms.add_argument("--jobs", type=int, default=200)
    storms.add_argument(
        "--testbed", choices=("cluster", "ec2"), default="cluster"
    )
    storms.add_argument("--seed", type=int, default=7)
    storms.add_argument(
        "--storm-seed", type=int, default=0,
        help="seed of the revocation-wave schedule "
             "(independent of the workload seed)",
    )
    storms.add_argument(
        "--slots", type=int, default=400,
        help="horizon (slots) the wave schedule covers (default: 400)",
    )
    storms.add_argument(
        "--intensities", nargs="+", type=float, default=None,
        metavar="I",
        help="storm intensities to sweep (default: 0 0.25 0.5 1)",
    )
    storms.add_argument(
        "--methods", nargs="+", metavar="METHOD", default=None,
        help="restrict to a subset of the schedulers (default: all four)",
    )
    storms.add_argument(
        "--workers", type=int, default=0,
        help="fan the sweep across N worker processes (0 = in-process)",
    )
    storms.add_argument(
        "--quick", action="store_true",
        help="cap the job count at 30 (the CI smoke setting)",
    )
    storms.set_defaults(func=_cmd_storms)

    from .check.rules import ALL_RULES

    check = sub.add_parser(
        "check",
        help="run with the runtime invariant checker (or --replay a capture)",
    )
    check.add_argument("--jobs", type=int, default=50)
    check.add_argument("--testbed", choices=("cluster", "ec2"), default="cluster")
    check.add_argument("--seed", type=int, default=7)
    check.add_argument(
        "--methods", nargs="+", metavar="METHOD", default=None,
        help="restrict to a subset of the schedulers "
             "(default: all four; for --replay, the captured set)",
    )
    check.add_argument(
        "--faults", nargs="?", const=0.3, type=float, default=None,
        metavar="INTENSITY",
        help="check under a seeded fault plan of the given intensity "
             "(bare flag = 0.3)",
    )
    check.add_argument("--fault-seed", type=int, default=0)
    check.add_argument(
        "--rules", nargs="+", metavar="RULE", choices=ALL_RULES, default=None,
        help=f"invariant rules to evaluate (default: all but "
             f"'differential'; choices: {', '.join(ALL_RULES)})",
    )
    check.add_argument(
        "--differential", action="store_true",
        help="also diff every slot outcome against the reference "
             "(pre-vectorization) executor — slower, strongest check",
    )
    check.add_argument(
        "--tolerance", type=float, default=None,
        help="numeric tolerance (default: 1e-6 for invariants, "
             "1e-9 for --replay)",
    )
    check.add_argument(
        "--events", metavar="PATH", default=None,
        help="also capture a replayable JSONL event stream "
             "(feed it back with --replay)",
    )
    check.add_argument(
        "--replay", metavar="PATH", default=None,
        help="differential replay: re-run the scenario this capture "
             "describes and diff per-slot state and placements "
             "against it",
    )
    check.add_argument(
        "--quick", action="store_true",
        help="cap the job count at 30 (the CI smoke setting)",
    )
    check.set_defaults(func=_cmd_check)

    golden = sub.add_parser(
        "golden",
        help="compare seeded summaries against the committed golden trace",
    )
    golden.add_argument(
        "--update", action="store_true",
        help="(re)write the golden file instead of comparing against it",
    )
    golden.add_argument(
        "--dir", default="tests/golden",
        help="directory of the golden files (default: tests/golden)",
    )
    from .check.golden import (
        GOLDEN_FAMILIES,
        GOLDEN_FAULT_INTENSITY,
        GOLDEN_FAULT_SEED,
        GOLDEN_JOBS,
        GOLDEN_SEED,
        GOLDEN_TESTBED,
    )

    golden.add_argument("--jobs", type=int, default=GOLDEN_JOBS)
    golden.add_argument(
        "--testbed", choices=("cluster", "ec2"), default=GOLDEN_TESTBED
    )
    golden.add_argument("--seed", type=int, default=GOLDEN_SEED)
    golden.add_argument(
        "--faults", type=float, default=GOLDEN_FAULT_INTENSITY,
        metavar="INTENSITY",
        help="fault intensity of the faulted golden section",
    )
    golden.add_argument("--fault-seed", type=int, default=GOLDEN_FAULT_SEED)
    golden.add_argument(
        "--family",
        choices=("all", "base") + GOLDEN_FAMILIES,
        default="all",
        help="which golden(s) to run: the base comparison, one scenario "
        "family, or all of them (default)",
    )
    golden.set_defaults(func=_cmd_golden)

    cache = sub.add_parser(
        "cache", help="manage the on-disk fitted-predictor store"
    )
    cache.add_argument(
        "action", choices=("stats", "clear", "warm"),
        help="stats: print the artifact inventory; clear: delete every "
             "artifact; warm: pre-fit one scenario's predictor into the "
             "store",
    )
    cache.add_argument(
        "--dir", default=None, metavar="DIR",
        help="store directory (default: $REPRO_CACHE_DIR or the XDG "
             "cache dir)",
    )
    cache.add_argument("--jobs", type=int, default=200,
                       help="(warm) scenario size to pre-fit")
    cache.add_argument("--testbed", choices=("cluster", "ec2"),
                       default="cluster")
    cache.add_argument("--seed", type=int, default=7)
    cache.add_argument("--fit-workers", type=int, default=0,
                       help="(warm) worker processes for the fit")
    cache.add_argument(
        "--quick", action="store_true",
        help="(warm) cap the job count at 30 (matches compare --quick)",
    )
    cache.set_defaults(func=_cmd_cache)

    predictors = sub.add_parser(
        "predictors",
        help="list the registered predictor families --predictor accepts",
    )
    predictors.set_defaults(func=_cmd_predictors)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Expected failures (bad figure names, unwritable paths, invalid
    parameter combinations) print one line on stderr and exit 2 instead
    of dumping a traceback; argparse errors keep argparse's own
    stderr-message-and-exit-2 behaviour.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
