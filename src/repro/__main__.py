"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``   — run all four schedulers on one workload and print the
                comparison table (a single column of the evaluation).
``figure``    — regenerate one of the paper's figures (fig06..fig14).
``ablations`` — run the CORP component ablations (DESIGN.md §5).
``mixed``     — the mixed short+long workload extension.
``bench``     — time the end-to-end sweep against the pre-optimization
                baseline and write a JSON report.

Examples::

    python -m repro compare --jobs 200 --workers 4
    python -m repro figure fig09 --testbed cluster
    python -m repro ablations
    python -m repro bench --quick --bench-out BENCH_runtime.json
"""

from __future__ import annotations

import argparse
import sys

from .experiments.ablations import run_ablations
from .experiments.figures import (
    fig06_prediction_error,
    fig07_utilization,
    fig08_utilization_vs_slo,
    fig09_slo_vs_confidence,
    fig10_overhead,
)
from .experiments.mixed import run_mixed_workload
from .experiments.plot import save_figure_svg
from .experiments.report import format_table
from .experiments.runner import (
    PredictorCache,
    run_methods,
    run_specs,
    sweep_specs,
)
from .experiments.scenarios import cluster_scenario, ec2_scenario

FIGURES = (
    "fig06", "fig07", "fig08", "fig09", "fig10",
    "fig11", "fig12", "fig13", "fig14",
)


def _cmd_compare(args: argparse.Namespace) -> int:
    builder = cluster_scenario if args.testbed == "cluster" else ec2_scenario
    scenario = builder(args.jobs, seed=args.seed)
    if args.workers >= 2:
        specs = sweep_specs([scenario], seed=args.seed)
        by_spec = run_specs(specs, workers=args.workers)
        results = {s.method: r for s, r in zip(specs, by_spec)}
    else:
        results = run_methods(scenario, seed=args.seed)
    rows = []
    for method, result in results.items():
        summary = result.summary()
        rows.append(
            [
                method,
                summary["overall_utilization"],
                summary["slo_violation_rate"],
                summary.get("prediction_error_rate", float("nan")),
                summary["allocation_latency_s"],
            ]
        )
    print(
        format_table(
            ["method", "utilization", "slo_rate", "err_rate", "latency_s"],
            rows,
            title=f"{args.jobs} jobs on the {args.testbed} profile",
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    cache = PredictorCache()
    name = args.name
    testbed = args.testbed
    # EC2 figures are the cluster figures rerun on the EC2 profile.
    mapped = {
        "fig11": ("fig07", "ec2"),
        "fig12": ("fig08", "ec2"),
        "fig13": ("fig09", "ec2"),
        "fig14": ("fig10", "ec2"),
    }
    if name in mapped:
        name, testbed = mapped[name]
    if name == "fig06":
        result = fig06_prediction_error(testbed=testbed, seed=args.seed, cache=cache)
        print(result.to_table())
        if args.svg:
            print("wrote", save_figure_svg(result, args.svg, y_label="error rate"))
    elif name == "fig07":
        panels = fig07_utilization(testbed=testbed, seed=args.seed, cache=cache)
        for key in ("cpu", "mem", "storage", "overall"):
            print(panels[key].to_table())
            print()
        if args.svg:
            print("wrote", save_figure_svg(
                panels["overall"], args.svg, y_label="overall utilization"))
    elif name == "fig08":
        curves = fig08_utilization_vs_slo(testbed=testbed, seed=args.seed, cache=cache)
        rows = [
            [method, slo, util]
            for method, points in curves.items()
            for slo, util in points
        ]
        print(
            format_table(
                ["method", "slo_violation_rate", "overall_utilization"],
                rows,
                title=f"utilization vs SLO violation rate ({testbed})",
            )
        )
    elif name == "fig09":
        result = fig09_slo_vs_confidence(testbed=testbed, seed=args.seed, cache=cache)
        print(result.to_table())
        if args.svg:
            print("wrote", save_figure_svg(result, args.svg, y_label="SLO violation rate"))
    elif name == "fig10":
        latencies = fig10_overhead(testbed=testbed, seed=args.seed, cache=cache)
        print(
            format_table(
                ["method", "allocation_latency_s"],
                [[m, v] for m, v in latencies.items()],
                title=f"allocation latency, 300 jobs ({testbed})",
            )
        )
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    results = run_ablations(n_jobs=args.jobs, seed=args.seed)
    rows = [
        [
            name,
            s["overall_utilization"],
            s["slo_violation_rate"],
            s.get("prediction_error_rate", 0.0),
            int(s["riders"]),
        ]
        for name, s in results.items()
    ]
    print(
        format_table(
            ["variant", "utilization", "slo_rate", "err_rate", "riders"],
            rows,
            title="CORP ablations",
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .experiments.bench import write_benchmark

    try:
        report = write_benchmark(
            args.bench_out,
            quick=args.quick,
            workers=args.workers,
            seed=args.seed,
            min_speedup=float("-inf") if args.no_assert else None,
        )
    except AssertionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.bench_out}")
    return 0


def _cmd_mixed(args: argparse.Namespace) -> int:
    results = run_mixed_workload(n_jobs=args.jobs, seed=args.seed)
    rows = [
        [
            m,
            s["overall_utilization"],
            s["slo_violation_rate"],
            s.get("prediction_error_rate", 0.0),
            int(s["riders"]),
        ]
        for m, s in results.items()
    ]
    print(
        format_table(
            ["method", "utilization", "slo_rate", "err_rate", "riders"],
            rows,
            title="Mixed short+long workload",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CORP (CLUSTER 2016) reproduction — experiment CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="run all four schedulers once")
    compare.add_argument("--jobs", type=int, default=200)
    compare.add_argument("--testbed", choices=("cluster", "ec2"), default="cluster")
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument(
        "--workers", type=int, default=0,
        help="run the four schedulers across N worker processes "
             "(0 = in-process; results are identical either way)",
    )
    compare.set_defaults(func=_cmd_compare)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=FIGURES)
    figure.add_argument("--testbed", choices=("cluster", "ec2"), default="cluster")
    figure.add_argument("--seed", type=int, default=7)
    figure.add_argument(
        "--svg", metavar="PATH", default=None,
        help="also render the figure as a standalone SVG chart "
             "(fig06/fig07/fig09 and their EC2 twins)",
    )
    figure.set_defaults(func=_cmd_figure)

    ablations = sub.add_parser("ablations", help="CORP component ablations")
    ablations.add_argument("--jobs", type=int, default=300)
    ablations.add_argument("--seed", type=int, default=7)
    ablations.set_defaults(func=_cmd_ablations)

    mixed = sub.add_parser("mixed", help="mixed short+long workload")
    mixed.add_argument("--jobs", type=int, default=200)
    mixed.add_argument("--seed", type=int, default=7)
    mixed.set_defaults(func=_cmd_mixed)

    bench = sub.add_parser(
        "bench", help="time the sweep against the pre-optimization baseline"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="abbreviated sweep (job counts 50 and 150)",
    )
    bench.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the optimized sweep (0 = serial)",
    )
    bench.add_argument(
        "--bench-out", default="BENCH_runtime.json",
        help="path of the JSON report (default: BENCH_runtime.json)",
    )
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--no-assert", action="store_true",
        help="record the numbers without enforcing the speedup floor",
    )
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
