"""Structured events and the sinks that receive them.

An :class:`Event` is a named bag of scalar fields describing one runtime
decision (a slot executed, a job placed, the preemption gate evaluated,
a predictor fitted).  Producers never format or store events themselves;
they hand them to whatever :class:`Sink` is attached to the global
observer (:mod:`repro.obs.observer`).  With no sink attached nothing is
built or written — the instrumentation call sites all guard on
``OBS.enabled`` so the disabled cost is one attribute load and a branch.

Sinks:

* :class:`NullSink` — accepts and discards (for overhead measurements);
* :class:`MemorySink` — accumulates events in a list (tests, notebooks);
* :class:`JsonlSink` — one JSON object per line, append-only, with
  numpy scalars/arrays coerced to plain JSON types.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator, Mapping, Protocol, runtime_checkable

__all__ = [
    "Event",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "read_jsonl",
    "events_by_name",
]


@dataclass(frozen=True)
class Event:
    """One structured observation: a name plus scalar fields."""

    name: str
    fields: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """Flat dict form, with the name under the ``"event"`` key."""
        out: dict[str, object] = {"event": self.name}
        out.update(self.fields)
        return out


@runtime_checkable
class Sink(Protocol):
    """Anything that can receive events."""

    def emit(self, event: Event) -> None:
        """Receive one event."""
        ...

    def close(self) -> None:
        """Flush and release resources (idempotent)."""
        ...


class NullSink:
    """Accepts and discards every event (the overhead-measurement sink)."""

    def emit(self, event: Event) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Buffers events in memory — the test/notebook sink."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)

    def named(self, name: str) -> list[Event]:
        """Events with a given name, in emission order."""
        return [e for e in self.events if e.name == name]


def _sanitize(value: object) -> object:
    """Coerce numpy scalars/arrays to JSON types and NaN to ``null``.

    Applied recursively so every emitted line stays strictly parseable
    (``json.dumps`` would otherwise write bare ``NaN`` literals).
    """
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        value = value.item()  # numpy scalar
    if hasattr(value, "tolist"):
        value = value.tolist()  # numpy array
    if isinstance(value, float) and value != value:
        return None  # NaN has no strict-JSON spelling
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    return value


class JsonlSink:
    """Writes one JSON object per event line to a file.

    Accepts a path (opened for writing, closed by :meth:`close`) or an
    already-open text stream (left open).  ``NaN`` field values are
    written as ``null`` so every line stays strictly parseable.
    """

    def __init__(self, target: str | IO[str]) -> None:
        #: The backing file path, or ``None`` for stream-backed sinks.
        #: Parallel runners consult this to decide whether the sink can
        #: be sharded per worker and merged on join.
        self.path: str | None = None
        if isinstance(target, str):
            self.path = target
            self._fh: IO[str] = open(target, "w")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._closed = False

    def emit(self, event: Event) -> None:
        self._fh.write(json.dumps(_sanitize(event.to_dict())) + "\n")

    def flush(self) -> None:
        """Push buffered lines to the OS.

        Parallel runners call this before forking worker processes:
        a fork duplicates any unflushed stdio buffer into every child,
        and each child's exit would flush the same lines again —
        duplicating events in the target file.
        """
        self._fh.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: str, *, names: Iterable[str] | None = None) -> Iterator[dict]:
    """Parse a JSONL event file back into dicts (blank lines skipped).

    ``names`` keeps only records whose ``"event"`` name is listed —
    large captures are dominated by per-slot events, so consumers that
    want a few event types (e.g. differential replay) skip the rest
    without building them.
    """
    wanted = None if names is None else set(names)
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if wanted is None or record.get("event") in wanted:
                yield record


def events_by_name(records: Iterable[dict]) -> dict[str, list[dict]]:
    """Group parsed JSONL records by their ``"event"`` name."""
    out: dict[str, list[dict]] = {}
    for record in records:
        out.setdefault(str(record.get("event")), []).append(record)
    return out
