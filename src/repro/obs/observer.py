"""The process-global observer hub.

One :class:`Observer` instance (``OBS``) routes every structured event,
counter increment and timer span.  It is disabled by default: hot call
sites guard with ``if OBS.enabled:`` so the instrumentation costs one
attribute load and a branch per decision point when nothing listens.

Enabling happens two ways, independently combinable:

* :func:`attach_sink` — events start flowing to a sink (JSONL file,
  memory buffer, ...).  Counters and timers record too.
* :func:`enable_profiling` — counters and timer spans record with no
  event I/O (what ``repro profile`` uses).

Both are process-local: runs fanned out over worker processes
(``workers >= 2``) record only in their own process, so event capture
and profiling force the serial path (the API and CLI do this for you).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from .events import Event, JsonlSink, Sink
from .metrics import Counters
from .timers import Timers

__all__ = [
    "Observer",
    "OBS",
    "attach_sink",
    "detach_sink",
    "enable_profiling",
    "disable_profiling",
    "capture_events",
    "reset",
]


class Observer:
    """Routes events/counters/timers; cheap to consult when disabled."""

    __slots__ = ("enabled", "sink", "counters", "timers", "_profiling")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.sink: Sink | None = None
        self.counters = Counters()
        self.timers = Timers()
        self._profiling: bool = False

    # ------------------------------------------------------------------
    def _sync_enabled(self) -> None:
        self.enabled = self.sink is not None or self._profiling

    def attach_sink(self, sink: Sink) -> Sink:
        """Start routing events to ``sink`` (replacing any current one)."""
        if self.sink is not None and self.sink is not sink:
            self.sink.close()
        self.sink = sink
        self._sync_enabled()
        return sink

    def detach_sink(self) -> None:
        """Stop event routing and close the sink (counters keep state)."""
        if self.sink is not None:
            self.sink.close()
            self.sink = None
        self._sync_enabled()

    def enable_profiling(self) -> None:
        """Record counters/timers without any event sink."""
        self._profiling = True
        self._sync_enabled()

    def disable_profiling(self) -> None:
        """Stop profiling (event routing, if any, continues)."""
        self._profiling = False
        self._sync_enabled()

    @property
    def profiling(self) -> bool:
        """Whether counter/timer recording is on (read-only)."""
        return self._profiling

    def reset(self) -> None:
        """Detach the sink, stop profiling, clear counters and timers."""
        self.detach_sink()
        self._profiling = False
        self._sync_enabled()
        self.counters.reset()
        self.timers.reset()

    # ------------------------------------------------------------------
    def emit(self, name: str, /, **fields: object) -> None:
        """Send one structured event to the attached sink (if any)."""
        if self.sink is not None:
            self.sink.emit(Event(name=name, fields=fields))

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a named counter (when enabled)."""
        if self.enabled:
            self.counters.inc(name, amount)

    def gauge(self, name: str, value: float) -> None:
        """Record a gauge observation (when enabled)."""
        if self.enabled:
            self.counters.set_gauge(name, value)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a stage; no-ops (and costs ~nothing) when disabled."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timers.record(name, time.perf_counter() - start)


#: The process-global observer every instrumentation point consults.
OBS = Observer()


def attach_sink(sink: Sink | str) -> Sink:
    """Attach a sink to the global observer.

    Accepts a :class:`Sink` instance or a path string (opened as a
    :class:`JsonlSink`).  Returns the attached sink.
    """
    if isinstance(sink, str):
        sink = JsonlSink(sink)
    return OBS.attach_sink(sink)


def detach_sink() -> None:
    """Detach (and close) the global observer's sink."""
    OBS.detach_sink()


def enable_profiling() -> None:
    """Turn on counter/timer recording on the global observer."""
    OBS.enable_profiling()


def disable_profiling() -> None:
    """Turn off counter/timer recording on the global observer."""
    OBS.disable_profiling()


def reset() -> None:
    """Return the global observer to its pristine disabled state."""
    OBS.reset()


@contextmanager
def capture_events(sink: Sink | str) -> Iterator[Sink]:
    """Attach a sink for the duration of a block, then detach it."""
    attached = attach_sink(sink)
    try:
        yield attached
    finally:
        if OBS.sink is attached:
            detach_sink()
        else:  # someone replaced it mid-block; still release ours
            attached.close()
