"""Zero-dependency structured observability for the reproduction.

Three primitives behind one process-global hub (:data:`OBS`):

* **events** — named, structured records of runtime decisions (slot
  executed, job placed, preemption gate evaluated, predictor fitted),
  routed to an attachable sink (:class:`JsonlSink`, :class:`MemorySink`,
  :class:`NullSink`);
* **counters/gauges** — named running totals and last-value gauges;
* **timer spans** — wall-clock per-stage aggregates that become the
  ``repro profile`` table.

Disabled by default: with no sink attached and profiling off, every
instrumentation point reduces to one attribute load and a branch.

Usage::

    from repro import obs

    with obs.capture_events("events.jsonl"):
        ...  # run experiments; decision events stream to the file

    obs.enable_profiling()
    ...                       # run; spans and counters accumulate
    for stat in obs.OBS.timers.snapshot():
        print(stat.name, stat.count, stat.total_s)
"""

from .events import (
    Event,
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    events_by_name,
    read_jsonl,
)
from .metrics import Counters
from .observer import (
    OBS,
    Observer,
    attach_sink,
    capture_events,
    detach_sink,
    disable_profiling,
    enable_profiling,
    reset,
)
from .timers import TimerStat, Timers

__all__ = [
    "Event",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "read_jsonl",
    "events_by_name",
    "Counters",
    "TimerStat",
    "Timers",
    "Observer",
    "OBS",
    "attach_sink",
    "detach_sink",
    "enable_profiling",
    "disable_profiling",
    "capture_events",
    "reset",
]
