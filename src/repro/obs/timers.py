"""Wall-clock timer spans and their aggregation into a profile table.

A span names a stage of the pipeline ("trace:generate",
"predictor:fit", "run:CORP", ...); each completed span adds its
duration to the stage's running (count, total) pair.  The profile
report (``repro profile``) renders the aggregate as a per-stage table.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimerStat", "Timers"]


@dataclass(frozen=True)
class TimerStat:
    """Aggregate of one stage's completed spans."""

    name: str
    count: int
    total_s: float

    @property
    def mean_s(self) -> float:
        """Mean span duration (0 when no spans completed)."""
        return self.total_s / self.count if self.count else 0.0


class Timers:
    """Accumulates (count, total seconds) per stage name."""

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        self._stats: dict[str, list[float]] = {}

    def record(self, name: str, seconds: float) -> None:
        """Add one completed span to a stage."""
        stat = self._stats.get(name)
        if stat is None:
            self._stats[name] = [1, seconds]
        else:
            stat[0] += 1
            stat[1] += seconds

    def snapshot(self) -> list[TimerStat]:
        """Per-stage aggregates, largest total first."""
        stats = [
            TimerStat(name=name, count=int(c), total_s=t)
            for name, (c, t) in self._stats.items()
        ]
        return sorted(stats, key=lambda s: -s.total_s)

    def total(self, name: str) -> float:
        """Total seconds recorded for one stage (0 if absent)."""
        stat = self._stats.get(name)
        return stat[1] if stat is not None else 0.0

    def reset(self) -> None:
        """Drop all recorded spans."""
        self._stats.clear()

    def __len__(self) -> int:
        return len(self._stats)
