"""Named counters and gauges.

Counters are monotonically increasing totals (placements made, cache
hits, predictor calls); gauges hold the last observed value of a
quantity (queue depth, CI shift).  Both are plain dicts under the hood —
the point is a uniform naming surface the profile report and tests can
enumerate, not a metrics database.
"""

from __future__ import annotations

__all__ = ["Counters"]


class Counters:
    """A registry of named counters and gauges."""

    __slots__ = ("_counts", "_gauges")

    def __init__(self) -> None:
        self._counts: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to a counter (created at zero on first use)."""
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counts.get(name, 0.0)

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest observation of a gauge."""
        self._gauges[name] = float(value)

    def get_gauge(self, name: str) -> float | None:
        """Latest gauge value, or None if never set."""
        return self._gauges.get(name)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Sorted copy of all counters (gauges under a ``gauge:`` prefix)."""
        out = {name: self._counts[name] for name in sorted(self._counts)}
        for name in sorted(self._gauges):
            out[f"gauge:{name}"] = self._gauges[name]
        return out

    def reset(self) -> None:
        """Drop every counter and gauge."""
        self._counts.clear()
        self._gauges.clear()

    def __len__(self) -> int:
        return len(self._counts) + len(self._gauges)
