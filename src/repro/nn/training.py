"""Epoch-based training loop with validation convergence.

Section III-A.1a: "the training continues for multiple training epochs,
processing the training data set each time, until the validation set
error converges to a low value."  :func:`train` implements exactly that:
shuffled mini-batch epochs, a held-out validation split, and early stop
when the validation loss stops improving (with best-weights restore).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .losses import MSE, Loss
from .network import FeedForwardNetwork
from .optimizers import SGD, Optimizer

__all__ = ["TrainingConfig", "TrainingHistory", "train", "train_validation_split"]


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs of the epoch loop."""

    max_epochs: int = 200
    batch_size: int = 32
    #: Fraction of the data held out for validation-convergence checks.
    validation_fraction: float = 0.2
    #: Stop when validation loss has not improved by ``min_delta`` for
    #: ``patience`` consecutive epochs.
    patience: int = 10
    min_delta: float = 1e-5
    shuffle: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")


@dataclass
class TrainingHistory:
    """Per-epoch losses and the stopping outcome."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def n_epochs(self) -> int:
        """Number of epochs actually run."""
        return len(self.train_loss)

    @property
    def final_val_loss(self) -> float:
        """Validation loss at the best epoch (NaN before training)."""
        return self.val_loss[self.best_epoch] if self.val_loss else float("nan")


def train_validation_split(
    x: np.ndarray, y: np.ndarray, fraction: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random split into (x_train, y_train, x_val, y_val)."""
    n = x.shape[0]
    if y.shape[0] != n:
        raise ValueError("x and y must have the same number of rows")
    n_val = int(round(n * fraction))
    idx = rng.permutation(n)
    val_idx, train_idx = idx[:n_val], idx[n_val:]
    if train_idx.size == 0:
        raise ValueError("validation fraction leaves no training data")
    return x[train_idx], y[train_idx], x[val_idx], y[val_idx]


def train(
    network: FeedForwardNetwork,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainingConfig | None = None,
    *,
    optimizer: Optimizer | None = None,
    loss: Loss = MSE,
) -> TrainingHistory:
    """Train ``network`` on ``(x, y)`` with validation-based early stop.

    Returns the :class:`TrainingHistory`; the network is left holding the
    weights of its best validation epoch.
    """
    cfg = config or TrainingConfig()
    optimizer = optimizer or SGD()
    rng = np.random.default_rng(cfg.seed)
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    if y.shape[0] != x.shape[0]:
        raise ValueError("x and y row counts differ")

    if cfg.validation_fraction > 0.0 and x.shape[0] >= 5:
        x_tr, y_tr, x_val, y_val = train_validation_split(
            x, y, cfg.validation_fraction, rng
        )
        if x_val.shape[0] == 0:
            x_val, y_val = x_tr, y_tr
    else:
        x_tr, y_tr = x, y
        x_val, y_val = x, y

    history = TrainingHistory()
    best_val = float("inf")
    best_weights = network.get_weights()
    stale = 0
    n = x_tr.shape[0]
    for epoch in range(cfg.max_epochs):
        order = rng.permutation(n) if cfg.shuffle else np.arange(n)
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, n, cfg.batch_size):
            batch = order[start : start + cfg.batch_size]
            epoch_loss += network.train_batch(
                x_tr[batch], y_tr[batch], optimizer=optimizer, loss=loss
            )
            n_batches += 1
        history.train_loss.append(epoch_loss / max(n_batches, 1))
        val = network.evaluate(x_val, y_val, loss=loss)
        history.val_loss.append(val)
        if val < best_val - cfg.min_delta:
            best_val = val
            best_weights = network.get_weights()
            history.best_epoch = epoch
            stale = 0
        else:
            stale += 1
            if stale >= cfg.patience:
                history.stopped_early = True
                break
    network.set_weights(best_weights)
    if history.best_epoch < 0:
        history.best_epoch = 0
    return history
