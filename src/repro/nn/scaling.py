"""Feature scaling for DNN inputs/targets.

The sigmoid-output network predicts in (0, 1); unused-resource amounts
are scaled into that range with a min-max scaler fitted on the training
data and inverted at prediction time.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxScaler"]


class MinMaxScaler:
    """Per-column min-max scaling to ``[margin, 1 − margin]``.

    The margin keeps targets away from the sigmoid's saturated tails,
    where gradients vanish.
    """

    def __init__(self, margin: float = 0.05) -> None:
        if not 0.0 <= margin < 0.5:
            raise ValueError("margin must be in [0, 0.5)")
        self.margin = margin
        self._min: np.ndarray | None = None
        self._range: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._min is not None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        """Fit column minima/ranges; constant columns get range 1."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self._min = data.min(axis=0)
        rng = data.max(axis=0) - self._min
        rng[rng <= 1e-12] = 1.0
        self._range = rng
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Scale data into the fitted margin band."""
        if self._min is None or self._range is None:
            raise RuntimeError("scaler not fitted")
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        unit = (data - self._min) / self._range
        span = 1.0 - 2.0 * self.margin
        return self.margin + span * np.clip(unit, 0.0, 1.0)

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and scale it in one call."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original units."""
        if self._min is None or self._range is None:
            raise RuntimeError("scaler not fitted")
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        span = 1.0 - 2.0 * self.margin
        unit = (data - self.margin) / span
        return unit * self._range + self._min
