"""Autoencoder path of the paper's DNN training (Section III-A.1a).

"For training, it first computes the hidden activation. Next, it computes
the reconstructed output from the hidden activation. Then the algorithm
computes the error gradient, and it back-propagates [the] error gradient
to update weight[s]. For testing, the algorithm autoencodes the input and
generates the output."

We implement this as denoising-free autoencoder *pre-training* of the
hidden stack (encode → reconstruct → backprop reconstruction error),
whose learned hidden weights can seed the supervised predictor.
"""

from __future__ import annotations

import numpy as np

from .network import FeedForwardNetwork
from .optimizers import SGD, Optimizer
from .training import TrainingConfig, TrainingHistory, train

__all__ = ["Autoencoder", "pretrain_hidden_stack"]


class Autoencoder:
    """Symmetric encoder/decoder over the input window.

    ``layer_sizes`` describes the *encoder* (input first, code last); the
    decoder mirrors it.  Training minimizes reconstruction MSE.
    """

    def __init__(
        self,
        layer_sizes: list[int],
        *,
        activation: str = "sigmoid",
        seed: int = 0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and code sizes")
        full = layer_sizes + layer_sizes[-2::-1]
        self.network = FeedForwardNetwork(
            full,
            hidden_activation=activation,
            output_activation="sigmoid",
            seed=seed,
        )
        self._n_encoder_layers = len(layer_sizes) - 1

    @property
    def input_size(self) -> int:
        """Width of the input (and reconstruction) layer."""
        return self.network.input_size

    @property
    def code_size(self) -> int:
        """Width of the bottleneck (code) layer."""
        return self.network.layers[self._n_encoder_layers - 1].out_features

    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray) -> np.ndarray:
        """Hidden activation of the code layer."""
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.network.layers[: self._n_encoder_layers]:
            out = layer.forward(out, train=False)
        return out

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        """Autoencode: encode then decode back to input space."""
        return self.network.predict(x)

    def reconstruction_error(self, x: np.ndarray) -> float:
        """Mean squared reconstruction error."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return float(np.mean((self.reconstruct(x) - x) ** 2))

    def fit(
        self,
        x: np.ndarray,
        config: TrainingConfig | None = None,
        *,
        optimizer: Optimizer | None = None,
    ) -> TrainingHistory:
        """Train to reconstruct ``x`` (targets are the inputs)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return train(
            self.network, x, x, config, optimizer=optimizer or SGD()
        )


def pretrain_hidden_stack(
    network: FeedForwardNetwork,
    x: np.ndarray,
    *,
    config: TrainingConfig | None = None,
    seed: int = 0,
) -> Autoencoder:
    """Autoencoder-pretrain ``network``'s first hidden layer.

    Builds an autoencoder whose code layer matches the network's first
    hidden layer, fits it on ``x``, and copies the learned encoder
    weights into the network — the classic 2016-era unsupervised
    initialization the paper's training description follows.
    """
    first = network.layers[0]
    ae = Autoencoder([first.in_features, first.out_features], seed=seed)
    ae.fit(x, config)
    encoder = ae.network.layers[0]
    first.weights[...] = encoder.weights
    first.biases[...] = encoder.biases
    return ae
