"""Parameter-update rules.

The paper uses plain gradient descent with learning rate ``μ`` (Eq. 8);
momentum and Adam are included for the training-ablation benchmarks.
Optimizers mutate parameter arrays in place (no reallocation in the
training hot loop, per the HPC guide's in-place-operations idiom).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Optimizer", "SGD", "Momentum", "Adam", "get_optimizer"]


class Optimizer(ABC):
    """Updates named parameter arrays given equally named gradients."""

    @abstractmethod
    def step(self, param_id: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Apply one update in place.

        ``param_id`` must be unique per parameter array (e.g.
        ``"layer3/weights"``) so stateful optimizers keep separate slots.
        """


class SGD(Optimizer):
    """Plain gradient descent — the paper's Eq. 8 with learning rate μ."""

    def __init__(self, learning_rate: float = 0.1) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def step(self, param_id: str, param: np.ndarray, grad: np.ndarray) -> None:
        """``param ← param − μ · grad`` in place."""
        param -= self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.9) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, param_id: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Velocity-accumulated update in place."""
        v = self._velocity.get(param_id)
        if v is None:
            v = np.zeros_like(param)
            self._velocity[param_id] = v
        v *= self.momentum
        v -= self.learning_rate * grad
        param += v


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) — ablation option."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t: dict[str, int] = {}

    def step(self, param_id: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Bias-corrected adaptive-moment update in place."""
        m = self._m.setdefault(param_id, np.zeros_like(param))
        v = self._v.setdefault(param_id, np.zeros_like(param))
        t = self._t.get(param_id, 0) + 1
        self._t[param_id] = t
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


def get_optimizer(name: str, **kwargs) -> Optimizer:
    """Build an optimizer by name (``sgd``, ``momentum``, ``adam``)."""
    registry = {"sgd": SGD, "momentum": Momentum, "adam": Adam}
    try:
        cls = registry[name]
    except KeyError:
        raise KeyError(
            f"unknown optimizer {name!r}; options: {sorted(registry)}"
        ) from None
    return cls(**kwargs)
