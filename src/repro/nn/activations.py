"""Activation functions for the from-scratch DNN (paper Eq. 5).

The paper's network uses the sigmoid — "Equ. (5) is a sigmoid function,
which is a nonlinear function associated with all neurons in the network"
— with its derivative feeding the back-propagated error terms (Eq. 6-7).
Alternatives are provided for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Activation", "SIGMOID", "TANH", "RELU", "LINEAR", "get_activation"]


@dataclass(frozen=True)
class Activation:
    """An activation and its derivative expressed in terms of the output.

    ``deriv`` takes the *activation output* ``g`` (not the pre-activation),
    matching the paper's ``F'(g_i(d))`` notation in Eq. 6-7 — for the
    sigmoid, ``F'(g) = g (1 − g)``.
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    deriv: Callable[[np.ndarray], np.ndarray]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(x)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically stable piecewise form: exp only ever sees non-positive
    # arguments, so no overflow warnings on large |x|.
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _sigmoid_deriv(g: np.ndarray) -> np.ndarray:
    return g * (1.0 - g)


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_deriv(g: np.ndarray) -> np.ndarray:
    return 1.0 - g * g


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_deriv(g: np.ndarray) -> np.ndarray:
    return (g > 0.0).astype(np.float64)


def _identity(x: np.ndarray) -> np.ndarray:
    return x


def _identity_deriv(g: np.ndarray) -> np.ndarray:
    return np.ones_like(g)


SIGMOID = Activation("sigmoid", _sigmoid, _sigmoid_deriv)
TANH = Activation("tanh", _tanh, _tanh_deriv)
RELU = Activation("relu", _relu, _relu_deriv)
LINEAR = Activation("linear", _identity, _identity_deriv)

_REGISTRY: dict[str, Activation] = {
    a.name: a for a in (SIGMOID, TANH, RELU, LINEAR)
}


def get_activation(name: str) -> Activation:
    """Look an activation up by name (raises ``KeyError`` with options)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; options: {sorted(_REGISTRY)}"
        ) from None
