"""From-scratch deep-learning substrate (paper Section III-A.1a).

NumPy implementation of the paper's DNN: feed-forward evaluation
(Eq. 5), back-propagation (Eq. 6-7), weight updates (Eq. 8), epoch
training with validation convergence, and the autoencoder path.
"""

from .activations import LINEAR, RELU, SIGMOID, TANH, Activation, get_activation
from .autoencoder import Autoencoder, pretrain_hidden_stack
from .initializers import get_initializer, he_normal, small_uniform, xavier_uniform
from .layers import DenseLayer
from .losses import MAE, MSE, Loss, get_loss, pinball
from .network import FeedForwardNetwork
from .optimizers import SGD, Adam, Momentum, Optimizer, get_optimizer
from .parallel import DataParallelTrainer
from .scaling import MinMaxScaler
from .training import TrainingConfig, TrainingHistory, train, train_validation_split

__all__ = [
    "LINEAR",
    "RELU",
    "SIGMOID",
    "TANH",
    "Activation",
    "get_activation",
    "Autoencoder",
    "pretrain_hidden_stack",
    "get_initializer",
    "he_normal",
    "small_uniform",
    "xavier_uniform",
    "DenseLayer",
    "MAE",
    "MSE",
    "Loss",
    "get_loss",
    "pinball",
    "FeedForwardNetwork",
    "SGD",
    "Adam",
    "Momentum",
    "Optimizer",
    "get_optimizer",
    "DataParallelTrainer",
    "MinMaxScaler",
    "TrainingConfig",
    "TrainingHistory",
    "train",
    "train_validation_split",
]
