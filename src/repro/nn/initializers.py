"""Weight initialization schemes for the DNN layers."""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["xavier_uniform", "he_normal", "small_uniform", "get_initializer"]

Initializer = Callable[[int, int, np.random.Generator], np.ndarray]


def xavier_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — the right scale for sigmoid/tanh nets."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_out, fan_in))


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He normal — suited to ReLU layers (ablation option)."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_out, fan_in))


def small_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Classic small-uniform init (what 2016-era from-scratch nets used)."""
    return rng.uniform(-0.1, 0.1, size=(fan_out, fan_in))


_REGISTRY: dict[str, Initializer] = {
    "xavier_uniform": xavier_uniform,
    "he_normal": he_normal,
    "small_uniform": small_uniform,
}


def get_initializer(name: str) -> Initializer:
    """Look an initializer up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; options: {sorted(_REGISTRY)}"
        ) from None
