"""Loss functions and their gradients for DNN training.

The paper's back-propagation starts from the output-layer error term
``E_i = (t_i − g_i) · F'(g_i)`` (Eq. 6), i.e. squared-error loss; MAE is
provided for evaluation reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Loss", "MSE", "MAE", "pinball", "get_loss"]


@dataclass(frozen=True)
class Loss:
    """A loss value and its gradient w.r.t. the prediction."""

    name: str
    #: ``fn(pred, target) -> float`` — the loss value.
    fn: Callable[[np.ndarray, np.ndarray], float]
    #: ``grad(pred, target) -> array`` — ∂loss/∂pred, elementwise.
    grad: Callable[[np.ndarray, np.ndarray], np.ndarray]


def _mse(pred: np.ndarray, target: np.ndarray) -> float:
    return float(np.mean((pred - target) ** 2))


def _mse_grad(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    # d/dpred of mean squared error, without the 1/n factor folded in:
    # matches the paper's per-output error term (t − g) up to sign.
    return pred - target


def _mae(pred: np.ndarray, target: np.ndarray) -> float:
    return float(np.mean(np.abs(pred - target)))


def _mae_grad(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    return np.sign(pred - target)


MSE = Loss("mse", _mse, _mse_grad)
MAE = Loss("mae", _mae, _mae_grad)


def pinball(tau: float) -> Loss:
    """Quantile (pinball) loss at level ``tau``.

    Training with ``pinball(0.1)`` makes the network estimate the 10th
    percentile of the target — the *conservative* unused-resource
    estimate CORP needs so that the realized amount exceeds the
    prediction most of the time (the ``0 ≤ δ`` half of Eq. 21).
    """
    if not 0.0 < tau < 1.0:
        raise ValueError("tau must be in (0, 1)")

    def fn(pred: np.ndarray, target: np.ndarray) -> float:
        diff = target - pred
        return float(np.mean(np.maximum(tau * diff, (tau - 1.0) * diff)))

    def grad(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        # d/dpred: −τ where pred < target, (1 − τ) where pred > target.
        return np.where(pred < target, -tau, 1.0 - tau)

    return Loss(f"pinball_{tau:g}", fn, grad)


_REGISTRY = {loss.name: loss for loss in (MSE, MAE)}


def get_loss(name: str) -> Loss:
    """Look a loss up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown loss {name!r}; options: {sorted(_REGISTRY)}") from None
