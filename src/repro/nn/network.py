"""Feed-forward deep neural network (paper Section III-A.1a, Fig. 2).

The paper builds a DNN with multiple hidden layers (Table II: ``h = 4``
layers of ``N_n = 50`` units) and trains it with the three steps of
Section III-A.1a — feed-forward evaluation (Eq. 5), back-propagation
(Eq. 6-7) and weight updates (Eq. 8) — repeated over epochs until a
held-out validation error converges (the loop lives in
:mod:`repro.nn.training`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .layers import DenseLayer
from .losses import MSE, Loss
from .optimizers import SGD, Optimizer

__all__ = ["FeedForwardNetwork"]


class FeedForwardNetwork:
    """A stack of :class:`DenseLayer` with a regression head.

    Parameters
    ----------
    layer_sizes:
        Unit counts including input and output, e.g. ``[6, 50, 50, 50, 50, 1]``
        for the paper's 4×50 hidden stack over a 6-slot input window.
    hidden_activation:
        Activation of the hidden layers (paper: sigmoid).
    output_activation:
        Activation of the output layer.  ``"sigmoid"`` keeps outputs in
        ``(0, 1)`` — natural since unused resource is scaled to [0, 1] by
        the feature scaler; ``"linear"`` gives an unconstrained head.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        *,
        hidden_activation: str = "sigmoid",
        output_activation: str = "sigmoid",
        initializer: str = "xavier_uniform",
        seed: int = 0,
    ) -> None:
        sizes = list(layer_sizes)
        if len(sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if any(s < 1 for s in sizes):
            raise ValueError("layer sizes must be positive")
        rng = np.random.default_rng(seed)
        self.layers: list[DenseLayer] = []
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            is_last = i == len(sizes) - 2
            self.layers.append(
                DenseLayer(
                    n_in,
                    n_out,
                    activation=output_activation if is_last else hidden_activation,
                    initializer=initializer,
                    rng=rng,
                )
            )

    # ------------------------------------------------------------------
    @property
    def input_size(self) -> int:
        """Width of the input layer."""
        return self.layers[0].in_features

    @property
    def output_size(self) -> int:
        """Width of the output layer."""
        return self.layers[-1].out_features

    @property
    def n_hidden_layers(self) -> int:
        """Number of hidden layers (the paper's ``h``)."""
        return len(self.layers) - 1

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Feed-forward evaluation without caching (inference path)."""
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            out = layer.forward(out, train=False)
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Feed-forward with caches for a subsequent backward pass."""
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            out = layer.forward(out, train=True)
        return out

    def backward(self, grad_output: np.ndarray) -> None:
        """Propagate ``∂Loss/∂output`` down the stack (Eq. 6-7)."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def apply_gradients(self, optimizer: Optimizer) -> None:
        """Let the optimizer consume each layer's cached gradients (Eq. 8)."""
        for idx, layer in enumerate(self.layers):
            params = layer.parameters()
            grads = layer.gradients()
            for name in params:
                optimizer.step(f"layer{idx}/{name}", params[name], grads[name])

    # ------------------------------------------------------------------
    def train_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        optimizer: Optimizer | None = None,
        loss: Loss = MSE,
    ) -> float:
        """One forward/backward/update cycle over a batch; returns the loss."""
        optimizer = optimizer or SGD()
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        pred = self.forward(x)
        if pred.shape != y.shape:
            raise ValueError(f"target shape {y.shape} != prediction {pred.shape}")
        value = loss.fn(pred, y)
        self.backward(loss.grad(pred, y))
        self.apply_gradients(optimizer)
        return value

    def evaluate(self, x: np.ndarray, y: np.ndarray, *, loss: Loss = MSE) -> float:
        """Loss on a held-out set (no parameter updates)."""
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        return loss.fn(self.predict(x), y)

    # ------------------------------------------------------------------
    def get_weights(self) -> list[dict[str, np.ndarray]]:
        """Copies of every layer's parameters (for checkpointing)."""
        return [
            {k: v.copy() for k, v in layer.parameters().items()}
            for layer in self.layers
        ]

    def set_weights(self, weights: list[dict[str, np.ndarray]]) -> None:
        """Restore parameters captured by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ValueError("weight list does not match layer count")
        for layer, saved in zip(self.layers, weights):
            params = layer.parameters()
            for name, value in saved.items():
                if params[name].shape != value.shape:
                    raise ValueError(f"shape mismatch for {name}")
                params[name][...] = value

    def __repr__(self) -> str:
        arch = " -> ".join(
            [str(self.input_size)] + [str(l.out_features) for l in self.layers]
        )
        return f"FeedForwardNetwork({arch})"
