"""Data-parallel DNN training — the paper's stated future work.

Section VI: "In the future, we will further consider designing a
distributed deep learning training system to reduce the computation
overhead caused by DNN."  This module implements the standard
synchronous data-parallel scheme on shared memory:

* the batch is sharded across ``n_workers`` replicas,
* each replica runs forward/backward on its shard (NumPy's BLAS-backed
  matmuls release the GIL, so a thread pool gives real parallelism on
  the heavy layers),
* gradients are averaged (weighted by shard size — the exact equivalent
  of the single-worker full-batch gradient) and applied once.

Because the averaged gradient equals the full-batch gradient, training
is *bitwise-equivalent in expectation* to the sequential path; the
equivalence is asserted by the test suite.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

import numpy as np

from .losses import MSE, Loss
from .network import FeedForwardNetwork
from .optimizers import Optimizer, SGD

__all__ = ["DataParallelTrainer", "parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_map(
    fn: Callable[[_T], _R], tasks: Iterable[_T], *, workers: int = 0
) -> list[_R]:
    """Order-preserving map over independent tasks.

    The fan-out seam for the per-resource DNN/HMM fits (paper Section
    VI's "distributed deep learning training" future work, restricted
    to what actually helps here): each task carries its own seeds and
    shares no state, so running them in worker *processes* is
    bit-identical to the serial loop — same function, same inputs, same
    RNG streams, merely elsewhere.

    ``workers <= 1`` (or a single task) runs a plain in-process loop
    with no multiprocessing machinery.  With processes, ``fn`` must be a
    module-level callable and tasks/results picklable.
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        futures = [pool.submit(fn, task) for task in tasks]
        return [future.result() for future in futures]


class _Replica:
    """A worker-local view sharing the master's parameter arrays.

    Workers never update parameters — they only need private
    forward/backward *caches*, so each replica owns a private network
    whose parameter arrays alias the master's (zero-copy).
    """

    def __init__(self, master: FeedForwardNetwork) -> None:
        sizes = [master.input_size] + [l.out_features for l in master.layers]
        self.network = FeedForwardNetwork(sizes)
        for mine, theirs in zip(self.network.layers, master.layers):
            mine.activation = theirs.activation
            mine.weights = theirs.weights  # aliased, read-only use
            mine.biases = theirs.biases

    def gradients(
        self, x: np.ndarray, y: np.ndarray, loss: Loss
    ) -> tuple[list[dict[str, np.ndarray]], float, int]:
        """Forward/backward on a shard: (per-layer grads, loss, rows)."""
        pred = self.network.forward(x)
        value = loss.fn(pred, y)
        self.network.backward(loss.grad(pred, y))
        grads = [
            {k: v.copy() for k, v in layer.gradients().items()}
            for layer in self.network.layers
        ]
        return grads, value, x.shape[0]


class DataParallelTrainer:
    """Synchronous data-parallel gradient steps over a thread pool."""

    def __init__(
        self,
        network: FeedForwardNetwork,
        n_workers: int = 2,
        *,
        optimizer: Optimizer | None = None,
        loss: Loss = MSE,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.network = network
        self.n_workers = n_workers
        self.optimizer = optimizer or SGD()
        self.loss = loss
        self._replicas = [_Replica(network) for _ in range(n_workers)]
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=n_workers) if n_workers > 1 else None
        )

    # ------------------------------------------------------------------
    def _shard(self, x: np.ndarray, y: np.ndarray):
        bounds = np.linspace(0, x.shape[0], self.n_workers + 1).astype(int)
        for i in range(self.n_workers):
            lo, hi = bounds[i], bounds[i + 1]
            if hi > lo:
                yield i, x[lo:hi], y[lo:hi]

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One synchronous data-parallel step; returns the batch loss."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        if y.shape[0] != x.shape[0]:
            raise ValueError("x and y row counts differ")
        shards = list(self._shard(x, y))
        if not shards:
            raise ValueError("empty batch")

        if self._pool is None or len(shards) == 1:
            results = [
                self._replicas[i].gradients(xs, ys, self.loss)
                for i, xs, ys in shards
            ]
        else:
            futures = [
                self._pool.submit(self._replicas[i].gradients, xs, ys, self.loss)
                for i, xs, ys in shards
            ]
            results = [f.result() for f in futures]

        # All-reduce: shard-size-weighted average == full-batch gradient.
        total = sum(n for _, _, n in results)
        loss_value = sum(v * n for _, v, n in results) / total
        merged = [
            {
                name: sum(g[li][name] * n for g, _, n in results) / total
                for name in results[0][0][li]
            }
            for li in range(len(self.network.layers))
        ]
        for li, layer in enumerate(self.network.layers):
            params = layer.parameters()
            for name, grad in merged[li].items():
                self.optimizer.step(f"layer{li}/{name}", params[name], grad)
        return float(loss_value)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "DataParallelTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
