"""Fully-connected layers implementing the paper's Eq. 5-8.

* Feed-forward (Eq. 5): ``g_i(d) = F(Σ_j w_ij · g_j(d−1) + e_i)``.
* Back-propagation (Eq. 6-7): error terms scaled by ``F'(g)`` and pushed
  down through the transposed weights.
* Weight update (Eq. 8): ``Δw_ij = μ · E_i(d) · g_j(d−1)``.

Everything is batched: activations are ``(batch, units)`` arrays and the
weight gradient is the batch-mean of the paper's per-input outer product.
"""

from __future__ import annotations

import numpy as np

from .activations import Activation, get_activation
from .initializers import get_initializer

__all__ = ["DenseLayer"]


class DenseLayer:
    """One dense layer: weights ``W`` (out × in), biases ``e`` and ``F``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Activation | str = "sigmoid",
        *,
        initializer: str = "xavier_uniform",
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("layer dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        if isinstance(activation, str):
            activation = get_activation(activation)
        self.activation = activation
        self.weights = get_initializer(initializer)(in_features, out_features, rng)
        self.biases = np.zeros(out_features)
        # caches populated by forward(), consumed by backward()
        self._input: np.ndarray | None = None
        self._output: np.ndarray | None = None
        # gradients populated by backward(), consumed by the optimizer
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_biases = np.zeros_like(self.biases)

    # ------------------------------------------------------------------
    @property
    def in_features(self) -> int:
        """Input width ``c`` of the layer."""
        return self.weights.shape[1]

    @property
    def out_features(self) -> int:
        """Number of neurons in the layer."""
        return self.weights.shape[0]

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        """Feed-forward evaluation (Eq. 5) for a ``(batch, in)`` input."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input width {self.in_features}, got {x.shape[1]}"
            )
        z = x @ self.weights.T + self.biases
        g = self.activation(z)
        if train:
            self._input = x
            self._output = g
        return g

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate (Eq. 6-7); returns the gradient for the layer below.

        ``grad_output`` is ``∂Loss/∂g`` of *this* layer's activations.  The
        error term ``E = ∂Loss/∂g · F'(g)`` matches Eq. 6 at the output
        layer (where ``∂Loss/∂g = g − t``) and Eq. 7 inside the stack.
        """
        if self._input is None or self._output is None:
            raise RuntimeError("backward() before forward(train=True)")
        grad_output = np.atleast_2d(grad_output)
        batch = grad_output.shape[0]
        error = grad_output * self.activation.deriv(self._output)  # E (Eq. 6/7)
        # Eq. 8's per-input outer product E_i · g_j, averaged over the batch.
        self.grad_weights = error.T @ self._input / batch
        self.grad_biases = error.mean(axis=0)
        return error @ self.weights

    def parameters(self) -> dict[str, np.ndarray]:
        """Live parameter arrays keyed by name (for optimizers/serialization)."""
        return {"weights": self.weights, "biases": self.biases}

    def gradients(self) -> dict[str, np.ndarray]:
        """Gradients matching :meth:`parameters` keys."""
        return {"weights": self.grad_weights, "biases": self.grad_biases}

    def __repr__(self) -> str:
        return (
            f"DenseLayer({self.in_features}->{self.out_features}, "
            f"{self.activation.name})"
        )
