"""Deterministic fault injection & resilience measurement.

``repro.faults`` separates *what goes wrong* from *how it is applied*:

* :mod:`~repro.faults.plan` — pure-data, seeded :class:`FaultPlan`
  schedules (picklable, replayable against every scheduler).
* :mod:`~repro.faults.injector` — the :class:`FaultInjector` the
  simulator drives once per slot to apply a plan.

Build plans with :func:`build_fault_plan` (or hand-author event tuples)
and pass them to ``repro.api`` entry points via ``fault_plan=`` or
``inject(scenario=..., plan=...)``.

:mod:`~repro.faults.takeover` (v1.5) adds the mid-run scheduler
takeover drill: a standby kernel restored from the live kernel's
snapshot must finish the run with an identical summary
(:func:`takeover_run`).
"""

from .injector import FaultInjector
from .takeover import TakeoverReport, takeover_run
from .plan import (
    CapacityRevocation,
    FaultEvent,
    FaultPlan,
    JobFailure,
    PredictorOutage,
    RetryPolicy,
    VmCrash,
    build_fault_plan,
)

__all__ = [
    "CapacityRevocation",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "JobFailure",
    "PredictorOutage",
    "RetryPolicy",
    "TakeoverReport",
    "VmCrash",
    "build_fault_plan",
    "takeover_run",
]
