"""Mid-run scheduler takeover drill (HA standby resumes from snapshot).

The scenario the event kernel makes testable: a *live* kernel schedules
the workload while a *standby* holds a :class:`~repro.service.kernel.KernelSnapshot`
taken mid-run.  The live scheduler then "crashes" (we simply stop
consuming it) and the standby resumes from the snapshot — restore,
re-arm, run to completion.  Because kernel state is deep-copied and
every event source is deterministic, the standby must finish the run
with *exactly* the summary the live kernel would have produced; the
drill runs both sides and reports any divergence.

This mirrors the leader-election handover of HA scheduler pairs
(active/standby cloud managers): the snapshot is the replicated state,
the takeover slot is the failover point, and summary equality is the
"no decisions lost or repeated" guarantee.

Wall-clock metrics (``allocation_latency_s``) are excluded from the
comparison — both sides redo real scheduling work, so their timers
legitimately differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core.config import CorpConfig
    from ..experiments.runner import PredictorCache
    from ..experiments.scenarios import Scenario
    from .plan import FaultPlan

__all__ = ["TakeoverReport", "takeover_run"]

#: Summary keys that measure host wall-clock, not simulated behaviour.
WALL_CLOCK_KEYS = frozenset({"allocation_latency_s"})


@dataclass(frozen=True)
class TakeoverReport:
    """Outcome of one takeover drill."""

    method: str
    #: The failover point: first slot the standby executed itself.
    takeover_slot: int
    #: Events the live kernel had consumed when the snapshot was taken.
    events_before_snapshot: int
    #: Events the standby consumed from restore to completion.
    events_after_takeover: int
    live_summary: dict[str, float]
    standby_summary: dict[str, float]
    #: ``key -> (live, standby)`` for every differing non-wall-clock
    #: metric; empty when the handover was perfectly deterministic.
    divergence: dict[str, tuple[float, float]]

    @property
    def ok(self) -> bool:
        """True when the standby reproduced the live run exactly."""
        return not self.divergence

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form for reports and the CLI."""
        return {
            "method": self.method,
            "takeover_slot": self.takeover_slot,
            "events_before_snapshot": self.events_before_snapshot,
            "events_after_takeover": self.events_after_takeover,
            "ok": self.ok,
            "divergence": {
                key: list(pair) for key, pair in self.divergence.items()
            },
            "live_summary": self.live_summary,
            "standby_summary": self.standby_summary,
        }


def takeover_run(
    *,
    scenario: "Scenario | None" = None,
    jobs: int = 40,
    testbed: str = "cluster",
    seed: int = 7,
    method: str = "CORP",
    takeover_slot: int | None = None,
    corp_config: "CorpConfig | None" = None,
    predictor_cache: "PredictorCache | None" = None,
    fault_plan: "FaultPlan | None" = None,
) -> TakeoverReport:
    """Run the standby-takeover drill and report live/standby divergence.

    Builds a batch kernel for (``scenario``, ``method``), advances the
    live side to ``takeover_slot`` (default: mid-horizon), snapshots,
    lets the live side finish as the ground truth, then restores the
    snapshot into a standby kernel and runs *it* to completion.  A
    correct handover yields an empty :attr:`TakeoverReport.divergence`.

    ``fault_plan=`` makes the drill adversarial: the standby must also
    resume mid-outage fault-injector state (backoffs, revocations,
    downed VMs) to match.
    """
    # Lazy: keeps repro.faults importable without the service layer.
    from ..service.daemon import build_kernel

    if scenario is None:
        from ..experiments.scenarios import cluster_scenario, ec2_scenario

        builders = {"cluster": cluster_scenario, "ec2": ec2_scenario}
        try:
            builder = builders[testbed]
        except KeyError:
            raise ValueError(
                f"unknown testbed {testbed!r} (expected 'cluster' or 'ec2')"
            ) from None
        scenario = builder(jobs, seed=seed)
    if fault_plan is not None:
        scenario = scenario.with_fault_plan(fault_plan)

    live = build_kernel(
        scenario=scenario,
        method=method,
        seed=seed,
        corp_config=corp_config,
        predictor_cache=predictor_cache,
        streaming=False,
    )
    if takeover_slot is None:
        takeover_slot = max(live.horizon // 2, 1)

    events_before = 0
    while not live.finished and live.next_slot < takeover_slot:
        if live.advance() is None:
            break
        events_before += 1
    snapshot = live.snapshot()

    # Ground truth: what the live kernel would have done uninterrupted.
    live.run_until_blocked()
    live_summary = live.result().summary()

    # Failover: the standby resumes from the replicated state.
    standby = snapshot.restore()
    events_after = standby.run_until_blocked()
    standby_summary = standby.result().summary()

    divergence: dict[str, tuple[float, float]] = {}
    for key in sorted(set(live_summary) | set(standby_summary)):
        if key in WALL_CLOCK_KEYS:
            continue
        live_value = live_summary.get(key, float("nan"))
        standby_value = standby_summary.get(key, float("nan"))
        if live_value != standby_value:
            divergence[key] = (live_value, standby_value)

    return TakeoverReport(
        method=method,
        takeover_slot=snapshot.taken_at_slot,
        events_before_snapshot=events_before,
        events_after_takeover=events_after,
        live_summary=live_summary,
        standby_summary=standby_summary,
        divergence=divergence,
    )
