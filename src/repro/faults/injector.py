"""Runtime application of a :class:`~repro.faults.plan.FaultPlan`.

The :class:`FaultInjector` is owned by one simulator run.  At the top of
every slot (before arrivals and scheduling) it

1. restores VMs/capacity whose downtime expired and ends predictor
   outages;
2. releases backed-off jobs whose retry delay elapsed back into the
   pending queue;
3. applies the plan's events due this slot — crashes (evict + requeue),
   revocations (scale capacity), outage starts, targeted job failures
   (evict + exponential backoff);
4. sweeps fault-touched queued jobs against the retry policy's give-up
   deadline.

Every transition emits a ``repro.obs`` event (``vm_fail``,
``vm_restore``, ``evict``, ``retry``, ``give_up``,
``capacity_revoked``, ``capacity_restored``, ``predictor_outage``) and
the injector accumulates the resilience metrics the run summary
reports.  All decisions are deterministic functions of (plan, workload):
no randomness lives here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..cluster.job import Job, JobState
from ..obs import OBS
from .plan import (
    CapacityRevocation,
    FaultPlan,
    JobFailure,
    PredictorOutage,
    RevocationWave,
    VmCrash,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..cluster.machine import VirtualMachine
    from ..cluster.simulator import ClusterSimulator

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies one fault plan to one simulation run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.policy = plan.retry
        self._events_by_slot: dict[int, list] = {}
        for event in plan.events:
            self._events_by_slot.setdefault(event.slot, []).append(event)
        #: (ready_slot, sequence, job): jobs waiting out a retry backoff.
        self._backoff: list[tuple[int, int, Job]] = []
        self._backoff_seq = 0
        #: vm_id -> slot at which the crashed VM comes back online.
        self._down_until: dict[int, int] = {}
        #: vm_id -> slot at which a revoked VM's capacity is restored.
        self._revoked_until: dict[int, int] = {}
        self._outage_until = -1
        self.predictor_available = True
        #: job_id -> slot of the eviction awaiting re-placement.
        self._recovery_pending: dict[int, int] = {}
        self._recovery_latencies: list[int] = []
        #: Same bookkeeping restricted to storm (wave) evictions, so the
        #: summary can report how long storm victims took to land again.
        self._wave_pending: dict[int, int] = {}
        self._wave_recovery_latencies: list[int] = []
        #: Storm metrics only appear in summaries for plans that carry
        #: waves — plain fault plans keep their pre-storm summary keys
        #: (the committed goldens pin this).
        self._has_waves = any(
            isinstance(e, RevocationWave) for e in plan.events
        )
        #: Jobs that ever experienced a fault (for SLO attribution).
        self.fault_touched: set[int] = set()
        # Counters surfaced in the resilience summary.
        self.vm_failures = 0
        self.capacity_revocations = 0
        self.evictions = 0
        self.retries = 0
        self.gave_up = 0
        self.job_failures_injected = 0
        self.outage_slots = 0
        self.storm_waves = 0
        self.storm_vms_hit = 0

    # ------------------------------------------------------------------
    def has_backlog(self) -> bool:
        """Jobs still waiting out a backoff (keeps the drain loop alive)."""
        return bool(self._backoff)

    def backlog_jobs(self) -> list[Job]:
        """Jobs currently in backoff (for end-of-run accounting)."""
        return [job for _, _, job in self._backoff]

    def backlog_count(self) -> int:
        """Number of jobs in backoff (the checker's per-slot tally)."""
        return len(self._backoff)

    # ------------------------------------------------------------------
    def begin_slot(self, slot: int, sim: "ClusterSimulator") -> None:
        """Apply all fault-plan effects due at the top of ``slot``.

        Kept as the one-call form; the event kernel drives the two
        phases separately (``vm-restored`` then ``fault-due`` events)
        in exactly this order.
        """
        self.restore_phase(slot, sim)
        self.fault_phase(slot, sim)

    def restore_phase(self, slot: int, sim: "ClusterSimulator") -> None:
        """Recovery phase: expired downtimes/revocations end, outages
        clear, and backed-off jobs whose delay elapsed re-enter the
        pending queue.  Always runs before :meth:`fault_phase`."""
        self._restore_due(slot, sim)
        if not self.predictor_available and slot >= self._outage_until:
            self.predictor_available = True
            OBS.emit("predictor_outage", slot=slot, active=False)
        self._release_backoff(slot, sim)

    def fault_phase(self, slot: int, sim: "ClusterSimulator") -> None:
        """Apply the plan's events due at ``slot`` and sweep give-ups."""
        for event in self._events_by_slot.get(slot, ()):
            if isinstance(event, VmCrash):
                self._apply_crash(event, slot, sim)
            elif isinstance(event, CapacityRevocation):
                self._apply_revocation(event, slot, sim)
            elif isinstance(event, PredictorOutage):
                self._apply_outage(event, slot)
            elif isinstance(event, JobFailure):
                self._apply_job_failure(event, slot, sim)
            elif isinstance(event, RevocationWave):
                self._apply_wave(event, slot, sim)
        if not self.predictor_available:
            self.outage_slots += 1
        self._sweep_give_up(slot, sim)

    def note_placements(self, placed: Iterable[Job], slot: int) -> None:
        """Record recovery latencies for re-placed evicted/retried jobs."""
        for job in placed:
            evicted_at = self._recovery_pending.pop(job.job_id, None)
            if evicted_at is not None:
                self._recovery_latencies.append(slot - evicted_at)
            wave_at = self._wave_pending.pop(job.job_id, None)
            if wave_at is not None:
                self._wave_recovery_latencies.append(slot - wave_at)

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------
    def _vm_for(self, vm_index: int, sim: "ClusterSimulator") -> "VirtualMachine":
        return sim.vms[vm_index % len(sim.vms)]

    def _apply_crash(self, event: VmCrash, slot: int, sim: "ClusterSimulator") -> None:
        vm = self._vm_for(event.vm_index, sim)
        self._crash_vm(vm, slot, event.downtime_slots, sim, reason="vm_crash")

    def _crash_vm(
        self,
        vm: "VirtualMachine",
        slot: int,
        downtime_slots: int,
        sim: "ClusterSimulator",
        *,
        reason: str,
    ) -> list[Job]:
        if not vm.online:
            return []  # already down; overlapping crash is a no-op
        evicted = vm.crash()
        self._down_until[vm.vm_id] = slot + downtime_slots
        self._revoked_until.pop(vm.vm_id, None)
        vm.set_capacity_scale(1.0)  # a restart clears any revocation
        self.vm_failures += 1
        OBS.emit(
            "vm_fail",
            slot=slot,
            vm=vm.vm_id,
            downtime_slots=downtime_slots,
            evicted=len(evicted),
        )
        OBS.count("faults.vm_fail")
        for job in evicted:
            self._evict(job, slot, sim, reason=reason)
        return evicted

    def _apply_revocation(
        self, event: CapacityRevocation, slot: int, sim: "ClusterSimulator"
    ) -> None:
        vm = self._vm_for(event.vm_index, sim)
        self._revoke_vm(vm, slot, event.fraction, event.duration_slots)

    def _revoke_vm(
        self,
        vm: "VirtualMachine",
        slot: int,
        fraction: float,
        duration_slots: int,
    ) -> bool:
        if not vm.online:
            return False  # nothing to revoke on a crashed VM
        vm.set_capacity_scale(1.0 - fraction + 1e-12 if fraction >= 1.0
                              else 1.0 - fraction)
        self._revoked_until[vm.vm_id] = slot + duration_slots
        self.capacity_revocations += 1
        OBS.emit(
            "capacity_revoked",
            slot=slot,
            vm=vm.vm_id,
            fraction=fraction,
            duration_slots=duration_slots,
        )
        OBS.count("faults.capacity_revoked")
        return True

    def _apply_wave(
        self, event: RevocationWave, slot: int, sim: "ClusterSimulator"
    ) -> None:
        """Hit a whole VM cohort at once: the first ``crash_fraction``
        of the (deduplicated) cohort crashes, the rest lose capacity.
        Offline cohort members are skipped — a wave landing entirely on
        dead VMs is a no-op beyond its own counters."""
        cohort: list["VirtualMachine"] = []
        seen: set[int] = set()
        for index in event.vm_indices:
            vm = self._vm_for(index, sim)
            if vm.vm_id in seen:
                continue  # duplicate indices (mod pool size) collapse
            seen.add(vm.vm_id)
            cohort.append(vm)
        n_crash = int(round(event.crash_fraction * len(cohort)))
        crashed = 0
        revoked = 0
        for position, vm in enumerate(cohort):
            if not vm.online:
                continue
            if position < n_crash:
                evicted = self._crash_vm(
                    vm,
                    slot,
                    event.downtime_slots,
                    sim,
                    reason="revocation_wave",
                )
                for job in evicted:
                    self._wave_pending[job.job_id] = slot
                crashed += 1
            else:
                if self._revoke_vm(
                    vm,
                    slot,
                    event.revocation_fraction,
                    event.revocation_duration_slots,
                ):
                    revoked += 1
        self.storm_waves += 1
        self.storm_vms_hit += crashed + revoked
        OBS.emit(
            "revocation_wave",
            slot=slot,
            cohort=len(cohort),
            crashed=crashed,
            revoked=revoked,
        )
        OBS.count("faults.revocation_wave")

    def _apply_outage(self, event: PredictorOutage, slot: int) -> None:
        self._outage_until = max(self._outage_until, slot + event.duration_slots)
        if self.predictor_available:
            self.predictor_available = False
            OBS.emit(
                "predictor_outage",
                slot=slot,
                active=True,
                duration_slots=event.duration_slots,
            )
            OBS.count("faults.predictor_outage")

    def _apply_job_failure(
        self, event: JobFailure, slot: int, sim: "ClusterSimulator"
    ) -> None:
        vm = self._vm_for(event.vm_index, sim)
        if not vm.online or not vm.placements:
            return
        victim_id = min(p.job.job_id for p in vm.placements)
        job = vm.evict_job(victim_id)
        if job is None:  # pragma: no cover - victim chosen from placements
            return
        self.job_failures_injected += 1
        job.retries += 1
        OBS.emit("job_fail", slot=slot, job=job.job_id, vm=vm.vm_id, retry=job.retries)
        OBS.count("faults.job_fail")
        self._remove_running(job, sim)
        job.requeue(slot)
        self.fault_touched.add(job.job_id)
        self._recovery_pending[job.job_id] = slot
        if job.retries > self.policy.max_retries:
            self._give_up(job, slot, sim)
            return
        ready = slot + self.policy.backoff_slots(job.retries)
        self._backoff.append((ready, self._backoff_seq, job))
        self._backoff_seq += 1
        self.retries += 1

    # ------------------------------------------------------------------
    # recovery mechanics
    # ------------------------------------------------------------------
    def _restore_due(self, slot: int, sim: "ClusterSimulator") -> None:
        for vm in sim.vms:
            due = self._down_until.get(vm.vm_id)
            if due is not None and slot >= due:
                del self._down_until[vm.vm_id]
                vm.restore()
                OBS.emit("vm_restore", slot=slot, vm=vm.vm_id)
                OBS.count("faults.vm_restore")
            due = self._revoked_until.get(vm.vm_id)
            if due is not None and slot >= due:
                del self._revoked_until[vm.vm_id]
                vm.set_capacity_scale(1.0)
                OBS.emit("capacity_restored", slot=slot, vm=vm.vm_id)

    def _release_backoff(self, slot: int, sim: "ClusterSimulator") -> None:
        if not self._backoff:
            return
        ready = [item for item in self._backoff if item[0] <= slot]
        if not ready:
            return
        self._backoff = [item for item in self._backoff if item[0] > slot]
        # Stable (ready_slot, sequence) order keeps requeues deterministic.
        for _, _, job in sorted(ready, key=lambda item: (item[0], item[1])):
            sim.pending.append(job)
            OBS.emit("retry", slot=slot, job=job.job_id, attempt=job.retries)
            OBS.count("faults.retry")

    def _evict(
        self, job: Job, slot: int, sim: "ClusterSimulator", *, reason: str
    ) -> None:
        """Requeue a crash-evicted job for immediate re-placement."""
        self._remove_running(job, sim)
        job.requeue(slot)
        job.evictions += 1
        self.evictions += 1
        self.fault_touched.add(job.job_id)
        self._recovery_pending[job.job_id] = slot
        sim.pending.append(job)
        OBS.emit("evict", slot=slot, job=job.job_id, reason=reason)
        OBS.count("faults.evict")

    def _remove_running(self, job: Job, sim: "ClusterSimulator") -> None:
        sim.running = [j for j in sim.running if j.job_id != job.job_id]

    def _give_up(self, job: Job, slot: int, sim: "ClusterSimulator") -> None:
        if job.state is JobState.RUNNING:  # pragma: no cover - defensive
            raise RuntimeError("cannot give up on a running job")
        job.fail_permanently(slot)
        sim.failed.append(job)
        self._recovery_pending.pop(job.job_id, None)
        self._wave_pending.pop(job.job_id, None)
        self.gave_up += 1
        OBS.emit(
            "give_up",
            slot=slot,
            job=job.job_id,
            retries=job.retries,
            evictions=job.evictions,
        )
        OBS.count("faults.give_up")

    def _sweep_give_up(self, slot: int, sim: "ClusterSimulator") -> None:
        """Fail fault-touched queued jobs past the give-up deadline."""
        deadline = self.policy.give_up_slots

        def expired(job: Job) -> bool:
            return (
                job.first_fault_slot is not None
                and slot - job.first_fault_slot >= deadline
            )

        stale = [job for job in sim.pending if expired(job)]
        if stale:
            stale_ids = {job.job_id for job in stale}
            sim.pending = [j for j in sim.pending if j.job_id not in stale_ids]
            for job in stale:
                self._give_up(job, slot, sim)
        stale_backoff = [item for item in self._backoff if expired(item[2])]
        if stale_backoff:
            self._backoff = [
                item for item in self._backoff if not expired(item[2])
            ]
            for _, _, job in stale_backoff:
                self._give_up(job, slot, sim)

    # ------------------------------------------------------------------
    # resilience metrics
    # ------------------------------------------------------------------
    def result_stats(self, sim: "ClusterSimulator") -> dict[str, float]:
        """Flat resilience metrics merged into the run summary.

        ``slo_violations_faulted`` counts completed fault-touched jobs
        that violated their SLO plus every job that gave up entirely —
        the paper's response-time SLO is unmeetable for a job that never
        finishes.
        """
        violations = sum(
            1
            for job_id in self.fault_touched
            if sim.slo_tracker.outcomes.get(job_id, (0, 0, False))[2]
        )
        latencies = self._recovery_latencies
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        stats = {
            "vm_failures": float(self.vm_failures),
            "capacity_revocations": float(self.capacity_revocations),
            "predictor_outage_slots": float(self.outage_slots),
            "evictions": float(self.evictions),
            "retries": float(self.retries),
            "gave_up": float(self.gave_up),
            "recovery_latency_slots": mean_latency,
            "slo_violations_faulted": float(violations + self.gave_up),
        }
        if self._has_waves:
            wave = self._wave_recovery_latencies
            stats["storm_waves"] = float(self.storm_waves)
            stats["storm_vms_hit"] = float(self.storm_vms_hit)
            stats["storm_recovery_slots"] = (
                sum(wave) / len(wave) if wave else 0.0
            )
        return stats
