"""Pure-data fault schedules (the ``FaultPlan``).

A :class:`FaultPlan` is a deterministic, picklable description of every
fault a run will experience: *which* fault, *when* (in slots), *where*
(a VM index), and how the cluster is allowed to recover (the
:class:`RetryPolicy`).  Plans carry no runtime state — the same plan can
be replayed against any scheduler, any number of times, and (with the
same workload seed) produce bit-identical runs, which is what makes the
``compare --faults`` tables meaningful: every scheme faces the exact
same churn.

Four fault types cover the regimes the robustness axis cares about:

* :class:`VmCrash` — a VM dies, evicting every in-flight job (work is
  lost); it restarts empty after a downtime.
* :class:`CapacityRevocation` — a VM transiently loses a fraction of its
  capacity ``C'_k`` (a noisy neighbour, a host reclaim), squeezing the
  jobs packed onto its "unused" resource.
* :class:`PredictorOutage` — the prediction service is unreachable;
  schedulers must degrade to requested-resource provisioning.
* :class:`JobFailure` — one running job fails transiently and retries
  under the plan's :class:`RetryPolicy` (bounded retries, exponential
  backoff, a give-up deadline matching the paper's 5-minute short-job
  horizon).
* :class:`RevocationWave` — a correlated spot-reclamation storm: one
  whole VM cohort is hit *at once*, a leading fraction crashed outright
  (the spot market reclaimed the instance) and the rest squeezed by a
  capacity revocation.  A wave is the grouped form of per-VM
  :class:`VmCrash`/:class:`CapacityRevocation` events; the correlation
  (everything lands in the same slot) is exactly what independent
  per-slot sampling cannot produce.

``vm_index`` is resolved modulo the cluster's VM count at runtime, so
one plan is portable across cluster profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Union

import numpy as np

__all__ = [
    "VmCrash",
    "CapacityRevocation",
    "PredictorOutage",
    "JobFailure",
    "RevocationWave",
    "FaultEvent",
    "RetryPolicy",
    "FaultPlan",
    "build_fault_plan",
    "build_revocation_storm",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class VmCrash:
    """A VM fails at ``slot`` and restarts empty after ``downtime_slots``.

    Every placement on the VM is evicted; evicted jobs lose their
    progress (in-memory state does not survive a crash) and are requeued
    for immediate re-placement.
    """

    slot: int
    vm_index: int
    downtime_slots: int = 10

    def __post_init__(self) -> None:
        _require(self.slot >= 0, "slot must be >= 0")
        _require(self.vm_index >= 0, "vm_index must be >= 0")
        _require(self.downtime_slots >= 1, "downtime_slots must be >= 1")


@dataclass(frozen=True)
class CapacityRevocation:
    """A VM loses ``fraction`` of its capacity for ``duration_slots``.

    The commitment already carved out of the VM is *not* returned —
    primaries (and any riders on their slack) are physically squeezed,
    which is exactly the contention the Eq. 21 gate exists to bound.
    """

    slot: int
    vm_index: int
    fraction: float = 0.5
    duration_slots: int = 8

    def __post_init__(self) -> None:
        _require(self.slot >= 0, "slot must be >= 0")
        _require(self.vm_index >= 0, "vm_index must be >= 0")
        _require(0.0 < self.fraction <= 1.0, "fraction must be in (0, 1]")
        _require(self.duration_slots >= 1, "duration_slots must be >= 1")


@dataclass(frozen=True)
class PredictorOutage:
    """Predictions are unavailable for ``duration_slots`` starting at ``slot``.

    While the outage lasts every scheduler runs in degraded mode:
    forecasts are void, opportunistic placement is off, demand-based
    grant caps are lifted — provisioning falls back to the jobs'
    requested resources.
    """

    slot: int
    duration_slots: int = 10

    def __post_init__(self) -> None:
        _require(self.slot >= 0, "slot must be >= 0")
        _require(self.duration_slots >= 1, "duration_slots must be >= 1")


@dataclass(frozen=True)
class JobFailure:
    """One running job on VM ``vm_index`` fails transiently at ``slot``.

    The victim is the lowest-id running job on the VM (deterministic).
    The job is evicted, loses its progress and re-enters the queue under
    the plan's :class:`RetryPolicy`.  A VM with nothing running makes
    the event a no-op.
    """

    slot: int
    vm_index: int

    def __post_init__(self) -> None:
        _require(self.slot >= 0, "slot must be >= 0")
        _require(self.vm_index >= 0, "vm_index must be >= 0")


@dataclass(frozen=True)
class RevocationWave:
    """A whole VM cohort reclaimed at once (a spot-market storm).

    The first ``round(crash_fraction * cohort)`` distinct VMs of the
    cohort crash outright (spot instance reclaimed: placements evicted,
    restart after ``downtime_slots``); the remainder lose
    ``revocation_fraction`` of their capacity for
    ``revocation_duration_slots`` (a reclaim warning throttling the
    host).  ``vm_indices`` fold modulo the cluster's VM count at
    runtime, duplicates collapsing to one hit per physical VM.

    An *empty* cohort makes the wave meaningless; the owning
    :class:`FaultPlan` drops such waves at construction so a plan of
    nothing but empty waves is exactly the empty plan (no injector, no
    resilience keys — byte-identical to a fault-free run).
    """

    slot: int
    vm_indices: tuple[int, ...]
    crash_fraction: float = 0.5
    downtime_slots: int = 10
    revocation_fraction: float = 0.5
    revocation_duration_slots: int = 8

    def __post_init__(self) -> None:
        _require(self.slot >= 0, "slot must be >= 0")
        indices = tuple(int(i) for i in self.vm_indices)
        _require(
            all(i >= 0 for i in indices), "vm_indices must be >= 0"
        )
        object.__setattr__(self, "vm_indices", indices)
        _require(
            0.0 <= self.crash_fraction <= 1.0,
            "crash_fraction must be in [0, 1]",
        )
        _require(self.downtime_slots >= 1, "downtime_slots must be >= 1")
        _require(
            0.0 < self.revocation_fraction <= 1.0,
            "revocation_fraction must be in (0, 1]",
        )
        _require(
            self.revocation_duration_slots >= 1,
            "revocation_duration_slots must be >= 1",
        )


FaultEvent = Union[
    VmCrash, CapacityRevocation, PredictorOutage, JobFailure, RevocationWave
]

_EVENT_TYPES: dict[str, type] = {
    "vm_crash": VmCrash,
    "capacity_revocation": CapacityRevocation,
    "predictor_outage": PredictorOutage,
    "job_failure": JobFailure,
    "revocation_wave": RevocationWave,
}
_EVENT_NAMES: dict[type, str] = {cls: name for name, cls in _EVENT_TYPES.items()}


@dataclass(frozen=True)
class RetryPolicy:
    """How failed/evicted jobs are allowed to recover.

    ``backoff_base_slots`` doubles per attempt (exponential backoff):
    the i-th retry waits ``backoff_base_slots * 2**(i-1)`` slots.  A job
    gives up — permanently fails — once it exceeds ``max_retries``
    transient failures or once ``give_up_slots`` have passed since its
    first fault.  The default give-up of 30 slots is the paper's
    5-minute short-job deadline at the 10-second slot period.
    """

    max_retries: int = 3
    backoff_base_slots: int = 1
    give_up_slots: int = 30

    def __post_init__(self) -> None:
        _require(self.max_retries >= 0, "max_retries must be >= 0")
        _require(self.backoff_base_slots >= 1, "backoff_base_slots must be >= 1")
        _require(self.give_up_slots >= 1, "give_up_slots must be >= 1")

    def backoff_slots(self, attempt: int) -> int:
        """Backoff before the ``attempt``-th retry (1-based)."""
        _require(attempt >= 1, "attempt must be >= 1")
        return self.backoff_base_slots * (2 ** (attempt - 1))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events plus the recovery policy.

    An empty plan (``len(plan) == 0``) is exactly equivalent to no plan:
    the simulator skips building an injector, so the fault layer costs
    nothing and results stay bit-identical to a plain run.
    """

    events: tuple[FaultEvent, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        # Normalize a list/generator into the canonical tuple form and
        # keep the schedule sorted by slot (stable, so same-slot events
        # preserve their authored order).  Waves with an empty cohort
        # are dropped here — they can affect nothing, and keeping them
        # would make a plan of pure no-ops truthy, building an injector
        # whose resilience keys alone would break the "no faults means
        # byte-identical output" invariant.
        events = tuple(
            sorted(
                (
                    e
                    for e in self.events
                    if not (isinstance(e, RevocationWave) and not e.vm_indices)
                ),
                key=lambda e: e.slot,
            )
        )
        object.__setattr__(self, "events", events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return len(self.events) > 0

    def to_dicts(self) -> list[dict]:
        """JSON-ready form: one dict per event, tagged with its type."""
        out = []
        for event in self.events:
            rec: dict = {"fault": _EVENT_NAMES[type(event)]}
            for f in fields(event):
                rec[f.name] = getattr(event, f.name)
            out.append(rec)
        return out

    @classmethod
    def from_dicts(
        cls, records: list[dict], *, retry: RetryPolicy | None = None
    ) -> "FaultPlan":
        """Inverse of :meth:`to_dicts`."""
        events = []
        for rec in records:
            rec = dict(rec)
            kind = rec.pop("fault")
            try:
                event_cls = _EVENT_TYPES[kind]
            except KeyError:
                raise ValueError(f"unknown fault type {kind!r}") from None
            events.append(event_cls(**rec))
        return cls(events=tuple(events), retry=retry or RetryPolicy())


def build_fault_plan(
    *,
    seed: int = 0,
    n_slots: int = 400,
    intensity: float = 0.3,
    vm_crash_rate: float | None = None,
    crash_downtime_slots: int = 10,
    revocation_rate: float | None = None,
    revocation_fraction: float = 0.5,
    revocation_duration_slots: int = 8,
    outage_rate: float | None = None,
    outage_duration_slots: int = 10,
    job_failure_rate: float | None = None,
    retry: RetryPolicy | None = None,
) -> FaultPlan:
    """Sample a seeded :class:`FaultPlan` over a horizon of ``n_slots``.

    ``intensity`` scales the default per-slot rates of all four fault
    types at once (``0`` disables everything; ``1`` is severe churn);
    each explicit ``*_rate`` overrides its derived default.  Sampling is
    fully determined by ``seed`` — the same arguments always produce the
    same plan, and plans beyond the actual run length simply never fire.

    ``vm_index`` values are sampled from a wide range and folded modulo
    the cluster's VM count at injection time, so plans stay portable
    across profiles.
    """
    if intensity < 0.0:
        raise ValueError("intensity must be >= 0")
    if n_slots < 1:
        raise ValueError("n_slots must be >= 1")
    rates = {
        "vm_crash": vm_crash_rate if vm_crash_rate is not None else 0.010 * intensity,
        "revocation": revocation_rate if revocation_rate is not None else 0.030 * intensity,
        "outage": outage_rate if outage_rate is not None else 0.008 * intensity,
        "job_failure": job_failure_rate if job_failure_rate is not None else 0.040 * intensity,
    }
    for name, rate in rates.items():
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
    rng = np.random.default_rng(seed)
    events: list[FaultEvent] = []
    # One Bernoulli draw per (slot, fault type), in a fixed type order,
    # keeps the schedule deterministic and the draws independent.
    for slot in range(n_slots):
        if rng.random() < rates["vm_crash"]:
            events.append(
                VmCrash(
                    slot=slot,
                    vm_index=int(rng.integers(0, 1 << 16)),
                    downtime_slots=crash_downtime_slots,
                )
            )
        if rng.random() < rates["revocation"]:
            events.append(
                CapacityRevocation(
                    slot=slot,
                    vm_index=int(rng.integers(0, 1 << 16)),
                    fraction=revocation_fraction,
                    duration_slots=revocation_duration_slots,
                )
            )
        if rng.random() < rates["outage"]:
            events.append(
                PredictorOutage(slot=slot, duration_slots=outage_duration_slots)
            )
        if rng.random() < rates["job_failure"]:
            events.append(
                JobFailure(slot=slot, vm_index=int(rng.integers(0, 1 << 16)))
            )
    return FaultPlan(events=tuple(events), retry=retry or RetryPolicy())


def build_revocation_storm(
    *,
    seed: int = 0,
    n_slots: int = 400,
    intensity: float = 0.5,
    wave_rate: float | None = None,
    cohort_size: int | None = None,
    crash_fraction: float = 0.5,
    downtime_slots: int = 10,
    revocation_fraction: float = 0.5,
    revocation_duration_slots: int = 8,
    retry: RetryPolicy | None = None,
) -> FaultPlan:
    """Sample a seeded storm plan: correlated :class:`RevocationWave` s.

    Where :func:`build_fault_plan` sprinkles *independent* per-VM
    faults, a storm concentrates them: each wave reclaims a whole VM
    cohort in one slot — the spot-market regime where a price spike
    takes out every instance of a bid class at once.  ``intensity``
    scales both the per-slot wave probability (default
    ``0.015 * intensity``) and the cohort size (default
    ``round(10 * intensity)`` VM indices per wave); ``0`` yields the
    empty plan, byte-identical to a fault-free run.  Sampling is fully
    determined by ``seed``; cohort indices fold modulo the cluster's VM
    count at injection time, so one storm is portable across profiles.
    """
    if intensity < 0.0:
        raise ValueError("intensity must be >= 0")
    if n_slots < 1:
        raise ValueError("n_slots must be >= 1")
    rate = wave_rate if wave_rate is not None else 0.015 * intensity
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"wave rate must be in [0, 1], got {rate}")
    size = cohort_size if cohort_size is not None else int(round(10 * intensity))
    if cohort_size is not None and cohort_size < 1:
        raise ValueError("cohort_size must be >= 1")
    rng = np.random.default_rng(seed)
    events: list[FaultEvent] = []
    for slot in range(n_slots):
        # One Bernoulli draw per slot plus one cohort draw per wave
        # keeps the schedule deterministic in the seed.
        if rng.random() >= rate or size < 1:
            continue
        cohort = rng.choice(1 << 16, size=size, replace=False)
        events.append(
            RevocationWave(
                slot=slot,
                vm_indices=tuple(int(i) for i in cohort),
                crash_fraction=crash_fraction,
                downtime_slots=downtime_slots,
                revocation_fraction=revocation_fraction,
                revocation_duration_slots=revocation_duration_slots,
            )
        )
    return FaultPlan(events=tuple(events), retry=retry or RetryPolicy())
