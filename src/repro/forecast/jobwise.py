"""Job-level Predictor wrappers over the 1-D baseline forecasters.

RCCR and CloudScale already run ETS and Markov-chain forecasting at VM
granularity; these wrappers lift the same :class:`Forecaster` machinery
to the :class:`~repro.forecast.base.Predictor` contract (per-*job*
unused-resource forecasts), so the baselines' predictors compete in the
registry on equal footing with CORP's DNN+HMM — exactly the Fig. 6
comparison, but swappable inside the CORP scheduler itself.

The forecaster is refit per prediction call on the job's own unused
series (they are O(n) fits), so only the seed-error statistics and
priors need to persist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.resources import NUM_RESOURCES, ResourceVector
from ..obs import OBS
from .base import Forecaster, Predictor, window_samples
from .ets import HoltLinear
from .markov_chain import MarkovChainPredictor

__all__ = ["EtsJobPredictor", "MarkovJobPredictor"]


def _aggregate_path(path: np.ndarray, target: str) -> float:
    """Collapse a forecast path to the configured window aggregate."""
    if target == "window_min":
        return float(path.min())
    if target == "window_mean":
        return float(path.mean())
    return float(path[-1])


@dataclass
class _SeriesJobPredictor(Predictor):
    """Shared plumbing: fit a 1-D forecaster on each job's unused series."""

    input_slots: int = 6
    window_slots: int = 6
    prediction_target: str = "window_mean"
    min_history_slots: int = 2

    seed_errors: list[np.ndarray] = field(default_factory=list)
    prior_unused_fraction: np.ndarray = field(
        default_factory=lambda: np.zeros(NUM_RESOURCES)
    )

    def make_forecaster(self) -> Forecaster:
        raise NotImplementedError

    @classmethod
    def from_config(cls, config) -> "_SeriesJobPredictor":
        return cls(
            input_slots=config.input_slots,
            window_slots=config.window_slots,
            prediction_target=config.prediction_target,
            min_history_slots=config.min_history_slots,
        )

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return len(self.seed_errors) == NUM_RESOURCES

    def _forecast_fraction(self, unused: np.ndarray) -> float:
        """Fit-and-forecast one unused series over the next window."""
        if np.ptp(unused) < 1e-12:
            # Constant history: every forecaster would answer the
            # constant; skip the fit (and the Markov chain's degenerate
            # single-bin path).
            return float(unused[-1])
        forecaster = self.make_forecaster().fit(unused)
        path = forecaster.forecast_path(self.window_slots)
        return _aggregate_path(path, self.prediction_target)

    def fit(self, history, **kwargs: object) -> "_SeriesJobPredictor":
        """Seed errors/priors by backtesting over the training windows."""
        with OBS.span("predictor:fit"):
            seed_errors: list[np.ndarray] = []
            priors = np.zeros(NUM_RESOURCES)
            for kind in range(NUM_RESOURCES):
                errors: list[float] = []
                targets: list[float] = []
                for window, y, _request in window_samples(
                    history,
                    kind,
                    self.input_slots,
                    self.window_slots,
                    target=self.prediction_target,
                ):
                    pred = np.clip(self._forecast_fraction(1.0 - window), 0.0, 1.0)
                    errors.append(y - float(pred))
                    targets.append(y)
                seed_errors.append(np.asarray(errors))
                if targets:
                    priors[kind] = float(np.mean(targets))
            self.seed_errors = seed_errors
            self.prior_unused_fraction = priors
            return self

    def predict_job_unused(
        self, util_history: np.ndarray, request: ResourceVector
    ) -> ResourceVector:
        if not self.fitted:
            raise RuntimeError("predictor not fitted")
        util_history = np.atleast_2d(np.asarray(util_history, dtype=np.float64))
        if OBS.enabled:
            OBS.count("predictor.predict")
        req = request.as_array()
        if util_history.shape[0] < self.min_history_slots:
            if OBS.enabled:
                OBS.count("predictor.prior_fallback")
            return ResourceVector(self.prior_unused_fraction * req)
        out = np.zeros(NUM_RESOURCES)
        for kind in range(NUM_RESOURCES):
            unused = 1.0 - util_history[-self.input_slots :, kind]
            fraction = self._forecast_fraction(unused)
            out[kind] = np.clip(fraction, 0.0, 1.0) * req[kind]
        return ResourceVector(out)

    # ------------------------------------------------------------------
    def to_payload(self) -> tuple[dict[str, np.ndarray], dict]:
        arrays, meta = super().to_payload()
        meta["params"] = {
            "input_slots": self.input_slots,
            "window_slots": self.window_slots,
            "prediction_target": self.prediction_target,
            "min_history_slots": self.min_history_slots,
        }
        return arrays, meta

    @classmethod
    def from_payload(
        cls, arrays: dict[str, np.ndarray], meta: dict, config: object = None
    ) -> "_SeriesJobPredictor":
        predictor = cls(**meta["params"])
        predictor._restore_payload(arrays, meta)
        return predictor


@dataclass
class EtsJobPredictor(_SeriesJobPredictor):
    """Holt linear-trend ETS per job series (RCCR's predictor, lifted)."""

    family = "ets"
    capabilities = frozenset({"serialize"})

    alpha: float = 0.3
    beta: float = 0.1

    def make_forecaster(self) -> Forecaster:
        return HoltLinear(alpha=self.alpha, beta=self.beta)


@dataclass
class MarkovJobPredictor(_SeriesJobPredictor):
    """Discrete-time Markov chain per job series (CloudScale's, lifted)."""

    family = "markov"
    capabilities = frozenset({"serialize"})

    n_bins: int = 8

    def make_forecaster(self) -> Forecaster:
        return MarkovChainPredictor(n_bins=self.n_bins)
