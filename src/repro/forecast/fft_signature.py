"""PRESS-style FFT signature predictor — CloudScale's pattern path.

CloudScale [26] builds on PRESS [37]: run an FFT over the usage history,
look for a dominant frequency ("signature"); if the signal is
sufficiently periodic, predict by replaying the signature pattern;
otherwise fall back to a discrete-time Markov chain
(:mod:`repro.forecast.markov_chain`).  Short-lived-job data has no
periodic signature — the structural weakness Fig. 6 exploits.
"""

from __future__ import annotations

import numpy as np

from .base import Forecaster

__all__ = ["FftSignaturePredictor"]


class FftSignaturePredictor(Forecaster):
    """Signature-based prediction with a periodicity test.

    Parameters
    ----------
    signature_threshold:
        Minimum fraction of (non-DC) spectral energy the dominant
        frequency must carry for a signature to be declared.  Below it,
        :attr:`has_signature` is False and :meth:`forecast` returns the
        history mean (callers are expected to consult
        :attr:`has_signature` and use their fallback predictor).
    max_period:
        Longest candidate period considered, in samples.
    """

    def __init__(self, signature_threshold: float = 0.25, max_period: int = 256) -> None:
        if not 0.0 < signature_threshold < 1.0:
            raise ValueError("signature_threshold must be in (0, 1)")
        if max_period < 2:
            raise ValueError("max_period must be >= 2")
        self.signature_threshold = signature_threshold
        self.max_period = max_period
        self._series: np.ndarray | None = None
        self._period: int | None = None
        self._signature: np.ndarray | None = None
        self._mean: float = 0.0

    # ------------------------------------------------------------------
    @property
    def has_signature(self) -> bool:
        """Whether the fitted history showed a dominant periodic pattern."""
        return self._period is not None

    @property
    def period(self) -> int | None:
        """Detected period in samples (None when no signature)."""
        return self._period

    # ------------------------------------------------------------------
    def fit(self, series: np.ndarray) -> "FftSignaturePredictor":
        """Run the periodicity test and extract a signature if one exists."""
        s = self._validate(series)
        self._series = s
        self._mean = float(s.mean())
        self._period = None
        self._signature = None
        if s.size < 8:
            return self  # too short to claim any periodicity
        centered = s - s.mean()
        spectrum = np.abs(np.fft.rfft(centered)) ** 2
        total = spectrum[1:].sum()
        if total <= 1e-12:
            return self  # constant series: no signature
        k = int(spectrum[1:].argmax()) + 1
        dominance = float(spectrum[k] / total)
        period = int(round(s.size / k))
        if (
            dominance >= self.signature_threshold
            and 2 <= period <= min(self.max_period, s.size // 2)
        ):
            self._period = period
            # Signature = average shape of the last full cycles.
            n_cycles = s.size // period
            tail = s[-n_cycles * period :].reshape(n_cycles, period)
            self._signature = tail.mean(axis=0)
        return self

    def forecast(self, horizon: int = 1) -> float:
        """Continue the signature in phase; history mean without one."""
        if self._series is None:
            raise RuntimeError("forecaster not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self._period is None or self._signature is None:
            return self._mean
        # Continue the signature from the phase the history ended at.
        phase = (self._series.size + horizon - 1) % self._period
        return float(self._signature[phase])
