"""Discrete-time Markov chain predictor — CloudScale's no-pattern fallback.

Section IV: CloudScale uses "a discrete-time Markov chain to predict the
amount of unused resource of VMs based on historical resource usage
data", and Section IV-A notes its accuracy is limited because "the
correlation between the resource prediction model and the actual
resource demand becomes weaker" over multi-step prediction — which this
implementation reproduces by raising the transition matrix to the
horizon power.
"""

from __future__ import annotations

import numpy as np

from .base import Forecaster

__all__ = ["MarkovChainPredictor"]


class MarkovChainPredictor(Forecaster):
    """Value-binned first-order Markov chain with multi-step prediction.

    The value range of the history is split into ``n_bins`` equal bins;
    transitions between consecutive samples are counted (with Laplace
    smoothing); a forecast ``h`` ahead is the expectation of the bin
    centers under ``row(last_bin) · P^h``.
    """

    def __init__(self, n_bins: int = 8, smoothing: float = 0.5) -> None:
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.n_bins = n_bins
        self.smoothing = smoothing
        self._transition: np.ndarray | None = None
        self._centers: np.ndarray | None = None
        self._last_bin: int | None = None
        self._edges: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _bin_of(self, value: float) -> int:
        assert self._edges is not None
        idx = int(np.searchsorted(self._edges, value, side="right")) - 1
        return int(np.clip(idx, 0, self.n_bins - 1))

    def fit(self, series: np.ndarray) -> "MarkovChainPredictor":
        """Bin the series and count transitions (Laplace-smoothed)."""
        s = self._validate(series)
        lo, hi = float(s.min()), float(s.max())
        if hi - lo <= 1e-12:
            hi = lo + 1.0  # constant series: single populated bin
        self._edges = np.linspace(lo, hi, self.n_bins + 1)
        self._centers = 0.5 * (self._edges[:-1] + self._edges[1:])
        bins = np.clip(
            np.searchsorted(self._edges, s, side="right") - 1, 0, self.n_bins - 1
        )
        counts = np.full((self.n_bins, self.n_bins), self.smoothing)
        if bins.size > 1:
            # bincount over flattened (from, to) pairs: much faster than
            # np.add.at for the short, hot fits the scheduler issues.
            flat = np.bincount(
                bins[:-1] * self.n_bins + bins[1:],
                minlength=self.n_bins * self.n_bins,
            )
            counts += flat.reshape(self.n_bins, self.n_bins)
        self._transition = counts / counts.sum(axis=1, keepdims=True)
        self._last_bin = int(bins[-1])
        return self

    def update(self, value: float) -> None:
        """Shift the chain's current state to the bin of a new observation.

        Transition probabilities are not refitted (CloudScale refits
        periodically; the scheduler drives that cadence).
        """
        if self._edges is None:
            raise RuntimeError("forecaster not fitted")
        self._last_bin = self._bin_of(float(value))

    # ------------------------------------------------------------------
    def state_distribution(self, horizon: int) -> np.ndarray:
        """Bin distribution ``horizon`` steps ahead of the current state."""
        if self._transition is None or self._last_bin is None:
            raise RuntimeError("forecaster not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        dist = np.zeros(self.n_bins)
        dist[self._last_bin] = 1.0
        step = np.linalg.matrix_power(self._transition, horizon)
        return dist @ step

    def forecast(self, horizon: int = 1) -> float:
        """Expected bin center under ``row(last_bin) · P^horizon``."""
        if self._centers is None:
            raise RuntimeError("forecaster not fitted")
        return float(self.state_distribution(horizon) @ self._centers)
