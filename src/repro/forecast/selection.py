"""Online per-workload predictor selection (registry name ``"auto"``).

The selector wraps several fitted predictor families and, per workload,
keeps the one whose rolling Eq. 20 error window is best.  Every
prediction call doubles as a *backtest*: the tail of the job's observed
utilization is held out, every candidate forecasts it from the
truncated history, and the per-candidate
:class:`~repro.forecast.confidence.PredictionErrorTracker` windows
record the resulting δ samples — the same commitment-fraction error
currency the scheduler's preemption gate runs on.  At window boundaries
(:meth:`OnlinePredictorSelector.observe_slot`, driven by the scheduler)
the candidates' error rates are compared and the active predictor
switches when another has been better by more than the hysteresis
margin for long enough — no flapping on noise.

Determinism: candidates are seeded fits, backtests run in scheduler
order, and the switch rule is pure arithmetic over the tracker windows,
so the same seed and trace reproduce the same switch slots; every
switch is appended to :attr:`switch_log` and emitted as a
``predictor_switch`` OBS event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..cluster.resources import NUM_RESOURCES, ResourceVector
from ..obs import OBS
from .base import Predictor
from .confidence import PredictionErrorTracker

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..core.config import CorpConfig

__all__ = ["OnlinePredictorSelector", "DEFAULT_CANDIDATES"]

#: Families the ``"auto"`` predictor arbitrates between by default.
DEFAULT_CANDIDATES: tuple[str, ...] = ("corp", "quantile", "classify")

#: Seed-error samples preloaded per tracker (matches the scheduler's
#: own seeding depth).
_SEED_DEPTH = 150


class OnlinePredictorSelector(Predictor):
    """Rolling-error arbitration across registered predictor families."""

    family = "auto"
    capabilities = frozenset({"online_selection"})

    def __init__(
        self,
        *,
        config: "CorpConfig | None" = None,
        candidates: Sequence[str] = DEFAULT_CANDIDATES,
        hysteresis: float = 0.05,
        min_dwell_windows: int = 2,
    ) -> None:
        if not candidates:
            raise ValueError("at least one candidate predictor is required")
        if hysteresis < 0.0:
            raise ValueError("hysteresis must be non-negative")
        if min_dwell_windows < 1:
            raise ValueError("min_dwell_windows must be >= 1")
        if config is None:
            from ..core.config import CorpConfig

            config = CorpConfig()
        self.config = config
        self.candidate_names: tuple[str, ...] = tuple(candidates)
        self.hysteresis = hysteresis
        self.min_dwell_windows = min_dwell_windows
        self._candidates: dict[str, Predictor] = {}
        self._trackers: dict[str, list[PredictionErrorTracker]] = {}
        self.active: str = self.candidate_names[0]
        self._initial_active: str = self.candidate_names[0]
        self._windows_since_switch = 0
        #: ``(slot, previous, active, scores)`` per switch, in order.
        self.switch_log: list[dict] = []

    @classmethod
    def from_config(cls, config: "CorpConfig") -> "OnlinePredictorSelector":
        return cls(config=config)

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return len(self._candidates) == len(self.candidate_names) and all(
            p.fitted for p in self._candidates.values()
        )

    @property
    def seed_errors(self) -> list[np.ndarray]:
        """The active candidate's validation errors (scheduler seeding)."""
        return self._active_predictor().seed_errors

    @property
    def prior_unused_fraction(self) -> np.ndarray:
        return self._active_predictor().prior_unused_fraction

    def _active_predictor(self) -> Predictor:
        try:
            return self._candidates[self.active]
        except KeyError:
            raise RuntimeError("predictor not fitted") from None

    def candidate(self, name: str) -> Predictor:
        """A fitted candidate by registry name (introspection/tests)."""
        return self._candidates[name]

    # ------------------------------------------------------------------
    def fit(
        self,
        history,
        *,
        fit_candidate: "Callable[[str], Predictor] | None" = None,
        **kwargs: object,
    ) -> "OnlinePredictorSelector":
        """Fit every candidate family on the same history.

        ``fit_candidate(name)`` lets a
        :class:`~repro.experiments.runner.PredictorCache` route the
        per-family fits through its own memory/store tiers, so the
        selector shares artifacts with plain single-family runs.
        """
        from .registry import create_predictor

        for name in self.candidate_names:
            if fit_candidate is not None:
                predictor = fit_candidate(name)
            else:
                predictor = create_predictor(name, self.config).fit(history)
            if not predictor.fitted:
                raise ValueError(f"candidate {name!r} did not fit")
            self._candidates[name] = predictor
        # Initial selection: lowest Eq. 20-style error rate over the
        # held-out seed errors (deterministic; ties keep listing order).
        self._initial_active = min(
            self.candidate_names, key=lambda n: self._seed_error_rate(n)
        )
        self.reset()
        return self

    def _seed_error_rate(self, name: str) -> float:
        tolerance = self.config.error_tolerance
        rates = []
        for errors in self._candidates[name].seed_errors:
            e = np.asarray(errors)
            if e.size:
                rates.append(
                    1.0 - float(np.logical_and(e >= 0.0, e < tolerance).mean())
                )
        return float(np.mean(rates)) if rates else 1.0

    def reset(self) -> None:
        """Restore the post-fit state: run-to-run reproducibility.

        The scheduler calls this in ``prepare`` so a cached selector
        instance reused across runs starts every run from the same
        trackers and the same active predictor.
        """
        self.active = self._initial_active
        self._windows_since_switch = 0
        self.switch_log = []
        self._trackers = {}
        for name in self.candidate_names:
            trackers = [
                PredictionErrorTracker(window=200)
                for _ in range(NUM_RESOURCES)
            ]
            for kind, errors in enumerate(self._candidates[name].seed_errors):
                trackers[kind].seed(np.asarray(errors)[-_SEED_DEPTH:])
            self._trackers[name] = trackers

    # ------------------------------------------------------------------
    def _aggregate_actual(self, window: np.ndarray) -> float:
        target = self.config.prediction_target
        if target == "window_min":
            return 1.0 - float(window.max())
        if target == "point":
            return 1.0 - float(window[-1])
        return 1.0 - float(window.mean())

    def _backtest(
        self, util_history: np.ndarray, request: ResourceVector
    ) -> None:
        """Hold out the trailing window; score every candidate on it."""
        horizon = self.config.window_slots
        past = util_history[:-horizon]
        if past.shape[0] < max(self.config.min_history_slots, 1):
            return
        req = request.as_array()
        actual = np.array(
            [
                self._aggregate_actual(util_history[-horizon:, kind])
                for kind in range(NUM_RESOURCES)
            ]
        )
        for name in self.candidate_names:
            predicted = self._candidates[name].predict_job_unused(past, request)
            pred = predicted.as_array()
            for kind in range(NUM_RESOURCES):
                if req[kind] <= 0.0:
                    continue
                self._trackers[name][kind].record(
                    pred[kind] / req[kind], actual[kind]
                )

    def predict_job_unused(
        self, util_history: np.ndarray, request: ResourceVector
    ) -> ResourceVector:
        """Backtest all candidates, answer with the active one."""
        if not self.fitted:
            raise RuntimeError("predictor not fitted")
        util_history = np.atleast_2d(np.asarray(util_history, dtype=np.float64))
        if util_history.shape[0] > self.config.window_slots:
            self._backtest(util_history, request)
        return self._active_predictor().predict_job_unused(
            util_history, request
        )

    # ------------------------------------------------------------------
    def error_rate(self, name: str) -> float:
        """Rolling Eq. 20 error rate of one candidate (lower is better)."""
        tolerance = self.config.error_tolerance
        probs = [
            t.probability_within(tolerance) for t in self._trackers[name]
        ]
        finite = [p for p in probs if not np.isnan(p)]
        if not finite:
            return 1.0
        return 1.0 - float(np.mean(finite))

    def observe_slot(self, slot: int) -> None:
        """Window-boundary arbitration with hysteresis (scheduler hook)."""
        if slot == 0 or slot % self.config.window_slots != 0:
            return
        self._windows_since_switch += 1
        if self._windows_since_switch < self.min_dwell_windows:
            return
        scores = {name: self.error_rate(name) for name in self.candidate_names}
        best = min(self.candidate_names, key=lambda n: scores[n])
        if best == self.active:
            return
        if scores[self.active] - scores[best] <= self.hysteresis:
            return
        previous = self.active
        self.active = best
        self._windows_since_switch = 0
        record = {
            "slot": int(slot),
            "previous": previous,
            "active": best,
            "scores": {n: round(s, 6) for n, s in scores.items()},
        }
        self.switch_log.append(record)
        if OBS.enabled:
            OBS.emit("predictor_switch", **record)
            OBS.count("predictor.switch")
