"""Time-series forecasting substrate for the baseline schedulers.

ETS (RCCR), FFT-signature + Markov chain + adaptive padding
(CloudScale), plus the confidence-interval machinery of Eq. 18-21 that
CORP and RCCR share.
"""

from .base import Forecaster
from .confidence import ConfidenceInterval, PredictionErrorTracker, z_value
from .errors import mae, mean_error, prediction_error_rate, rmse
from .ets import HoltLinear, SimpleExponentialSmoothing
from .fft_signature import FftSignaturePredictor
from .markov_chain import MarkovChainPredictor
from .padding import AdaptivePadding

__all__ = [
    "Forecaster",
    "ConfidenceInterval",
    "PredictionErrorTracker",
    "z_value",
    "mae",
    "mean_error",
    "prediction_error_rate",
    "rmse",
    "HoltLinear",
    "SimpleExponentialSmoothing",
    "FftSignaturePredictor",
    "MarkovChainPredictor",
    "AdaptivePadding",
]
