"""Time-series forecasting substrate and the pluggable predictor zoo.

ETS (RCCR), FFT-signature + Markov chain + adaptive padding
(CloudScale), plus the confidence-interval machinery of Eq. 18-21 that
CORP and RCCR share.

Since v1.6 the package also hosts the job-level
:class:`~repro.forecast.base.Predictor` protocol and its registry
(:mod:`repro.forecast.registry`): CORP's DNN+HMM, the data-driven
quantile predictor, the classify-then-predict router, job-level
ETS/Markov wrappers and the ``"auto"`` online selector are all
name-keyed, interchangeable implementations behind the public API's
``predictor=`` knob.
"""

from .base import Forecaster, Predictor, window_samples
from .classify import ClassifyThenPredictPredictor
from .confidence import ConfidenceInterval, PredictionErrorTracker, z_value
from .errors import mae, mean_error, prediction_error_rate, rmse
from .ets import HoltLinear, SimpleExponentialSmoothing
from .fft_signature import FftSignaturePredictor
from .jobwise import EtsJobPredictor, MarkovJobPredictor
from .markov_chain import MarkovChainPredictor
from .padding import AdaptivePadding
from .quantile import QuantileHistogramPredictor
from .registry import (
    available_predictors,
    create_predictor,
    predictor_class,
    predictor_summaries,
    register_predictor,
    resolve_predictor,
)
from .selection import OnlinePredictorSelector

__all__ = [
    "Forecaster",
    "Predictor",
    "window_samples",
    "ConfidenceInterval",
    "PredictionErrorTracker",
    "z_value",
    "mae",
    "mean_error",
    "prediction_error_rate",
    "rmse",
    "HoltLinear",
    "SimpleExponentialSmoothing",
    "FftSignaturePredictor",
    "MarkovChainPredictor",
    "AdaptivePadding",
    "QuantileHistogramPredictor",
    "ClassifyThenPredictPredictor",
    "EtsJobPredictor",
    "MarkovJobPredictor",
    "OnlinePredictorSelector",
    "available_predictors",
    "create_predictor",
    "predictor_class",
    "predictor_summaries",
    "register_predictor",
    "resolve_predictor",
]
