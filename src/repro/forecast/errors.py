"""Prediction-error metrics, including Fig. 6's error-rate definition.

Section IV-A: "we calculated the ratio of the correctly predicted jobs
(the jobs whose prediction errors are within ``[0, ε)``) to the number
of jobs"; the *error rate* plotted in Fig. 6 is the complement of that
ratio (lower is better and CORP is lowest).
"""

from __future__ import annotations

import numpy as np

__all__ = ["prediction_error_rate", "rmse", "mae", "mean_error"]


def _pair(predicted: np.ndarray, actual: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(predicted, dtype=np.float64).ravel()
    a = np.asarray(actual, dtype=np.float64).ravel()
    if p.shape != a.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {a.shape}")
    if p.size == 0:
        raise ValueError("empty prediction arrays")
    return p, a


def prediction_error_rate(
    predicted: np.ndarray, actual: np.ndarray, tolerance: float
) -> float:
    """Fraction of predictions whose error ``actual − predicted`` is NOT in
    ``[0, ε)`` — the Fig. 6 metric, in ``[0, 1]``."""
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    p, a = _pair(predicted, actual)
    err = a - p
    correct = np.logical_and(err >= 0.0, err < tolerance)
    return float(1.0 - correct.mean())


def rmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Root mean squared error."""
    p, a = _pair(predicted, actual)
    return float(np.sqrt(np.mean((a - p) ** 2)))


def mae(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Mean absolute error."""
    p, a = _pair(predicted, actual)
    return float(np.mean(np.abs(a - p)))


def mean_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Signed mean error (bias); positive = conservative predictions."""
    p, a = _pair(predicted, actual)
    return float(np.mean(a - p))
