"""Confidence-interval machinery (paper Eq. 18-20).

The predicted unused resource is turned into a conservative estimate by
subtracting ``σ̂ · z_{θ/2}`` — the lower bound of the confidence interval
— "because the underestimation of the unused resource makes it
conservative in reallocating allocated resources, thus avoiding SLO
violations" (Eq. 19).  ``σ̂`` is the standard deviation of the
prediction-error samples collected per Eq. 20.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["z_value", "ConfidenceInterval", "PredictionErrorTracker"]


def z_value(confidence_level: float) -> float:
    """``z_{θ/2}`` for confidence level ``η`` (``θ = 1 − η``).

    E.g. ``z_value(0.9) ≈ 1.645``: the 95th percentile of the standard
    normal, since θ/2 = 0.05 in each tail.
    """
    if not 0.0 < confidence_level < 1.0:
        raise ValueError("confidence_level must be in (0, 1)")
    theta = 1.0 - confidence_level
    return float(stats.norm.ppf(1.0 - theta / 2.0))


@dataclass(frozen=True)
class ConfidenceInterval:
    """The interval of Eq. 18: ``[û − σ̂ z, û + σ̂ z]``."""

    center: float
    half_width: float

    @property
    def lower(self) -> float:
        """Lower bound ``û − σ̂·z`` (what Eq. 19 allocates against)."""
        return self.center - self.half_width

    @property
    def upper(self) -> float:
        """Upper bound ``û + σ̂·z``."""
        return self.center + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper


class PredictionErrorTracker:
    """Collects per-slot prediction errors (Eq. 20) and derives σ̂ and
    the preemption probability of Eq. 21.

    Errors are ``δ = actual − predicted`` of the unused amount: positive
    δ means the forecast was conservative.  ``Pr(0 ≤ δ < ε)`` is
    estimated empirically from the recent error window.
    """

    def __init__(self, window: int = 200) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self._errors: deque[float] = deque(maxlen=window)

    # ------------------------------------------------------------------
    def record(self, predicted: float, actual: float) -> float:
        """Add one error sample; returns δ."""
        delta = float(actual) - float(predicted)
        self._errors.append(delta)
        return delta

    def seed(self, deltas: np.ndarray) -> None:
        """Preload historical δ samples (Section III-A.2's "historical
        data with prediction error samples")."""
        for delta in np.asarray(deltas, dtype=np.float64).ravel():
            self._errors.append(float(delta))

    def record_window(self, predicted: float, actuals: np.ndarray) -> None:
        """Eq. 20: one error sample per slot of the prediction window."""
        for actual in np.asarray(actuals, dtype=np.float64).ravel():
            self.record(predicted, float(actual))

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of δ samples currently in the window."""
        return len(self._errors)

    def sigma(self) -> float:
        """``σ̂``: sample standard deviation of the error window."""
        if len(self._errors) < 2:
            return 0.0
        return float(np.std(np.asarray(self._errors), ddof=1))

    def quantile(self, q: float) -> float:
        """Empirical ``q``-quantile of the error window.

        The distribution-free analogue of the ``z_{θ/2}`` percentile:
        shifting a forecast down by ``−quantile(θ/2)`` gives one-sided
        coverage ``1 − θ/2`` without assuming Gaussian errors — which
        matters because burst-driven errors are left-skewed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._errors:
            return 0.0
        return float(np.quantile(np.asarray(self._errors), q))

    def interval(self, prediction: float, confidence_level: float) -> ConfidenceInterval:
        """Eq. 18 around a point prediction."""
        return ConfidenceInterval(
            center=float(prediction),
            half_width=self.sigma() * z_value(confidence_level),
        )

    def conservative(self, prediction: float, confidence_level: float) -> float:
        """Eq. 19: the interval's lower bound, floored at zero.

        The floor reflects that a negative amount of unused resource is
        meaningless for allocation.
        """
        return max(self.interval(prediction, confidence_level).lower, 0.0)

    def probability_within(self, tolerance: float) -> float:
        """Empirical ``Pr(0 ≤ δ < ε)`` over the error window (Eq. 21 input).

        With no samples yet, the probability is undefined and ``NaN`` is
        returned — reporting ``0.0`` would make an untested predictor
        look *measured and unreliable* rather than unmeasured.  Callers
        gating on it (:class:`repro.core.preemption.PreemptionGate`)
        check ``n_samples`` first and stay locked, which preserves the
        conservative no-evidence stance.
        """
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if not self._errors:
            return float("nan")
        e = np.asarray(self._errors)
        return float(np.logical_and(e >= 0.0, e < tolerance).mean())
