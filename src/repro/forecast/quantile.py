"""Data-driven quantile-histogram predictor (after Pace et al.).

No model is trained: the forecast of a job's unused fraction over the
next window is the empirical ``q``-quantile of its *own* recent unused
observations, calibrated against the historical trace only through the
seed-error statistics and a per-resource target histogram (a decile
grid of training-window outcomes) that serves as the prior for jobs too
young to carry evidence.  The approach is the "data-driven resource
allocation" point in the design space PAPERS.md maps: on short-lived
jobs, whose utilization carries little exploitable pattern, a
distribution summary of recent behaviour is competitive with model-
based prediction at a fraction of the cost.

Confidence intervals come from *window dispersion* — the mean standard
deviation of the training input windows — rather than from the seed
errors, the distinguishing trait of the family.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.resources import NUM_RESOURCES, ResourceVector
from ..obs import OBS
from .base import Predictor, window_samples
from .confidence import z_value

__all__ = ["QuantileHistogramPredictor"]

#: Decile grid of the per-resource target histogram (plus the extremes).
_GRID = np.linspace(0.0, 1.0, 11)


@dataclass
class QuantileHistogramPredictor(Predictor):
    """Per-resource empirical-quantile forecasts with dispersion CIs."""

    family = "quantile"
    capabilities = frozenset({"serialize"})

    #: Quantile level of the forecast (the conservatism knob; mirrors
    #: ``CorpConfig.train_quantile``).
    quantile: float = 0.5
    #: How many recent unused observations the forecast summarizes.
    input_slots: int = 6
    #: Prediction window ``L`` (for seed-error generation only).
    window_slots: int = 6
    prediction_target: str = "window_mean"
    min_history_slots: int = 2

    seed_errors: list[np.ndarray] = field(default_factory=list)
    prior_unused_fraction: np.ndarray = field(
        default_factory=lambda: np.zeros(NUM_RESOURCES)
    )
    #: Per-resource decile grid of training-window targets — the
    #: "histogram" the family is named for ``(NUM_RESOURCES, 11)``.
    target_quantiles: np.ndarray = field(
        default_factory=lambda: np.zeros((0, _GRID.size))
    )
    #: Per-resource mean std of the training input windows — the CI
    #: half-width source.
    window_sigma: np.ndarray = field(
        default_factory=lambda: np.zeros(NUM_RESOURCES)
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.input_slots < 1 or self.window_slots < 1:
            raise ValueError("input_slots and window_slots must be >= 1")

    @classmethod
    def from_config(cls, config) -> "QuantileHistogramPredictor":
        """Build from a :class:`~repro.core.config.CorpConfig` (duck-typed)."""
        q = config.train_quantile if config.train_quantile is not None else 0.5
        return cls(
            quantile=float(q),
            input_slots=config.input_slots,
            window_slots=config.window_slots,
            prediction_target=config.prediction_target,
            min_history_slots=config.min_history_slots,
        )

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return len(self.seed_errors) == NUM_RESOURCES

    def fit(self, history, **kwargs: object) -> "QuantileHistogramPredictor":
        """Collect per-resource error statistics and the target histogram."""
        with OBS.span("predictor:fit"):
            seed_errors: list[np.ndarray] = []
            priors = np.zeros(NUM_RESOURCES)
            grids = np.zeros((NUM_RESOURCES, _GRID.size))
            sigmas = np.zeros(NUM_RESOURCES)
            for kind in range(NUM_RESOURCES):
                preds: list[float] = []
                targets: list[float] = []
                stds: list[float] = []
                for window, y, _request in window_samples(
                    history,
                    kind,
                    self.input_slots,
                    self.window_slots,
                    target=self.prediction_target,
                ):
                    unused = 1.0 - window
                    preds.append(float(np.quantile(unused, self.quantile)))
                    stds.append(float(unused.std()))
                    targets.append(y)
                if targets:
                    y_arr = np.asarray(targets)
                    seed_errors.append(y_arr - np.asarray(preds))
                    priors[kind] = float(np.quantile(y_arr, self.quantile))
                    grids[kind] = np.quantile(y_arr, _GRID)
                    sigmas[kind] = float(np.mean(stds))
                else:
                    seed_errors.append(np.zeros(0))
            self.seed_errors = seed_errors
            self.prior_unused_fraction = priors
            self.target_quantiles = grids
            self.window_sigma = sigmas
            if OBS.enabled:
                for kind in range(NUM_RESOURCES):
                    errors = seed_errors[kind]
                    OBS.emit(
                        "predictor_fit",
                        family=self.family,
                        resource=kind,
                        n_samples=int(errors.size),
                        rmse=float(np.sqrt(np.mean(errors**2)))
                        if errors.size else None,
                    )
            return self

    # ------------------------------------------------------------------
    def predict_job_unused(
        self, util_history: np.ndarray, request: ResourceVector
    ) -> ResourceVector:
        """Empirical quantile of the job's recent unused observations."""
        if not self.fitted:
            raise RuntimeError("predictor not fitted")
        util_history = np.atleast_2d(np.asarray(util_history, dtype=np.float64))
        if OBS.enabled:
            OBS.count("predictor.predict")
        req = request.as_array()
        if util_history.shape[0] < self.min_history_slots:
            if OBS.enabled:
                OBS.count("predictor.prior_fallback")
            return ResourceVector(self.prior_unused_fraction * req)
        out = np.zeros(NUM_RESOURCES)
        for kind in range(NUM_RESOURCES):
            unused = 1.0 - util_history[-self.input_slots :, kind]
            fraction = float(np.quantile(unused, self.quantile))
            out[kind] = np.clip(fraction, 0.0, 1.0) * req[kind]
        return ResourceVector(out)

    def predict_interval(
        self, kind: int, point: float, confidence: float
    ) -> tuple[float, float]:
        """CI from window dispersion, not seed-error dispersion."""
        half = float(self.window_sigma[int(kind)]) * z_value(confidence)
        return point - half, point + half

    # ------------------------------------------------------------------
    def to_payload(self) -> tuple[dict[str, np.ndarray], dict]:
        arrays, meta = super().to_payload()
        arrays["target_quantiles"] = self.target_quantiles
        arrays["window_sigma"] = self.window_sigma
        meta["params"] = {
            "quantile": self.quantile,
            "input_slots": self.input_slots,
            "window_slots": self.window_slots,
            "prediction_target": self.prediction_target,
            "min_history_slots": self.min_history_slots,
        }
        return arrays, meta

    @classmethod
    def from_payload(
        cls, arrays: dict[str, np.ndarray], meta: dict, config: object = None
    ) -> "QuantileHistogramPredictor":
        predictor = cls(**meta["params"])
        predictor._restore_payload(arrays, meta)
        predictor.target_quantiles = np.asarray(arrays["target_quantiles"]).copy()
        predictor.window_sigma = np.asarray(arrays["window_sigma"]).copy()
        return predictor
