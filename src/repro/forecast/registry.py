"""Name-keyed registry of the predictor families.

One entry per :class:`~repro.forecast.base.Predictor` family, so the
public API, the CLI and the predictor cache all resolve the same
spelling — ``predictor="corp"`` / ``--predictor quantile`` — to the
same implementation.  The registered class's :attr:`family` is
fingerprinted into every predictor-store key, which is what keeps
artifacts from different families from ever shadowing each other.

Built-ins (registered on import, constructed lazily so this module
never imports :mod:`repro.core` at import time — the core package
imports :mod:`repro.forecast` first):

``"corp"``
    The paper's DNN+HMM pipeline (Section III-A) — the default.
``"quantile"``
    Data-driven empirical-quantile histogram predictor (Pace et al.).
``"classify"``
    Classify-then-predict router (Zhu & Fan): k-means job classes
    feeding class-specialized sub-predictors.
``"ets"``
    Holt linear-trend exponential smoothing per job series.
``"markov"``
    Discrete-time Markov chain per job series.
``"auto"``
    Online selector over {corp, quantile, classify}, switching on the
    rolling Eq. 20 error windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .base import Predictor

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..core.config import CorpConfig

__all__ = [
    "available_predictors",
    "create_predictor",
    "predictor_class",
    "predictor_summaries",
    "register_predictor",
    "resolve_predictor",
]


@dataclass(frozen=True)
class _Entry:
    """One registered family: class loader, factory, one-line summary."""

    cls: Callable[[], type[Predictor]]
    factory: Callable[["CorpConfig"], Predictor]
    summary: str


_REGISTRY: dict[str, _Entry] = {}


def register_predictor(
    name: str,
    *,
    cls: Callable[[], type[Predictor]],
    factory: Callable[["CorpConfig"], Predictor],
    summary: str = "",
) -> None:
    """Register a predictor family under ``name``.

    ``cls`` is a zero-argument loader returning the implementation class
    (lazy, so registrations never trigger heavyweight imports);
    ``factory`` builds an unfitted instance from a
    :class:`~repro.core.config.CorpConfig`.
    """
    if not name or not name.islower():
        raise ValueError(f"predictor name must be non-empty lowercase: {name!r}")
    _REGISTRY[name] = _Entry(cls=cls, factory=factory, summary=summary)


def available_predictors() -> tuple[str, ...]:
    """Registered predictor names, in registration order."""
    return tuple(_REGISTRY)


def predictor_summaries() -> dict[str, str]:
    """``name → one-line summary`` for help text and tables."""
    return {name: entry.summary for name, entry in _REGISTRY.items()}


def _entry(name: str) -> _Entry:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r} "
            f"(registered: {', '.join(available_predictors())})"
        ) from None


def predictor_class(name: str) -> type[Predictor]:
    """The implementation class registered under ``name``."""
    return _entry(name).cls()


def create_predictor(
    name: str, config: "CorpConfig | None" = None
) -> Predictor:
    """An unfitted instance of the family registered under ``name``."""
    if config is None:
        from ..core.config import CorpConfig

        config = CorpConfig()
    return _entry(name).factory(config)


def resolve_predictor(
    predictor: "str | Predictor", config: "CorpConfig | None" = None
) -> Predictor:
    """Accept the public API's two spellings: a name or an instance."""
    if isinstance(predictor, Predictor):
        return predictor
    if isinstance(predictor, str):
        return create_predictor(predictor, config)
    raise TypeError(
        f"predictor must be a registered name or a Predictor instance, "
        f"got {type(predictor).__name__}"
    )


# ----------------------------------------------------------------------
# built-in families (lazy loaders; see the module docstring)
# ----------------------------------------------------------------------


def _corp_cls() -> type[Predictor]:
    from ..core.predictor import CorpPredictor

    return CorpPredictor


def _corp_factory(config: "CorpConfig") -> Predictor:
    from ..core.predictor import CorpPredictor

    return CorpPredictor(config=config)


def _quantile_cls() -> type[Predictor]:
    from .quantile import QuantileHistogramPredictor

    return QuantileHistogramPredictor


def _classify_cls() -> type[Predictor]:
    from .classify import ClassifyThenPredictPredictor

    return ClassifyThenPredictPredictor


def _ets_cls() -> type[Predictor]:
    from .jobwise import EtsJobPredictor

    return EtsJobPredictor


def _markov_cls() -> type[Predictor]:
    from .jobwise import MarkovJobPredictor

    return MarkovJobPredictor


def _auto_cls() -> type[Predictor]:
    from .selection import OnlinePredictorSelector

    return OnlinePredictorSelector


register_predictor(
    "corp",
    cls=_corp_cls,
    factory=_corp_factory,
    summary="DNN+HMM pipeline of the paper (Section III-A) — the default",
)
register_predictor(
    "quantile",
    cls=_quantile_cls,
    factory=lambda config: _quantile_cls().from_config(config),
    summary="data-driven empirical-quantile forecasts (Pace et al.)",
)
register_predictor(
    "classify",
    cls=_classify_cls,
    factory=lambda config: _classify_cls().from_config(config),
    summary="k-means job classes routing to class-specialized predictors "
    "(Zhu & Fan)",
)
register_predictor(
    "ets",
    cls=_ets_cls,
    factory=lambda config: _ets_cls().from_config(config),
    summary="Holt linear-trend exponential smoothing per job series",
)
register_predictor(
    "markov",
    cls=_markov_cls,
    factory=lambda config: _markov_cls().from_config(config),
    summary="discrete-time Markov chain per job series",
)
register_predictor(
    "auto",
    cls=_auto_cls,
    factory=lambda config: _auto_cls().from_config(config),
    summary="online selection over {corp, quantile, classify} on rolling "
    "Eq. 20 error windows",
)
