"""Forecaster and Predictor protocols shared by the prediction stack.

Two tiers live here:

* :class:`Forecaster` — the original one-dimensional time-series
  contract (fit a series, forecast ``h`` steps ahead) the baseline
  predictors (ETS, Markov chain, FFT signature) implement.
* :class:`Predictor` — the job-level contract the schedulers consume:
  fit on a historical :class:`~repro.trace.records.Trace`, then map one
  job's utilization history to its predicted *unused* resources
  (Section III-A's granularity).  CORP's DNN+HMM pipeline, the
  data-driven quantile predictor (Pace et al.), the classify-then-
  predict router (Zhu & Fan) and the online selector all implement it,
  which is what makes them interchangeable behind
  :mod:`repro.forecast.registry` and the ``predictor=`` knob of the
  public API.

Capability flags (class attribute :attr:`Predictor.capabilities`)
declare what the surrounding machinery may do with an implementation:

``"serialize"``
    :meth:`Predictor.to_payload` / :meth:`Predictor.from_payload` round
    trip the fitted state, so the on-disk
    :class:`~repro.core.predictor_store.PredictorStore` may persist it.
``"warm_start"``
    ``fit(..., warm_start=donor)`` seeds training from a previous fit.
``"parallel_fit"``
    ``fit(..., workers=N)`` fans independent sub-fits across processes.
``"online_selection"``
    :meth:`Predictor.observe_slot` carries live state (the scheduler
    calls it at every slot boundary) and fitting may consult sibling
    predictors; such predictors are never persisted.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..cluster.resources import ResourceVector
    from ..trace.records import Trace

__all__ = ["Forecaster", "Predictor", "window_samples"]

#: Format stamp of the generic ``save_npz`` payload archives (bumped on
#: incompatible layout changes; checked on load).
PAYLOAD_VERSION = 1


class Forecaster(ABC):
    """One-dimensional time-series forecaster.

    Implementations are *online*: feed the history (or update
    incrementally) and ask for a forecast ``horizon`` steps ahead.
    """

    @abstractmethod
    def fit(self, series: np.ndarray) -> "Forecaster":
        """Fit/refit on a full 1-D history."""

    @abstractmethod
    def forecast(self, horizon: int = 1) -> float:
        """Point forecast ``horizon`` steps past the end of the history."""

    def forecast_path(self, horizon: int) -> np.ndarray:
        """Forecasts for steps ``1..horizon`` (default: repeat point calls)."""
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        return np.array([self.forecast(h) for h in range(1, horizon + 1)])

    @staticmethod
    def _validate(series: np.ndarray) -> np.ndarray:
        s = np.asarray(series, dtype=np.float64).ravel()
        if s.size == 0:
            raise ValueError("series is empty")
        if np.any(~np.isfinite(s)):
            raise ValueError("series contains non-finite values")
        return s


def window_samples(
    trace: "Trace",
    kind: int,
    input_slots: int,
    horizon: int,
    *,
    target: str = "window_min",
) -> Iterator[tuple[np.ndarray, float, float]]:
    """Sliding-window supervised samples from a historical trace.

    Yields ``(input_window, unused_fraction_target, request_amount)``
    per sample for resource ``kind`` — the exact loop CORP's
    ``build_training_set`` runs (Section III-A), shared here so every
    predictor family trains and seeds its error statistics on identical
    numerics.  ``target`` selects what "the amount of temporarily-unused
    resource in a time window" means:

    * ``"window_min"`` — the window's minimum unused fraction (the
      safely *allocatable* amount, conservative by construction);
    * ``"window_mean"`` — the window's mean unused fraction;
    * ``"point"`` — the unused fraction at exactly ``t + L``.
    """
    if target not in ("window_min", "window_mean", "point"):
        raise ValueError(f"unknown prediction target {target!r}")
    k = int(kind)
    span = input_slots + horizon
    for record in trace:
        util = record.utilization_series()[:, k]
        n = util.size
        if n < span:
            continue
        request = float(record.requested.as_array()[k])
        for start in range(n - span + 1):
            window = util[start + input_slots : start + span]
            if target == "window_min":
                y = 1.0 - float(window.max())
            elif target == "window_mean":
                y = 1.0 - float(window.mean())
            else:
                y = 1.0 - float(window[-1])
            yield util[start : start + input_slots], y, request


class Predictor(ABC):
    """Job-level unused-resource predictor — the scheduler's contract.

    Implementations fit once on a historical trace (the offline phase)
    and then serve per-job forecasts: utilization history in, predicted
    unused :class:`~repro.cluster.resources.ResourceVector` out.  Two
    attributes feed the scheduler's error machinery and must be
    populated by :meth:`fit`:

    * :attr:`seed_errors` — per-resource held-out validation errors
      (actual − predicted unused fraction of the request), the
      "historical data with prediction error samples" Eq. 20/21 start
      from;
    * :attr:`prior_unused_fraction` — per-resource prior for jobs too
      young to carry evidence.
    """

    #: Registry family name — part of every store fingerprint, so
    #: artifacts from different families can never shadow each other.
    family: str = "base"
    #: What the surrounding machinery may do with this implementation
    #: (see the module docstring for the flag meanings).
    capabilities: frozenset[str] = frozenset()

    #: Per-resource validation errors in request fractions.
    seed_errors: list[np.ndarray]
    #: Per-resource prior unused fraction of the training data.
    prior_unused_fraction: np.ndarray

    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def fitted(self) -> bool:
        """Whether :meth:`fit` has produced a servable model."""

    @abstractmethod
    def fit(self, history: "Trace", **kwargs: object) -> "Predictor":
        """Offline phase: train on a historical trace; returns ``self``."""

    @abstractmethod
    def predict_job_unused(
        self, util_history: np.ndarray, request: "ResourceVector"
    ) -> "ResourceVector":
        """Predicted unused amount of one job over the next window.

        ``util_history`` is the job's per-slot utilization ``(n, l)`` in
        fractions of its request; the return value is in absolute
        amounts (fraction × request).
        """

    # ------------------------------------------------------------------
    # shared error statistics
    # ------------------------------------------------------------------
    def validation_rmse(self) -> np.ndarray:
        """Per-resource RMSE of the seed errors, in request fractions."""
        return np.array(
            [
                float(np.sqrt(np.mean(e**2))) if e.size else 0.0
                for e in self.seed_errors
            ]
        )

    def error_quantile(self, kind: int, q: float) -> float:
        """Empirical ``q``-quantile of resource ``kind``'s seed errors.

        ``0.0`` when no validation errors exist (an evidence-free fit
        contributes no shift).
        """
        errors = self.seed_errors[int(kind)]
        if errors.size == 0:
            return 0.0
        return float(np.quantile(errors, q))

    def predict_interval(
        self, kind: int, point: float, confidence: float
    ) -> tuple[float, float]:
        """Symmetric CI around a fractional forecast (Eq. 18 analogue).

        The default half-width is ``σ̂ · z`` from the seed-error
        dispersion; families with a sharper dispersion estimate (the
        quantile predictor's window spread) override this.
        """
        from .confidence import z_value

        errors = self.seed_errors[int(kind)]
        sigma = float(errors.std()) if errors.size >= 2 else 0.0
        half = sigma * z_value(confidence)
        return point - half, point + half

    def observe_slot(self, slot: int) -> None:
        """Slot-boundary hook for ``"online_selection"`` predictors."""

    # ------------------------------------------------------------------
    # generic serialization ("serialize" capability)
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple[dict[str, np.ndarray], dict]:
        """The fitted state as ``(arrays, meta)`` for :meth:`save_npz`.

        The base payload covers what every family shares (seed errors
        and priors); families with more state extend both mappings.
        """
        if not self.fitted:
            raise ValueError("predictor is not fitted")
        arrays = {
            f"seed_errors{k}": np.asarray(e, dtype=np.float64)
            for k, e in enumerate(self.seed_errors)
        }
        arrays["prior_unused_fraction"] = np.asarray(
            self.prior_unused_fraction, dtype=np.float64
        )
        return arrays, {}

    def _restore_payload(
        self, arrays: dict[str, np.ndarray], meta: dict
    ) -> None:
        """Adopt the base payload fields (inverse of :meth:`to_payload`)."""
        self.seed_errors = []
        k = 0
        while f"seed_errors{k}" in arrays:
            self.seed_errors.append(np.asarray(arrays[f"seed_errors{k}"]).copy())
            k += 1
        self.prior_unused_fraction = np.asarray(
            arrays["prior_unused_fraction"]
        ).copy()

    @classmethod
    def from_payload(
        cls, arrays: dict[str, np.ndarray], meta: dict, config: object = None
    ) -> "Predictor":
        """Rebuild a fitted instance from :meth:`to_payload` output."""
        raise NotImplementedError(
            f"{cls.__name__} does not implement payload restore"
        )

    def save_npz(self, path: str | Path) -> None:
        """Serialize the fitted state to one ``.npz`` archive."""
        arrays, extra_meta = self.to_payload()
        meta = {
            "payload_version": PAYLOAD_VERSION,
            "family": self.family,
            **extra_meta,
        }
        arrays = dict(arrays)
        arrays["_meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez(Path(path), **arrays)

    @classmethod
    def load_npz(cls, path: str | Path, config: object = None) -> "Predictor":
        """Restore a predictor saved by :meth:`save_npz`."""
        with np.load(Path(path)) as archive:
            meta = json.loads(bytes(archive["_meta"]).decode("utf-8"))
            if meta.get("payload_version") != PAYLOAD_VERSION:
                raise ValueError(
                    f"unsupported payload version {meta.get('payload_version')!r}"
                )
            if meta.get("family") != cls.family:
                raise ValueError(
                    f"archive holds a {meta.get('family')!r} predictor, "
                    f"not {cls.family!r}"
                )
            arrays = {name: archive[name] for name in archive.files}
        return cls.from_payload(arrays, meta, config)
