"""Forecaster protocol shared by the baseline predictors."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Forecaster"]


class Forecaster(ABC):
    """One-dimensional time-series forecaster.

    Implementations are *online*: feed the history (or update
    incrementally) and ask for a forecast ``horizon`` steps ahead.
    """

    @abstractmethod
    def fit(self, series: np.ndarray) -> "Forecaster":
        """Fit/refit on a full 1-D history."""

    @abstractmethod
    def forecast(self, horizon: int = 1) -> float:
        """Point forecast ``horizon`` steps past the end of the history."""

    def forecast_path(self, horizon: int) -> np.ndarray:
        """Forecasts for steps ``1..horizon`` (default: repeat point calls)."""
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        return np.array([self.forecast(h) for h in range(1, horizon + 1)])

    @staticmethod
    def _validate(series: np.ndarray) -> np.ndarray:
        s = np.asarray(series, dtype=np.float64).ravel()
        if s.size == 0:
            raise ValueError("series is empty")
        if np.any(~np.isfinite(s)):
            raise ValueError("series contains non-finite values")
        return s
