"""Exponential smoothing (ETS) — RCCR's predictor.

Section IV: "For RCCR, we first used a time series forecasting
technique, i.e., Exponential Smoothing (ETS), to predict the amount of
unused resource of VMs."  Simple and Holt (trend) variants are provided;
RCCR uses Holt so sustained ramps are tracked, which is the behaviour
time-series forecasting shows on *patterned* data — and the lack of
pattern in short-job data is exactly what degrades it (Fig. 6's story).
"""

from __future__ import annotations

import numpy as np

from .base import Forecaster

__all__ = ["SimpleExponentialSmoothing", "HoltLinear"]


class SimpleExponentialSmoothing(Forecaster):
    """Level-only ETS: ``s_t = α x_t + (1 − α) s_{t−1}``."""

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._level: float | None = None

    def fit(self, series: np.ndarray) -> "SimpleExponentialSmoothing":
        """Compute the smoothed level over the full history (closed form)."""
        s = self._validate(series)
        a = self.alpha
        n = s.size
        if n == 1:
            self._level = float(s[0])
            return self
        # Closed form of the recursion: level_n = (1-a)^{n-1} x_0 +
        # a Σ_{k=1..n-1} (1-a)^{n-1-k} x_k — one vectorized dot product.
        decay = (1.0 - a) ** np.arange(n - 1, -1, -1, dtype=np.float64)
        weights = a * decay
        weights[0] = decay[0]  # the seed level carries no extra factor a
        self._level = float(weights @ s)
        return self

    def update(self, value: float) -> None:
        """Incorporate one new observation without refitting."""
        if self._level is None:
            self._level = float(value)
        else:
            self._level = self.alpha * float(value) + (1.0 - self.alpha) * self._level

    def forecast(self, horizon: int = 1) -> float:
        """Flat forecast at the smoothed level (any horizon)."""
        if self._level is None:
            raise RuntimeError("forecaster not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        return self._level


class HoltLinear(Forecaster):
    """Holt's linear-trend ETS.

    ``level_t = α x_t + (1−α)(level_{t−1} + trend_{t−1})``;
    ``trend_t = β (level_t − level_{t−1}) + (1−β) trend_{t−1}``;
    forecast ``h`` ahead is ``level + h · trend``.
    """

    def __init__(self, alpha: float = 0.3, beta: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        self.alpha = alpha
        self.beta = beta
        self._level: float | None = None
        self._trend: float = 0.0

    def fit(self, series: np.ndarray) -> "HoltLinear":
        """Run the level/trend recursions over the full history."""
        s = self._validate(series)
        self._level = float(s[0])
        self._trend = float(s[1] - s[0]) if s.size > 1 else 0.0
        for x in s[1:]:
            self.update(float(x))
        return self

    def update(self, value: float) -> None:
        """One-step online update of level and trend."""
        if self._level is None:
            self._level = float(value)
            self._trend = 0.0
            return
        prev_level = self._level
        self._level = self.alpha * value + (1.0 - self.alpha) * (
            prev_level + self._trend
        )
        self._trend = self.beta * (self._level - prev_level) + (
            1.0 - self.beta
        ) * self._trend

    def forecast(self, horizon: int = 1) -> float:
        """Level plus ``horizon`` steps of the smoothed trend."""
        if self._level is None:
            raise RuntimeError("forecaster not fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        return self._level + horizon * self._trend
