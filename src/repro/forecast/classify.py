"""Classify-then-predict router (after Zhu & Fan).

A job is first *classified* — seeded k-means over standardized trace
features (per-resource utilization mean and spread, log length,
burstiness) — and the forecast is then routed to the class's
specialized sub-predictor: the empirical-quantile base forecast plus a
per-(class, resource) calibration shift learned from that class's
training windows.  Routing a job to a model trained on jobs *like it*
is what beats one monolithic model in Zhu & Fan's study; here the
sub-predictors stay deliberately simple (shifted quantiles) so the
family isolates the value of the classification itself.

The per-class calibrations are independent, so :meth:`fit` fans them
across worker processes via :func:`repro.nn.parallel.parallel_map`
(``workers >= 2``), bit-identical to the serial loop — the same
discipline CORP's per-resource fits follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.resources import NUM_RESOURCES, ResourceVector
from ..nn.parallel import parallel_map
from ..obs import OBS
from .base import Predictor, window_samples

__all__ = ["ClassifyThenPredictPredictor"]

#: Feature vector length: mean + std per resource, log length, burstiness.
_N_FEATURES = 2 * NUM_RESOURCES + 2


def _job_features(util: np.ndarray) -> np.ndarray:
    """The classification features of one utilization series ``(n, l)``."""
    means = util.mean(axis=0)
    stds = util.std(axis=0)
    length = np.log1p(float(util.shape[0]))
    overall = util.mean(axis=1)
    burst = float(np.abs(np.diff(overall)).mean()) if overall.size > 1 else 0.0
    return np.concatenate([means, stds, [length, burst]])


def _kmeans(
    features: np.ndarray, k: int, seed: int, n_iter: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded from-scratch k-means; returns ``(centroids, assignment)``.

    Deterministic by construction: seeded init, fixed iteration count,
    ties broken toward the lowest centroid index, and an emptied class
    keeps its previous centroid.
    """
    n = features.shape[0]
    k = max(1, min(k, n))
    rng = np.random.default_rng(seed)
    centroids = features[rng.choice(n, size=k, replace=False)].copy()
    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(n_iter):
        distances = np.linalg.norm(
            features[:, None, :] - centroids[None, :, :], axis=2
        )
        assignment = distances.argmin(axis=1)
        for c in range(k):
            members = features[assignment == c]
            if members.shape[0]:
                centroids[c] = members.mean(axis=0)
    return centroids, assignment


@dataclass(frozen=True)
class _ClassCalibrationTask:
    """One class's calibration inputs — plain picklable data."""

    class_id: int
    #: Per resource: ``(base_predictions, targets)`` arrays.
    samples: tuple[tuple[np.ndarray, np.ndarray], ...]


def _calibrate_class(
    task: _ClassCalibrationTask,
) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
    """Per-resource shift (median residual) and calibrated errors."""
    shifts = np.zeros(NUM_RESOURCES)
    errors: list[np.ndarray] = []
    for kind, (preds, targets) in enumerate(task.samples):
        if targets.size:
            residual = targets - preds
            shifts[kind] = float(np.median(residual))
            errors.append(residual - shifts[kind])
        else:
            errors.append(np.zeros(0))
    return shifts, tuple(errors)


@dataclass
class ClassifyThenPredictPredictor(Predictor):
    """k-means job classes feeding class-specialized quantile predictors."""

    family = "classify"
    capabilities = frozenset({"serialize", "parallel_fit"})

    quantile: float = 0.5
    input_slots: int = 6
    window_slots: int = 6
    prediction_target: str = "window_mean"
    min_history_slots: int = 2
    n_classes: int = 3
    seed: int = 0

    seed_errors: list[np.ndarray] = field(default_factory=list)
    prior_unused_fraction: np.ndarray = field(
        default_factory=lambda: np.zeros(NUM_RESOURCES)
    )
    #: Standardized-feature centroids ``(k, _N_FEATURES)``.
    centroids: np.ndarray = field(
        default_factory=lambda: np.zeros((0, _N_FEATURES))
    )
    feature_mean: np.ndarray = field(
        default_factory=lambda: np.zeros(_N_FEATURES)
    )
    feature_scale: np.ndarray = field(
        default_factory=lambda: np.ones(_N_FEATURES)
    )
    #: Per-(class, resource) calibration shifts.
    class_shifts: np.ndarray = field(
        default_factory=lambda: np.zeros((0, NUM_RESOURCES))
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.n_classes < 1:
            raise ValueError("n_classes must be >= 1")

    @classmethod
    def from_config(cls, config) -> "ClassifyThenPredictPredictor":
        q = config.train_quantile if config.train_quantile is not None else 0.5
        return cls(
            quantile=float(q),
            input_slots=config.input_slots,
            window_slots=config.window_slots,
            prediction_target=config.prediction_target,
            min_history_slots=config.min_history_slots,
            seed=config.seed,
        )

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return len(self.seed_errors) == NUM_RESOURCES

    def fit(
        self, history, *, workers: int = 0, **kwargs: object
    ) -> "ClassifyThenPredictPredictor":
        """Classify the training jobs, then calibrate per class."""
        with OBS.span("predictor:fit"):
            return self._fit(history, workers=workers)

    def _fit(self, history, *, workers: int = 0) -> "ClassifyThenPredictPredictor":
        records = [r for r in history if r.n_samples >= 2]
        features = (
            np.array([_job_features(r.utilization_series()) for r in records])
            if records
            else np.zeros((0, _N_FEATURES))
        )
        if features.shape[0]:
            self.feature_mean = features.mean(axis=0)
            scale = features.std(axis=0)
            scale[scale < 1e-12] = 1.0
            self.feature_scale = scale
            standardized = (features - self.feature_mean) / self.feature_scale
            self.centroids, assignment = _kmeans(
                standardized, self.n_classes, self.seed
            )
        else:
            self.feature_mean = np.zeros(_N_FEATURES)
            self.feature_scale = np.ones(_N_FEATURES)
            self.centroids = np.zeros((1, _N_FEATURES))
            assignment = np.zeros(0, dtype=np.int64)
        k = self.centroids.shape[0]

        # Base (un-shifted) quantile predictions per class and resource.
        by_class: list[list[tuple[list[float], list[float]]]] = [
            [([], []) for _ in range(NUM_RESOURCES)] for _ in range(k)
        ]
        pooled: list[list[float]] = [[] for _ in range(NUM_RESOURCES)]
        for record, class_id in zip(records, assignment):
            for kind in range(NUM_RESOURCES):
                preds, targets = by_class[class_id][kind]
                for window, y, _request in window_samples(
                    [record],
                    kind,
                    self.input_slots,
                    self.window_slots,
                    target=self.prediction_target,
                ):
                    unused = 1.0 - window
                    preds.append(float(np.quantile(unused, self.quantile)))
                    targets.append(y)
                    pooled[kind].append(y)
        tasks = [
            _ClassCalibrationTask(
                class_id=c,
                samples=tuple(
                    (np.asarray(preds), np.asarray(targets))
                    for preds, targets in by_class[c]
                ),
            )
            for c in range(k)
        ]
        results = parallel_map(_calibrate_class, tasks, workers=workers)
        self.class_shifts = np.array([shifts for shifts, _errors in results])
        self.seed_errors = [
            np.concatenate([errors[kind] for _shifts, errors in results])
            if any(errors[kind].size for _shifts, errors in results)
            else np.zeros(0)
            for kind in range(NUM_RESOURCES)
        ]
        self.prior_unused_fraction = np.array(
            [
                float(np.quantile(np.asarray(ys), self.quantile)) if ys else 0.0
                for ys in pooled
            ]
        )
        if OBS.enabled:
            sizes = np.bincount(assignment, minlength=k) if records else []
            OBS.emit(
                "predictor_fit",
                family=self.family,
                n_classes=int(k),
                class_sizes=[int(s) for s in sizes],
                n_jobs=len(records),
            )
        return self

    # ------------------------------------------------------------------
    def classify(self, util_history: np.ndarray) -> int:
        """The k-means class of one job's observed utilization."""
        features = _job_features(np.atleast_2d(util_history))
        standardized = (features - self.feature_mean) / self.feature_scale
        distances = np.linalg.norm(self.centroids - standardized, axis=1)
        return int(distances.argmin())

    def predict_job_unused(
        self, util_history: np.ndarray, request: ResourceVector
    ) -> ResourceVector:
        """Class-routed quantile forecast with the class's calibration."""
        if not self.fitted:
            raise RuntimeError("predictor not fitted")
        util_history = np.atleast_2d(np.asarray(util_history, dtype=np.float64))
        if OBS.enabled:
            OBS.count("predictor.predict")
        req = request.as_array()
        if util_history.shape[0] < self.min_history_slots:
            if OBS.enabled:
                OBS.count("predictor.prior_fallback")
            return ResourceVector(self.prior_unused_fraction * req)
        class_id = self.classify(util_history)
        shifts = (
            self.class_shifts[class_id]
            if class_id < self.class_shifts.shape[0]
            else np.zeros(NUM_RESOURCES)
        )
        out = np.zeros(NUM_RESOURCES)
        for kind in range(NUM_RESOURCES):
            unused = 1.0 - util_history[-self.input_slots :, kind]
            fraction = float(np.quantile(unused, self.quantile)) + shifts[kind]
            out[kind] = np.clip(fraction, 0.0, 1.0) * req[kind]
        return ResourceVector(out)

    # ------------------------------------------------------------------
    def to_payload(self) -> tuple[dict[str, np.ndarray], dict]:
        arrays, meta = super().to_payload()
        arrays["centroids"] = self.centroids
        arrays["feature_mean"] = self.feature_mean
        arrays["feature_scale"] = self.feature_scale
        arrays["class_shifts"] = self.class_shifts
        meta["params"] = {
            "quantile": self.quantile,
            "input_slots": self.input_slots,
            "window_slots": self.window_slots,
            "prediction_target": self.prediction_target,
            "min_history_slots": self.min_history_slots,
            "n_classes": self.n_classes,
            "seed": self.seed,
        }
        return arrays, meta

    @classmethod
    def from_payload(
        cls, arrays: dict[str, np.ndarray], meta: dict, config: object = None
    ) -> "ClassifyThenPredictPredictor":
        predictor = cls(**meta["params"])
        predictor._restore_payload(arrays, meta)
        predictor.centroids = np.asarray(arrays["centroids"]).copy()
        predictor.feature_mean = np.asarray(arrays["feature_mean"]).copy()
        predictor.feature_scale = np.asarray(arrays["feature_scale"]).copy()
        predictor.class_shifts = np.asarray(arrays["class_shifts"]).copy()
        return predictor
