"""Adaptive padding — CloudScale's prediction-error handling.

Section IV: "we extracted the burst pattern to get the padding value and
calculated the prediction errors ... Next, we used the adaptive padding
that is based on the recent burstiness of resource usage and recent
prediction errors to correct the prediction errors."  Padding raises a
*demand* prediction (equivalently lowers an *unused* prediction) to
avoid under-provisioning on bursts.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Sequence

__all__ = ["AdaptivePadding"]


def _small_percentile(values: Sequence[float], pct: float) -> float:
    """``np.percentile(values, pct)`` (linear method) for tiny inputs.

    The trackers hold at most ``window`` (~30) samples, and numpy's
    dispatch overhead dominates its cost at that size — this sorted-list
    interpolation mirrors numpy's "linear" method (including the
    ``gamma >= 0.5`` lerp branch it uses for numerical accuracy) at a
    fraction of the per-call cost.
    """
    s = sorted(values)
    n = len(s)
    if n == 1:
        return s[0]
    rank = (pct / 100.0) * (n - 1)
    lo = int(rank)
    if lo >= n - 1:
        return s[-1]
    gamma = rank - lo
    a, b = s[lo], s[lo + 1]
    diff = b - a
    return b - diff * (1.0 - gamma) if gamma >= 0.5 else a + diff * gamma


class AdaptivePadding:
    """Tracks recent burstiness and under-prediction errors.

    The pad is ``max(burst_pad, error_pad)`` where

    * ``burst_pad`` — recent observed burst amplitude: high percentile of
      the last ``window`` usage samples minus their mean;
    * ``error_pad`` — high percentile of recent *under-prediction*
      magnitudes (cases where actual usage exceeded the prediction).
    """

    def __init__(self, window: int = 30, percentile: float = 80.0) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        self.window = window
        self.percentile = percentile
        self._usage: deque[float] = deque(maxlen=window)
        self._under_errors: deque[float] = deque(maxlen=window)
        self._cached_pad: float | None = None

    # ------------------------------------------------------------------
    def observe_usage(self, value: float) -> None:
        """Record one actual usage sample."""
        self._usage.append(float(value))
        self._cached_pad = None

    def observe_error(self, predicted: float, actual: float) -> None:
        """Record one (predicted, actual) usage pair.

        Only under-predictions (actual above predicted) contribute —
        padding exists to prevent them.
        """
        shortfall = float(actual) - float(predicted)
        self._under_errors.append(max(shortfall, 0.0))
        self._cached_pad = None

    # ------------------------------------------------------------------
    def burst_pad(self) -> float:
        """High-percentile excess of recent usage over its mean."""
        if len(self._usage) < 2:
            return 0.0
        u = list(self._usage)
        mean = math.fsum(u) / len(u)
        return max(_small_percentile(u, self.percentile) - mean, 0.0)

    def error_pad(self) -> float:
        """High percentile of recent under-prediction magnitudes."""
        if not self._under_errors:
            return 0.0
        return _small_percentile(list(self._under_errors), self.percentile)

    def pad(self) -> float:
        """The padding applied on top of a demand prediction (>= 0).

        Memoized between observations — the scheduler reads it once per
        placement on a hot path.
        """
        if self._cached_pad is None:
            self._cached_pad = max(self.burst_pad(), self.error_pad())
        return self._cached_pad
