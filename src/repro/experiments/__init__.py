"""Experiment harness: scenarios, runner, figure reproductions, reports."""

from .ablations import ABLATIONS, run_ablations
from .figures import (
    AGGRESSIVENESS_LEVELS,
    CONFIDENCE_LEVELS,
    FigureResult,
    fig06_prediction_error,
    fig07_utilization,
    fig08_utilization_vs_slo,
    fig09_slo_vs_confidence,
    fig10_overhead,
)
from .mixed import mixed_scenario, run_mixed_workload
from .plot import render_line_chart, save_figure_svg
from .report import format_series_table, format_table, shape_check
from .runner import (
    METHOD_ORDER,
    PredictorCache,
    default_schedulers,
    run_methods,
    run_scenario,
)
from .scenarios import (
    FAULT_INTENSITIES,
    JOB_COUNTS,
    Scenario,
    cluster_scenario,
    ec2_scenario,
    fault_sweep_scenarios,
)
from .sweep import SweepResult, average_summaries, sweep
from .table2 import render_table2, table2_rows

__all__ = [
    "ABLATIONS",
    "run_ablations",
    "mixed_scenario",
    "run_mixed_workload",
    "AGGRESSIVENESS_LEVELS",
    "CONFIDENCE_LEVELS",
    "FigureResult",
    "fig06_prediction_error",
    "fig07_utilization",
    "fig08_utilization_vs_slo",
    "fig09_slo_vs_confidence",
    "fig10_overhead",
    "format_series_table",
    "format_table",
    "shape_check",
    "METHOD_ORDER",
    "PredictorCache",
    "default_schedulers",
    "run_methods",
    "run_scenario",
    "FAULT_INTENSITIES",
    "JOB_COUNTS",
    "Scenario",
    "cluster_scenario",
    "ec2_scenario",
    "fault_sweep_scenarios",
    "render_line_chart",
    "save_figure_svg",
    "render_table2",
    "table2_rows",
    "SweepResult",
    "average_summaries",
    "sweep",
]
