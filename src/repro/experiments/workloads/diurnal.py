"""Diurnal arrival curves with flash-crowd spikes.

A :class:`DiurnalPattern` turns the evaluation batch's roughly uniform
arrival times into a millions-of-users day/night cycle: a sinusoidal
base intensity (peak-to-trough ratio ``day_night_ratio``) plus
``n_spikes`` seeded Gaussian flash-crowd bumps.  The transformation is
an inverse-CDF *time warp* — original times are treated as quantiles of
the integrated intensity, so it is strictly monotone (arrival order is
preserved), conserves the job count exactly, maps the span endpoints to
themselves, and is a deterministic function of the pattern alone.  No
job is dropped or invented: the same workload simply arrives on a
bursty clock, which is exactly the regime predictive provisioning is
supposed to win in.

:func:`flash_crowd_p99_wait` reports the p99 scheduling wait (slots) of
jobs arriving inside a spike window — the "did the flash crowd starve?"
summary metric.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ...cluster.job import Job
    from ...trace.records import TaskRecord

__all__ = [
    "DiurnalPattern",
    "apply_diurnal",
    "flash_crowd_p99_wait",
]

#: Intensity grid resolution for the numerical inverse CDF.  2049 points
#: over a ~100 s span resolves features far narrower than any spike.
_GRID_POINTS = 2049

#: Intensity floor: keeps the integrated intensity strictly increasing,
#: so the warp stays invertible even deep in the "night" trough.
_MIN_INTENSITY = 0.05


@dataclass(frozen=True)
class DiurnalPattern:
    """One deterministic diurnal arrival-rate curve.

    Attributes
    ----------
    period_s:
        Length of one day/night cycle in *trace* seconds.  The default
        puts two full cycles inside the default 100 s arrival span.
    day_night_ratio:
        Peak-to-trough intensity ratio of the sinusoidal base (> 1).
    n_spikes:
        Number of flash-crowd spikes, placed at seeded uniform positions
        over the span.
    spike_width_s:
        Gaussian sigma of each spike, in trace seconds.
    spike_boost:
        Peak intensity a spike adds on top of the base curve.
    seed:
        Seeds the spike positions; everything else is closed-form.
    """

    period_s: float = 50.0
    day_night_ratio: float = 4.0
    n_spikes: int = 2
    spike_width_s: float = 4.0
    spike_boost: float = 6.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.day_night_ratio <= 1.0:
            raise ValueError("day_night_ratio must be > 1")
        if self.n_spikes < 0:
            raise ValueError("n_spikes must be >= 0")
        if self.spike_width_s <= 0:
            raise ValueError("spike_width_s must be positive")
        if self.spike_boost < 0:
            raise ValueError("spike_boost must be >= 0")

    # ------------------------------------------------------------------
    def spike_centers(self, span_s: float) -> np.ndarray:
        """Seeded spike positions over ``[0, span_s]`` (sorted)."""
        if self.n_spikes == 0:
            return np.zeros(0)
        rng = np.random.default_rng(self.seed)
        # Keep centers away from the edges so a spike is a spike, not a
        # half-clipped boundary artifact.
        lo, hi = 0.1 * span_s, 0.9 * span_s
        return np.sort(rng.uniform(lo, hi, size=self.n_spikes))

    def spike_windows(self, span_s: float) -> list[tuple[float, float]]:
        """``(start_s, end_s)`` flash-crowd windows (±2 sigma per spike)."""
        half = 2.0 * self.spike_width_s
        return [
            (float(c - half), float(c + half))
            for c in self.spike_centers(span_s)
        ]

    def intensity(self, t: np.ndarray, span_s: float) -> np.ndarray:
        """Arrival intensity λ(t) over the span (vectorized, floored)."""
        t = np.asarray(t, dtype=np.float64)
        ratio = self.day_night_ratio
        amplitude = (ratio - 1.0) / (ratio + 1.0)
        lam = 1.0 + amplitude * np.sin(2.0 * np.pi * t / self.period_s)
        for center in self.spike_centers(span_s):
            z = (t - center) / self.spike_width_s
            lam = lam + self.spike_boost * np.exp(-0.5 * z * z)
        return np.maximum(lam, _MIN_INTENSITY)

    def warp_times(self, times: np.ndarray, span_s: float) -> np.ndarray:
        """Map uniform-clock times to diurnal-clock times over the span.

        Inverse-CDF construction: ``t' = Λ⁻¹(t/span · Λ(span))`` where
        ``Λ`` is the integrated intensity.  Strictly monotone (λ is
        floored above zero), endpoint-preserving, and exact about counts
        — it relocates arrivals, never creates or destroys them.
        """
        times = np.asarray(times, dtype=np.float64)
        if span_s <= 0:
            return times.copy()
        grid = np.linspace(0.0, span_s, _GRID_POINTS)
        lam = self.intensity(grid, span_s)
        # Trapezoid cumulative integral of λ over the grid; Λ(0) = 0.
        step = grid[1] - grid[0]
        cum = np.concatenate(
            ([0.0], np.cumsum((lam[1:] + lam[:-1]) * 0.5 * step))
        )
        targets = np.clip(times, 0.0, span_s) / span_s * cum[-1]
        return np.interp(targets, cum, grid)


def apply_diurnal(
    records: Iterable["TaskRecord"], pattern: DiurnalPattern
) -> list["TaskRecord"]:
    """Rewrite submit times through the pattern's time warp.

    The span is the records' own arrival span, so the warp composes
    with any upstream subsampling.  Count, order and every non-arrival
    field are preserved exactly.
    """
    records = list(records)
    if not records:
        return records
    times = np.array([r.submit_time_s for r in records])
    span = float(times.max())
    warped = pattern.warp_times(times, span)
    return [
        replace(record, submit_time_s=float(t))
        for record, t in zip(records, warped)
    ]


def flash_crowd_p99_wait(
    jobs: Sequence["Job"],
    pattern: DiurnalPattern,
    span_s: float,
    slot_duration_s: float,
) -> float:
    """p99 scheduling wait (slots) of jobs arriving in a spike window.

    Wait is ``start_slot - submit_slot`` over jobs that did start;
    membership is judged on the record's (post-warp) submit time.
    Returns ``0.0`` when no spike-window job ever started.
    """
    windows = pattern.spike_windows(span_s)
    waits = []
    for job in jobs:
        if job.start_slot is None:
            continue
        t = job.record.submit_time_s
        if any(lo <= t <= hi for lo, hi in windows):
            waits.append(job.start_slot - job.submit_slot)
    if not waits:
        return 0.0
    return float(np.percentile(np.asarray(waits, dtype=np.float64), 99))
