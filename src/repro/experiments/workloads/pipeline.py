"""Phased DAG/pipeline workloads over the streaming kernel.

A pipeline scenario splits the evaluation trace into ``n_phases``
contiguous phases and enforces the DAG edge *phase N completes before
phase N+1 submits*: each phase is driven into a streaming
:class:`~repro.service.kernel.SchedulerKernel`, the kernel is drained
until every in-flight job reached a terminal state, and only then —
after a configurable *conflict window* of idle slots separating the
co-scheduled services — does the next phase's batch go in.  Intra-phase
arrival spread is preserved (records keep their relative trace offsets),
so a phase is still a realistic arrival burst rather than a single-slot
spike.

The driver reports ``pipeline_stall_slots``: the total number of slots
between a phase barrier and the *first placement* of the next phase —
the hand-off latency a pipeline owner actually experiences, conflict
windows included.

The inter-phase gate lives in the module-level :func:`_drain_phase`
hook so the mutation smoke test can break exactly the DAG edge (submit
phase N+1 early) and prove the ``pipeline`` invariant rule catches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ...check import CHECK
from ...obs import OBS
from ...service.kernel import SchedulerKernel

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ...cluster.simulator import ClusterSimulator, SimulationResult
    from ...trace.records import TaskRecord, Trace

__all__ = ["PipelineSpec", "partition_phases", "run_pipeline"]


@dataclass(frozen=True)
class PipelineSpec:
    """Shape of a phased pipeline workload.

    Attributes
    ----------
    n_phases:
        Number of sequential phases the trace is split into.
    conflict_window_slots:
        Idle slots inserted between a phase's completion and the next
        phase's first submission (services that must not co-run get a
        guaranteed separation window).
    """

    n_phases: int = 3
    conflict_window_slots: int = 2

    def __post_init__(self) -> None:
        if self.n_phases < 1:
            raise ValueError("n_phases must be >= 1")
        if self.conflict_window_slots < 0:
            raise ValueError("conflict_window_slots must be >= 0")


def partition_phases(
    records: Sequence["TaskRecord"], n_phases: int
) -> list[list["TaskRecord"]]:
    """Split trace records into ``n_phases`` contiguous, near-even phases.

    Records are taken in trace (arrival) order; the first
    ``len % n_phases`` phases absorb the remainder, so the partition is
    a pure function of (records, n_phases) — tests re-derive the same
    job→phase mapping from it.
    """
    if n_phases < 1:
        raise ValueError("n_phases must be >= 1")
    records = list(records)
    base, rem = divmod(len(records), n_phases)
    phases: list[list["TaskRecord"]] = []
    start = 0
    for p in range(n_phases):
        size = base + (1 if p < rem else 0)
        phases.append(records[start : start + size])
        start += size
    return phases


def _drain_phase(kernel: SchedulerKernel) -> None:
    """The inter-phase DAG gate: block until the phase fully completed.

    On a streaming kernel, :meth:`~SchedulerKernel.run_until_blocked`
    returns only once nothing is pending, running or backed off (or the
    run truncated) — exactly the "phase N completes" edge.  Kept as a
    module-level hook so the mutation smoke test can replace it with a
    broken gate and prove the ``pipeline`` invariant rule fires.
    """
    kernel.run_until_blocked()


def run_pipeline(
    sim: "ClusterSimulator",
    spec: PipelineSpec,
    trace: "Trace",
    *,
    history: "Trace | None" = None,
) -> "SimulationResult":
    """Drive ``trace`` through ``sim`` phase by phase and return metrics.

    The scheduler sees each phase as a streaming arrival burst; the
    result is batch-identical :class:`SimulationResult` form with
    ``pipeline_stall_slots`` attached as an extra metric.
    """
    sim.scheduler.prepare(history if history is not None else trace)
    kernel = SchedulerKernel(sim, streaming=True)
    phases = partition_phases(list(trace), spec.n_phases)
    slot_duration = sim.config.slot_duration_s

    # job_id -> phase index, for the ordering invariant and stall metric.
    job_phase = {
        record.task_id: p
        for p, phase in enumerate(phases)
        for record in phase
    }
    first_place_slot: dict[int, int] = {}

    def on_placements(slot: int, placed) -> None:
        for job in placed:
            p = job_phase.get(job.job_id)
            if p is not None:
                first_place_slot.setdefault(p, slot)

    kernel.on_placements = on_placements

    #: phase index -> the barrier slot its submission waited behind
    #: (the slot the previous phase's drain left the kernel at).
    barriers: dict[int, int] = {}
    for p, phase in enumerate(phases):
        if not phase:
            continue
        if p > 0:
            _drain_phase(kernel)
            if kernel.finished:  # truncated mid-pipeline; stop submitting
                break
            barriers[p] = kernel.next_slot
        if CHECK.enabled:
            CHECK.checker.observe_pipeline_submission(
                sim,
                phase=p,
                slot=kernel.next_slot,
                job_phase=job_phase,
            )
        base = kernel.next_slot + (spec.conflict_window_slots if p > 0 else 0)
        phase_start = int(phase[0].submit_time_s // slot_duration)
        for record in phase:
            offset = int(record.submit_time_s // slot_duration) - phase_start
            kernel.submit(record, slot=base + offset)
        OBS.emit(
            "pipeline_phase",
            phase=p,
            slot=kernel.next_slot,
            jobs=len(phase),
            release_slot=base,
        )
    # Final drain for the last submitted phase.  Direct call, not the
    # gate hook: a mutated gate must only break the inter-phase edge,
    # not the run's completion.
    kernel.run_until_blocked()

    # Stall = barrier -> first placement of the released phase, summed
    # over transitions (computed after the final drain so every phase's
    # first placement is known).
    stall_slots = sum(
        first_place_slot[p] - barrier
        for p, barrier in barriers.items()
        if p in first_place_slot
    )
    result = kernel.result()
    result.extra_metrics = {"pipeline_stall_slots": float(stall_slots)}
    return result
