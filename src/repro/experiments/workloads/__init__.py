"""Scenario-family workload drivers (the "scenario zoo").

Three families beyond the paper's steady arrival mix, each with its own
summary metric:

``pipeline``
    DAG/phased workloads driven through the streaming kernel — phase
    N+1 is only submitted once phase N completed, separated by a
    configurable conflict window (:mod:`.pipeline`;
    ``pipeline_stall_slots``).
``diurnal``
    Day/night arrival-rate curves with seeded flash-crowd spikes,
    applied as a deterministic monotone time warp over the trace
    (:mod:`.diurnal`; ``flash_crowd_p99_wait``).
``storm``
    Correlated spot-revocation storms live in :mod:`repro.faults`
    (:class:`~repro.faults.plan.RevocationWave`,
    :func:`~repro.faults.plan.build_revocation_storm`;
    ``storm_recovery_slots``) — this package only re-exports the
    scenario-side pieces.
"""

from .diurnal import DiurnalPattern, apply_diurnal, flash_crowd_p99_wait
from .pipeline import PipelineSpec, partition_phases, run_pipeline

__all__ = [
    "DiurnalPattern",
    "apply_diurnal",
    "flash_crowd_p99_wait",
    "PipelineSpec",
    "partition_phases",
    "run_pipeline",
]
