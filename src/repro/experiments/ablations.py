"""Ablations of CORP's design choices (DESIGN.md §5).

Each variant disables or swaps exactly one mechanism the paper argues
for; the ablation benchmark reruns the 300-job cluster scenario per
variant and reports utilization, SLO violation rate and prediction
error rate side by side.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from ..core.config import CorpConfig
from ..core.corp import CorpScheduler
from .runner import PredictorCache, run_scenario
from .scenarios import cluster_scenario, ec2_scenario

__all__ = ["ABLATIONS", "run_ablations", "run_predictor_ablation"]

#: Variant name → the config change it applies (DESIGN.md §5's A1-A5).
ABLATIONS: Mapping[str, dict] = {
    "full": {},
    "A1-no-hmm": {"use_hmm_correction": False},
    "A2-no-packing": {"use_packing": False},
    "A3-no-ci": {"use_confidence_interval": False},
    "A4-random-vm": {"use_volume_selection": False},
    "A5-range-symbols": {"hmm_mode": "range"},
    "A6-window-min-target": {"prediction_target": "window_min"},
}


def run_ablations(
    *,
    n_jobs: int = 300,
    seed: int = 7,
    cache: PredictorCache | None = None,
    variants: Mapping[str, dict] | None = None,
) -> dict[str, dict[str, float]]:
    """Run every ablation variant on the shared cluster scenario.

    Returns ``variant → summary dict`` (the
    :meth:`~repro.cluster.simulator.SimulationResult.summary` keys, plus
    ``riders`` — the number of opportunistically placed jobs).
    """
    cache = cache if cache is not None else PredictorCache()
    variants = variants or ABLATIONS
    scenario = cluster_scenario(n_jobs, seed=seed)
    history = scenario.history_trace()
    trace = scenario.evaluation_trace()
    out: dict[str, dict[str, float]] = {}
    for name, overrides in variants.items():
        config = dataclasses.replace(CorpConfig(seed=seed), **overrides)
        scheduler = CorpScheduler(config, predictor=cache.get(config, history))
        result = run_scenario(scenario, scheduler, trace=trace, history=history)
        summary = result.summary()
        summary["riders"] = float(sum(1 for j in result.jobs if j.opportunistic))
        out[name] = summary
    return out


def run_predictor_ablation(
    *,
    n_jobs: int = 300,
    seed: int = 7,
    testbed: str = "cluster",
    cache: PredictorCache | None = None,
    predictors: tuple[str, ...] | None = None,
) -> dict[str, dict[str, float]]:
    """One CORP run per registered predictor family, same workload.

    The predictor-zoo counterpart of :func:`run_ablations`: the
    scheduler, packing, CI and gate machinery stay at the paper's
    defaults, and only the forecasting family behind ``predict_vm_unused``
    changes.  Returns ``family → summary dict`` (plus ``riders`` and,
    for ``"auto"``, ``switches`` — the selector's switch count).
    """
    from ..forecast.registry import available_predictors

    cache = cache if cache is not None else PredictorCache()
    names = predictors if predictors is not None else available_predictors()
    builders = {"cluster": cluster_scenario, "ec2": ec2_scenario}
    scenario = builders[testbed](n_jobs, seed=seed)
    history = scenario.history_trace()
    trace = scenario.evaluation_trace()
    config = CorpConfig(seed=seed)
    out: dict[str, dict[str, float]] = {}
    for name in names:
        predictor = cache.get(config, history, predictor=name)
        scheduler = CorpScheduler(config, predictor=predictor)
        result = run_scenario(scenario, scheduler, trace=trace, history=history)
        summary = result.summary()
        summary["riders"] = float(sum(1 for j in result.jobs if j.opportunistic))
        if hasattr(predictor, "switch_log"):
            summary["switches"] = float(len(predictor.switch_log))
        out[name] = summary
    return out
