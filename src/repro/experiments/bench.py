"""End-to-end sweep benchmark: baseline vs optimized hot path.

Measures the full experiment sweep (all four schedulers on both testbed
profiles) twice on the current machine:

* **baseline** — the pre-optimization behaviour, reproduced live with
  the verbatim reference implementations from
  :mod:`repro.cluster._legacy` (per-placement ``execute_slot``, uncached
  ``max_vm_capacity``) and a fresh :class:`PredictorCache` per sweep
  point (the old object-identity cache key meant every point refitted
  CORP's DNN/HMM stack);
* **optimized** — the current code: vectorized slot execution, memoized
  capacity, one shared content-keyed predictor fit, and optionally the
  process-parallel runner (``workers >= 2``).

Both numbers land in ``BENCH_runtime.json`` so the speedup claim is
always re-derivable on the machine that made it.  A correctness gate
compares the two sweeps' summaries before any timing is trusted.
"""

from __future__ import annotations

import json
import math
import os
import platform
import shutil
import tempfile
import time
import tracemalloc
from collections import deque
from contextlib import contextmanager
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..cluster import _legacy
from ..cluster.job import Job
from ..cluster.machine import VirtualMachine
from ..cluster.profiles import ClusterProfile
from ..cluster.resources import ResourceVector
from ..cluster.shards import ShardedCandidateIndex
from ..cluster.simulator import ClusterSimulator
from ..core.config import CorpConfig
from ..core.predictor_store import PredictorStore
from ..forecast.padding import AdaptivePadding
from ..trace.generator import GoogleTraceGenerator, TraceConfig
from .runner import PredictorCache, run_methods, run_specs, sweep_specs
from .scenarios import JOB_COUNTS, Scenario, cluster_scenario, ec2_scenario

__all__ = [
    "QUICK_COUNTS",
    "SCALE_COUNTS",
    "PRE_PR_REFERENCE",
    "legacy_mode",
    "sweep_scenarios",
    "run_benchmark",
    "write_benchmark",
    "run_cold_benchmark",
    "write_cold_benchmark",
    "run_scale_benchmark",
    "write_scale_benchmark",
    "check_regression",
]

#: Job counts of the abbreviated (CI smoke) sweep.
QUICK_COUNTS: tuple[int, ...] = (50, 150)

#: Wall-clock seconds of the same sweeps measured on the unmodified
#: code (the commit this optimization started from), for provenance.
#: The live baseline below is the number the speedup is computed from;
#: this record just documents what the original code did on the
#: development machine.
PRE_PR_REFERENCE: Mapping[str, object] = {
    "quick_s": 13.43,
    "full_s": 46.99,
    "machine": "x86_64, 1 core",
    "note": (
        "measured on the pre-optimization code; the 'baseline' entry is "
        "re-measured live via the legacy shim on the current machine"
    ),
}


#: (class, attribute, pre-optimization implementation) triples the
#: legacy shim swaps in.  Together these restore the original hot path:
#: per-placement slot execution, uncached capacity aggregation, fresh
#: vectors on every ``demand``/``committed``/``unallocated`` call,
#: numpy reductions for the per-call predicates, and numpy percentiles
#: in the padding trackers.
_LEGACY_PATCHES: tuple[tuple[type, str, object], ...] = (
    (VirtualMachine, "execute_slot", _legacy.legacy_execute_slot),
    (VirtualMachine, "committed", _legacy.legacy_committed),
    (VirtualMachine, "unallocated", _legacy.legacy_unallocated),
    (
        ClusterSimulator,
        "max_vm_capacity",
        lambda self: _legacy.legacy_max_vm_capacity(self.vms),
    ),
    (ResourceVector, "fits_within", _legacy.legacy_fits_within),
    (ResourceVector, "is_nonnegative", _legacy.legacy_is_nonnegative),
    (ResourceVector, "any_positive", _legacy.legacy_any_positive),
    (Job, "demand", _legacy.legacy_job_demand),
    (AdaptivePadding, "burst_pad", _legacy.legacy_burst_pad),
    (AdaptivePadding, "error_pad", _legacy.legacy_error_pad),
)


@contextmanager
def legacy_mode():
    """Temporarily restore the pre-optimization cluster hot path.

    Swaps in the verbatim pre-optimization method bodies from
    :mod:`repro.cluster._legacy` so the baseline can be *measured* on
    the current machine rather than quoted from a stale record.
    """
    originals = [
        (cls, name, cls.__dict__[name]) for cls, name, _ in _LEGACY_PATCHES
    ]
    for cls, name, impl in _LEGACY_PATCHES:
        setattr(cls, name, impl)
    try:
        yield
    finally:
        for cls, name, impl in originals:
            setattr(cls, name, impl)


def sweep_scenarios(counts: Iterable[int], seed: int = 7) -> list[Scenario]:
    """Both testbed profiles crossed with the requested job counts."""
    return [
        builder(n, seed=seed)
        for builder in (cluster_scenario, ec2_scenario)
        for n in counts
    ]


def _summaries(results) -> list[dict[str, float]]:
    out = []
    for r in results:
        s = r.summary()
        s.pop("allocation_latency_s")  # wall-clock; never comparable
        out.append(s)
    return out


def _run_baseline(counts: Sequence[int], seed: int) -> tuple[float, list[dict]]:
    """Pre-PR sweep: legacy hot path, one predictor refit per point."""
    summaries: list[dict[str, float]] = []
    with legacy_mode():
        t0 = time.perf_counter()
        for scenario in sweep_scenarios(counts, seed=seed):
            results = run_methods(
                scenario=scenario, predictor_cache=PredictorCache(), seed=seed
            )
            summaries.extend(_summaries(results.values()))
        elapsed = time.perf_counter() - t0
    return elapsed, summaries


def _run_optimized(
    counts: Sequence[int], seed: int, workers: int
) -> tuple[float, list[dict]]:
    """Current sweep: vectorized path, shared fit, optional workers."""
    specs = sweep_specs(scenarios=sweep_scenarios(counts, seed=seed), seed=seed)
    t0 = time.perf_counter()
    results = run_specs(
        specs=specs, workers=workers, predictor_cache=PredictorCache()
    )
    elapsed = time.perf_counter() - t0
    return elapsed, _summaries(results)


def _check_identity(
    baseline: list[dict], optimized: list[dict], rtol: float = 1e-9
) -> None:
    """The optimized sweep must reproduce the baseline's numbers."""
    if len(baseline) != len(optimized):
        raise AssertionError(
            f"sweep sizes differ: {len(baseline)} vs {len(optimized)}"
        )
    for i, (b, o) in enumerate(zip(baseline, optimized)):
        if set(b) != set(o):
            raise AssertionError(f"run {i}: summary keys differ: {b} vs {o}")
        for key, bv in b.items():
            ov = o[key]
            if not math.isclose(bv, ov, rel_tol=rtol, abs_tol=1e-12):
                raise AssertionError(
                    f"run {i}: {key} diverged: baseline {bv!r} vs "
                    f"optimized {ov!r}"
                )


#: Required baseline/optimized ratios.  The full sweep must be at least
#: 3x faster.  The quick sweep amortizes the single remaining offline
#: fit over only four points (the baseline refits four times, the
#: optimized path once and that one fit is most of its runtime), so its
#: achievable ratio is structurally lower — it gets a 2x smoke floor.
MIN_SPEEDUP_FULL: float = 3.0
MIN_SPEEDUP_QUICK: float = 2.0


def run_benchmark(
    *,
    quick: bool = False,
    workers: int = 0,
    seed: int = 7,
    min_speedup: float | None = None,
) -> dict:
    """Time baseline and optimized sweeps; return the report dict.

    Raises :class:`AssertionError` if the optimized sweep's summaries
    deviate from the baseline's, or if the speedup falls below
    ``min_speedup`` (default: 3x for the full sweep, 2x for the quick
    smoke; pass ``float("-inf")`` to disable the floor entirely).
    """
    if min_speedup is None:
        min_speedup = MIN_SPEEDUP_QUICK if quick else MIN_SPEEDUP_FULL
    counts = QUICK_COUNTS if quick else JOB_COUNTS
    baseline_s, baseline_summaries = _run_baseline(counts, seed)
    optimized_s, optimized_summaries = _run_optimized(counts, seed, workers)
    _check_identity(baseline_summaries, optimized_summaries)
    speedup = baseline_s / optimized_s
    report = {
        "benchmark": "experiment sweep: 4 schedulers x 2 profiles",
        "mode": "quick" if quick else "full",
        "job_counts": list(counts),
        "seed": seed,
        "n_runs": len(baseline_summaries),
        "baseline": {
            "seconds": round(baseline_s, 3),
            "how": (
                "measured live with the legacy shim: per-placement "
                "execute_slot, uncached max_vm_capacity, fresh predictor "
                "cache per sweep point (one DNN/HMM refit each)"
            ),
        },
        "optimized": {
            "seconds": round(optimized_s, 3),
            "workers": workers,
            "how": (
                "vectorized execute_slot, memoized max_vm_capacity, one "
                "content-keyed predictor fit shared across the sweep"
                + (", process-parallel runner" if workers >= 2 else "")
            ),
        },
        "speedup": round(speedup, 2),
        "min_speedup": min_speedup,
        "identity_check": "passed",
        "machine": platform.machine(),
        "pre_pr_reference": dict(PRE_PR_REFERENCE),
    }
    if speedup < min_speedup:
        error = AssertionError(
            f"speedup {speedup:.2f}x below the required "
            f"{min_speedup:.1f}x (report: {json.dumps(report, indent=2)})"
        )
        error.report = report
        raise error
    return report


#: Required cold-path ratios.  The offline DNN/HMM fit is ~80% of a
#: fresh-process comparison run, so loading it from the store instead of
#: fitting must at least halve the wall clock.  The parallel floor only
#: binds on multi-core machines — on one core the process fan-out is
#: pure overhead and the ratio is recorded informationally.
MIN_WARM_STORE_SPEEDUP: float = 2.0
MIN_PARALLEL_FIT_SPEEDUP: float = 1.3


def _run_cold_variant(
    scenario: Scenario, cache: PredictorCache, seed: int
) -> tuple[float, list[dict]]:
    """One fresh-process-equivalent comparison run (empty memory cache)."""
    t0 = time.perf_counter()
    results = run_methods(scenario=scenario, predictor_cache=cache, seed=seed)
    return time.perf_counter() - t0, _summaries(results.values())


def run_cold_benchmark(
    *,
    jobs: int = 30,
    testbed: str = "cluster",
    seed: int = 7,
    store_dir: str | None = None,
    assert_floors: bool = True,
) -> dict:
    """Benchmark the cold path: predictor store and parallel fits.

    Every variant runs the full four-scheduler comparison with a *fresh*
    in-memory :class:`PredictorCache` — the in-process equivalent of a
    fresh ``repro compare`` invocation, where the offline DNN/HMM fit
    dominates the wall clock:

    * ``no_store`` — the status-quo cold run (fit from scratch);
    * ``cold_store`` — first-ever run against an empty store (fit plus
      artifact save: the write overhead must be negligible);
    * ``warm_store`` — second fresh process, same store (the fit is
      replaced by a disk load; this is the headline speedup);
    * ``parallel_fit`` — fit from scratch with the per-resource fits
      fanned across one worker process per CPU;
    * ``warm_start_refit`` — the store holds a same-config artifact fit
      on a *different* history window, and the refit starts from its
      weights (informational: warm-started weights legitimately differ,
      so this variant is exempt from the identity check).

    All variants except ``warm_start_refit`` must reproduce the
    ``no_store`` summaries exactly.  With ``assert_floors``, the
    warm-store speedup must reach :data:`MIN_WARM_STORE_SPEEDUP` and —
    on machines with at least two CPUs — the parallel-fit speedup must
    reach :data:`MIN_PARALLEL_FIT_SPEEDUP`.
    """
    builders = {"cluster": cluster_scenario, "ec2": ec2_scenario}
    scenario = builders[testbed](jobs, seed=seed)
    # Same config, different history content: the warm-start donor.
    donor_scenario = builders[testbed](max(10, jobs // 2), seed=seed)

    owns_dir = store_dir is None
    root = tempfile.mkdtemp(prefix="repro-coldbench-") if owns_dir else store_dir
    main_dir = os.path.join(root, "main")
    warm_dir = os.path.join(root, "warm-donor")
    cpus = os.cpu_count() or 1
    try:
        no_store_s, reference = _run_cold_variant(
            scenario, PredictorCache(), seed
        )
        cold_store_s, cold_summaries = _run_cold_variant(
            scenario, PredictorCache(store=PredictorStore(main_dir)), seed
        )
        warm_store_s, warm_summaries = _run_cold_variant(
            scenario, PredictorCache(store=PredictorStore(main_dir)), seed
        )
        parallel_s, parallel_summaries = _run_cold_variant(
            scenario, PredictorCache(fit_workers=cpus), seed
        )
        # Seed the donor store with a fit on the shorter history, then
        # time a warm-started refit on the benchmark scenario.
        donor_store = PredictorStore(warm_dir)
        PredictorCache(store=donor_store).get(
            CorpConfig(seed=seed), donor_scenario.history_trace()
        )
        warm_start_s, _ = _run_cold_variant(
            scenario,
            PredictorCache(store=PredictorStore(warm_dir), warm_start=True),
            seed,
        )
    finally:
        if owns_dir:
            shutil.rmtree(root, ignore_errors=True)

    _check_identity(reference, cold_summaries)
    _check_identity(reference, warm_summaries)
    _check_identity(reference, parallel_summaries)

    speedups = {
        "cold_store": round(no_store_s / cold_store_s, 2),
        "warm_store": round(no_store_s / warm_store_s, 2),
        "parallel_fit": round(no_store_s / parallel_s, 2),
        "warm_start_refit": round(no_store_s / warm_start_s, 2),
    }
    parallel_floor_applies = cpus >= 2
    report = {
        "benchmark": "cold path: fresh-process comparison, offline fit dominant",
        "mode": "cold",
        "jobs": jobs,
        "testbed": testbed,
        "seed": seed,
        "cpu_count": cpus,
        "variants": {
            "no_store": {
                "seconds": round(no_store_s, 3),
                "how": "status quo: DNN/HMM fit from scratch, no store",
            },
            "cold_store": {
                "seconds": round(cold_store_s, 3),
                "how": "first-ever run: fit from scratch + artifact save",
            },
            "warm_store": {
                "seconds": round(warm_store_s, 3),
                "how": "second fresh process: fit replaced by a store load",
            },
            "parallel_fit": {
                "seconds": round(parallel_s, 3),
                "workers": cpus,
                "how": "fit from scratch, per-resource fits fanned across "
                       "worker processes (bit-identical to serial)",
            },
            "warm_start_refit": {
                "seconds": round(warm_start_s, 3),
                "how": "refit seeded from a same-config artifact fit on a "
                       "different history window (early stop trims epochs; "
                       "weights differ, identity check exempt)",
            },
        },
        "speedups": speedups,
        "floors": {
            "warm_store": MIN_WARM_STORE_SPEEDUP,
            "parallel_fit": (
                MIN_PARALLEL_FIT_SPEEDUP if parallel_floor_applies
                else f"informational on {cpus} CPU(s)"
            ),
        },
        "identity_check": "passed (warm_start_refit exempt)",
        "machine": platform.machine(),
    }
    if assert_floors:
        failures = []
        if speedups["warm_store"] < MIN_WARM_STORE_SPEEDUP:
            failures.append(
                f"warm_store speedup {speedups['warm_store']:.2f}x below "
                f"{MIN_WARM_STORE_SPEEDUP:.1f}x"
            )
        if (
            parallel_floor_applies
            and speedups["parallel_fit"] < MIN_PARALLEL_FIT_SPEEDUP
        ):
            failures.append(
                f"parallel_fit speedup {speedups['parallel_fit']:.2f}x below "
                f"{MIN_PARALLEL_FIT_SPEEDUP:.1f}x on {cpus} CPUs"
            )
        if failures:
            error = AssertionError(
                "; ".join(failures)
                + f" (report: {json.dumps(report, indent=2)})"
            )
            error.report = report
            raise error
    return report


def write_cold_benchmark(path: str, **kwargs) -> dict:
    """Run the cold-path benchmark and write the JSON report to ``path``.

    Like :func:`write_benchmark`, the report is written even when a
    speedup floor fails.
    """
    try:
        report = run_cold_benchmark(**kwargs)
    except AssertionError as exc:
        report = getattr(exc, "report", None)
        if report is not None:
            _dump(path, report)
        raise
    _dump(path, report)
    return report


#: Job counts of the hyperscale throughput curve (``--scale``).
SCALE_COUNTS: tuple[int, ...] = (100_000, 1_000_000)

#: The 1M-job point's jobs/sec must stay within 2x of the 100k point's
#: (``ratio >= 0.5``): per-job placement cost must not grow with the
#: total job count, i.e. the sharded index and streaming generation are
#: O(1) in trace length.
MIN_SCALE_LINEARITY: float = 0.5


def _scale_vms(n_vms: int) -> list[VirtualMachine]:
    """First ``n_vms`` machines of a hyperscale-profile datacenter."""
    profile = ClusterProfile.hyperscale(n_pms=-(-n_vms // 8))
    _, vms = profile.build()
    return vms[:n_vms]


def run_scale_benchmark(
    *,
    n_vms: int = 10_000,
    shards: int = 8,
    chunk_size: int = 4096,
    job_counts: Sequence[int] = SCALE_COUNTS,
    seed: int = 7,
    track_memory: bool = True,
    assert_floors: bool = True,
) -> dict:
    """Placement-engine throughput at hyperscale: jobs/sec vs job count.

    Drives the sharded availability index directly — a hyperscale VM
    pool, a static :class:`ShardedCandidateIndex` over its capacity
    matrix, and a stream of trace demands from
    :meth:`GoogleTraceGenerator.generate_chunks` — so the number
    isolates the Eq. 22 selection + consume/release cycle (the per-slot
    hot path at 10k VMs) from the full simulator's per-slot bookkeeping.
    Each record is placed on its most-matched VM and consumed; once more
    than ``2 * n_vms`` placements are in flight the oldest is released,
    modelling short-lived jobs completing at the arrival rate.

    The trace is never materialized: chunks of ``chunk_size`` records
    are generated, placed and dropped, so a 1M-job point holds only one
    chunk plus the index in memory.  With ``track_memory`` the point
    records its ``tracemalloc`` peak as evidence (CI asserts a ceiling
    on it; the tracing overhead inflates wall-clock equally across
    points, so the linearity ratio is unaffected).

    With ``assert_floors`` (and at least two job counts) the last
    point's jobs/sec must be at least ``MIN_SCALE_LINEARITY`` of the
    first's.  The raised :class:`AssertionError` carries ``.report``.
    """
    vms = _scale_vms(n_vms)
    capacity = np.array([vm.capacity.as_array() for vm in vms])
    reference = ResourceVector(capacity.max(axis=0))
    points: list[dict] = []
    for count in job_counts:
        index = ShardedCandidateIndex(vms, capacity.copy(), shards=shards)
        generator = GoogleTraceGenerator(
            TraceConfig(n_jobs=int(count), seed=seed)
        )
        inflight: deque[tuple[VirtualMachine, np.ndarray]] = deque()
        placed = rejected = 0
        peak_mem_mb = None
        if track_memory:
            tracemalloc.start()
        t0 = time.perf_counter()
        for chunk in generator.generate_chunks(chunk_size):
            for record in chunk:
                demand = record.requested
                vm = index.select_most_matched(demand, reference)
                if vm is None:
                    rejected += 1
                    continue
                amount = demand.as_array()
                index.consume(vm, amount)
                inflight.append((vm, amount))
                placed += 1
                if len(inflight) > 2 * n_vms:
                    old_vm, old_amount = inflight.popleft()
                    index.release(old_vm, old_amount)
        elapsed = time.perf_counter() - t0
        if track_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peak_mem_mb = round(peak / 1e6, 2)
        points.append(
            {
                "jobs": int(count),
                "elapsed_s": round(elapsed, 3),
                "jobs_per_sec": round(count / elapsed, 1),
                "placed": placed,
                "rejected": rejected,
                "peak_mem_mb": peak_mem_mb,
            }
        )
    report = {
        "benchmark": "scale",
        "machine": f"{platform.machine()}, {os.cpu_count()} cores",
        "python": platform.python_version(),
        "n_vms": n_vms,
        "shards": shards,
        "chunk_size": chunk_size,
        "seed": seed,
        "track_memory": track_memory,
        "points": points,
    }
    if len(points) >= 2:
        ratio = points[-1]["jobs_per_sec"] / points[0]["jobs_per_sec"]
        report["linearity"] = {
            "ratio": round(ratio, 3),
            "floor": MIN_SCALE_LINEARITY,
            "ok": ratio >= MIN_SCALE_LINEARITY,
        }
        if assert_floors and not report["linearity"]["ok"]:
            error = AssertionError(
                f"throughput at {points[-1]['jobs']} jobs is "
                f"{ratio:.2f}x of the {points[0]['jobs']}-job point "
                f"(floor {MIN_SCALE_LINEARITY:.2f}x)"
            )
            error.report = report
            raise error
    return report


def write_scale_benchmark(path: str, **kwargs) -> dict:
    """Run the hyperscale benchmark and write the JSON report to ``path``.

    Like :func:`write_benchmark`, the report is written even when the
    linearity floor fails.
    """
    try:
        report = run_scale_benchmark(**kwargs)
    except AssertionError as exc:
        report = getattr(exc, "report", None)
        if report is not None:
            _dump(path, report)
        raise
    _dump(path, report)
    return report


#: Maximum tolerated slowdown of the optimized sweep against the
#: committed reference, after machine-speed normalization.
MAX_REGRESSION: float = 0.25


def check_regression(
    report: Mapping, reference: Mapping, *, max_regression: float = MAX_REGRESSION
) -> dict:
    """CI regression gate: compare a fresh report to a committed one.

    Raw seconds are not comparable across machines, but both reports
    carry a live-measured legacy *baseline* of the same workload — its
    ratio is the machine-speed factor.  The fresh optimized time must
    stay within ``max_regression`` of the reference optimized time
    scaled by that factor.

    Returns the verdict dict; raises :class:`AssertionError` on a
    regression beyond the tolerance.
    """
    if report.get("mode") != reference.get("mode"):
        raise ValueError(
            f"mode mismatch: report {report.get('mode')!r} vs reference "
            f"{reference.get('mode')!r} — re-record the reference with the "
            f"same bench mode"
        )
    scale = report["baseline"]["seconds"] / reference["baseline"]["seconds"]
    allowed = reference["optimized"]["seconds"] * scale * (1.0 + max_regression)
    measured = report["optimized"]["seconds"]
    verdict = {
        "reference_optimized_s": reference["optimized"]["seconds"],
        "machine_scale": round(scale, 3),
        "allowed_s": round(allowed, 3),
        "measured_s": measured,
        "max_regression": max_regression,
        "ok": measured <= allowed,
    }
    if not verdict["ok"]:
        raise AssertionError(
            f"optimized sweep regressed: {measured:.3f}s exceeds the "
            f"normalized budget {allowed:.3f}s (reference "
            f"{reference['optimized']['seconds']:.3f}s x machine scale "
            f"{scale:.3f} x {1.0 + max_regression:.2f})"
        )
    return verdict


def write_benchmark(path: str, **kwargs) -> dict:
    """Run the benchmark and write the JSON report to ``path``.

    The report is written even when the speedup floor fails (the
    numbers are the evidence either way) before the error propagates.
    """
    try:
        report = run_benchmark(**kwargs)
    except AssertionError as exc:
        report = getattr(exc, "report", None)
        if report is not None:
            _dump(path, report)
        raise
    _dump(path, report)
    return report


def _dump(path: str, report: dict) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
